"""Table 4: stencil benchmark characteristics.

Regenerates the read/write bytes, op counts and time-dependency columns
from the IR analysis, next to the paper's reported values.
"""

from _common import emit

from repro.evalsuite import format_table, table4_rows


def test_table4_characteristics(benchmark):
    rows = benchmark(table4_rows)
    text = format_table(
        rows,
        ["benchmark", "read_bytes", "paper_read", "write_bytes",
         "paper_write", "ops", "paper_ops", "time_dep"],
        title="Table 4: benchmark characteristics (measured vs paper)",
    )
    emit("table4_characteristics", text)
    assert all(r["read_bytes"] == r["paper_read"] for r in rows)
    assert all(r["time_dep"] == 2 for r in rows)
