"""Table 3: the hardware/software configuration of the three platforms
(as modelled by the machine specs)."""

from _common import emit

from repro.evalsuite import format_table, table3_rows


def test_table3_platforms(benchmark):
    rows = benchmark(table3_rows)
    display = [
        {
            "platform": r["platform"],
            "processor": r["processor"],
            "peak_gflops": r["model"].peak_gflops,
            "mem_bw_GBs": r["model"].mem_bw_GBs,
            "model": r["model"].programming_model,
        }
        for r in rows
    ]
    emit(
        "table3_platforms",
        format_table(
            display,
            ["platform", "processor", "peak_gflops", "mem_bw_GBs", "model"],
            title="Table 3: platform configurations (modelled)",
        ),
    )
    assert len(rows) == 3
