"""Table 5: MSC parameter settings per benchmark.

Reprints the tile sizes / reorder rules and verifies each Sunway
schedule is legal (fits SPM) by lowering it.
"""

from _common import emit

from repro.evalsuite import TABLE5, build_with_schedule, format_table
from repro.machine.spec import SUNWAY_CG
from repro.schedule import check_schedule


def _rows():
    out = []
    for row in TABLE5:
        prog, handle = build_with_schedule(row.benchmark, "sunway")
        nest = handle.schedule.lower(prog.ir.output.shape)
        check_schedule(handle.schedule, nest, SUNWAY_CG)
        out.append({
            "benchmark": row.benchmark,
            "grid": "x".join(map(str, row.grid)),
            "sunway_tile": "x".join(map(str, row.sunway_tile)),
            "matrix_tile": "x".join(map(str, row.matrix_tile)),
            "reorder": ",".join(row.reorder),
            "ntiles": nest.ntiles,
        })
    return out


def test_table5_parameters(benchmark):
    rows = benchmark(_rows)
    emit(
        "table5_parameters",
        format_table(
            rows,
            ["benchmark", "grid", "sunway_tile", "matrix_tile", "reorder",
             "ntiles"],
            title="Table 5: parameter settings (all Sunway tiles fit SPM)",
        ),
    )
    assert len(rows) == 8
