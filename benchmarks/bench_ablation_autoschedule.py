"""Ablation: scheduling effort ladder.

Compares three ways to schedule the same stencils on the Sunway CG
model — a naive untileable-default schedule is illegal on the
cache-less target, so the ladder is:

1. **auto_schedule** — the zero-effort composed schedule,
2. **Table 5** — the paper's hand-chosen parameters,
3. **auto-tuner** — the Sec. 4.4 surrogate+annealing search (single
   node: tile axes only).
"""

from _common import emit

from repro.autotune import AutoTuner, auto_schedule
from repro.evalsuite import build_with_schedule, format_table
from repro.frontend import benchmark_by_name
from repro.machine.spec import SUNWAY_CG, SUNWAY_NETWORK
from repro.machine.sunway_sim import SunwaySimulator


def _sweep():
    sim = SunwaySimulator(SUNWAY_CG)
    rows = []
    for name in ("3d7pt_star", "3d13pt_star", "2d121pt_box"):
        bench = benchmark_by_name(name)
        prog, _ = bench.build()
        auto = auto_schedule(prog.ir, SUNWAY_CG, vectorize=False)
        t_auto = sim.run(prog.ir, auto).step_s
        t5_prog, t5_handle = build_with_schedule(name, "sunway")
        t_table5 = sim.run(t5_prog.ir, t5_handle.schedule).step_s
        tuner = AutoTuner(prog.ir, prog.ir.output.shape, nprocs=1,
                          machine=SUNWAY_CG, network=SUNWAY_NETWORK)
        tuned = tuner.tune(iterations=3000, seed=0, n_samples=40)
        rows.append({
            "benchmark": name,
            "auto_ms": t_auto * 1e3,
            "table5_ms": t_table5 * 1e3,
            "tuned_ms": tuned.best_time * 1e3,
            "tuned_tiles": "x".join(map(str, tuned.best.tile)),
        })
    return rows


def test_ablation_autoschedule(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "ablation_autoschedule",
        format_table(
            rows,
            ["benchmark", "auto_ms", "table5_ms", "tuned_ms",
             "tuned_tiles"],
            title="Ablation: scheduling effort ladder on a Sunway CG "
                  "(auto_schedule vs Table-5 vs auto-tuner)",
        ),
    )
    for r in rows:
        # the zero-effort schedule lands within 2x of the paper's
        # hand-chosen parameters under this machine model
        assert r["auto_ms"] < 2.0 * r["table5_ms"]
        # the tuner's pick is never worse than 1.4x the auto schedule
        assert r["tuned_ms"] < 1.4 * r["auto_ms"]
