"""Fig. 14 (+ Table 8): MSC vs Physis on the CPU server.

Paper: MSC wins everywhere, averaging 9.88x, and the gap grows with the
halo volume (high-order stencils) because Physis relays every halo
message through a master process.
"""

from _common import emit, mean

from repro.evalsuite import fig14_rows, format_table


def test_fig14_physis(benchmark):
    rows = benchmark(fig14_rows)
    avg = mean(r["speedup"] for r in rows)
    display = [
        {**r, "mpi_grid": "x".join(map(str, r["mpi_grid"]))} for r in rows
    ]
    text = format_table(
        display,
        ["benchmark", "mpi_grid", "omp_threads", "msc_s", "physis_s",
         "speedup"],
        title="Fig. 14: MSC (hybrid MPI+OpenMP, Table 8 configs) vs "
              "Physis (MPI-everywhere)",
    )
    text += f"\naverage speedup: {avg:.2f}x (paper: 9.88x)"
    emit("fig14_physis", text)
    assert 8.0 < avg < 12.0
    assert all(r["speedup"] > 1 for r in rows)
    low = mean(
        r["speedup"] for r in rows if r["benchmark"] == "3d7pt_star"
    )
    high = mean(
        r["speedup"] for r in rows if r["benchmark"] == "3d31pt_star"
    )
    assert high > low
