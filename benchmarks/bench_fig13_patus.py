"""Fig. 13: MSC vs Patus on the CPU server.

Paper: MSC faster on every benchmark, average 5.94x; high-order 3D star
stencils suffer most under Patus's unaligned SSE accesses.
"""

from _common import emit, mean

from repro.evalsuite import fig13_rows, format_table


def test_fig13_patus(benchmark):
    rows = benchmark(fig13_rows)
    avg = mean(r["speedup"] for r in rows)
    text = format_table(
        rows, ["benchmark", "msc_s", "patus_s", "speedup"],
        title="Fig. 13: MSC vs Patus on CPU (Patus = baseline)",
    )
    text += f"\naverage speedup: {avg:.2f}x (paper: 5.94x)"
    emit("fig13_patus", text)
    assert 5.0 < avg < 7.0
    assert all(r["speedup"] > 1 for r in rows)
    by = {r["benchmark"]: r["speedup"] for r in rows}
    assert by["3d31pt_star"] > by["2d9pt_box"]
