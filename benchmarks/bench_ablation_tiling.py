"""Ablation: spatial tile size and temporal blocking depth.

Design choices DESIGN.md calls out:

- *spatial tile size* trades halo-redundant DMA traffic (small tiles)
  against SPM capacity (large tiles): the sweep exposes the optimum the
  auto-tuner finds;
- *temporal blocking depth* trades redundant computation against
  halo-exchange rounds: profitable only when exchanges are expensive
  relative to compute.
"""

import pytest
from _common import emit

from repro.evalsuite import format_table
from repro.frontend import build_benchmark
from repro.ir.analysis import halo_traffic_bytes
from repro.machine.spec import SUNWAY_CG, SUNWAY_NETWORK, TIANHE3_NETWORK
from repro.machine.sunway_sim import SunwaySimulator
from repro.runtime.network import NetworkModel
from repro.schedule import Schedule, plan_temporal_tiles


def _tile_sweep():
    prog, _ = build_benchmark("3d7pt_star", grid=(256, 256, 256))
    kern = prog.ir.kernels[0]
    sim = SunwaySimulator(SUNWAY_CG)
    rows = []
    for tile in [(1, 2, 16), (2, 4, 32), (2, 8, 64), (4, 16, 64),
                 (8, 16, 128)]:
        sched = Schedule(kern)
        sched.tile(*tile, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        sched.cache_read(prog.ir.output, "br")
        sched.cache_write("bw")
        sched.compute_at("br", "zo")
        sched.compute_at("bw", "zo")
        sched.parallel("xo", 64)
        try:
            report = sim.run(prog.ir, sched)
            rows.append({
                "tile": "x".join(map(str, tile)),
                "step_ms": report.step_s * 1e3,
                "spm_util": report.details["spm_utilisation"],
                "status": "ok",
            })
        except Exception:
            rows.append({
                "tile": "x".join(map(str, tile)),
                "step_ms": float("nan"),
                "spm_util": float("nan"),
                "status": "SPM overflow",
            })
    return rows


def test_ablation_tile_size(benchmark):
    rows = benchmark(_tile_sweep)
    emit(
        "ablation_tile_size",
        format_table(
            rows, ["tile", "step_ms", "spm_util", "status"],
            title="Ablation: 3d7pt tile-size sweep on a Sunway CG "
                  "(halo redundancy vs SPM capacity)",
        ),
    )
    ok = [r for r in rows if r["status"] == "ok"]
    assert len(ok) >= 3
    # tiny tiles pay halo redundancy: worst feasible ≥ 1.3x the best
    times = [r["step_ms"] for r in ok]
    assert max(times) / min(times) > 1.3
    # the paper's Table-5 tile is at (or near) the sweep optimum
    best = min(ok, key=lambda r: r["step_ms"])
    assert best["tile"] in ("2x8x64", "4x16x64", "8x16x128")


def _temporal_tradeoff(network):
    prog, _ = build_benchmark("3d7pt_star", grid=(128, 128, 128))
    model = NetworkModel(network)
    nprocs = 512
    halo = halo_traffic_bytes(prog.ir, (128, 128, 128))
    exchange_s = (
        model.exchange_time_s(nprocs, halo, 3)
        + model.sync_time_s(nprocs, 3)
    )
    compute_s = 2.4e-3  # one CG sweep of 128^3 (from the Fig. 10 model)
    rows = []
    for depth in (1, 2, 4, 8):
        plan = plan_temporal_tiles(prog.ir, (32, 32, 32), depth)
        step = (compute_s * plan.redundancy
                + exchange_s / depth)
        rows.append({
            "time_block": depth,
            "redundancy": plan.redundancy,
            "exchanges_per_step": 1.0 / depth,
            "step_ms": step * 1e3,
        })
    return rows


@pytest.mark.parametrize("netname,network", [
    ("sunway", SUNWAY_NETWORK), ("tianhe3", TIANHE3_NETWORK),
])
def test_ablation_temporal_depth(benchmark, netname, network):
    rows = benchmark(_temporal_tradeoff, network)
    emit(
        f"ablation_temporal_{netname}",
        format_table(
            rows,
            ["time_block", "redundancy", "exchanges_per_step", "step_ms"],
            title=f"Ablation: temporal blocking depth on {netname} "
                  "(redundant flops vs exchange rounds)",
        ),
    )
    # redundancy grows monotonically with depth
    reds = [r["redundancy"] for r in rows]
    assert reds == sorted(reds)
    # on a fast network, deep blocking is NOT worth it (step grows)
    assert rows[-1]["step_ms"] > rows[0]["step_ms"] * 0.8
