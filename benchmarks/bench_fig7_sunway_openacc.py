"""Fig. 7: MSC vs OpenACC on one Sunway core group (fp64 + fp32).

Paper: MSC outperforms OpenACC in all cases, average speedup 24.4x
(fp64) and 20.7x (fp32).
"""

from _common import emit, mean

from repro.evalsuite import fig7_rows, format_table


def test_fig7_fp64(benchmark):
    rows = benchmark(fig7_rows, "fp64")
    avg = mean(r["speedup"] for r in rows)
    text = format_table(
        rows,
        ["benchmark", "msc_s", "openacc_s", "speedup", "msc_gflops",
         "spm_utilisation"],
        title="Fig. 7 (fp64): MSC vs OpenACC on a Sunway CG",
    )
    text += f"\naverage speedup: {avg:.1f}x (paper: 24.4x)"
    emit("fig7_sunway_openacc_fp64", text)
    assert 20 < avg < 30
    assert all(r["speedup"] > 1 for r in rows)


def test_fig7_fp32(benchmark):
    rows = benchmark(fig7_rows, "fp32")
    avg = mean(r["speedup"] for r in rows)
    text = format_table(
        rows, ["benchmark", "msc_s", "openacc_s", "speedup"],
        title="Fig. 7 (fp32): MSC vs OpenACC on a Sunway CG",
    )
    text += f"\naverage speedup: {avg:.1f}x (paper: 20.7x)"
    emit("fig7_sunway_openacc_fp32", text)
    assert 17 < avg < 25
