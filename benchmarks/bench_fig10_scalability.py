"""Fig. 10 (+ Table 7): strong and weak scalability.

Paper: scaling 8x in processes yields average speedups of 6.74x
(Sunway) / 5.85x (Tianhe-3) strong and 7.85x / 7.38x weak; 2D strong
scaling deviates on the prototype Tianhe-3 due to network congestion
while 3D stays near-ideal.
"""

import pytest
from _common import emit, mean

from repro.evalsuite import fig10_curves, format_series, line_chart

PAPER = {
    ("sunway", "strong"): 6.74,
    ("sunway", "weak"): 7.85,
    ("tianhe3", "strong"): 5.85,
    ("tianhe3", "weak"): 7.38,
}


def _curves(platform, mode):
    curves = fig10_curves(platform, mode)
    series = {
        name: [(pt.cores, pt.gflops) for pt in pts]
        for name, pts in curves.items()
    }
    speedups = {
        name: pts[-1].gflops / pts[0].gflops for name, pts in curves.items()
    }
    return series, speedups


@pytest.mark.parametrize("platform", ["sunway", "tianhe3"])
@pytest.mark.parametrize("mode", ["strong", "weak"])
def test_fig10(benchmark, platform, mode):
    series, speedups = benchmark(_curves, platform, mode)
    avg = mean(speedups.values())
    text = format_series(
        series, "cores", "GFlops",
        title=f"Fig. 10 {mode} scaling on {platform}",
    )
    text += "\n" + line_chart(
        series, x_label="cores", y_label="GFlops", logx=True, logy=True,
    )
    text += "\nper-benchmark 8x-scale speedups: " + ", ".join(
        f"{k}={v:.2f}" for k, v in speedups.items()
    )
    text += (
        f"\naverage speedup at max scale: {avg:.2f}x "
        f"(paper: {PAPER[(platform, mode)]}x)"
    )
    emit(f"fig10_{platform}_{mode}", text)
    assert abs(avg - PAPER[(platform, mode)]) < 0.6


def test_fig10_tianhe3_2d_congestion(benchmark):
    _, speedups = benchmark(_curves, "tianhe3", "strong")
    s2 = mean(v for k, v in speedups.items() if k.startswith("2d"))
    s3 = mean(v for k, v in speedups.items() if k.startswith("3d"))
    emit(
        "fig10_tianhe3_congestion",
        f"Tianhe-3 strong scaling: 2D average {s2:.2f}x, 3D average "
        f"{s3:.2f}x\n(paper: 2D deviates from ideal due to network "
        "congestion; 3D near-ideal)",
    )
    assert s3 > 7.0 > s2
