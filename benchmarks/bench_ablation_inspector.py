"""Ablation: inspector-executor load balancing (Sec. 5.6).

The paper's discussion motivates inspector-executor scheduling with the
load imbalance of WRF and POP2.  This bench quantifies it on the two
synthetic workloads: a WRF-style hotspot and a POP2-style land mask,
comparing uniform vs inspector-balanced decompositions.
"""

import numpy as np
from _common import emit

from repro.evalsuite import format_table
from repro.frontend import build_benchmark
from repro.inspector import (
    Inspector,
    WorkloadMap,
    execute_plan,
    hotspot_weights,
    ocean_land_mask,
)


def _sweep():
    shape = (48, 48)
    prog, _ = build_benchmark("2d9pt_star", grid=shape,
                              boundary="periodic")
    rng = np.random.default_rng(0)
    init = [rng.random(shape) for _ in range(2)]
    rows = []
    workloads = {
        "wrf_hotspot_4x": hotspot_weights(shape, factor=4.0),
        "wrf_hotspot_16x": hotspot_weights(shape, factor=16.0),
        "pop2_land_35%": ocean_land_mask(shape, land_fraction=0.35),
        "pop2_land_60%": ocean_land_mask(shape, land_fraction=0.60),
    }
    for name, weights in workloads.items():
        w = WorkloadMap(weights)
        plan = Inspector(prog.ir, w).inspect((4, 2))
        outcome = execute_plan(prog.ir, plan, w, init, 2,
                               boundary="periodic")
        from repro.backend.numpy_backend import reference_run

        ref = reference_run(prog.ir, init, 2, boundary="periodic")
        assert np.array_equal(outcome.result, ref)
        rows.append({
            "workload": name,
            "imbalance_uniform": plan.imbalance_before,
            "imbalance_balanced": plan.imbalance_after,
            "step_speedup": outcome.speedup,
        })
    return rows


def test_ablation_inspector(benchmark):
    rows = benchmark(_sweep)
    emit(
        "ablation_inspector",
        format_table(
            rows,
            ["workload", "imbalance_uniform", "imbalance_balanced",
             "step_speedup"],
            title="Ablation: inspector-executor load balancing on "
                  "WRF/POP2-style workloads (4x2 ranks; results verified "
                  "against the serial reference)",
        ),
    )
    for r in rows:
        assert r["imbalance_balanced"] <= r["imbalance_uniform"] + 1e-9
        assert r["step_speedup"] >= 1.0
    hot = next(r for r in rows if r["workload"] == "wrf_hotspot_16x")
    assert hot["step_speedup"] > 1.3
