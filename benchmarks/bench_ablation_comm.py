"""Ablation: communication-library design choices.

- async vs master-coordinated exchange: identical numerics, very
  different message economics (counted on the *functional* runtime);
- double-buffered streaming: when overlapping DMA with compute pays;
- sliding time window: memory held vs keeping the full history (Fig. 5).
"""

import numpy as np
from _common import emit

from repro.comm import HaloSpec, create_exchanger
from repro.evalsuite import format_table
from repro.evalsuite.harness import build_with_schedule
from repro.frontend import build_benchmark
from repro.machine import SPMAllocationError, simulate_streaming
from repro.runtime.simmpi import run_ranks
from repro.schedule import full_history_bytes, window_memory_bytes


def _exchange_stats(name):
    """Messages and bytes per exchange for one strategy (2x2 ranks)."""

    def main(comm):
        spec = HaloSpec((32, 32), (2, 2))
        ex = create_exchanger(name, comm, spec)
        plane = np.zeros(spec.padded_shape)
        plane[spec.interior()] = float(comm.rank)
        for _ in range(3):
            ex.exchange(plane)
        return {"messages": ex.messages, "bytes": ex.bytes_sent,
                "total": comm.traffic_bytes()}

    res = run_ranks(4, main, cart_dims=(2, 2), periods=(True, True))
    return {
        "strategy": name,
        "msgs_per_rank": res[0]["messages"],
        "bytes_per_rank": res[0]["bytes"],
        "world_bytes": res[0]["total"],
    }


def test_ablation_exchanger(benchmark):
    rows = benchmark(
        lambda: [_exchange_stats("async"), _exchange_stats("master")]
    )
    emit(
        "ablation_exchanger",
        format_table(
            rows,
            ["strategy", "msgs_per_rank", "bytes_per_rank", "world_bytes"],
            title="Ablation: async vs master-coordinated halo exchange "
                  "(3 exchanges, 2x2 ranks, 32^2 sub-domains, r=2)",
        ),
    )
    a, m = rows
    # the relay at least doubles the bytes crossing the world (each
    # strip travels to the master and out again, plus routing headers)
    assert m["world_bytes"] > 1.9 * a["world_bytes"]


def test_ablation_streaming(benchmark):
    def sweep():
        rows = []
        for name in ("3d7pt_star", "2d9pt_star", "2d121pt_box",
                     "2d169pt_box", "3d13pt_star"):
            prog, handle = build_with_schedule(name, "sunway")
            try:
                r = simulate_streaming(prog.ir, handle.schedule)
                rows.append({
                    "benchmark": name,
                    "overlap_speedup": r.overlap_speedup,
                    "dma_bound": str(r.dma_bound),
                    "spm_double_B": r.spm_bytes_double,
                })
            except SPMAllocationError:
                rows.append({
                    "benchmark": name,
                    "overlap_speedup": float("nan"),
                    "dma_bound": "-",
                    "spm_double_B": -1,
                })
        return rows

    rows = benchmark(sweep)
    emit(
        "ablation_streaming",
        format_table(
            rows,
            ["benchmark", "overlap_speedup", "dma_bound", "spm_double_B"],
            title="Ablation: double-buffered DMA/compute overlap "
                  "(Sec. 5.6 streaming); nan = doubling overflows SPM",
        ),
    )
    by = {r["benchmark"]: r for r in rows}
    # overlap pays most where compute is heaviest (2d169pt)
    assert (by["2d169pt_box"]["overlap_speedup"]
            > by["3d7pt_star"]["overlap_speedup"])


def test_ablation_sliding_window(benchmark):
    def sweep():
        prog, _ = build_benchmark("3d7pt_star", grid=(256, 256, 256))
        tensor = prog.ir.output
        rows = []
        for steps in (10, 100, 1000):
            rows.append({
                "timesteps": steps,
                "window_MB": window_memory_bytes(tensor) / 1e6,
                "full_history_MB": full_history_bytes(tensor, steps) / 1e6,
                "saving": full_history_bytes(tensor, steps)
                / window_memory_bytes(tensor),
            })
        return rows

    rows = benchmark(sweep)
    emit(
        "ablation_sliding_window",
        format_table(
            rows,
            ["timesteps", "window_MB", "full_history_MB", "saving"],
            title="Ablation: sliding time window (Fig. 5) — memory held "
                  "vs keeping every timestep (3d7pt, 256^3, window 3)",
        ),
    )
    assert rows[0]["window_MB"] == rows[-1]["window_MB"]  # constant in T
    assert rows[-1]["saving"] > 300
