"""Shared helpers for the reproduction benchmarks.

Every ``bench_*`` target regenerates one table or figure of the paper:
it computes the rows/series through :mod:`repro.evalsuite`, prints them
(visible with ``pytest benchmarks/ -s``) and appends them to
``benchmarks/results/<name>.txt`` so the artefacts survive the run.

Next to every ``.txt`` artefact, :func:`emit` also writes a
machine-readable ``<name>.json`` in the performance-observatory
artefact format (see ``docs/PERF.md``), so the paper-figure benches
feed ``repro.obs.perf`` without each ``bench_*.py`` having to know
about the schema.  Pass structured ``data`` (rows/series) when the
bench has it; the text rendering rides along either way.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: artefact envelope understood by repro.obs.perf.schema.load_artifact
ARTIFACT_FORMAT = "repro-bench-artifact"
ARTIFACT_VERSION = 1


def emit(name: str, text: str, data=None) -> None:
    """Print a reproduction artefact and persist it under results/.

    Writes ``results/<name>.txt`` (human-readable, as before) and
    ``results/<name>.json`` (machine-readable envelope; ``data`` is the
    bench's structured rows/series when it has any, else ``None``).
    """
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    doc = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "name": name,
        "data": data,
        "text": text,
    }
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(doc, fh, indent=2, default=str)
        fh.write("\n")


def mean(values):
    values = list(values)
    return sum(values) / len(values)
