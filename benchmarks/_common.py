"""Shared helpers for the reproduction benchmarks.

Every ``bench_*`` target regenerates one table or figure of the paper:
it computes the rows/series through :mod:`repro.evalsuite`, prints them
(visible with ``pytest benchmarks/ -s``) and appends them to
``benchmarks/results/<name>.txt`` so the artefacts survive the run.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a reproduction artefact and persist it under results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def mean(values):
    values = list(values)
    return sum(values) / len(values)
