"""Fig. 9: roofline analysis on Sunway (a) and Matrix (b).

Paper: all benchmarks memory-bound except 2d169pt on Sunway, which is
compute-bound; on Matrix, the limited bandwidth keeps 2d169pt
memory-bound too.
"""

from _common import emit

from repro.evalsuite import fig9_points, format_table
from repro.machine import Roofline
from repro.machine.spec import MATRIX_SN, SUNWAY_CG


def _render(machine_name, machine):
    points = fig9_points(machine_name)
    roof = Roofline(machine)
    rows = [
        {
            "benchmark": p.name,
            "oi_flops_per_byte": p.operational_intensity,
            "attainable_gflops": p.attainable_gflops,
            "achieved_gflops": p.achieved_gflops,
            "utilization": p.utilization,
            "bound": p.bound,
        }
        for p in points
    ]
    text = format_table(
        rows,
        ["benchmark", "oi_flops_per_byte", "attainable_gflops",
         "achieved_gflops", "bound"],
        title=(
            f"Fig. 9 roofline on {machine.name}: peak="
            f"{machine.peak_gflops:.0f} GFlops, bw={machine.mem_bw_GBs} "
            f"GB/s, ridge={roof.ridge_oi:.1f} flops/B"
        ),
    )
    return points, text


def test_fig9_sunway(benchmark):
    points, text = benchmark(_render, "sunway", SUNWAY_CG)
    emit("fig9_roofline_sunway", text,
         data=[p.__dict__ | {"utilization": p.utilization}
               for p in points])
    bounds = {p.name: p.bound for p in points}
    assert bounds["2d169pt_box"] == "compute"
    assert sum(1 for b in bounds.values() if b == "memory") == 7


def test_fig9_matrix(benchmark):
    points, text = benchmark(_render, "matrix", MATRIX_SN)
    emit("fig9_roofline_matrix", text,
         data=[p.__dict__ | {"utilization": p.utilization}
               for p in points])
    assert all(p.bound == "memory" for p in points)
