"""Real-execution throughput benchmarks (pytest-benchmark timing).

Unlike the figure/table targets (which run analytical models), these
time the actual executable paths of this reproduction: the vectorized
numpy sweep, the tiled scheduled executor, the distributed run over the
simulated MPI runtime, and (when gcc is present) the compiled generated
C program.
"""

import shutil
import subprocess

import numpy as np
import pytest

from repro.backend import CCodeGenerator
from repro.backend.numpy_backend import ScheduledExecutor, reference_run
from repro.frontend import build_benchmark
from repro.runtime.executor import distributed_run
from repro.schedule import Schedule

GRID = (48, 48, 48)


@pytest.fixture(scope="module")
def setup():
    prog, handle = build_benchmark("3d7pt_star", grid=GRID,
                                   boundary="periodic")
    rng = np.random.default_rng(0)
    init = [rng.random(GRID) for _ in range(2)]
    return prog, handle, init


def test_reference_sweep_throughput(benchmark, setup):
    prog, _, init = setup
    result = benchmark(reference_run, prog.ir, init, 2, "periodic")
    assert np.isfinite(result).all()


def test_scheduled_sweep_throughput(benchmark, setup):
    prog, handle, init = setup
    kern = prog.ir.kernels[0]
    sched = Schedule(kern).tile(
        16, 16, 48, "xo", "xi", "yo", "yi", "zo", "zi"
    )
    ex = ScheduledExecutor(prog.ir, {kern.name: sched},
                           boundary="periodic")
    result = benchmark(ex.run, init, 2)
    assert np.isfinite(result).all()


def test_distributed_sweep_throughput(benchmark, setup):
    prog, _, init = setup
    result = benchmark(
        distributed_run, prog.ir, init, 2, (2, 2, 1), "periodic"
    )
    ref = reference_run(prog.ir, init, 2, "periodic")
    np.testing.assert_array_equal(result, ref)


@pytest.mark.skipif(shutil.which("gcc") is None, reason="no gcc")
def test_compiled_c_throughput(benchmark, setup, tmp_path):
    prog, _, init = setup
    gen = CCodeGenerator(prog.ir, {}, boundary="periodic")
    code = gen.generate("bench3d")
    code.write_to(str(tmp_path))
    exe = tmp_path / "bench3d"
    subprocess.run(
        ["gcc", "-O2", "-fopenmp", "-o", str(exe),
         str(tmp_path / "bench3d.c"), "-lm"],
        check=True, capture_output=True,
        timeout=300,
    )
    init_file = tmp_path / "init.bin"
    out_file = tmp_path / "out.bin"
    np.concatenate([p.ravel() for p in init]).tofile(str(init_file))

    def run_binary():
        subprocess.run(
            [str(exe), str(init_file), "2", str(out_file)],
            check=True, capture_output=True,
            timeout=300,
        )

    benchmark(run_binary)
    got = np.fromfile(str(out_file)).reshape(GRID)
    ref = reference_run(prog.ir, init, 2, "periodic")
    np.testing.assert_array_equal(got, ref)
