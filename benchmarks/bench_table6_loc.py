"""Table 6: lines-of-code comparison (MSC vs OpenACC vs OpenMP)."""

from _common import emit, mean

from repro.evalsuite import format_table, table6_rows


def test_table6_loc(benchmark):
    rows = benchmark(table6_rows)
    red_acc = mean(1 - r["msc"] / r["openacc"] for r in rows)
    red_omp = mean(1 - r["msc"] / r["openmp"] for r in rows)
    text = format_table(
        rows, ["benchmark", "msc", "openacc", "openmp"],
        title="Table 6: LoC comparison",
    )
    text += (
        f"\naverage reduction vs OpenACC: {red_acc:.0%} (paper: 27%)"
        f"\naverage reduction vs OpenMP:  {red_omp:.0%} (paper: 74%)"
    )
    emit("table6_loc", text)
    assert all(r["msc"] < r["openacc"] for r in rows)
    assert all(r["msc"] < r["openmp"] for r in rows)
