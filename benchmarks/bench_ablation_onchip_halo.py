"""Ablation: on-chip halo exchange via CPE register communication.

The Sunway-related work the paper builds on (the Gordon-Bell earthquake
simulation, ref. [12]) uses on-chip halo exchange to avoid re-fetching
tile rims from main memory.  This bench quantifies that option in the
CG simulator: the win grows with the rim/interior ratio (small tiles,
wide stencils).
"""

from _common import emit

from repro.evalsuite import build_with_schedule, format_table
from repro.machine.sunway_sim import SunwaySimulator
from repro.machine.spec import SUNWAY_CG


def _sweep():
    sim = SunwaySimulator(SUNWAY_CG)
    rows = []
    for name in ("3d7pt_star", "3d13pt_star", "3d25pt_star",
                 "2d121pt_box"):
        prog, handle = build_with_schedule(name, "sunway")
        off = sim.run(prog.ir, handle.schedule, on_chip_halo=False)
        on = sim.run(prog.ir, handle.schedule, on_chip_halo=True)
        rows.append({
            "benchmark": name,
            "dma_only_ms": off.step_s * 1e3,
            "onchip_ms": on.step_s * 1e3,
            "speedup": off.step_s / on.step_s,
            "dma_bytes_saved": off.dma.bytes_get - on.dma.bytes_get,
        })
    return rows


def test_ablation_onchip_halo(benchmark):
    rows = benchmark(_sweep)
    emit(
        "ablation_onchip_halo",
        format_table(
            rows,
            ["benchmark", "dma_only_ms", "onchip_ms", "speedup",
             "dma_bytes_saved"],
            title="Ablation: on-chip halo exchange (register comm) vs "
                  "DMA-only tile staging on a Sunway CG",
        ),
    )
    by = {r["benchmark"]: r for r in rows}
    for r in rows:
        assert r["speedup"] >= 1.0
        assert r["dma_bytes_saved"] > 0
    # wider stencils (bigger rims) gain more
    assert by["3d25pt_star"]["speedup"] > by["3d7pt_star"]["speedup"]
