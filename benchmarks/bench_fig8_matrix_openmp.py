"""Fig. 8: MSC vs manually-optimized OpenMP on a Matrix supernode.

Paper: near parity — MSC reaches 1.05x (fp64) / 1.03x (fp32) of the
hand-tuned code on average.
"""

from _common import emit, mean

from repro.evalsuite import fig8_rows, format_table


def test_fig8_fp64(benchmark):
    rows = benchmark(fig8_rows, "fp64")
    avg = mean(r["speedup"] for r in rows)
    text = format_table(
        rows, ["benchmark", "msc_s", "openmp_s", "speedup", "msc_gflops"],
        title="Fig. 8 (fp64): MSC vs manual OpenMP on Matrix",
    )
    text += f"\naverage MSC/OpenMP performance: {avg:.2f}x (paper: 1.05x)"
    emit("fig8_matrix_openmp_fp64", text)
    assert abs(avg - 1.05) < 0.04


def test_fig8_fp32(benchmark):
    rows = benchmark(fig8_rows, "fp32")
    avg = mean(r["speedup"] for r in rows)
    text = format_table(
        rows, ["benchmark", "msc_s", "openmp_s", "speedup"],
        title="Fig. 8 (fp32): MSC vs manual OpenMP on Matrix",
    )
    text += f"\naverage MSC/OpenMP performance: {avg:.2f}x (paper: 1.03x)"
    emit("fig8_matrix_openmp_fp32", text)
    assert abs(avg - 1.03) < 0.04
