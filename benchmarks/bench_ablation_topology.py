"""Ablation: interconnect topology vs halo-exchange congestion.

The paper argues the pluggable communication library "enables easy
adaption to supercomputers or large clusters installed with exotic
network topologies".  This bench routes one halo-exchange wavefront of
the 3d7pt and 2d9pt benchmarks over concrete topologies (networkx
graphs, ECMP routing) and reports per-link hotspots — grounding the
closed-form congestion constants used in Fig. 10.
"""

from _common import emit

from repro.evalsuite import format_table
from repro.frontend import build_benchmark
from repro.runtime.topology import fat_tree, route_exchange, torus


def _sweep():
    rows = []
    cases = [
        ("3d7pt_star", (64, 64, 64), (4, 4, 4)),
        ("2d9pt_star", (512, 512), (8, 8)),
        ("3d25pt_star", (64, 64, 64), (4, 4, 4)),
    ]
    topologies = {
        "fat-tree_1:1": lambda: fat_tree(64, radix=8, up_ratio=1.0),
        "fat-tree_4:1": lambda: fat_tree(64, radix=8, up_ratio=0.25),
        "torus_4x4x4": lambda: torus((4, 4, 4)),
    }
    for bench_name, grid, pgrid in cases:
        prog, _ = build_benchmark(bench_name, grid=grid)
        for topo_name, make in topologies.items():
            load = route_exchange(prog.ir, pgrid, make())
            rows.append({
                "benchmark": bench_name,
                "topology": topo_name,
                "total_MB": load.total_bytes / 1e6,
                "max_link_MB": load.max_link_bytes / 1e6,
                "hotspot": load.hotspot_factor,
                "congestion_us": load.congestion_time_s * 1e6,
            })
    return rows


def test_ablation_topology(benchmark):
    rows = benchmark(_sweep)
    emit(
        "ablation_topology",
        format_table(
            rows,
            ["benchmark", "topology", "total_MB", "max_link_MB",
             "hotspot", "congestion_us"],
            title="Ablation: halo-exchange link loads by topology "
                  "(ECMP shortest-path routing, 64 ranks)",
        ),
    )
    by = {(r["benchmark"], r["topology"]): r for r in rows}
    # over-subscription concentrates traffic on the thin core layer
    assert (by[("3d7pt_star", "fat-tree_4:1")]["hotspot"]
            > by[("3d7pt_star", "fat-tree_1:1")]["hotspot"])
    # a matched torus keeps all halo traffic on direct links
    assert by[("3d7pt_star", "torus_4x4x4")]["hotspot"] == 1.0
    # wider stencils ship more bytes over the same routes
    assert (by[("3d25pt_star", "fat-tree_1:1")]["total_MB"]
            > by[("3d7pt_star", "fat-tree_1:1")]["total_MB"])
