"""Fig. 12: MSC vs Halide (JIT and AOT) on the CPU server.

Paper: vs the Halide-JIT baseline, Halide-AOT averages 2.92x and MSC
3.33x; Halide-AOT beats MSC on small stencils, MSC wins on large ones
(the data-indexing crossover).
"""

from _common import emit, mean

from repro.evalsuite import fig12_rows, format_table


def test_fig12_halide(benchmark):
    rows = benchmark(fig12_rows)
    avg_msc = mean(r["speedup_msc"] for r in rows)
    avg_aot = mean(r["speedup_aot"] for r in rows)
    text = format_table(
        rows,
        ["benchmark", "msc_s", "halide_aot_s", "halide_jit_s",
         "speedup_msc", "speedup_aot", "msc_vs_aot"],
        title="Fig. 12: MSC vs Halide on CPU (100 timesteps, "
              "Halide-JIT = baseline)",
    )
    text += (
        f"\naverage speedup over JIT: MSC {avg_msc:.2f}x (paper 3.33x), "
        f"AOT {avg_aot:.2f}x (paper 2.92x)"
    )
    emit("fig12_halide", text)
    assert 3.0 < avg_msc < 3.8
    assert 2.5 < avg_aot < 3.3
    by = {r["benchmark"]: r["msc_vs_aot"] for r in rows}
    assert by["3d7pt_star"] <= 1.02  # AOT competitive on small stencils
    assert by["2d169pt_box"] > 1.4  # MSC wins on large stencils
