"""Fig. 11: auto-tuning of 3d7pt_star at 8192x128x128 on 128 CGs.

Paper: two independent simulated-annealing runs both converge, and the
tuned parameters improve performance by 3.28x.
"""

from _common import emit

from repro.evalsuite import fig11_runs, format_series, line_chart


def test_fig11_autotuning(benchmark):
    results = benchmark.pedantic(
        fig11_runs, args=((0, 1), 20000), rounds=1, iterations=1
    )
    series = {
        f"run{i + 1}": [(it, t * 1e3) for it, t in r.history]
        for i, r in enumerate(results)
    }
    text = format_series(
        series, "iteration", "best_step_ms",
        title="Fig. 11: auto-tuning convergence (3d7pt_star, 128 CGs)",
    )
    text += "\n" + line_chart(
        series, x_label="iteration", y_label="best_step_ms",
    )
    for i, r in enumerate(results):
        text += (
            f"\nrun{i + 1}: best={r.best.tile} x mpi{r.best.mpi_grid}"
            f"  improvement={r.improvement:.2f}x"
            f"  model R2={r.model_r2:.3f}"
            f"  converged@iter={r.annealing.converged_at}"
        )
    text += "\n(paper: both runs converge; improvement 3.28x)"
    emit("fig11_autotuning", text)
    for r in results:
        assert r.improvement > 1.5
        assert r.model_r2 > 0.8
    # the two runs find optima of comparable quality (stability claim)
    times = [r.best_time for r in results]
    assert max(times) / min(times) < 1.3
