"""Tests for the append-only run ledger (``repro.obs.ledger``)."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.obs import ledger
from repro.obs.events import read_events
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    fold_spans,
    machine_spec_hash,
    metric_point,
    open_ledger,
)


@pytest.fixture
def store(tmp_path):
    led = RunLedger(str(tmp_path / "ledger.db"))
    yield led
    led.close()


@pytest.fixture
def own_ledger_dir(tmp_path, monkeypatch):
    """Point the CLI hooks at a fresh per-test store."""
    d = str(tmp_path / "ledger")
    monkeypatch.setenv("REPRO_LEDGER_DIR", d)
    return d


class TestStore:
    def test_record_get_roundtrip(self, store):
        rec = RunRecord(
            command="simulate", workload="3d7pt_star@sunway",
            outcome="ok", rc=0,
            config={"benchmark": "3d7pt_star", "machine": "sunway"},
            environment={"python": "3.x", "git": "unknown"},
            phases_sim={"spm-dma": {"time_s": 0.05}},
            phases_host={"other": {"time_s": 0.1, "count": 2.0,
                                   "bytes": 0.0}},
            spans={"cli.simulate": 0.1},
            metrics={"sim.step_s": metric_point(0.05, unit="s",
                                                gate=True)},
        )
        rid = store.record(rec)
        assert rid == 1
        row = store.get(rid)
        assert row["command"] == "simulate"
        assert row["workload"] == "3d7pt_star@sunway"
        assert row["outcome"] == "ok"
        assert row["config"]["benchmark"] == "3d7pt_star"
        assert row["environment"]["git"] == "unknown"
        assert row["phases_sim"]["spm-dma"]["time_s"] == 0.05
        assert row["phases_host"]["other"]["count"] == 2.0
        assert row["spans"]["cli.simulate"] == 0.1
        assert row["metrics"]["sim.step_s"]["gate"] is True
        assert row["metrics"]["sim.step_s"]["ci95"] == [0.05, 0.05]

    def test_ids_are_append_only(self, store):
        ids = [store.record(RunRecord(command="bench", workload="w"))
               for _ in range(3)]
        assert ids == [1, 2, 3]
        assert len(store) == 3

    def test_get_missing_is_none(self, store):
        assert store.get(99) is None

    def test_query_filters_and_limit(self, store):
        for wl in ("a", "b", "a", "a"):
            store.record(RunRecord(command="bench", workload=wl))
        rows = store.query(workload="a")
        assert [r["id"] for r in rows] == [1, 3, 4]
        # limit keeps the newest N, still ascending
        rows = store.query(workload="a", limit=2)
        assert [r["id"] for r in rows] == [3, 4]
        assert store.query(command="bench", workload="b")[0]["id"] == 2

    def test_workloads_listing(self, store):
        for wl in ("a", "b", "a", None):
            store.record(RunRecord(command="run", workload=wl))
        assert store.workloads() == [("a", 2), ("b", 1)]

    def test_annotate_merges_and_is_idempotent(self, store):
        rid = store.record(RunRecord(command="bench", workload="w"))
        assert store.annotate(rid, "regression:sim.step_s+12%")
        assert store.get(rid)["verdict"] == "regression:sim.step_s+12%"
        # same verdict again does not stack
        assert store.annotate(rid, "regression:sim.step_s+12%")
        assert store.get(rid)["verdict"] == "regression:sim.step_s+12%"
        assert store.annotate(rid, "improvement:sim.gflops+5%")
        assert store.get(rid)["verdict"] == (
            "regression:sim.step_s+12%; improvement:sim.gflops+5%"
        )
        assert not store.annotate(999, "nope")

    def test_persists_across_open(self, tmp_path):
        with open_ledger(str(tmp_path)) as led:
            led.record(RunRecord(command="tune", workload="t"))
        with open_ledger(str(tmp_path)) as led:
            assert len(led) == 1
            assert led.get(1)["command"] == "tune"


class TestHelpers:
    def test_metric_point_matches_aggregate_shape(self):
        p = metric_point(2.5, unit="s", direction="lower", gate=True)
        assert p["n"] == 1 and p["median"] == 2.5
        assert p["mad"] == 0.0 and p["ci95"] == [2.5, 2.5]
        assert p["gate"] is True and p["direction"] == "lower"

    def test_machine_spec_hash_tracks_perturbation(self):
        from repro.machine.spec import machine_by_name
        from repro.obs.perf.workloads import _perturbed

        spec = machine_by_name("sunway")
        h = machine_spec_hash(spec)
        assert h == machine_spec_hash(machine_by_name("sunway"))
        assert len(h) == 12
        assert h != machine_spec_hash(
            _perturbed(spec, {"dma_startup_us": 10.0})
        )

    def test_fold_spans_self_times(self):
        spans = [
            {"span_id": 1, "parent_id": None, "name": "cli.run",
             "start_s": 0.0, "duration_s": 1.0, "attrs": {}},
            {"span_id": 2, "parent_id": 1, "name": "machine.dma_model",
             "start_s": 0.1, "duration_s": 0.4, "attrs": {}},
        ]
        phases, names = fold_spans(spans)
        assert phases["spm-dma"]["time_s"] == pytest.approx(0.4)
        # parent self-time excludes the child
        assert phases["other"]["time_s"] == pytest.approx(0.6)
        assert names["cli.run"] == pytest.approx(0.6)
        assert names["machine.dma_model"] == pytest.approx(0.4)

    def test_enabled_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert ledger.enabled()
        for off in ("0", "off", "no", "FALSE"):
            monkeypatch.setenv("REPRO_LEDGER", off)
            assert not ledger.enabled()
        monkeypatch.setenv("REPRO_LEDGER", "1")
        assert ledger.enabled()

    def test_ledger_dir_resolution(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "x"))
        assert ledger.ledger_dir() == str(tmp_path / "x")
        monkeypatch.delenv("REPRO_LEDGER_DIR")
        monkeypatch.setenv("XDG_STATE_HOME", str(tmp_path / "state"))
        assert ledger.ledger_dir() == str(tmp_path / "state" / "repro")
        monkeypatch.delenv("XDG_STATE_HOME")
        assert ledger.ledger_dir().endswith(
            os.path.join(".local", "state", "repro")
        )

    def test_environment_fingerprint_always_has_git(self):
        from repro.obs.perf.runner import environment_fingerprint

        fp = environment_fingerprint()
        assert "git" in fp  # "unknown" when rev-parse fails, never absent
        if fp["git"] != "unknown":
            assert isinstance(fp.get("git_dirty"), bool)


class TestCollector:
    def test_note_without_begin_is_noop(self, own_ledger_dir):
        ledger.discard()
        ledger.note(workload="w", config={"a": 1})
        ledger.note_workload("w2")
        assert ledger.pending() is None
        assert ledger.finish(0) == []
        assert not os.path.exists(
            ledger.ledger_path(own_ledger_dir)
        )

    def test_begin_note_finish_writes_row(self, own_ledger_dir):
        ledger.begin("simulate")
        ledger.note(workload="b@m", config={"benchmark": "b"},
                    metrics={"m": metric_point(1.0)},
                    phases_sim={"compute": {"time_s": 0.5}})
        ids = ledger.finish(0, spans=[
            {"span_id": 1, "parent_id": None, "name": "cli.simulate",
             "start_s": 0.0, "duration_s": 0.2, "attrs": {}},
        ])
        assert len(ids) == 1
        with open_ledger(own_ledger_dir) as led:
            row = led.get(ids[0])
        assert row["workload"] == "b@m"
        assert row["outcome"] == "ok" and row["rc"] == 0
        assert row["phases_sim"]["compute"]["time_s"] == 0.5
        assert row["phases_host"]  # folded from the spans
        assert row["environment"]  # fingerprint filled in by finish
        assert ledger.pending() is None

    def test_finish_outcomes(self, own_ledger_dir):
        ledger.begin("run")
        ledger.note(workload="w")
        (err_id,) = ledger.finish(3)
        ledger.begin("bench")
        ledger.note(workload="w",
                    verdict="regression vs base: 1 delta(s)")
        (reg_id,) = ledger.finish(1)
        with open_ledger(own_ledger_dir) as led:
            assert led.get(err_id)["outcome"] == "error"
            assert led.get(err_id)["rc"] == 3
            reg = led.get(reg_id)
        assert reg["outcome"] == "regression"
        assert reg["verdict"].startswith("regression vs base")

    def test_note_workload_one_row_each(self, own_ledger_dir):
        ledger.begin("bench")
        ledger.note_workload("a@x", metrics={"m": metric_point(1.0)})
        ledger.note_workload("b@x", metrics={"m": metric_point(2.0)})
        ids = ledger.finish(0)
        assert len(ids) == 2
        with open_ledger(own_ledger_dir) as led:
            assert led.get(ids[0])["workload"] == "a@x"
            assert led.get(ids[1])["workload"] == "b@x"

    def test_finish_swallows_broken_store(self, tmp_path, capsys):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        ledger.begin("run")
        ledger.note(workload="w")
        ids = ledger.finish(0, directory=str(blocker / "sub"))
        assert ids == []
        assert "run ledger write failed" in capsys.readouterr().err


MSC_SMALL = """
const N = 12;
DefVar(j, i32); DefVar(i, i32);
DefTensor2D_TimeWin(A, 2, 1, f64, N, N);
Kernel S((j,i), 0.5*A[j,i] + 0.25*A[j,i-1] + 0.25*A[j,i+1]);
Stencil st((j,i), A[t] << S[t-1]);
"""


class TestCLIRecording:
    def test_simulate_records_run(self, own_ledger_dir):
        assert main(["simulate", "2d9pt_box", "--machine", "cpu",
                     "--skip-pipeline"]) == 0
        with open_ledger(own_ledger_dir) as led:
            assert len(led) == 1
            row = led.get(1)
        assert row["command"] == "simulate"
        assert row["workload"] == "2d9pt_box@cpu"
        assert row["outcome"] == "ok"
        cfg = row["config"]
        assert cfg["benchmark"] == "2d9pt_box"
        assert len(cfg["machine_spec"]) == 12
        assert "ir_fp" in cfg
        assert row["metrics"]["sim.step_s"]["gate"] is True
        assert row["phases_sim"]
        # host phases come from the flight ring fold
        assert row["phases_host"]
        assert row["environment"]["git"]

    def test_bench_records_one_row_per_workload(self, own_ledger_dir,
                                                tmp_path):
        assert main(["bench", "2d9pt_box@cpu", "--repeats", "1",
                     "--warmup", "0", "--out",
                     str(tmp_path / "b.json")]) == 0
        with open_ledger(own_ledger_dir) as led:
            rows = led.query(command="bench")
        assert [r["workload"] for r in rows] == ["2d9pt_box@cpu"]
        row = rows[0]
        assert row["config"]["benchmark"] == "2d9pt_box"
        assert row["metrics"]["sim.step_s"]["gate"] is True
        assert row["phases_sim"]

    def test_run_records_row(self, own_ledger_dir, tmp_path):
        src = tmp_path / "prog.msc"
        src.write_text(MSC_SMALL)
        assert main(["run", str(src), "--steps", "2"]) == 0
        with open_ledger(own_ledger_dir) as led:
            row = led.get(1)
        assert row["workload"] == "run:prog"
        assert row["config"]["steps"] == 2
        assert "run.result_l2" in row["metrics"]

    def test_error_run_recorded_with_error_outcome(self, own_ledger_dir):
        assert main(["simulate", "no_such_benchmark",
                     "--machine", "cpu"]) == 1
        with open_ledger(own_ledger_dir) as led:
            row = led.get(1)
        assert row["outcome"] == "error" and row["rc"] == 1

    def test_opt_out_leaves_store_untouched(self, own_ledger_dir,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert main(["simulate", "2d9pt_box", "--machine", "cpu",
                     "--skip-pipeline"]) == 0
        assert not os.path.exists(ledger.ledger_path(own_ledger_dir))

    def test_non_ledged_commands_do_not_record(self, own_ledger_dir):
        assert main(["list"]) == 0
        assert main(["report", "table4"]) == 0
        assert not os.path.exists(ledger.ledger_path(own_ledger_dir))

    def test_ledger_record_event_emitted(self, own_ledger_dir,
                                         tmp_path):
        log = tmp_path / "events.jsonl"
        assert main(["simulate", "2d9pt_box", "--machine", "cpu",
                     "--skip-pipeline", "--event-log", str(log)]) == 0
        recs = [r for r in read_events(str(log))
                if r["event"] == "ledger.record"]
        assert len(recs) == 1
        assert recs[0]["run_id"] == 1
        assert recs[0]["workload"] == "2d9pt_box@cpu"
        assert recs[0]["outcome"] == "ok"


class TestEventLogRotation:
    def test_rollover_at_cap(self, tmp_path):
        from repro.obs.events import EventLog

        path = str(tmp_path / "ev.jsonl")
        log = EventLog(path, max_bytes=400)
        for i in range(40):
            log.emit("tick", i=i)
        log.close()
        assert log.rotations >= 1
        assert os.path.getsize(path) <= 400
        assert os.path.getsize(path + ".1") <= 400
        # both generations stay valid JSONL; newest records in <path>
        old = [json.loads(line) for line in
               open(path + ".1", encoding="utf-8").read().splitlines()]
        new = [json.loads(line) for line in
               open(path, encoding="utf-8").read().splitlines()]
        assert old and new
        assert new[-1]["i"] == 39
        assert old[-1]["i"] < new[0]["i"]

    def test_single_rollover_only(self, tmp_path):
        from repro.obs.events import EventLog

        path = str(tmp_path / "ev.jsonl")
        log = EventLog(path, max_bytes=200)
        for i in range(100):
            log.emit("tick", i=i)
        log.close()
        assert not os.path.exists(path + ".2")
        assert sorted(os.listdir(tmp_path)) == ["ev.jsonl",
                                                "ev.jsonl.1"]

    def test_cap_from_env(self, tmp_path, monkeypatch):
        from repro.obs.events import EventLog

        monkeypatch.setenv("REPRO_EVENT_LOG_MAX_BYTES", "123")
        log = EventLog(str(tmp_path / "a.jsonl"))
        assert log.max_bytes == 123
        log.close()
        monkeypatch.setenv("REPRO_EVENT_LOG_MAX_BYTES", "junk")
        log = EventLog(str(tmp_path / "b.jsonl"))
        assert log.max_bytes is None
        log.close()

    def test_uncapped_by_default(self, tmp_path, monkeypatch):
        from repro.obs.events import EventLog

        monkeypatch.delenv("REPRO_EVENT_LOG_MAX_BYTES", raising=False)
        path = str(tmp_path / "ev.jsonl")
        log = EventLog(path)
        for i in range(50):
            log.emit("tick", i=i)
        log.close()
        assert not os.path.exists(path + ".1")
