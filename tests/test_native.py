"""Native compiled-C backend: differential bit-exactness + cache behavior.

The native backend must be *bit-identical* to the numpy reference (it
is built with ``-ffp-contract=off`` and evaluates constants in the
working precision), its artifact cache must hit on identical rebuilds
without spawning the compiler, and corrupt cache entries must trigger
a recompile, never a crash.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.backend import native
from repro.backend.native import (
    ArtifactCache,
    NativeBuildError,
    NativeExecutor,
    NativeUnavailable,
    SharedLibGenerator,
    artifact_key,
    build_artifact,
    select_backend,
)
from repro.backend.numpy_backend import reference_run
from repro.ir import Stencil, f32, f64
from repro.schedule import Schedule
from tests.conftest import make_2d5pt, make_3d7pt

needs_cc = pytest.mark.skipif(
    not native.native_available(), reason="no C compiler"
)


def _program_2d(dtype=f64, shape=(16, 16)):
    tensor, kern = make_2d5pt(shape=shape, dtype=dtype)
    return Stencil(tensor, kern[Stencil.t - 1]), kern


def _program_3d(shape=(10, 12, 8)):
    tensor, kern = make_3d7pt(shape=shape)
    t = Stencil.t
    return Stencil(tensor, 0.6 * kern[t - 1] + 0.4 * kern[t - 2]), kern


@needs_cc
class TestDifferential:
    @pytest.mark.parametrize("boundary", ["zero", "periodic", "reflect"])
    @pytest.mark.parametrize("dtype", [f64, f32], ids=["f64", "f32"])
    def test_bit_match_2d(self, boundary, dtype, rng):
        st, _ = _program_2d(dtype=dtype)
        init = [rng.random((16, 16)).astype(dtype.np_dtype)]
        ref = reference_run(st, init, 4, boundary)
        got = NativeExecutor(st, {}, boundary=boundary).run(init, 4)
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("boundary", ["zero", "periodic", "reflect"])
    def test_bit_match_3d_two_deps(self, boundary, rng):
        st, _ = _program_3d()
        init = [rng.random((10, 12, 8)) for _ in range(2)]
        ref = reference_run(st, init, 3, boundary)
        got = NativeExecutor(st, {}, boundary=boundary).run(init, 3)
        np.testing.assert_array_equal(got, ref)

    def test_bit_match_tiled_schedule(self, rng):
        st, kern = _program_3d(shape=(12, 12, 12))
        sched = Schedule(kern)
        sched.tile(4, 6, 3, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.parallel("xo", 4)
        init = [rng.random((12, 12, 12)) for _ in range(2)]
        ref = reference_run(st, init, 4, "periodic")
        got = NativeExecutor(
            st, {kern.name: sched}, boundary="periodic"
        ).run(init, 4)
        np.testing.assert_array_equal(got, ref)

    def test_stepwise_equals_batch(self, rng):
        st, _ = _program_2d()
        init = [rng.random((16, 16))]
        batch = NativeExecutor(st, {}).run(init, 5)
        ex = NativeExecutor(st, {})
        ex.initialize(init)
        for _ in range(5):
            ex.step()
        np.testing.assert_array_equal(ex.result(), batch)

    def test_zero_steps_returns_initial(self, rng):
        st, _ = _program_2d()
        init = [rng.random((16, 16))]
        got = NativeExecutor(st, {}).run(init, 0)
        np.testing.assert_array_equal(got, init[0])

    def test_program_run_backend_native(self, rng):
        from repro.frontend.stencils import benchmark_by_name

        bench = benchmark_by_name("2d9pt_star")
        prog, _ = bench.build(grid=(20, 20), dtype=f64,
                              boundary="periodic")
        need = prog.ir.required_time_window - 1
        init = [rng.random((20, 20)) for _ in range(need)]
        prog.set_initial(init)
        via_native = prog.run(3, backend="native")
        via_numpy = prog.run(3, backend="numpy")
        np.testing.assert_array_equal(via_native, via_numpy)


@needs_cc
class TestArtifactCache:
    def test_second_build_is_hit_with_no_compiler_spawn(
        self, tmp_path, rng, monkeypatch
    ):
        from repro import obs

        cache = ArtifactCache(str(tmp_path / "cache"))
        st, _ = _program_2d()
        with obs.capture() as (_tr, reg):
            NativeExecutor(st, {}, cache=cache)
        assert reg.counter_total("native.cache.miss") == 1
        assert reg.counter_total("native.cache.hit") == 0

        # warm fingerprint already cached (lru) — any further
        # subprocess means a compiler invocation, which a hit forbids
        def boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("compiler spawned on a cache hit")

        monkeypatch.setattr(native.subprocess, "run", boom)
        with obs.capture() as (_tr, reg):
            ex = NativeExecutor(st, {}, cache=cache)
        assert reg.counter_total("native.cache.hit") == 1
        assert reg.counter_total("native.cache.miss") == 0
        init = [rng.random((16, 16))]
        ref = reference_run(st, init, 2, "zero")
        np.testing.assert_array_equal(ex.run(init, 2), ref)

    def test_key_changes_with_flags_sources_and_compiler(self):
        fp = {"cc": "gcc", "version": "12", "machine": "x", "march": "m"}
        base = artifact_key({"a.c": "int x;"}, ["-O2"], fp, "exe")
        assert artifact_key({"a.c": "int y;"}, ["-O2"], fp, "exe") != base
        assert artifact_key({"a.c": "int x;"}, ["-O3"], fp, "exe") != base
        fp2 = dict(fp, version="13")
        assert artifact_key({"a.c": "int x;"}, ["-O2"], fp2, "exe") != base
        assert artifact_key({"a.c": "int x;"}, ["-O2"], fp, "shared") != base

    def test_march_native_resolved_in_key_and_meta(self, tmp_path):
        # the literal "-march=native" must never reach the key: two
        # hosts sharing a cache directory would collide on it
        fp = {"cc": "gcc", "version": "12", "machine": "x",
              "march": "alderlake"}
        k1 = artifact_key({"a.c": "int x;"}, ["-march=native"], fp, "exe")
        k2 = artifact_key({"a.c": "int x;"}, ["-march=alderlake"], fp,
                          "exe")
        assert k1 == k2
        fp_other = dict(fp, march="cascadelake")
        k3 = artifact_key({"a.c": "int x;"}, ["-march=native"], fp_other,
                          "exe")
        assert k3 != k1

    def test_artifact_meta_records_resolved_flags(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        src = {"m.c": "int main(void) { return 0; }\n"}
        art = build_artifact(src, "m", kind="exe",
                             flags=["-O2", "-march=native"], cache=cache)
        assert art.meta["flags"][0] == "-O2"
        assert not any(f == "-march=native" for f in art.meta["flags"])
        assert dict(art.meta["compiler"]).get("version")
        meta_on_disk = json.load(open(
            os.path.join(os.path.dirname(art.path), "meta.json")
        ))
        assert meta_on_disk["flags"] == art.meta["flags"]

    def test_truncated_binary_recompiles(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        src = {"m.c": "int main(void) { return 7; }\n"}
        art = build_artifact(src, "m", kind="exe", flags=["-O2"],
                             cache=cache)
        with open(art.path, "wb") as fh:
            fh.write(b"corrupt")
        rebuilt = build_artifact(src, "m", kind="exe", flags=["-O2"],
                                 cache=cache)
        assert not rebuilt.cached  # size check purged the entry
        run = native.run_binary(rebuilt.path, [])
        assert run.returncode == 7

    def test_same_size_corrupt_so_rebuilds(self, tmp_path, rng):
        import shutil

        cache_a = ArtifactCache(str(tmp_path / "a"))
        st, _ = _program_2d()
        ex = NativeExecutor(st, {}, cache=cache_a)
        # corrupt a *copy* of the cache: overwriting the original .so
        # in place would clobber the live mapping ``ex`` holds (shared
        # page cache), which no recovery code can undo
        shutil.copytree(str(tmp_path / "a"), str(tmp_path / "b"))
        victim = ex.artifact.path.replace(
            str(tmp_path / "a"), str(tmp_path / "b"), 1
        )
        size = os.path.getsize(victim)
        with open(victim, "wb") as fh:
            fh.write(b"\0" * size)  # passes the size check, fails CDLL
        ex2 = NativeExecutor(st, {}, cache=ArtifactCache(
            str(tmp_path / "b")
        ))
        assert not ex2.artifact.cached  # dlopen failure forced rebuild
        init = [rng.random((16, 16))]
        ref = reference_run(st, init, 2, "zero")
        np.testing.assert_array_equal(ex2.run(init, 2), ref)

    def test_compile_error_reports_stderr(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        with pytest.raises(NativeBuildError) as exc:
            build_artifact({"bad.c": "int main(void) { broken "},
                           "bad", kind="exe", flags=["-O2"], cache=cache)
        assert exc.value.stderr
        assert not exc.value.timed_out

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert ArtifactCache().root == str(tmp_path / "alt")


class TestSelection:
    def test_select_numpy_always_honoured(self):
        assert select_backend("numpy") == ("numpy", "requested")

    def test_select_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            select_backend("fortran")

    def test_select_native_without_cc_raises(self, monkeypatch):
        monkeypatch.setattr(native, "which_cc", lambda cc=None: None)
        with pytest.raises(NativeUnavailable):
            select_backend("native")

    def test_auto_falls_back_without_cc(self, monkeypatch):
        monkeypatch.setattr(native, "which_cc", lambda cc=None: None)
        choice, reason = select_backend("auto")
        assert choice == "numpy"
        assert "no C compiler" in reason

    @needs_cc
    def test_auto_prefers_native_with_cc(self):
        choice, _reason = select_backend("auto")
        assert choice == "native"

    def test_program_run_auto_falls_back(self, rng, monkeypatch):
        # auto must transparently fall back to numpy when gcc is absent
        monkeypatch.setattr(native, "which_cc", lambda cc=None: None)
        from repro.frontend.stencils import benchmark_by_name

        prog, _ = benchmark_by_name("2d9pt_star").build(
            grid=(12, 12), dtype=f64, boundary="zero"
        )
        need = prog.ir.required_time_window - 1
        init = [rng.random((12, 12)) for _ in range(need)]
        prog.set_initial(init)
        got = prog.run(2, backend="auto")
        ref = prog.run(2, backend="numpy")
        np.testing.assert_array_equal(got, ref)

    def test_program_run_unknown_backend(self, rng):
        from repro.frontend.stencils import benchmark_by_name

        prog, _ = benchmark_by_name("2d9pt_star").build(
            grid=(12, 12), dtype=f64, boundary="zero"
        )
        need = prog.ir.required_time_window - 1
        prog.set_initial([rng.random((12, 12)) for _ in range(need)])
        with pytest.raises(ValueError, match="unknown backend"):
            prog.run(1, backend="cuda")


@needs_cc
class TestSharedLibGenerator:
    def test_exports_entry_points_not_main(self):
        st, _ = _program_2d()
        src = SharedLibGenerator(st, {}).generate("s").main_source
        assert "msc_run(real *win, real **aux" in src
        assert "msc_plane_elems" in src
        assert "int main(" not in src

    def test_timeouts_read_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "11")
        assert native.compile_timeout() == 7.5
        assert native.run_timeout() == 11.0
