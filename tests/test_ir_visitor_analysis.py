"""Unit tests for IR traversal/rewriting and the Table-4 analyses."""

import pytest

from repro.ir import (
    Kernel,
    SpNode,
    Stencil,
    TeNode,
    VarExpr,
    characterize_kernel,
    classify_shape,
    f32,
    halo_traffic_bytes,
    stencil_flops_per_point,
    total_traffic_bytes,
)
from repro.ir.expr import ConstExpr, OperatorExpr, TensorAccess
from repro.ir.visitor import (
    count_nodes,
    fold_constants,
    shift_offsets,
    substitute_tensor,
    transform,
)
from tests.conftest import make_2d5pt, make_3d7pt


class TestTransform:
    def test_identity_when_fn_returns_none(self):
        _, kern = make_2d5pt()
        out = transform(kern.expr, lambda n: None)
        assert out.c_source() == kern.expr.c_source()

    def test_replace_constants(self):
        _, kern = make_2d5pt()
        out = transform(
            kern.expr,
            lambda n: ConstExpr(1.0) if isinstance(n, ConstExpr) else None,
        )
        consts = {n.value for n in out.walk() if isinstance(n, ConstExpr)}
        assert consts == {1.0}


class TestSubstituteTensor:
    def test_rewrites_accesses_preserving_offsets(self):
        tensor, kern = make_2d5pt()
        buf = TeNode("spm_buf", tensor.shape, tensor.dtype)
        out = substitute_tensor(kern.expr, {"A": buf})
        names = {
            n.tensor.name for n in out.walk() if isinstance(n, TensorAccess)
        }
        assert names == {"spm_buf"}
        offsets = sorted(
            n.offsets for n in out.walk() if isinstance(n, TensorAccess)
        )
        orig = sorted(
            n.offsets for n in kern.expr.walk()
            if isinstance(n, TensorAccess)
        )
        assert offsets == orig

    def test_unmapped_tensors_untouched(self):
        _, kern = make_2d5pt()
        out = substitute_tensor(kern.expr, {"Z": TeNode("z", (4, 4))})
        names = {
            n.tensor.name for n in out.walk() if isinstance(n, TensorAccess)
        }
        assert names == {"A"}


class TestShiftOffsets:
    def test_shift_adds_halo(self):
        _, kern = make_2d5pt()
        out = shift_offsets(kern.expr, (1, 1))
        offsets = {
            n.offsets for n in out.walk() if isinstance(n, TensorAccess)
        }
        assert (1, 1) in offsets  # centre moved to (1, 1)
        assert (1, 0) in offsets  # (0, -1) moved

    def test_rank_mismatch_rejected(self):
        _, kern = make_2d5pt()
        with pytest.raises(ValueError):
            shift_offsets(kern.expr, (1, 1, 1))


class TestFoldConstants:
    def test_folds_nested(self):
        e = (ConstExpr(2) + ConstExpr(3)) * ConstExpr(4)
        out = fold_constants(e)
        assert isinstance(out, ConstExpr) and out.value == 20

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            fold_constants(ConstExpr(1) / ConstExpr(0))

    def test_mixed_left_unfolded(self):
        _, kern = make_2d5pt()
        out = fold_constants(kern.expr)
        assert count_nodes(out, TensorAccess) == 5


class TestCharacterize:
    def test_3d7pt_matches_table4(self):
        _, kern = make_3d7pt()
        ch = characterize_kernel(kern, time_dependencies=2)
        assert ch.read_bytes == 56  # 7 points × 8 B
        assert ch.write_bytes == 8
        assert ch.time_dependencies == 2

    def test_fp32_halves_bytes(self):
        _, kern = make_3d7pt(dtype=f32)
        ch = characterize_kernel(kern)
        assert ch.read_bytes == 28

    def test_operational_intensity(self):
        _, kern = make_3d7pt()
        ch = characterize_kernel(kern)
        assert ch.operational_intensity == pytest.approx(
            ch.ops / (56 + 8)
        )


class TestClassifyShape:
    def test_star(self):
        _, kern = make_3d7pt()
        assert classify_shape(kern) == "star"

    def test_box(self):
        B = SpNode("B", (8, 8), halo=(1, 1))
        j, i = VarExpr("j"), VarExpr("i")
        kern = Kernel("box", (j, i), B[j - 1, i - 1] + B[j, i])
        assert classify_shape(kern) == "box"


class TestTraffic:
    def test_stencil_flops_include_combine(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        assert stencil_flops_per_point(stencil_3d7pt_2dep) == (
            2 * kern.flops() + 1
        )

    def test_total_traffic(self, stencil_3d7pt_2dep):
        read, write = total_traffic_bytes(stencil_3d7pt_2dep, 1000)
        kern = stencil_3d7pt_2dep.kernels[0]
        assert read == 2 * kern.npoints * 8 * 1000
        assert write == 8 * 1000

    def test_halo_traffic_star_faces_only(self, stencil_3d7pt_2dep):
        # 8^3 sub-domain, radius 1 star: 6 faces of 64 points
        bytes_ = halo_traffic_bytes(stencil_3d7pt_2dep, (8, 8, 8))
        assert bytes_ == 6 * 64 * 8

    def test_halo_traffic_box_includes_corners(self):
        B = SpNode("B", (8, 8), halo=(1, 1), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        kern = Kernel("box", (j, i), B[j - 1, i - 1] + B[j, i])
        st = Stencil(B, kern[Stencil.t - 1])
        bytes_ = halo_traffic_bytes(st, (8, 8))
        faces = 4 * 8 * 8
        corners = 4 * 1 * 8
        assert bytes_ == faces + corners

    def test_rank_mismatch_rejected(self, stencil_3d7pt_2dep):
        with pytest.raises(ValueError):
            halo_traffic_bytes(stencil_3d7pt_2dep, (8, 8))
