"""Shared hypothesis strategies for the MSC test suite.

Factored out of ``test_printer.py``, ``test_properties.py`` and
``test_properties_extensions.py``, and reused by the cross-backend
differential harness (``test_differential.py``): stencil shapes,
process grids, tile factors, coefficient lists, seeds, and composite
generators for whole random star stencils plus checker-legal schedules.
"""

from __future__ import annotations

from hypothesis import HealthCheck
from hypothesis import strategies as st

from repro.ir import Kernel, SpNode, Stencil, VarExpr, f64
from repro.schedule import Schedule

__all__ = [
    "COMMON",
    "boundaries",
    "box_stencil_cases",
    "coefficients",
    "legal_schedules",
    "process_grids",
    "seeds",
    "shapes",
    "star_stencil_cases",
    "tile_factors",
]

#: keep hypothesis fast and deterministic for CI-style runs
COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: boundary handling modes shared by every backend
boundaries = st.sampled_from(["zero", "periodic"])

#: loop-variable names per dimensionality, outermost first
AXIS_VARS = {1: ("i",), 2: ("j", "i"), 3: ("k", "j", "i")}

#: (outer, inner) tile-axis names per dimension position
TILE_NAMES = (("xo", "xi"), ("yo", "yi"), ("zo", "zi"))


def shapes(ndim: int, min_side: int = 4, max_side: int = 40):
    """Rectangular domain shapes: one integer extent per dimension."""
    return st.tuples(*(st.integers(min_side, max_side)
                       for _ in range(ndim)))


def process_grids(ndim: int, max_procs: int = 4):
    """MPI process grids (small, so in-process worlds stay cheap)."""
    return st.tuples(*(st.integers(1, max_procs) for _ in range(ndim)))


def tile_factors(ndim: int, lo: int = 1, hi: int = 8):
    """Per-dimension tile factors."""
    return st.tuples(*(st.integers(lo, hi) for _ in range(ndim)))


def seeds():
    """RNG seeds for deterministic random initial conditions."""
    return st.integers(0, 2 ** 16)


def coefficients(min_size: int, max_size: int, bound: float = 4.0,
                 nonzero: bool = False):
    """Lists of finite stencil coefficients in ``[-bound, bound]``."""
    base = st.floats(-bound, bound, allow_nan=False, allow_infinity=False)
    if nonzero:
        base = base.filter(lambda x: x != 0)
    return st.lists(base, min_size=min_size, max_size=max_size)


@st.composite
def star_stencil_cases(draw, ndim: int = 2, dtype=f64, max_radius: int = 2,
                       max_side: int = 14):
    """A random linear star stencil with a matching halo and time window.

    Returns ``(stencil, kernel, shape)``.  Coefficients are scaled by
    the point count so repeated sweeps stay bounded; the tensor halo
    equals the stencil radius and the time window covers the deepest
    drawn dependency — i.e. the case is *valid* IR by construction (the
    analyzer's HALO001/IR001 checks pass).
    """
    radius = draw(st.integers(1, max_radius))
    deps = draw(st.integers(1, 2))
    shape = draw(shapes(ndim, min_side=max(6, 4 * radius),
                        max_side=max_side))
    ivars = tuple(VarExpr(n) for n in AXIS_VARS[ndim])
    tensor = SpNode("B", shape, dtype, halo=(radius,) * ndim,
                    time_window=deps + 1)

    npoints = 1 + 2 * ndim * radius
    coef = draw(coefficients(npoints, npoints, bound=1.0))
    scale = 1.0 / npoints
    expr = (coef[0] * scale) * tensor[ivars]
    ci = 1
    for d in range(ndim):
        for off in range(1, radius + 1):
            left = tuple(
                v - off if dd == d else v for dd, v in enumerate(ivars)
            )
            right = tuple(
                v + off if dd == d else v for dd, v in enumerate(ivars)
            )
            expr = expr + (coef[ci] * scale) * tensor[left]
            expr = expr + (coef[ci + 1] * scale) * tensor[right]
            ci += 2
    kern = Kernel("S_rand", ivars, expr)

    t = Stencil.t
    if deps == 1:
        comb = kern[t - 1]
    else:
        w = draw(st.floats(0.1, 0.9, allow_nan=False))
        comb = w * kern[t - 1] + (1.0 - w) * kern[t - 2]
    return Stencil(tensor, comb), kern, shape


@st.composite
def box_stencil_cases(draw, ndim: int = 2, dtype=f64, max_radius: int = 2,
                      max_side: int = 14):
    """A random linear *box* stencil: every offset in ``[-r, r]^ndim``.

    Returns ``(stencil, kernel, shape)``.  Box stencils read diagonal
    neighbours directly, so they exercise corner/edge ghost propagation
    — the part of the halo exchange the ``diag`` mode coalesces into
    direct messages instead of relaying through dimension phases.
    """
    import itertools

    radius = draw(st.integers(1, max_radius))
    shape = draw(shapes(ndim, min_side=max(6, 4 * radius),
                        max_side=max_side))
    ivars = tuple(VarExpr(n) for n in AXIS_VARS[ndim])
    tensor = SpNode("B", shape, dtype, halo=(radius,) * ndim,
                    time_window=2)

    offsets = list(itertools.product(range(-radius, radius + 1),
                                     repeat=ndim))
    npoints = len(offsets)
    coef = draw(coefficients(npoints, npoints, bound=1.0))
    scale = 1.0 / npoints
    expr = None
    for c, off in zip(coef, offsets):
        idx = tuple(v + o for v, o in zip(ivars, off))
        term = (c * scale) * tensor[idx]
        expr = term if expr is None else expr + term
    kern = Kernel("B_rand", ivars, expr)
    return Stencil(tensor, kern[Stencil.t - 1]), kern, shape


@st.composite
def legal_schedules(draw, kernel, shape, max_threads: int = 4):
    """A random tiled/reordered/parallel schedule, legal by construction.

    Tile factors are clipped to the extents, the reorder keeps each
    tile-inner axis inside its tile-outer axis, and the parallel axis
    is the outermost tile-enumerating loop — so the static analyzer's
    machine-independent checks report no errors.
    """
    ndim = len(shape)
    sched = Schedule(kernel)
    factors = [
        min(draw(st.integers(1, 8)), s) for s in shape
    ]
    flat = []
    for d in range(ndim):
        flat.extend(TILE_NAMES[d])
    sched.tile(*factors, *flat)
    if draw(st.booleans()):
        # the paper's canonical order: all outers, then all inners
        outers = [TILE_NAMES[d][0] for d in range(ndim)]
        inners = [TILE_NAMES[d][1] for d in range(ndim)]
        sched.reorder(*outers, *inners)
    nthreads = draw(st.sampled_from([1, 2, max_threads]))
    if nthreads > 1:
        sched.parallel("xo", nthreads)
    return sched
