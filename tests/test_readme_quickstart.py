"""The README quickstart must stay executable as written."""

import re
from pathlib import Path

import numpy as np


def test_readme_quickstart_block_runs():
    readme = (Path(__file__).parent.parent / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
    assert blocks, "README has no python quickstart block"
    code = blocks[0]
    # shrink the paper-sized grid so the test stays fast
    code = code.replace("256, 256, 256", "24, 24, 24")
    code = code.replace('S.tile(2, 8, 64', 'S.tile(2, 8, 24')
    namespace = {}
    exec(compile(code, "<README quickstart>", "exec"), namespace)
    assert namespace["result"].shape == (24, 24, 24)
    assert np.isfinite(namespace["result"]).all()
    assert "athread_spawn" in namespace["code"].files["3d7pt_master.c"]
    assert namespace["report"].gflops > 0
