"""Unit tests for IR validation and the Axis node."""

import pytest

from repro.ir import (
    Axis,
    Kernel,
    SpNode,
    Stencil,
    ValidationError,
    VarExpr,
    f32,
    f64,
    validate_stencil,
)
from tests.conftest import make_3d7pt


class TestValidateStencil:
    def test_valid_program_passes(self, stencil_3d7pt_2dep):
        validate_stencil(stencil_3d7pt_2dep)

    def test_halo_too_small(self):
        B = SpNode("B", (8, 8), halo=(1, 1), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        kern = Kernel("wide", (j, i), B[j, i - 2] + B[j, i])
        st = Stencil.__new__(Stencil)
        object.__setattr__(st, "output", B)
        object.__setattr__(st, "expr", kern[Stencil.t - 1])
        with pytest.raises(ValidationError) as err:
            validate_stencil(st)
        assert any("radius" in issue for issue in err.value.issues)

    def test_mixed_dtypes_flagged(self):
        B = SpNode("B", (8, 8), f64, halo=(1, 1), time_window=2)
        C = SpNode("C", (8, 8), f32, halo=(1, 1), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        kern = Kernel("mix", (j, i), B[j, i] + C[j, i])
        st = Stencil(B, kern[Stencil.t - 1])
        with pytest.raises(ValidationError) as err:
            validate_stencil(st)
        assert any("mixed dtypes" in issue for issue in err.value.issues)

    def test_all_issues_collected(self):
        B = SpNode("B", (8, 8), f64, halo=(0, 0), time_window=2)
        C = SpNode("C", (8, 8), f32, halo=(0, 0), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        kern = Kernel("bad", (j, i), B[j, i - 1] + C[j, i])
        st = Stencil.__new__(Stencil)
        object.__setattr__(st, "output", B)
        object.__setattr__(st, "expr", kern[Stencil.t - 1])
        with pytest.raises(ValidationError) as err:
            validate_stencil(st)
        assert len(err.value.issues) >= 2


class TestAxis:
    def test_extent(self):
        ax = Axis(VarExpr("i"), 0, 0, 10)
        assert ax.extent == 10

    def test_strided_extent_rounds_up(self):
        ax = Axis(VarExpr("i"), 0, 0, 10, stride=3)
        assert ax.extent == 4

    def test_split_exact(self):
        ax = Axis(VarExpr("i"), 0, 0, 64)
        outer, inner = ax.split(16, "io", "ii")
        assert outer.extent == 4 and inner.extent == 16
        assert outer.parent == "i" and outer.role == "outer"
        assert inner.parent == "i" and inner.role == "inner"

    def test_split_rounds_up(self):
        ax = Axis(VarExpr("i"), 0, 0, 10)
        outer, inner = ax.split(4, "io", "ii")
        assert outer.extent == 3  # ceil(10/4)

    def test_split_factor_too_large(self):
        ax = Axis(VarExpr("i"), 0, 0, 8)
        with pytest.raises(ValueError, match="exceeds"):
            ax.split(16, "io", "ii")

    def test_split_strided_rejected(self):
        ax = Axis(VarExpr("i"), 0, 0, 8, stride=2)
        with pytest.raises(ValueError, match="strided"):
            ax.split(2, "io", "ii")

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Axis(VarExpr("i"), 0, 5, 3)

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            Axis(VarExpr("i"), 0, 0, 4, stride=0)

    def test_with_order(self):
        ax = Axis(VarExpr("i"), 0, 0, 4)
        assert ax.with_order(3).order == 3
