"""Tests for the embedded DSL frontend (Listing 1 vocabulary)."""

import numpy as np
import pytest

import repro as msc
from repro.frontend.dsl import Result
from repro.ir import f32, f64, i32


class TestConstructors:
    def test_defvar(self):
        v = msc.DefVar("alpha", i32)
        assert v.name == "alpha" and v.dtype_name == "i32"

    def test_indices_space_and_comma(self):
        assert [v.name for v in msc.indices("k j i")] == ["k", "j", "i"]
        assert [v.name for v in msc.indices("j, i")] == ["j", "i"]

    def test_tensor_3d_timewin(self):
        B = msc.DefTensor3D_TimeWin("B", 3, 2, f64, 32, 16, 8)
        assert B.shape == (32, 16, 8)
        assert B.halo == (2, 2, 2)
        assert B.time_window == 3

    def test_tensor_2d_default_window(self):
        A = msc.DefTensor2D("A", 1, f32, 16, 16)
        assert A.time_window == 2
        assert A.dtype is f32

    def test_mpi_shapes(self):
        assert msc.DefShapeMPI3D(4, 4, 4) == (4, 4, 4)
        assert msc.DefShapeMPI2D(2, 8) == (2, 8)
        with pytest.raises(ValueError):
            msc.DefShapeMPI2D(0, 4)

    def test_result_is_identity(self):
        B = msc.DefTensor2D("B", 1, f64, 8, 8)
        assert Result(B) is B


class TestKernelHandle:
    def _handle(self):
        k, j, i = msc.indices("k j i")
        B = msc.DefTensor3D_TimeWin("B", 3, 1, f64, 16, 16, 16)
        return B, msc.Kernel(
            "S", (k, j, i),
            0.5 * B[k, j, i] + 0.25 * (B[k, j, i - 1] + B[k, j, i + 1]),
        )

    def test_primitives_chain(self):
        B, S = self._handle()
        out = (
            S.tile(4, 4, 8, "xo", "xi", "yo", "yi", "zo", "zi")
            .reorder("xo", "yo", "zo", "xi", "yi", "zi")
            .parallel("xo", 4)
        )
        assert out is S
        assert S.schedule.tile_factors == {"k": 4, "j": 4, "i": 8}

    def test_time_application(self):
        _, S = self._handle()
        t = msc.StencilProgram.t
        app = S[t - 2]
        assert app.time_offset == -2
        assert app.kernel is S.kernel

    def test_introspection(self):
        _, S = self._handle()
        assert S.npoints == 3
        assert S.radius == (0, 0, 1)
        assert S.name == "S"


class TestStencilProgram:
    def _program(self, shape=(12, 12, 12)):
        k, j, i = msc.indices("k j i")
        B = msc.DefTensor3D_TimeWin("B", 3, 1, f64, *shape)
        S = msc.Kernel(
            "S", (k, j, i),
            0.4 * B[k, j, i] + 0.1 * (
                B[k, j, i - 1] + B[k, j, i + 1] + B[k - 1, j, i]
                + B[k + 1, j, i] + B[k, j - 1, i] + B[k, j + 1, i]
            ),
        )
        t = msc.StencilProgram.t
        return B, S, msc.StencilProgram(B, 0.6 * S[t - 1] + 0.4 * S[t - 2])

    def test_run_without_initial_raises(self):
        _, _, prog = self._program()
        with pytest.raises(RuntimeError, match="initial"):
            prog.run(1)

    def test_scheduled_run_uses_handle_schedule(self, rng):
        B, S, prog = self._program()
        S.tile(4, 4, 6, "xo", "xi", "yo", "yi", "zo", "zi")
        init = [rng.random((12, 12, 12)) for _ in range(2)]
        prog.set_initial(init)
        got = prog.run(3)
        ref = prog.run(3, scheduled=False)
        np.testing.assert_array_equal(got, ref)

    def test_handles_auto_attached(self):
        _, S, prog = self._program()
        assert prog.schedules()["S"] is S.schedule

    def test_input_paper_style_random(self):
        B, S, prog = self._program()
        prog.input((2, 2, 1), B, "random")
        assert prog.mpi_grid == (2, 2, 1)
        assert len(prog._initial) == 2

    def test_mpi_run_matches_serial(self, rng):
        B, S, prog = self._program()
        init = [rng.random((12, 12, 12)) for _ in range(2)]
        prog.set_initial(init)
        serial = prog.run(3, scheduled=False)
        prog.set_mpi_grid((2, 1, 2))
        dist = prog.run(3)
        np.testing.assert_array_equal(dist, serial)

    def test_mpi_grid_rank_checked(self):
        _, _, prog = self._program()
        with pytest.raises(ValueError):
            prog.set_mpi_grid((2, 2))

    def test_compile_to_source_code(self):
        _, S, prog = self._program()
        code = prog.compile_to_source_code("demo", target="cpu")
        assert "demo.c" in code.files and "Makefile" in code.files

    def test_simulate_dispatch(self):
        B, S, prog = self._program(shape=(64, 64, 64))
        S.tile(2, 8, 64, "xo", "xi", "yo", "yi", "zo", "zi")
        S.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        S.cache_read(B, "br").cache_write("bw")
        S.compute_at("br", "zo").compute_at("bw", "zo")
        S.parallel("xo", 64)
        r = prog.simulate("sunway")
        assert r.machine == "SW26010-CG"
        r2 = prog.simulate("cpu")
        assert r2.machine == "E5-2680v4x2"

    def test_attach_foreign_kernel_rejected(self):
        _, _, prog = self._program()
        j, i = msc.indices("j i")
        A = msc.DefTensor2D("A", 1, f64, 8, 8)
        other = msc.Kernel("other", (j, i), A[j, i])
        with pytest.raises(ValueError, match="not part"):
            prog.attach(other)
