"""Unit tests for the static schedule-legality analyzer (repro.analysis).

Every diagnostic code in ``DIAGNOSTIC_CODES`` gets at least one test
that triggers it, and — where the runtime misbehaviour is observable —
a *witness* test showing what actually goes wrong when the rejected
program is executed anyway.  The CLI ``repro check`` subcommand and the
pipeline gates (``--no-check`` escape hatch) are covered at the end.
"""

import numpy as np
import pytest

from repro.analysis import (
    DIAGNOSTIC_CODES,
    CheckReport,
    Diagnostic,
    DiagnosticError,
    SPM_UTILISATION_FLOOR,
    binding_footprints,
    check_config,
    check_decomposition,
    check_exchange_mode,
    check_kernel_schedule,
    check_program,
    check_stencil_ir,
    enforce,
)
from repro.cli import main
from repro.comm import decompose
from repro.ir import Kernel, SpNode, Stencil, VarExpr, f64
from repro.ir.validate import ValidationError, validate_stencil
from repro.machine.spec import CPU_E5_2680V4, MATRIX_SN, SUNWAY_CG
from repro.runtime.executor import distributed_run
from repro.schedule import Schedule
from repro.schedule.legality import LegalityError, check_schedule
from repro.schedule.schedule import ScheduleError
from tests.conftest import make_2d5pt, make_3d7pt


def build_stencil(time_window=3, shape=(16, 16, 16)):
    tensor, kern = make_3d7pt(shape=shape, time_window=time_window)
    t = Stencil.t
    if time_window >= 3:
        comb = 0.6 * kern[t - 1] + 0.4 * kern[t - 2]
    else:
        comb = kern[t - 1]
    return Stencil(tensor, comb), kern


def sunway_staged(kern, factors=(4, 8, 16)):
    """The paper's canonical Sunway schedule: tile + stage + parallel."""
    sched = Schedule(kern)
    sched.tile(*factors, "xo", "xi", "yo", "yi", "zo", "zi")
    sched.reorder("xo", "yo", "zo", "xi", "yi", "zi")
    sched.cache_read(kern.input_tensors[0], "br", "global")
    sched.cache_write("bw", "global")
    sched.compute_at("br", "zo")
    sched.compute_at("bw", "zo")
    return sched


# ---------------------------------------------------------------------------
# diagnostics plumbing
# ---------------------------------------------------------------------------

class TestDiagnostics:
    def test_registry_covers_every_emitted_code(self):
        assert len(DIAGNOSTIC_CODES) == 20
        assert all(v for v in DIAGNOSTIC_CODES.values())

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic("SPM001", "fatal", "boom")

    def test_format_includes_code_primitive_and_location(self):
        d = Diagnostic("SPM001", "error", "too big",
                       primitive="cache_read", kernel="S", axis="zo")
        assert d.format() == "error SPM001 [cache_read] (S/zo): too big"

    def test_report_queries(self):
        rep = CheckReport()
        rep.add("TILE002", "warning", "w")
        rep.add("SPM001", "error", "e")
        assert not rep.ok
        assert rep.codes() == ["TILE002", "SPM001"]
        assert len(rep.by_code("SPM001")) == 1
        assert len(rep) == 2
        assert "1 error(s), 1 warning(s)" in rep.format()

    def test_raise_if_errors_carries_diagnostics(self):
        rep = CheckReport()
        rep.add("RACE001", "error", "race")
        with pytest.raises(DiagnosticError, match="illegal schedule:") as ei:
            rep.raise_if_errors()
        assert ei.value.diagnostics[0].code == "RACE001"


# ---------------------------------------------------------------------------
# one trigger per diagnostic code
# ---------------------------------------------------------------------------

class TestScheduleCodes:
    def test_sched001_plain_lowering_failure(self):
        stencil, kern = build_stencil()

        class Boom:
            def lower(self, shape):
                raise ScheduleError("boom")

        rep = check_program(stencil, {kern.name: Boom()})
        assert rep.by_code("SCHED001")
        assert "boom" in rep.by_code("SCHED001")[0].message

    def test_shape001_rank_mismatch(self):
        stencil, kern = build_stencil()
        rep = check_program(stencil, shape=(8, 8))
        (d,) = rep.by_code("SHAPE001")
        assert d.severity == "error"
        assert d.kernel == kern.name
        assert "2 dims" in d.message and "3-D" in d.message

    def test_tile001_factor_exceeds_extent(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern).tile(
            32, 4, 4, "xo", "xi", "yo", "yi", "zo", "zi"
        )
        rep = check_program(stencil, {kern.name: sched})
        (d,) = rep.by_code("TILE001")
        assert d.severity == "error"
        assert "exceeds extent" in d.message

    def test_tile002_remainder_tiles_warn(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern).tile(
            5, 4, 4, "xo", "xi", "yo", "yi", "zo", "zi"
        )
        rep = check_program(stencil, {kern.name: sched})
        (d,) = rep.by_code("TILE002")
        assert d.severity == "warning"
        assert d.primitive == "tile" and d.axis == "k"
        assert rep.ok  # warnings alone keep the schedule legal

    def test_tile003_fewer_tiles_than_threads(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern).tile(
            16, 16, 16, "xo", "xi", "yo", "yi", "zo", "zi"
        ).parallel("xo", 4)
        rep = check_program(stencil, {kern.name: sched},
                            machine=CPU_E5_2680V4)
        (d,) = rep.by_code("TILE003")
        assert d.severity == "warning"
        assert "idle" in d.message

    def test_vec001_non_innermost_vectorize(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern).tile(
            4, 4, 4, "xo", "xi", "yo", "yi", "zo", "zi"
        ).vectorize("yo")
        rep = check_program(stencil, {kern.name: sched})
        (d,) = rep.by_code("VEC001")
        assert d.severity == "error"

    def test_ord001_warning_without_spm(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern).tile(
            4, 4, 4, "xo", "xi", "yo", "yi", "zo", "zi"
        ).reorder("xi", "xo", "yo", "yi", "zo", "zi")
        rep = check_program(stencil, {kern.name: sched})
        (d,) = rep.by_code("ORD001")
        assert d.severity == "warning"
        assert d.axis == "xi"

    def test_ord001_error_with_spm(self):
        stencil, kern = build_stencil()
        sched = sunway_staged(kern)
        sched.reorder("xi", "xo", "yo", "yi", "zo", "zi")
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        assert any(d.severity == "error" for d in rep.by_code("ORD001"))

    def test_par001_error_on_cacheless(self):
        stencil, kern = build_stencil()
        sched = sunway_staged(kern)
        sched.parallel("xo", 128)
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        (d,) = rep.by_code("PAR001")
        assert d.severity == "error"
        assert "64 cores" in d.message

    def test_par001_warning_on_cached(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern).tile(
            2, 2, 2, "xo", "xi", "yo", "yi", "zo", "zi"
        ).parallel("xo", 48)
        rep = check_program(stencil, {kern.name: sched},
                            machine=MATRIX_SN)
        (d,) = rep.by_code("PAR001")
        assert d.severity == "warning"

    def test_race001_parallel_on_inner_axis(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern).tile(
            4, 4, 4, "xo", "xi", "yo", "yi", "zo", "zi"
        ).parallel("xi", 4)
        rep = check_program(stencil, {kern.name: sched})
        (d,) = rep.by_code("RACE001")
        assert d.severity == "error"
        assert d.axis == "xi"

    def test_race002_write_buffer_outside_parallel_loop(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern)
        sched.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        sched.cache_write("bw", "global")
        sched.compute_at("bw", "xo")
        sched.parallel("yo", 2)
        rep = check_program(stencil, {kern.name: sched})
        (d,) = rep.by_code("RACE002")
        assert d.severity == "error"
        assert "write race" in d.message

    def test_race002_silent_when_staged_inside(self):
        stencil, kern = build_stencil()
        sched = sunway_staged(kern)  # bw at zo, parallel at xo
        sched.parallel("xo", 8)
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        assert not rep.by_code("RACE002")
        assert rep.ok

    def test_spm001_capacity_overflow_with_breakdown(self):
        stencil, kern = build_stencil()
        sched = sunway_staged(kern, factors=(16, 16, 16))
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        (d,) = rep.by_code("SPM001")
        assert d.severity == "error"
        assert "br[read]=" in d.message and "bw[write]=" in d.message
        assert f"{SUNWAY_CG.spm_bytes} B" in d.message

    def test_spm002_no_staging_at_all(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern).tile(
            4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi"
        )
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        (d,) = rep.by_code("SPM002")
        assert "no data cache" in d.message

    def test_spm002_missing_input_read(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern)
        sched.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.cache_write("bw", "global")
        sched.compute_at("bw", "zo")
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        msgs = [d.message for d in rep.by_code("SPM002")]
        assert any("not cache_read-bound" in m for m in msgs)

    def test_spm002_missing_write_buffer(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern)
        sched.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.cache_read(kern.input_tensors[0], "br", "global")
        sched.compute_at("br", "zo")
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        msgs = [d.message for d in rep.by_code("SPM002")]
        assert any("no cache_write" in m for m in msgs)

    def test_spm003_underutilised_tile(self):
        stencil, kern = build_stencil()
        sched = sunway_staged(kern, factors=(2, 2, 2))
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        (d,) = rep.by_code("SPM003")
        assert d.severity == "warning"
        assert "%" in d.message

    def test_ca001_compute_at_inner_axis(self):
        stencil, kern = build_stencil()
        sched = Schedule(kern)
        sched.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.cache_read(kern.input_tensors[0], "br", "global")
        sched.cache_write("bw", "global")
        sched.compute_at("br", "zi")
        sched.compute_at("bw", "zo")
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        (d,) = rep.by_code("CA001")
        assert d.severity == "error"
        assert d.axis == "zi"

    def test_legal_table5_schedule_is_clean_on_sunway(self):
        stencil, kern = build_stencil()
        sched = sunway_staged(kern)
        sched.parallel("xo", 4)
        rep = check_program(stencil, {kern.name: sched},
                            machine=SUNWAY_CG)
        assert rep.ok and not rep.warnings, rep.format()


class TestIRAndDecompositionCodes:
    def _radius2_halo1(self):
        j, i = VarExpr("j"), VarExpr("i")
        B = SpNode("B", (12, 12), f64, halo=(1, 1), time_window=2)
        kern = Kernel("S", (j, i), B[j, i - 2] + B[j, i + 2])
        return Stencil(B, kern[Stencil.t - 1])

    def test_halo001_radius_exceeds_halo(self):
        rep = check_stencil_ir(self._radius2_halo1())
        (d,) = rep.by_code("HALO001")
        assert d.severity == "error"

    def test_ir001_mixed_dtypes(self):
        from repro.ir import f32

        j, i = VarExpr("j"), VarExpr("i")
        B = SpNode("B", (8, 8), f64, halo=(1, 1), time_window=2)
        C = SpNode("C", (8, 8), f32, halo=(1, 1), time_window=2)
        kern = Kernel("S", (j, i), B[j, i] + C[j, i])
        stencil = Stencil(B, kern[Stencil.t - 1])
        rep = check_stencil_ir(stencil)
        (d,) = rep.by_code("IR001")
        assert "mixed dtypes" in d.message

    def test_halo002_subdomain_narrower_than_halo(self):
        j, i = VarExpr("j"), VarExpr("i")
        B = SpNode("B", (10, 10), f64, halo=(2, 2), time_window=2)
        kern = Kernel("S", (j, i), B[j, i - 2] + B[j, i + 2])
        stencil = Stencil(B, kern[Stencil.t - 1])
        rep = check_decomposition(stencil, (10, 10), (6, 1))
        (d,) = rep.by_code("HALO002")
        assert d.severity == "error"
        assert "narrower than halo" in d.message

    def test_mpi001_rank_mismatch(self):
        stencil, _ = build_stencil()
        rep = check_decomposition(stencil, (16, 16, 16), (2, 2))
        assert rep.by_code("MPI001")

    def test_mpi001_nonpositive_extent(self):
        stencil, _ = build_stencil()
        rep = check_decomposition(stencil, (16, 16, 16), (0, 1, 1))
        assert rep.by_code("MPI001")

    def test_mpi001_oversplit(self):
        stencil, _ = build_stencil()
        rep = check_decomposition(stencil, (16, 16, 16), (32, 1, 1))
        assert rep.by_code("MPI001")

    def test_check_program_routes_mpi_grid(self):
        stencil, _ = build_stencil()
        rep = check_program(stencil, mpi_grid=(32, 1, 1))
        assert rep.by_code("MPI001")


class TestExchangeModeCodes:
    def _stencil2d(self):
        tensor, kern = make_2d5pt(shape=(32, 32))
        return Stencil(tensor, kern[Stencil.t - 1])

    def test_exch002_unknown_mode(self):
        rep = check_exchange_mode(self._stencil2d(), "warp", (2, 2),
                                  (32, 32))
        (d,) = rep.by_code("EXCH002")
        assert "unknown exchange mode" in d.message

    def test_basic_and_diag_always_legal(self):
        st = self._stencil2d()
        for mode in ("basic", "diag"):
            assert check_exchange_mode(st, mode, (16, 1), (32, 32)).ok

    def test_exch001_overlap_without_core_block(self):
        # 32 split 16 ways -> sub extent 2 == 2*halo: CORE is empty
        rep = check_exchange_mode(self._stencil2d(), "overlap", (16, 1),
                                  (32, 32))
        (d,) = rep.by_code("EXCH001")
        assert "no CORE block" in d.message

    def test_overlap_legal_on_roomy_grid(self):
        rep = check_exchange_mode(self._stencil2d(), "overlap", (4, 4),
                                  (32, 32))
        assert rep.ok

    def test_exch001_overlap_halo_below_radius(self):
        j, i = VarExpr("j"), VarExpr("i")
        B = SpNode("B", (32, 32), f64, halo=(0, 0), time_window=2)
        kern = Kernel("S", (j, i), B[j, i - 1] + B[j, i + 1])
        st = Stencil(B, kern[Stencil.t - 1])
        rep = check_exchange_mode(st, "overlap", (1, 2), (32, 32))
        (d,) = rep.by_code("EXCH001")
        assert "halo" in d.message

    def test_check_config_routes_exchange_mode(self):
        st = self._stencil2d()
        rep = check_config(st, (8, 8), (2, 2), (32, 32), CPU_E5_2680V4,
                           exchange_mode="nope")
        assert rep.by_code("EXCH002")
        rep = check_config(st, (8, 8), (2, 2), (32, 32), CPU_E5_2680V4,
                           exchange_mode="diag")
        assert rep.ok


# ---------------------------------------------------------------------------
# differential witnesses: the rejected programs really do misbehave
# ---------------------------------------------------------------------------

class TestWitnesses:
    def test_halo001_witness_validation_rejects(self):
        bad = TestIRAndDecompositionCodes()._radius2_halo1()
        with pytest.raises(ValidationError):
            validate_stencil(bad)

    def test_halo002_witness_distributed_run_rejects(self):
        j, i = VarExpr("j"), VarExpr("i")
        B = SpNode("B", (10, 10), f64, halo=(2, 2), time_window=2)
        kern = Kernel(
            "S", (j, i), 0.25 * (B[j, i - 2] + B[j, i + 2]
                                 + B[j - 2, i] + B[j + 2, i]),
        )
        stencil = Stencil(B, kern[Stencil.t - 1])
        init = [np.zeros((10, 10))]
        with pytest.raises(ValueError, match="narrower than halo"):
            distributed_run(stencil, init, 1, grid=(6, 1))

    def test_mpi001_witness_decompose_rejects(self):
        with pytest.raises(ValueError, match="cannot split"):
            decompose((16, 16, 16), (32, 1, 1))

    def test_spm001_witness_legacy_checker_rejects(self):
        _, kern = build_stencil()
        sched = sunway_staged(kern, factors=(16, 16, 16))
        nest = sched.lower((16, 16, 16))
        with pytest.raises(LegalityError, match="SPM"):
            check_schedule(sched, nest, SUNWAY_CG)

    def test_par001_witness_legacy_checker_rejects_even_cached(self):
        _, kern = build_stencil()
        sched = Schedule(kern).tile(
            2, 2, 2, "xo", "xi", "yo", "yi", "zo", "zi"
        ).parallel("xo", 48)
        nest = sched.lower((16, 16, 16))
        with pytest.raises(LegalityError, match="cores"):
            check_schedule(sched, nest, MATRIX_SN)

    def test_tile001_witness_lower_raises_with_diagnostic(self):
        _, kern = build_stencil()
        sched = Schedule(kern).tile(
            32, 4, 4, "xo", "xi", "yo", "yi", "zo", "zi"
        )
        with pytest.raises(ScheduleError) as ei:
            sched.lower((16, 16, 16))
        assert ei.value.diagnostic.code == "TILE001"

    def test_shape001_witness_names_kernel(self):
        _, kern = build_stencil()
        with pytest.raises(ScheduleError, match=kern.name) as ei:
            Schedule(kern).lower((8, 8))
        assert ei.value.diagnostic.code == "SHAPE001"

    def test_vec001_witness_lower_raises_with_diagnostic(self):
        _, kern = build_stencil()
        sched = Schedule(kern).tile(
            4, 4, 4, "xo", "xi", "yo", "yi", "zo", "zi"
        ).vectorize("xo")
        with pytest.raises(ScheduleError, match="innermost") as ei:
            sched.lower((16, 16, 16))
        assert ei.value.diagnostic.code == "VEC001"


# ---------------------------------------------------------------------------
# footprint model + autotuner pruning predicate
# ---------------------------------------------------------------------------

class TestFootprints:
    def test_read_buffers_include_halo(self):
        _, kern = build_stencil()
        sched = sunway_staged(kern, factors=(4, 4, 4))
        fps = dict(
            (b.buffer, nbytes) for b, nbytes in
            binding_footprints(kern, (4, 4, 4), sched.cache_bindings())
        )
        assert fps["br"] == 6 * 6 * 6 * 8  # tile + 2*radius, f64
        assert fps["bw"] == 4 * 4 * 4 * 8  # bare tile

    def test_check_config_matches_tuner_model(self):
        stencil, _ = build_stencil(shape=(128, 128, 128))
        # (16, 16, 256) clips to the 64-wide sub-domain and overflows
        rep = check_config(stencil, (16, 16, 64), (2, 2, 2),
                           (128, 128, 128), SUNWAY_CG)
        assert rep.by_code("SPM001")
        rep2 = check_config(stencil, (4, 8, 16), (2, 2, 2),
                            (128, 128, 128), SUNWAY_CG)
        assert rep2.ok

    def test_check_config_sees_decomposition_errors(self):
        stencil, _ = build_stencil()
        rep = check_config(stencil, (4, 4, 4), (32, 1, 1),
                           (16, 16, 16), SUNWAY_CG)
        assert rep.by_code("MPI001")


class TestTunerPruning:
    def test_tuner_prunes_illegal_points_and_logs_metric(self):
        from repro import obs
        from repro.autotune.tuner import AutoTuner
        from repro.frontend import build_benchmark

        prog, _ = build_benchmark("3d25pt_star", grid=(128, 128, 128))
        tuner = AutoTuner(prog.ir, (128, 128, 128), nprocs=8)
        with obs.capture() as (_, reg):
            result = tuner.tune(iterations=200, seed=0, n_samples=10)
        assert result.pruned > 0
        snap = reg.snapshot()
        assert snap["counters"]["autotune.pruned_illegal"] == result.pruned
        assert snap["gauges"]["autotune.pruned_total"] == result.pruned
        # the winning configuration itself passes the checker
        assert tuner.check_config(result.best).ok

    def test_annealer_rejects_illegal_initial_state(self):
        from repro.autotune.annealing import simulated_annealing

        with pytest.raises(ValueError, match="initial_state"):
            simulated_annealing(
                [[1, 2], [3, 4]], lambda *v: 1.0, iterations=5, seed=0,
                prune=lambda *v: True,
            )

    def test_annealer_counts_pruned_proposals(self):
        from repro.autotune.annealing import simulated_annealing

        # everything except the start point is illegal: every proposal
        # that moves away gets pruned, none measured
        res = simulated_annealing(
            [[1, 2, 3]], lambda v: float(v), iterations=50, seed=0,
            initial_state=(0,), prune=lambda v: v != 1,
        )
        assert res.pruned > 0
        assert res.best_state == (0,)


class TestEnforce:
    def test_enforce_logs_warnings_and_passes(self):
        import io

        rep = CheckReport()
        rep.add("TILE002", "warning", "remainder", kernel="S")
        buf = io.StringIO()
        enforce(rep, where="simulate[sunway]", stream=buf)
        assert "repro-check simulate[sunway]:" in buf.getvalue()
        assert "TILE002" in buf.getvalue()

    def test_enforce_raises_on_errors(self):
        import io

        rep = CheckReport()
        rep.add("SPM001", "error", "too big")
        with pytest.raises(DiagnosticError, match="SPM001"):
            enforce(rep, stream=io.StringIO())


# ---------------------------------------------------------------------------
# CLI: repro check + the --no-check escape hatch
# ---------------------------------------------------------------------------

MSC_OVERFLOW = """
const N = 16;
DefVar(k, i32); DefVar(j, i32); DefVar(i, i32);
DefTensor3D_TimeWin(B, 3, 1, f64, N, N, N);
Kernel S((k,j,i), 0.5*B[k,j,i] + 0.25*B[k,j,i-1] + 0.25*B[k,j,i+1]);
S.tile(16, 16, 16, xo, xi, yo, yi, zo, zi);
S.reorder(xo, yo, zo, xi, yi, zi);
S.cache_read(B, br, "global");
S.cache_write(bw, "global");
S.compute_at(br, xo);
S.compute_at(bw, xo);
S.parallel(xo, 64);
Stencil st((k,j,i), B[t] << S[t-1]);
"""

MSC_LEGAL = """
const N = 16;
DefVar(k, i32); DefVar(j, i32); DefVar(i, i32);
DefTensor3D_TimeWin(B, 3, 1, f64, N, N, N);
Kernel S((k,j,i), 0.5*B[k,j,i] + 0.25*B[k,j,i-1] + 0.25*B[k,j,i+1]);
S.tile(4, 8, 16, xo, xi, yo, yi, zo, zi);
S.reorder(xo, yo, zo, xi, yi, zi);
S.cache_read(B, br, "global");
S.cache_write(bw, "global");
S.compute_at(br, zo);
S.compute_at(bw, zo);
S.parallel(xo, 64);
Stencil st((k,j,i), B[t] << S[t-1]);
"""


@pytest.fixture
def overflow_msc(tmp_path):
    path = tmp_path / "overflow.msc"
    path.write_text(MSC_OVERFLOW)
    return str(path)


@pytest.fixture
def legal_msc(tmp_path):
    path = tmp_path / "legal.msc"
    path.write_text(MSC_LEGAL)
    return str(path)


class TestCheckCLI:
    def test_check_rejects_spm_overflow(self, overflow_msc, capsys):
        assert main(["check", overflow_msc, "--machine", "sunway"]) == 1
        out = capsys.readouterr().out
        assert "SPM001" in out and "ILLEGAL" in out

    def test_check_accepts_legal_schedule(self, legal_msc, capsys):
        assert main(["check", legal_msc, "--machine", "sunway"]) == 0
        assert "legal" in capsys.readouterr().out

    def test_check_benchmark_by_name(self, capsys):
        assert main(["check", "3d7pt_star"]) == 0
        assert "legal" in capsys.readouterr().out

    def test_check_machine_independent_without_flag(self, overflow_msc,
                                                    capsys):
        # without --machine only structural checks run; the overflow
        # is a machine (SPM) property, so the file passes
        assert main(["check", overflow_msc]) == 0

    def test_check_list_codes(self, capsys):
        assert main(["check", "--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in DIAGNOSTIC_CODES:
            assert code in out

    def test_check_mpi_grid_override(self, legal_msc, capsys):
        rc = main(["check", legal_msc, "--mpi-grid", "32,1,1"])
        assert rc == 1
        assert "MPI001" in capsys.readouterr().out


class TestGates:
    def test_simulate_gate_blocks_overflow(self):
        from repro.frontend import parse_program

        prog = parse_program(MSC_OVERFLOW).program
        with pytest.raises(DiagnosticError, match="SPM001"):
            prog.simulate("sunway", timesteps=1)

    def test_simulate_no_check_reaches_backend(self):
        from repro.frontend import parse_program

        prog = parse_program(MSC_OVERFLOW).program
        # the backend's own legacy guard still trips, but without the
        # analyzer's structured diagnostics
        with pytest.raises(ValueError) as ei:
            prog.simulate("sunway", timesteps=1, check=False)
        assert not isinstance(ei.value, DiagnosticError)

    def test_compile_gate_blocks_overflow(self, overflow_msc, tmp_path,
                                          capsys):
        rc = main(["compile", overflow_msc, "--target", "sunway",
                   "-o", str(tmp_path)])
        assert rc == 1
        assert "SPM001" in capsys.readouterr().err

    def test_compile_no_check_escape_hatch(self, overflow_msc, tmp_path,
                                           capsys):
        rc = main(["compile", overflow_msc, "--target", "sunway",
                   "-o", str(tmp_path), "--no-check"])
        captured = capsys.readouterr()
        assert "SPM001" not in captured.err

    def test_legal_program_simulates(self):
        from repro.frontend import parse_program

        prog = parse_program(MSC_LEGAL).program
        report = prog.simulate("sunway", timesteps=1)
        assert report.step_s > 0
