"""Integration tests: distributed execution == serial reference.

This is the core correctness guarantee of the communication library
(Fig. 6): the distributed result must match the single-node serial
reference exactly, for every combination of stencil shape, boundary
condition, MPI grid and exchanger strategy.
"""

import numpy as np
import pytest

from repro.backend.numpy_backend import reference_run
from repro.frontend import build_benchmark
from repro.ir import Kernel, SpNode, Stencil, VarExpr
from repro.runtime.executor import distributed_run


@pytest.mark.parametrize("mpi_grid", [(2, 1, 1), (1, 2, 2), (2, 2, 2),
                                      (3, 1, 2)])
def test_3d_star_grids(rng, mpi_grid):
    prog, _ = build_benchmark("3d7pt_star", grid=(12, 12, 12),
                              boundary="periodic")
    init = [rng.random((12, 12, 12)) for _ in range(2)]
    ref = reference_run(prog.ir, init, 4, boundary="periodic")
    got = distributed_run(prog.ir, init, 4, mpi_grid, boundary="periodic")
    np.testing.assert_array_equal(got, ref)


@pytest.mark.parametrize("boundary", ["zero", "periodic"])
@pytest.mark.parametrize("name", ["2d9pt_box", "2d9pt_star"])
def test_2d_shapes_and_boundaries(rng, name, boundary):
    prog, _ = build_benchmark(name, grid=(20, 24), boundary=boundary)
    init = [rng.random((20, 24)) for _ in range(2)]
    ref = reference_run(prog.ir, init, 5, boundary=boundary)
    got = distributed_run(prog.ir, init, 5, (2, 3), boundary=boundary)
    np.testing.assert_array_equal(got, ref)


def test_wide_halo_high_order(rng):
    # radius-4 star: multi-cell halo strips
    prog, _ = build_benchmark("3d25pt_star", grid=(16, 16, 16),
                              boundary="periodic")
    init = [rng.random((16, 16, 16)) for _ in range(2)]
    ref = reference_run(prog.ir, init, 3, boundary="periodic")
    got = distributed_run(prog.ir, init, 3, (2, 2, 1),
                          boundary="periodic")
    np.testing.assert_array_equal(got, ref)


def test_uneven_decomposition(rng):
    prog, _ = build_benchmark("2d9pt_star", grid=(23, 19), boundary="zero")
    init = [rng.random((23, 19)) for _ in range(2)]
    ref = reference_run(prog.ir, init, 4, boundary="zero")
    got = distributed_run(prog.ir, init, 4, (3, 2), boundary="zero")
    np.testing.assert_array_equal(got, ref)


def test_master_exchanger_equivalent(rng):
    prog, _ = build_benchmark("2d9pt_box", grid=(16, 16),
                              boundary="periodic")
    init = [rng.random((16, 16)) for _ in range(2)]
    got_async = distributed_run(prog.ir, init, 3, (2, 2),
                                boundary="periodic", exchanger="async")
    got_master = distributed_run(prog.ir, init, 3, (2, 2),
                                 boundary="periodic", exchanger="master")
    np.testing.assert_array_equal(got_async, got_master)


def test_single_rank_degenerates_to_serial(rng):
    prog, _ = build_benchmark("3d7pt_star", grid=(10, 10, 10))
    init = [rng.random((10, 10, 10)) for _ in range(2)]
    ref = reference_run(prog.ir, init, 3)
    got = distributed_run(prog.ir, init, 3, (1, 1, 1))
    np.testing.assert_array_equal(got, ref)


def test_auxiliary_tensor_scattered(rng):
    B = SpNode("B", (12, 12), halo=(1, 1), time_window=2)
    C = SpNode("C", (12, 12), halo=(1, 1), time_window=2)
    j, i = VarExpr("j"), VarExpr("i")
    kern = Kernel(
        "varcoef", (j, i),
        C[j, i] * (B[j, i - 1] + B[j, i + 1] + B[j - 1, i] + B[j + 1, i])
        + 0.5 * B[j, i],
    )
    st = Stencil(B, kern[Stencil.t - 1])
    init = [rng.random((12, 12))]
    coef = rng.random((12, 12))
    ref = reference_run(st, init, 3, boundary="periodic",
                        inputs={"C": coef})
    got = distributed_run(st, init, 3, (2, 2), boundary="periodic",
                          inputs={"C": coef})
    np.testing.assert_array_equal(got, ref)


def test_missing_aux_input_rejected(rng):
    B = SpNode("B", (8, 8), halo=(1, 1), time_window=2)
    C = SpNode("C", (8, 8), halo=(1, 1), time_window=2)
    j, i = VarExpr("j"), VarExpr("i")
    kern = Kernel("k", (j, i), B[j, i] * C[j, i])
    st = Stencil(B, kern[Stencil.t - 1])
    with pytest.raises(ValueError, match="missing data"):
        distributed_run(st, [rng.random((8, 8))], 1, (2, 2))


def test_grid_rank_mismatch():
    prog, _ = build_benchmark("3d7pt_star", grid=(8, 8, 8))
    with pytest.raises(ValueError, match="-D"):
        distributed_run(prog.ir, [np.zeros((8, 8, 8))] * 2, 1, (2, 2))


def test_subdomain_narrower_than_halo_rejected():
    prog, _ = build_benchmark("3d25pt_star", grid=(12, 12, 12))
    with pytest.raises(ValueError, match="narrower"):
        distributed_run(prog.ir, [np.zeros((12, 12, 12))] * 2, 1,
                        (4, 1, 1))


def test_wrong_init_plane_count():
    prog, _ = build_benchmark("3d7pt_star", grid=(8, 8, 8))
    with pytest.raises(ValueError, match="initial planes"):
        distributed_run(prog.ir, [np.zeros((8, 8, 8))], 1, (2, 1, 1))


def test_many_timesteps_window_recycling(rng):
    # runs long enough that every window slot is recycled several times
    prog, _ = build_benchmark("2d9pt_star", grid=(16, 16),
                              boundary="periodic")
    init = [rng.random((16, 16)) for _ in range(2)]
    ref = reference_run(prog.ir, init, 12, boundary="periodic")
    got = distributed_run(prog.ir, init, 12, (2, 2), boundary="periodic")
    np.testing.assert_array_equal(got, ref)
