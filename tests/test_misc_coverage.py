"""Focused tests for smaller API surfaces not covered elsewhere:
TimingReport, GeneratedCode, BufferPool tags, simmpi Sendrecv,
DMAStats, streaming report, evalsuite configs, and the docs generator.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.backend.c_codegen import GeneratedCode
from repro.comm import BufferPool
from repro.evalsuite.configs import TABLE7_SUNWAY, TABLE8, table5_row
from repro.machine.report import TimingReport
from repro.runtime.simmpi import run_ranks


class TestTimingReport:
    def _report(self, compute=0.2, memory=0.8, overhead=0.0, steps=10):
        return TimingReport(
            machine="m", stencil="s", precision="fp64",
            timesteps=steps, compute_s=compute, memory_s=memory,
            overhead_s=overhead, flops_per_step=1e9,
        )

    def test_step_is_sum(self):
        assert self._report().step_s == pytest.approx(1.0)

    def test_total_includes_overhead_once(self):
        r = self._report(overhead=5.0)
        assert r.total_s == pytest.approx(10 * 1.0 + 5.0)

    def test_gflops(self):
        r = self._report(compute=0.5, memory=0.5, steps=10)
        assert r.gflops == pytest.approx(1.0)

    def test_speedup_over(self):
        fast = self._report(compute=0.1, memory=0.1)
        slow = self._report(compute=1.0, memory=1.0)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_zero_time_with_flops_is_malformed(self):
        # work recorded but no elapsed time: a malformed report, and the
        # error names the stencil rather than leaking a bare
        # ZeroDivisionError (regression: obs/metrics consumers render
        # empty reports)
        r = self._report(compute=0.0, memory=0.0, steps=1)
        with pytest.raises(ValueError, match="zero elapsed time"):
            r.gflops

    def test_empty_run_rates_zero(self):
        # 0 flops (or 0 timesteps) and 0 time is simply an empty run
        r = TimingReport(
            machine="m", stencil="s", precision="fp64", timesteps=0,
            compute_s=0.0, memory_s=0.0, flops_per_step=1e9,
        )
        assert r.gflops == 0.0
        r = TimingReport(
            machine="m", stencil="s", precision="fp64", timesteps=5,
            compute_s=0.0, memory_s=0.0, flops_per_step=0.0,
        )
        assert r.gflops == 0.0


class TestGeneratedCode:
    def test_write_to_roundtrip(self, tmp_path):
        code = GeneratedCode(name="x", target="cpu")
        code.files["x.c"] = "int main(void) { return 0; }\n"
        code.files["Makefile"] = "all:\n\ttrue\n"
        paths = code.write_to(str(tmp_path))
        assert len(paths) == 2
        assert (tmp_path / "x.c").read_text().startswith("int main")

    def test_main_source_picks_c_file(self):
        code = GeneratedCode(name="x", target="cpu")
        code.files["Makefile"] = "all:\n"
        code.files["x.c"] = "/*src*/"
        assert code.main_source == "/*src*/"

    def test_main_source_missing(self):
        code = GeneratedCode(name="x", target="cpu")
        with pytest.raises(KeyError):
            code.main_source

    def test_loc_wrapped(self):
        code = GeneratedCode(name="x", target="cpu")
        code.files["x.c"] = "a" * 200 + "\nshort\n"
        assert code.loc() == 2
        assert code.loc(wrap=80) == 3 + 1  # ceil(200/80) + 1


class TestBufferPool:
    def test_distinct_dtypes_distinct_buffers(self):
        pool = BufferPool()
        a = pool.get(10, np.float64)
        b = pool.get(10, np.float32)
        assert a.dtype != b.dtype

    def test_same_size_same_tag_reused(self):
        pool = BufferPool()
        assert pool.get(10, np.float64) is pool.get(10, np.float64)


class TestSendrecv:
    def test_ring_rotation(self):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            recv = np.zeros(1)
            comm.Sendrecv(np.array([float(comm.rank)]), right,
                          recv, left)
            return recv[0]

        assert run_ranks(4, main) == [3.0, 0.0, 1.0, 2.0]


class TestConfigs:
    def test_table5_grid_matches_benchmarks(self):
        assert table5_row("2d9pt_star").grid == (4096, 4096)
        assert table5_row("3d31pt_star").grid == (256, 256, 256)

    def test_table7_strong_halves_subgrids(self):
        rows3d = [r for r in TABLE7_SUNWAY if r.ndim == 3]
        vols = [
            np.prod(r.strong_sub_grid) * r.processes for r in rows3d
        ]
        # fixed global volume across the strong-scaling ladder
        assert len(set(vols)) == 1

    def test_table7_weak_fixed_subgrid(self):
        for r in TABLE7_SUNWAY:
            assert np.prod(r.weak_sub_grid) in (4096 ** 2, 256 ** 3)

    def test_table8_subgrids_cover_global(self):
        from repro.evalsuite.configs import (
            PHYSIS_GLOBAL_2D, PHYSIS_GLOBAL_3D,
        )

        for r in TABLE8:
            g = PHYSIS_GLOBAL_2D if r.ndim == 2 else PHYSIS_GLOBAL_3D
            covered = [s * p for s, p in zip(r.sub_grid, r.mpi_grid)]
            assert tuple(covered) == tuple(g)


class TestDocsGenerator:
    def test_generates_api_markdown(self, tmp_path):
        root = Path(__file__).resolve().parent.parent
        result = subprocess.run(
            [sys.executable, str(root / "tools" / "gen_api_docs.py")],
            capture_output=True, text=True, cwd=str(root),
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        api = (root / "docs" / "API.md").read_text()
        assert "# API reference" in api
        assert "repro.comm.exchange" in api
        assert "repro.ir.stencil" in api


class TestAsciiChart:
    def test_renders_series_and_legend(self):
        from repro.evalsuite import line_chart

        chart = line_chart(
            {"a": [(1, 1.0), (2, 4.0)], "b": [(1, 2.0), (2, 3.0)]},
            width=32, height=8,
        )
        assert "o=a" in chart and "x=b" in chart
        assert "|" in chart and "+" in chart

    def test_log_scales(self):
        from repro.evalsuite import line_chart

        chart = line_chart(
            {"s": [(10, 10.0), (100, 100.0), (1000, 1000.0)]},
            logx=True, logy=True,
        )
        assert "log-x" in chart and "log-y" in chart

    def test_log_rejects_nonpositive(self):
        from repro.evalsuite import line_chart

        with pytest.raises(ValueError):
            line_chart({"s": [(0, 1.0)]}, logx=True)

    def test_empty_rejected(self):
        from repro.evalsuite import line_chart

        with pytest.raises(ValueError):
            line_chart({})


class TestAnnealingInitialState:
    def test_initial_state_respected(self):
        from repro.autotune import simulated_annealing

        axes = [list(range(10))]
        res = simulated_annealing(
            axes, lambda x: float(x), iterations=1, seed=0,
            initial_state=(3,),
        )
        assert res.initial_energy == 3.0

    def test_bad_initial_state(self):
        from repro.autotune import simulated_annealing

        with pytest.raises(ValueError, match="initial_state"):
            simulated_annealing(
                [list(range(3))], lambda x: 0.0, iterations=1,
                initial_state=(7,),
            )
