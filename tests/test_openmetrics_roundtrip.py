"""Property test: OpenMetrics ``render -> parse`` is lossless.

:func:`repro.obs.openmetrics.render` writes values with ``repr`` (so
``float(repr(f)) == f`` exactly) and escapes label values; the strict
:func:`~repro.obs.openmetrics.parse` must therefore recover every
counter/gauge series bit-for-bit and every histogram's sum/count —
over random metric names (including dotted ones that get sanitised),
random label sets, and label values exercising the escaping edge cases
(backslash, quote, newline, unicode).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.openmetrics import parse, render, sanitize_name

# raw registry names may be dotted/dashed — sanitisation maps them onto
# the exposition charset
_raw_name = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_.:-]{0,12}",
                          fullmatch=True)
_label_name = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,8}",
                            fullmatch=True)
# any printable-ish text, surrogates excluded; escaping must cope
_label_value = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=12
)
_value = st.floats(allow_nan=False, allow_infinity=False)


@st.composite
def _labelsets(draw, forbid=()):
    names = draw(st.lists(
        _label_name.filter(lambda n: n not in forbid),
        unique=True, max_size=3,
    ))
    return tuple((n, draw(_label_value)) for n in sorted(names))


@st.composite
def _series(draw, value_strategy, forbid_labels=()):
    """Unique (name, labels) -> value map, collision-free *after*
    name sanitisation (two raw names may sanitise to one family)."""
    out = {}
    seen = set()
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        name = draw(_raw_name)
        labels = draw(_labelsets(forbid=forbid_labels))
        key = (sanitize_name(name),
               tuple((k, v) for k, v in labels))
        if key in seen:
            continue
        seen.add(key)
        out[(name, labels)] = draw(value_strategy)
    return out


def _find(family, labels):
    want = {k: v for k, v in labels}
    for s in family.samples:
        if s.labels == want:
            return s.value
    raise AssertionError(f"no sample with labels {want!r} in "
                         f"{family.name}")


@settings(deadline=None, max_examples=60)
@given(gauges=_series(_value))
def test_gauge_roundtrip(gauges):
    families = parse(render({"gauges": gauges}))
    for (name, labels), value in gauges.items():
        fam = families[sanitize_name(name)]
        assert fam.type == "gauge"
        assert _find(fam, labels) == float(value)


@settings(deadline=None, max_examples=60)
@given(counters=_series(_value))
def test_counter_roundtrip(counters):
    families = parse(render({"counters": counters}))
    for (name, labels), value in counters.items():
        fam = families[sanitize_name(name)]
        assert fam.type == "counter"
        # counter samples carry the mandatory _total suffix
        want = {k: v for k, v in labels}
        values = [s.value for s in fam.samples
                  if s.name.endswith("_total") and s.labels == want]
        assert values == [float(value)]


@settings(deadline=None, max_examples=40)
@given(histograms=_series(
    st.lists(_value, min_size=1, max_size=5),
    forbid_labels=("quantile",),  # render injects this label itself
))
def test_histogram_sum_count_roundtrip(histograms):
    families = parse(render({"histograms": histograms}))
    for (name, labels), values in histograms.items():
        fam = families[sanitize_name(name)]
        assert fam.type == "summary"
        want = {k: v for k, v in labels}
        by_name = {s.name: s.value for s in fam.samples
                   if s.labels == want}
        base = sanitize_name(name)
        # sum is computed over the *sorted* observations in render, so
        # reproduce the identical float addition order here
        assert by_name[f"{base}_sum"] == sum(sorted(values))
        assert by_name[f"{base}_count"] == len(values)


@pytest.mark.parametrize("evil", [
    'back\\slash', 'quo"te', 'new\nline', 'both\\"and\n',
    'trailing\\', 'unicode-日本語', '',
])
def test_escaping_edge_cases_roundtrip(evil):
    raw = {"gauges": {("g", (("label", evil),)): 1.5}}
    families = parse(render(raw))
    assert families["g"].value(label=evil) == 1.5
