"""Tests for the executable numpy backend (reference + scheduled)."""

import numpy as np
import pytest

from repro.backend.numpy_backend import (
    BOUNDARY_CONDITIONS,
    ScheduledExecutor,
    evaluate_kernel,
    fill_halo,
    reference_run,
)
from repro.ir import Kernel, SpNode, Stencil, VarExpr, f32, f64
from repro.schedule import Schedule
from tests.conftest import make_2d5pt, make_3d7pt


class TestFillHalo:
    def test_zero(self):
        p = np.ones((6, 6))
        fill_halo(p, (1, 1), "zero")
        assert p[0].sum() == 0 and p[-1].sum() == 0
        assert p[:, 0].sum() == 0 and p[:, -1].sum() == 0
        assert p[1:-1, 1:-1].sum() == 16

    def test_periodic_wraps(self):
        p = np.zeros((6, 6))
        p[1:5, 1:5] = np.arange(16).reshape(4, 4)
        fill_halo(p, (1, 1), "periodic")
        assert (p[0, 1:5] == p[4, 1:5]).all()
        assert (p[5, 1:5] == p[1, 1:5]).all()
        assert (p[1:5, 0] == p[1:5, 4]).all()

    def test_reflect_mirrors(self):
        p = np.zeros((1, 8))
        p[0, 2:6] = [1, 2, 3, 4]
        fill_halo(p, (0, 2), "reflect")
        assert list(p[0, :2]) == [2, 1]
        assert list(p[0, 6:]) == [4, 3]

    def test_unknown_boundary(self):
        with pytest.raises(ValueError, match="unknown boundary"):
            fill_halo(np.zeros((4, 4)), (1, 1), "dirichlet")

    def test_zero_halo_noop(self):
        p = np.ones((4, 4))
        fill_halo(p, (0, 0), "zero")
        assert p.sum() == 16


class TestEvaluateKernel:
    def test_matches_manual_computation(self):
        tensor, kern = make_2d5pt(shape=(4, 4))
        padded = np.zeros((6, 6))
        rng = np.random.default_rng(0)
        padded[1:5, 1:5] = rng.random((4, 4))
        out = evaluate_kernel(
            kern, {("A", 0): padded}, {"A": (1, 1)}
        )
        expected = (
            0.5 * padded[1:5, 1:5]
            + 0.125 * (padded[1:5, 0:4] + padded[1:5, 2:6]
                       + padded[0:4, 1:5] + padded[2:6, 1:5])
        )
        np.testing.assert_allclose(out, expected)

    def test_region_restriction(self):
        tensor, kern = make_2d5pt(shape=(4, 4))
        padded = np.ones((6, 6))
        out = evaluate_kernel(
            kern, {("A", 0): padded}, {"A": (1, 1)},
            region=[(1, 3), (0, 2)],
        )
        assert out.shape == (2, 2)

    def test_missing_plane_reported(self):
        _, kern = make_2d5pt()
        with pytest.raises(KeyError, match="no plane bound"):
            evaluate_kernel(kern, {}, {"A": (1, 1)}, region=[(0, 2), (0, 2)])

    def test_out_of_halo_region_rejected(self):
        _, kern = make_2d5pt(shape=(4, 4))
        padded = np.zeros((6, 6))
        with pytest.raises(IndexError, match="halo"):
            evaluate_kernel(
                kern, {("A", 0): padded}, {"A": (0, 0)},
                region=[(0, 4), (0, 4)],
            )


class TestReferenceRun:
    def test_single_step_matches_naive_loops(self, rng):
        tensor, kern = make_2d5pt(shape=(5, 7))
        st = Stencil(tensor, kern[Stencil.t - 1])
        a0 = rng.random((5, 7))
        got = reference_run(st, [a0], 1, boundary="zero")
        pad = np.zeros((7, 9))
        pad[1:6, 1:8] = a0
        exp = np.zeros((5, 7))
        for j in range(5):
            for i in range(7):
                exp[j, i] = 0.5 * pad[j + 1, i + 1] + 0.125 * (
                    pad[j + 1, i] + pad[j + 1, i + 2]
                    + pad[j, i + 1] + pad[j + 2, i + 1]
                )
        np.testing.assert_allclose(got, exp, rtol=1e-14)

    def test_two_time_dependencies(self, rng, stencil_3d7pt_2dep):
        st = stencil_3d7pt_2dep
        init = [rng.random((16, 16, 16)) for _ in range(2)]
        out = reference_run(st, init, 3, boundary="periodic")
        assert out.shape == (16, 16, 16)
        assert np.isfinite(out).all()

    def test_zero_steps_returns_newest_init(self, rng, stencil_3d7pt_2dep):
        init = [rng.random((16, 16, 16)) for _ in range(2)]
        out = reference_run(stencil_3d7pt_2dep, init, 0)
        np.testing.assert_array_equal(out, init[1])

    def test_wrong_init_count(self, stencil_3d7pt_2dep):
        with pytest.raises(ValueError, match="initial plane"):
            reference_run(stencil_3d7pt_2dep, [np.zeros((16, 16, 16))], 1)

    def test_missing_aux_input_reported(self, rng):
        B = SpNode("B", (8, 8), halo=(1, 1), time_window=2)
        C = SpNode("C", (8, 8), halo=(1, 1), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        kern = Kernel("k", (j, i), B[j, i] * C[j, i])
        st = Stencil(B, kern[Stencil.t - 1])
        with pytest.raises(ValueError, match="auxiliary"):
            reference_run(st, [rng.random((8, 8))], 1)

    def test_aux_input_used(self, rng):
        B = SpNode("B", (8, 8), halo=(1, 1), time_window=2)
        C = SpNode("C", (8, 8), halo=(1, 1), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        kern = Kernel("k", (j, i), B[j, i] * C[j, i])
        st = Stencil(B, kern[Stencil.t - 1])
        b0 = rng.random((8, 8))
        coef = rng.random((8, 8))
        out = reference_run(st, [b0], 1, inputs={"C": coef})
        np.testing.assert_allclose(out, b0 * coef, rtol=1e-14)


class TestScheduledExecutor:
    @pytest.mark.parametrize("boundary", ["zero", "periodic"])
    def test_matches_reference(self, rng, stencil_3d7pt_2dep, boundary):
        st = stencil_3d7pt_2dep
        kern = st.kernels[0]
        sched = Schedule(kern)
        sched.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        sched.parallel("xo", 4)
        init = [rng.random((16, 16, 16)) for _ in range(2)]
        ref = reference_run(st, init, 5, boundary=boundary)
        ex = ScheduledExecutor(st, {kern.name: sched}, boundary=boundary)
        got = ex.run(init, 5)
        np.testing.assert_array_equal(got, ref)

    def test_odd_tile_sizes_still_exact(self, rng):
        tensor, kern = make_3d7pt(shape=(13, 11, 17))
        st = Stencil(tensor, 0.7 * kern[Stencil.t - 1]
                     + 0.3 * kern[Stencil.t - 2])
        sched = Schedule(kern).tile(5, 3, 7, "a", "b", "c", "d", "e", "f")
        init = [rng.random((13, 11, 17)) for _ in range(2)]
        ref = reference_run(st, init, 4, boundary="periodic")
        got = ScheduledExecutor(
            st, {kern.name: sched}, boundary="periodic"
        ).run(init, 4)
        np.testing.assert_array_equal(got, ref)

    def test_step_before_initialize_raises(self, stencil_3d7pt_2dep):
        ex = ScheduledExecutor(stencil_3d7pt_2dep, {})
        with pytest.raises(RuntimeError, match="initialize"):
            ex.step()

    def test_result_before_run_raises(self, stencil_3d7pt_2dep):
        ex = ScheduledExecutor(stencil_3d7pt_2dep, {})
        with pytest.raises(RuntimeError):
            ex.result()

    def test_default_schedule_for_unlisted_kernels(self, rng,
                                                   stencil_3d7pt_2dep):
        ex = ScheduledExecutor(stencil_3d7pt_2dep, {})
        init = [rng.random((16, 16, 16)) for _ in range(2)]
        out = ex.run(init, 2)
        ref = reference_run(stencil_3d7pt_2dep, init, 2)
        np.testing.assert_array_equal(out, ref)


class TestThreadedExecutor:
    def test_threads_bit_identical(self, rng, stencil_3d7pt_2dep):
        st = stencil_3d7pt_2dep
        kern = st.kernels[0]
        sched = Schedule(kern).tile(
            4, 16, 16, "xo", "xi", "yo", "yi", "zo", "zi"
        )
        init = [rng.random((16, 16, 16)) for _ in range(2)]
        serial = ScheduledExecutor(
            st, {kern.name: sched}, boundary="periodic", threads=1
        ).run(init, 4)
        threaded = ScheduledExecutor(
            st, {kern.name: sched}, boundary="periodic", threads=4
        ).run(init, 4)
        np.testing.assert_array_equal(threaded, serial)

    def test_more_workers_than_tiles(self, rng, stencil_3d7pt_2dep):
        st = stencil_3d7pt_2dep
        kern = st.kernels[0]
        sched = Schedule(kern).tile(
            16, 16, 16, "xo", "xi", "yo", "yi", "zo", "zi"
        )  # a single tile
        init = [rng.random((16, 16, 16)) for _ in range(2)]
        got = ScheduledExecutor(
            st, {kern.name: sched}, boundary="zero", threads=8
        ).run(init, 2)
        ref = reference_run(st, init, 2, boundary="zero")
        np.testing.assert_array_equal(got, ref)

    def test_invalid_thread_count(self, stencil_3d7pt_2dep):
        with pytest.raises(ValueError):
            ScheduledExecutor(stencil_3d7pt_2dep, {}, threads=0)
