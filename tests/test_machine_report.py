"""Tests for :mod:`repro.machine.report` and roofline serialisation."""

from __future__ import annotations

import pytest

from repro.machine.dma import DMAStats
from repro.machine.report import TimingReport
from repro.machine.roofline import Roofline, RooflinePoint
from repro.machine.spec import machine_by_name


def _report(**overrides) -> TimingReport:
    base = dict(
        machine="sunway",
        stencil="3d7pt_star",
        precision="fp64",
        timesteps=10,
        compute_s=0.002,
        memory_s=0.003,
        overhead_s=0.01,
        flops_per_step=1e6,
    )
    base.update(overrides)
    return TimingReport(**base)


class TestDerived:
    def test_step_and_total(self):
        r = _report()
        assert r.step_s == pytest.approx(0.005)
        assert r.total_s == pytest.approx(0.06)

    def test_gflops(self):
        r = _report()
        assert r.gflops == pytest.approx(1e7 / 0.06 / 1e9)

    def test_gflops_empty_run_is_zero(self):
        r = _report(timesteps=0, overhead_s=0.0, flops_per_step=0.0)
        assert r.total_s == 0.0
        assert r.gflops == 0.0

    def test_gflops_zero_timesteps_with_overhead(self):
        r = _report(timesteps=0, overhead_s=0.5)
        assert r.gflops == 0.0

    def test_gflops_flops_without_time_raises(self):
        r = _report(compute_s=0.0, memory_s=0.0, overhead_s=0.0)
        with pytest.raises(ValueError, match="zero elapsed time"):
            r.gflops

    def test_speedup_over(self):
        fast = _report(compute_s=0.001, memory_s=0.001, overhead_s=0.0)
        slow = _report(compute_s=0.002, memory_s=0.002, overhead_s=0.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_over_zero_baseline_raises(self):
        r = _report()
        empty = _report(timesteps=0, compute_s=0.0, memory_s=0.0,
                        overhead_s=0.0, flops_per_step=0.0)
        with pytest.raises(ValueError, match="zero elapsed time"):
            r.speedup_over(empty)


class TestPhases:
    def test_phases_sum_to_total(self):
        r = _report()
        phases = r.phases()
        assert set(phases) == {"compute", "spm-dma", "other"}
        assert sum(phases.values()) == pytest.approx(r.total_s)

    def test_phases_scale_with_timesteps(self):
        r = _report(timesteps=20)
        assert r.phases()["compute"] == pytest.approx(0.002 * 20)
        assert r.phases()["other"] == pytest.approx(0.01)


class TestSerialisation:
    def test_roundtrip_without_dma(self):
        r = _report()
        doc = r.to_dict()
        assert doc["phases"]["spm-dma"] == pytest.approx(0.03)
        back = TimingReport.from_dict(doc)
        assert back == r

    def test_roundtrip_with_dma_and_details(self):
        dma = DMAStats(n_gets=4, n_puts=2, bytes_get=1024,
                       bytes_put=512, time_s=0.001)
        r = _report(dma=dma, details={"spm_bytes": 65536.0})
        back = TimingReport.from_dict(r.to_dict())
        assert back == r
        assert back.dma == dma
        assert back.details["spm_bytes"] == 65536.0

    def test_from_dict_defaults(self):
        doc = _report().to_dict()
        del doc["overhead_s"], doc["flops_per_step"], doc["details"]
        back = TimingReport.from_dict(doc)
        assert back.overhead_s == 0.0
        assert back.flops_per_step == 0.0
        assert back.details == {}

    def test_phases_key_is_derived_not_read(self):
        doc = _report().to_dict()
        doc["phases"] = {"compute": 999.0}  # tampered; must be ignored
        back = TimingReport.from_dict(doc)
        assert back.phases()["compute"] == pytest.approx(0.02)


class TestRooflinePoint:
    def test_utilization(self):
        pt = RooflinePoint("k", 0.2, attainable_gflops=100.0,
                           achieved_gflops=40.0, bound="memory")
        assert pt.utilization == pytest.approx(0.4)

    def test_utilization_zero_ceiling(self):
        pt = RooflinePoint("k", 0.0, attainable_gflops=0.0,
                           achieved_gflops=0.0, bound="memory")
        assert pt.utilization == 0.0

    def test_to_dict(self):
        pt = RooflinePoint("k", 0.25, 50.0, 10.0, "memory")
        doc = pt.to_dict()
        assert doc == {
            "name": "k",
            "operational_intensity": 0.25,
            "attainable_gflops": 50.0,
            "achieved_gflops": 10.0,
            "utilization": 0.2,
            "bound": "memory",
        }

    def test_place_reports_utilization(self):
        spec = machine_by_name("sunway")
        roof = Roofline(spec, "fp64")
        oi = roof.ridge_oi / 2  # memory-bound side
        pt = roof.place("k", oi, roof.attainable(oi) * 0.5)
        assert pt.bound == "memory"
        assert pt.utilization == pytest.approx(0.5)
        assert pt.to_dict()["utilization"] == pytest.approx(0.5)
