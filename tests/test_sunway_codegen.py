"""Structural validation of the Sunway athread master/slave bundles."""

import re

import pytest

from repro.backend import generate, generate_sunway
from repro.evalsuite.harness import build_with_schedule
from repro.frontend.stencils import BENCHMARK_NAMES
from repro.machine.spec import SUNWAY_CG


@pytest.fixture(scope="module")
def bundle():
    prog, handle = build_with_schedule("3d7pt_star", "sunway")
    return generate_sunway(
        prog.ir, {handle.kernel.name: handle.schedule}, "hpgmg"
    )


class TestBundleShape:
    def test_bundle_files(self, bundle):
        assert set(bundle.files) == {
            "hpgmg_master.c", "hpgmg_slave.c", "hpgmg_common.c",
            "hpgmg.h", "msc_athread_stub.h",
        }

    def test_master_spawns_and_joins(self, bundle):
        master = bundle.files["hpgmg_master.c"]
        assert "athread_init()" in master
        assert "athread_spawn(" in master
        assert "athread_join()" in master
        assert "athread_halt()" in master

    def test_master_spawns_once_per_application(self, bundle):
        master = bundle.files["hpgmg_master.c"]
        assert master.count("athread_spawn(") == 2  # t-1 and t-2

    def test_slave_identity_and_task_mapping(self, bundle):
        slave = bundle.files["hpgmg_slave.c"]
        assert "athread_get_id(-1)" in slave
        # Sec. 4.3: mod(task_id, 64) == my_id round-robin mapping
        assert re.search(r"task_id % 64 != my_id", slave)

    def test_slave_dma_get_put(self, bundle):
        slave = bundle.files["hpgmg_slave.c"]
        assert "athread_get(PE_MODE" in slave
        assert "athread_put(PE_MODE" in slave
        # the get precedes the compute loop which precedes the put
        assert slave.index("athread_get(") < slave.index("athread_put(")

    def test_header_constants(self, bundle):
        header = bundle.files["hpgmg.h"]
        for macro in ("#define NZ 256", "#define TWIN 3", "#define TX 64"):
            assert macro in header


class TestSPMBuffers:
    def test_thread_local_buffers_declared(self, bundle):
        slave = bundle.files["hpgmg_slave.c"]
        assert "__thread_local real buffer_read" in slave
        assert "__thread_local real buffer_write" in slave

    def test_buffers_fit_spm(self, bundle):
        slave = bundle.files["hpgmg_slave.c"]
        sizes = [
            int(m) * 8
            for m in re.findall(r"__thread_local real \w+\[(\d+)\]", slave)
        ]
        assert sizes and sum(sizes) <= SUNWAY_CG.spm_bytes

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_all_benchmarks_fit_spm(self, name):
        prog, handle = build_with_schedule(name, "sunway")
        code = generate(
            prog.ir, {handle.kernel.name: handle.schedule}, name,
            target="sunway",
        )
        slave = code.files[f"{name}_slave.c"]
        sizes = [
            int(m) * prog.ir.output.dtype.nbytes
            for m in re.findall(r"__thread_local real \w+\[(\d+)\]", slave)
        ]
        assert sum(sizes) <= SUNWAY_CG.spm_bytes, (name, sizes)


class TestLegalityEnforced:
    def test_unstaged_schedule_rejected(self, stencil_3d7pt_2dep):
        from repro.schedule import LegalityError, Schedule

        kern = stencil_3d7pt_2dep.kernels[0]
        sched = Schedule(kern)
        sched.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.parallel("xo", 64)
        with pytest.raises(LegalityError):
            generate_sunway(stencil_3d7pt_2dep, {kern.name: sched}, "bad")

    def test_bundle_includes_makefile_via_targets(self):
        prog, handle = build_with_schedule("3d13pt_star", "sunway")
        code = generate(
            prog.ir, {handle.kernel.name: handle.schedule}, "mk",
            target="sunway",
        )
        assert "Makefile" in code.files
        assert "sw5cc" in code.files["Makefile"]


@pytest.mark.skipif(
    __import__("shutil").which("gcc") is None, reason="gcc not available"
)
class TestAthreadStubExecution:
    """The bundle compiles against the sequential athread stub and its
    output matches the reference bit-for-bit — the complete generated
    structure (SPM staging, reply counters, round-robin CPE mapping,
    DMA gather/scatter) actually executes."""

    def _build_and_run(self, tmp_path, code, init, steps, shape):
        import subprocess

        import numpy as np

        code.write_to(str(tmp_path))
        srcs = [
            str(tmp_path / f)
            for f in code.files if f.endswith(".c")
        ]
        res = subprocess.run(
            ["gcc", "-O2", "-DMSC_ATHREAD_STUB", *srcs,
             "-o", str(tmp_path / "prog"), "-lm", "-I", str(tmp_path)],
            capture_output=True, text=True,
            timeout=120,
        )
        assert res.returncode == 0, res.stderr
        np.concatenate([p.ravel() for p in init]).tofile(
            str(tmp_path / "i.bin")
        )
        res = subprocess.run(
            [str(tmp_path / "prog"), str(tmp_path / "i.bin"),
             str(steps), str(tmp_path / "o.bin")],
            capture_output=True, text=True,
            timeout=120,
        )
        assert res.returncode == 0, res.stderr
        return np.fromfile(str(tmp_path / "o.bin")).reshape(shape)

    @pytest.mark.parametrize("boundary", ["zero", "periodic"])
    def test_3d_two_time_deps(self, tmp_path, rng, boundary):
        import numpy as np

        from repro.backend import generate
        from repro.backend.numpy_backend import reference_run

        shape = (16, 16, 64)
        prog, handle = build_with_schedule("3d7pt_star", "sunway",
                                           grid=shape)
        code = generate(prog.ir, prog.schedules(), "sw", target="sunway",
                        boundary=boundary)
        init = [rng.random(shape) for _ in range(2)]
        got = self._build_and_run(tmp_path, code, init, 5, shape)
        ref = reference_run(prog.ir, init, 5, boundary=boundary)
        np.testing.assert_array_equal(got, ref)

    def test_wide_radius_3d13pt(self, tmp_path, rng):
        import numpy as np

        from repro.backend import generate
        from repro.backend.numpy_backend import reference_run

        shape = (16, 16, 64)
        prog, handle = build_with_schedule("3d13pt_star", "sunway",
                                           grid=shape)
        code = generate(prog.ir, prog.schedules(), "sw13",
                        target="sunway", boundary="periodic")
        init = [rng.random(shape) for _ in range(2)]
        got = self._build_and_run(tmp_path, code, init, 3, shape)
        ref = reference_run(prog.ir, init, 3, boundary="periodic")
        np.testing.assert_array_equal(got, ref)

    def test_2d_box(self, tmp_path, rng):
        import numpy as np

        from repro.backend import generate
        from repro.backend.numpy_backend import reference_run

        shape = (64, 64)
        prog, handle = build_with_schedule("2d9pt_box", "sunway",
                                           grid=shape)
        code = generate(prog.ir, prog.schedules(), "sw2d",
                        target="sunway", boundary="zero")
        init = [rng.random(shape) for _ in range(2)]
        got = self._build_and_run(tmp_path, code, init, 4, shape)
        ref = reference_run(prog.ir, init, 4, boundary="zero")
        np.testing.assert_array_equal(got, ref)


class TestAthreadGuards:
    def test_non_dividing_tile_rejected(self):
        from repro.backend import generate_sunway
        from repro.schedule import Schedule

        prog, _ = build_with_schedule("3d7pt_star", "sunway",
                                      grid=(16, 16, 64))
        kern = prog.ir.kernels[0]
        bad = Schedule(kern)
        bad.tile(3, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        bad.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        bad.cache_read(prog.ir.output, "br")
        bad.cache_write("bw")
        bad.compute_at("br", "zo")
        bad.compute_at("bw", "zo")
        bad.parallel("xo", 64)
        with pytest.raises(ValueError, match="dividing"):
            generate_sunway(prog.ir, {kern.name: bad}, "bad")
