"""Property-based tests (hypothesis) on core invariants.

Covers: decomposition partitions, halo-region geometry, pack/unpack
round-trips, tile coverage under arbitrary schedules, the sliding
window vs full history equivalence, SPM allocator invariants, the
expression algebra, and simmpi message delivery.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.backend.numpy_backend import ScheduledExecutor, reference_run
from repro.comm import HaloSpec, decompose, halo_regions, pack, unpack
from repro.ir import Kernel, SpNode, Stencil, VarExpr
from repro.ir.expr import ConstExpr
from repro.ir.visitor import fold_constants
from repro.machine.spm import SPMAllocationError, SPMAllocator
from repro.schedule import Schedule, SlidingTimeWindow
from tests.strategies import (
    COMMON,
    process_grids,
    seeds,
    shapes,
    tile_factors,
)


# -- decomposition ----------------------------------------------------------------
@given(
    shape=shapes(2, 4, 40),
    grid=process_grids(2, 4),
)
@settings(max_examples=60, **COMMON)
def test_decomposition_partitions_domain(shape, grid):
    assume(all(g <= s for g, s in zip(grid, shape)))
    subs = decompose(shape, grid)
    seen = np.zeros(shape, dtype=int)
    for sd in subs:
        seen[sd.slices()] += 1
    assert (seen == 1).all()
    # balanced: extents differ by at most one per dimension
    for d in range(2):
        sizes = {sd.shape[d] for sd in subs}
        assert max(sizes) - min(sizes) <= 1


@given(
    sub=st.tuples(st.integers(2, 12), st.integers(2, 12)),
    halo=st.tuples(st.integers(0, 2), st.integers(0, 2)),
)
@settings(max_examples=60, **COMMON)
def test_halo_regions_send_recv_disjoint_and_equal_sized(sub, halo):
    assume(all(h <= s for s, h in zip(sub, halo)))
    spec = HaloSpec(sub, halo)
    plane = np.zeros(spec.padded_shape, dtype=bool)
    for region in halo_regions(spec):
        send = np.zeros_like(plane)
        recv = np.zeros_like(plane)
        send[region.send] = True
        recv[region.recv] = True
        # send and recv strips of one region never overlap
        assert not (send & recv).any()
        # both strips have the same element count (they pair up across
        # neighbouring processes)
        assert send.sum() == recv.sum() == region.count(spec.padded_shape)


@given(
    shape=st.tuples(st.integers(3, 10), st.integers(3, 10)),
    data=st.integers(0, 2 ** 31),
)
@settings(max_examples=50, **COMMON)
def test_pack_unpack_roundtrip(shape, data):
    rng = np.random.default_rng(data)
    plane = rng.random(shape)
    strip = (slice(1, shape[0] - 1), slice(0, shape[1]))
    buf = pack(plane, strip)
    out = np.zeros(shape)
    unpack(buf, out, strip)
    np.testing.assert_array_equal(out[strip], plane[strip])
    assert (out[0] == 0).all()


# -- schedules ---------------------------------------------------------------------
@given(
    extent=shapes(3, 4, 20),
    factors=tile_factors(3),
)
@settings(max_examples=50, **COMMON)
def test_tiles_cover_domain_once_for_any_factors(extent, factors):
    assume(all(f <= e for f, e in zip(factors, extent)))
    k, j, i = VarExpr("k"), VarExpr("j"), VarExpr("i")
    B = SpNode("B", extent, halo=(1, 1, 1))
    kern = Kernel("S", (k, j, i), B[k, j, i])
    sched = Schedule(kern).tile(
        *factors, "xo", "xi", "yo", "yi", "zo", "zi"
    )
    nest = sched.lower(extent)
    seen = np.zeros(extent, dtype=int)
    for tile in nest.iter_tiles():
        sl = tuple(slice(*tile.extent(v)) for v in ("k", "j", "i"))
        seen[sl] += 1
    assert (seen == 1).all()


@given(
    nworkers=st.integers(1, 9),
    factors=tile_factors(2, 1, 6),
)
@settings(max_examples=40, **COMMON)
def test_worker_assignment_partitions_tiles(nworkers, factors):
    j, i = VarExpr("j"), VarExpr("i")
    B = SpNode("B", (12, 12), halo=(1, 1))
    kern = Kernel("S", (j, i), B[j, i])
    nest = Schedule(kern).tile(*factors, "xo", "xi", "yo", "yi").lower(
        (12, 12)
    )
    counts = [
        sum(1 for _ in nest.tiles_for_worker(w, nworkers))
        for w in range(nworkers)
    ]
    assert sum(counts) == nest.ntiles
    assert max(counts) - min(counts) <= 1  # round-robin is balanced


# -- sliding window ------------------------------------------------------------------
@given(steps=st.integers(1, 12), window=st.integers(2, 4))
@settings(max_examples=30, **COMMON)
def test_window_equals_full_history(steps, window):
    """Keeping only W planes gives the same result as keeping all."""
    B = SpNode("B", (6, 6), halo=(1, 1), time_window=window)
    win = SlidingTimeWindow(B)
    rng = np.random.default_rng(steps * 7 + window)
    planes_full = [rng.random((6, 6))]
    win.seed(0, planes_full[0])
    for t in range(1, steps + 1):
        depth = min(t, window - 1)
        new = sum(
            planes_full[t - d] * (0.3 + 0.1 * d) for d in range(1, depth + 1)
        )
        planes_full.append(new)
        plane = win.advance(t)
        win.interior_view(plane)[...] = sum(
            win.valid(t - d) * (0.3 + 0.1 * d) for d in range(1, depth + 1)
        )
    np.testing.assert_allclose(
        win.valid(steps), planes_full[steps], rtol=1e-12
    )


# -- SPM allocator -----------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(1, 4096), min_size=1, max_size=12),
)
@settings(max_examples=60, **COMMON)
def test_spm_allocator_invariants(sizes):
    spm = SPMAllocator(16 * 1024, align=32)
    live = {}
    for idx, size in enumerate(sizes):
        name = f"b{idx}"
        try:
            block = spm.alloc(name, size)
        except SPMAllocationError:
            continue
        live[name] = block
        assert block.nbytes >= size
        assert block.offset % 32 == 0
    # no two live blocks overlap
    blocks = sorted(live.values(), key=lambda b: b.offset)
    for a, b in zip(blocks, blocks[1:]):
        assert a.end <= b.offset
    assert spm.used <= spm.capacity
    assert spm.peak <= spm.capacity


# -- expression algebra -------------------------------------------------------------
@given(
    a=st.floats(-100, 100, allow_nan=False),
    b=st.floats(-100, 100, allow_nan=False),
)
@settings(max_examples=60, **COMMON)
def test_constant_folding_matches_python(a, b):
    e = (ConstExpr(a) + ConstExpr(b)) * ConstExpr(2.0) - ConstExpr(a)
    out = fold_constants(e)
    assert isinstance(out, ConstExpr)
    assert out.value == pytest.approx((a + b) * 2.0 - a, abs=1e-9)


@given(
    coef=st.lists(st.floats(-1, 1, allow_nan=False, allow_infinity=False),
                  min_size=3, max_size=3),
    seed=seeds(),
)
@settings(max_examples=25, **COMMON)
def test_stencil_linearity(coef, seed):
    """The stencil operator is linear: S(a·x) == a·S(x)."""
    assume(any(abs(c) > 1e-6 for c in coef))
    j, i = VarExpr("j"), VarExpr("i")
    B = SpNode("B", (8, 8), halo=(1, 1), time_window=2)
    kern = Kernel(
        "lin", (j, i),
        coef[0] * B[j, i] + coef[1] * B[j, i - 1] + coef[2] * B[j + 1, i],
    )
    stencil = Stencil(B, kern[Stencil.t - 1])
    rng = np.random.default_rng(seed)
    x = rng.random((8, 8))
    y1 = reference_run(stencil, [x], 1, boundary="periodic")
    y2 = reference_run(stencil, [3.0 * x], 1, boundary="periodic")
    np.testing.assert_allclose(y2, 3.0 * y1, rtol=1e-10, atol=1e-12)


@pytest.mark.slow
@given(
    factors=tile_factors(2),
    seed=seeds(),
)
@settings(max_examples=25, **COMMON)
def test_schedule_never_changes_results(factors, seed):
    """Any legal tiling produces bitwise-identical results (Sec. 5.1)."""
    j, i = VarExpr("j"), VarExpr("i")
    B = SpNode("B", (10, 14), halo=(1, 1), time_window=3)
    kern = Kernel(
        "S", (j, i),
        0.3 * B[j, i] + 0.2 * (B[j, i - 1] + B[j - 1, i]),
    )
    st_ = Stencil(B, 0.7 * kern[Stencil.t - 1] + 0.3 * kern[Stencil.t - 2])
    sched = Schedule(kern).tile(
        min(factors[0], 10), min(factors[1], 14), "a", "b", "c", "d"
    )
    rng = np.random.default_rng(seed)
    init = [rng.random((10, 14)) for _ in range(2)]
    ref = reference_run(st_, init, 3, boundary="periodic")
    got = ScheduledExecutor(
        st_, {"S": sched}, boundary="periodic"
    ).run(init, 3)
    np.testing.assert_array_equal(got, ref)
