"""Property-based tests for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.backend.numpy_backend import reference_run
from repro.backend.pipeline_exec import PipelineExecutor
from repro.backend.temporal_exec import TemporalTilingExecutor
from repro.frontend import build_benchmark
from repro.inspector import WorkloadMap, decompose_weighted, weighted_cuts
from repro.ir import Kernel, SpNode, StagePipeline, Stencil, VarExpr, f64
from repro.runtime.topology import fat_tree, route_exchange, torus
from tests.strategies import (
    COMMON,
    boundaries,
    process_grids,
    seeds,
    shapes,
    tile_factors,
)


@pytest.mark.slow
@given(
    tile=tile_factors(2, 3, 10),
    depth=st.integers(1, 3),
    seed=seeds(),
    boundary=boundaries,
)
@settings(max_examples=20, **COMMON)
def test_temporal_tiling_always_exact(tile, depth, seed, boundary):
    """Any tile/depth combination reproduces the reference bitwise."""
    grid = (12, 15)
    prog, _ = build_benchmark("2d9pt_star", grid=grid, boundary=boundary)
    rng = np.random.default_rng(seed)
    init = [rng.random(grid) for _ in range(2)]
    ref = reference_run(prog.ir, init, 2 * depth, boundary=boundary)
    got = TemporalTilingExecutor(
        prog.ir, tile, depth, boundary=boundary
    ).run(init, 2)
    np.testing.assert_array_equal(got, ref)


@given(
    marginal=st.lists(st.floats(0, 100, allow_nan=False),
                      min_size=4, max_size=30),
    parts=st.integers(1, 4),
)
@settings(max_examples=60, **COMMON)
def test_weighted_cuts_partition_and_balance(marginal, parts):
    marginal = np.asarray(marginal)
    assume(parts <= len(marginal))
    cuts = weighted_cuts(marginal, parts)
    # cuts partition [0, n) contiguously and are non-empty
    assert cuts[0][0] == 0 and cuts[-1][1] == len(marginal)
    for (a0, a1), (b0, b1) in zip(cuts, cuts[1:]):
        assert a1 == b0
    assert all(hi > lo for lo, hi in cuts)


@given(
    shape=shapes(2, 6, 24),
    grid=process_grids(2, 3),
    seed=seeds(),
)
@settings(max_examples=40, **COMMON)
def test_weighted_decomposition_partitions_domain(shape, grid, seed):
    assume(all(g <= s for g, s in zip(grid, shape)))
    rng = np.random.default_rng(seed)
    w = WorkloadMap(rng.random(shape) + 0.01)
    subs = decompose_weighted(shape, grid, w)
    seen = np.zeros(shape, dtype=int)
    for sd in subs:
        seen[sd.slices()] += 1
    assert (seen == 1).all()


@given(seed=seeds(), stages=st.integers(1, 3))
@settings(max_examples=15, **COMMON)
def test_pipeline_stage_chain_linear(seed, stages):
    """A chain of averaging stages stays linear: P(a·x) == a·P(x)."""
    shape = (10, 10)
    j, i = VarExpr("j"), VarExpr("i")
    tensors = [
        SpNode(f"T{s}", shape, f64, halo=(1, 1), time_window=2)
        for s in range(stages)
    ]
    stencils = []
    t = Stencil.t
    for s, tensor in enumerate(tensors):
        src = tensors[s - 1] if s > 0 else tensor
        kern = Kernel(
            f"avg{s}", (j, i),
            0.5 * src[j, i] + 0.25 * (src[j, i - 1] + src[j, i + 1]),
        )
        stencils.append(Stencil(tensor, kern[t - 1]))
    pipe = StagePipeline(tuple(stencils))
    rng = np.random.default_rng(seed)
    x = rng.random(shape)
    seeds = {"T0": [x]}
    out1 = PipelineExecutor(pipe, boundary="periodic").run(seeds, 2)
    out2 = PipelineExecutor(pipe, boundary="periodic").run(
        {"T0": [2.5 * x]}, 2
    )
    last = tensors[-1].name
    np.testing.assert_allclose(
        out2[last], 2.5 * out1[last], rtol=1e-12, atol=1e-12
    )


@given(
    radix=st.integers(2, 8),
    nhosts=st.integers(4, 32),
)
@settings(max_examples=30, **COMMON)
def test_fat_tree_always_connected(radix, nhosts):
    import networkx as nx

    topo = fat_tree(nhosts, radix=radix)
    assert len(topo.hosts) == nhosts
    assert nx.is_connected(topo.graph)


@given(
    dims=st.tuples(st.integers(2, 4), st.integers(2, 4)),
    pgrid=st.tuples(st.integers(1, 3), st.integers(1, 3)),
)
@settings(max_examples=20, **COMMON)
@pytest.mark.slow
def test_routed_bytes_conserved_on_any_torus(dims, pgrid):
    """Total routed bytes equal the analytical per-process halo sum."""
    from repro.ir.analysis import halo_traffic_bytes

    nprocs = pgrid[0] * pgrid[1]
    nhosts = dims[0] * dims[1]
    assume(nprocs <= nhosts)
    grid_shape = (pgrid[0] * 8, pgrid[1] * 8)
    prog, _ = build_benchmark("2d9pt_star", grid=grid_shape)
    load = route_exchange(prog.ir, pgrid, torus(dims), periodic=True)
    sub = (grid_shape[0] // pgrid[0], grid_shape[1] // pgrid[1])
    expected = nprocs * halo_traffic_bytes(prog.ir, sub)
    if nprocs == 1:
        # self-neighbours collapse: no off-host messages
        assert load.total_bytes == 0
    else:
        # messages to self-hosted ranks are skipped when a grid dim is 1
        assert load.total_bytes <= expected
        assert load.total_bytes > 0
