"""Fault injection and the resilient halo exchange.

The seed for the end-to-end injection tests honours the
``REPRO_FAULT_SEED`` environment variable so CI can sweep a seed
matrix; every property here must hold for *any* seed.  The exchange
mode honours ``REPRO_EXCHANGE_MODE`` the same way (CI sweeps the
fault-seed x exchange-mode product), and ``TestExchangeModesUnderFaults``
additionally pins every mode explicitly regardless of the environment.
"""

import os
import time

import numpy as np
import pytest

from repro.frontend import build_benchmark
from repro.obs import capture
from repro.runtime.executor import distributed_run
from repro.runtime.faults import (
    FaultInjector,
    FaultSpec,
    parse_fault_spec,
)
from repro.runtime.simmpi import (
    RankCrashedError,
    SimMPIError,
    SimMPITimeout,
    run_ranks,
)

SEED = int(os.environ.get("REPRO_FAULT_SEED", "7"))
MODE = os.environ.get("REPRO_EXCHANGE_MODE", "basic")


def _faulty_run(spec, seed=SEED, steps=3, mode=MODE):
    """One small distributed run under the given fault spec."""
    prog, _ = build_benchmark("2d9pt_box", grid=(20, 20),
                              boundary="periodic")
    rng = np.random.default_rng(0)
    init = [rng.random((20, 20)) for _ in range(2)]
    injector = FaultInjector(spec, seed=seed) if spec else None
    result = distributed_run(prog.ir, init, steps, (2, 2),
                             boundary="periodic", faults=injector,
                             exchange_mode=mode)
    return result, injector


class TestSpecParsing:
    def test_all_kinds(self):
        specs = parse_fault_spec(
            "drop:p=0.2,delay:p=0.1:ms=5,dup:p=0.05,reorder:p=0.1,"
            "crash:rank=2:step=3"
        )
        kinds = [s.kind for s in specs]
        assert kinds == ["drop", "delay", "dup", "reorder", "crash"]
        assert specs[0].probability == 0.2
        assert specs[1].delay_s == pytest.approx(5e-3)
        assert specs[4].rank == 2 and specs[4].step == 3

    def test_delay_seconds_key(self):
        (spec,) = parse_fault_spec("delay:p=1:s=0.5")
        assert spec.delay_s == 0.5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_spec("jitter:p=0.5")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            parse_fault_spec("drop:q=0.5")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="KEY=VALUE"):
            parse_fault_spec("drop:p")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty fault spec"):
            parse_fault_spec(" , ")

    def test_probability_range_checked(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="drop", probability=1.5)

    def test_crash_needs_rank_and_step(self):
        with pytest.raises(ValueError, match="crash faults need"):
            parse_fault_spec("crash:rank=1")


class TestDeterminism:
    def test_same_seed_same_verdicts(self):
        a = FaultInjector("drop:p=0.3,dup:p=0.2", seed=SEED)
        b = FaultInjector("drop:p=0.3,dup:p=0.2", seed=SEED)
        va = [a.on_message(0, 1, t % 5) for t in range(500)]
        vb = [b.on_message(0, 1, t % 5) for t in range(500)]
        assert va == vb
        assert a.counts == b.counts

    def test_different_seed_differs(self):
        a = FaultInjector("drop:p=0.3", seed=SEED)
        b = FaultInjector("drop:p=0.3", seed=SEED + 1)
        va = [a.on_message(0, 1, 0).drop for _ in range(200)]
        vb = [b.on_message(0, 1, 0).drop for _ in range(200)]
        assert va != vb

    def test_thread_interleaving_irrelevant(self):
        """Verdicts are keyed on message identity, not call order."""
        seq = FaultInjector("drop:p=0.4", seed=SEED)
        mix = FaultInjector("drop:p=0.4", seed=SEED)
        stream_a = [seq.on_message(0, 1, 7) for _ in range(50)]
        stream_b = [seq.on_message(2, 3, 9) for _ in range(50)]
        mixed_a, mixed_b = [], []
        for _ in range(50):  # interleave the two streams
            mixed_b.append(mix.on_message(2, 3, 9))
            mixed_a.append(mix.on_message(0, 1, 7))
        assert stream_a == mixed_a
        assert stream_b == mixed_b

    def test_crash_due_fires_exactly_once_at_step(self):
        inj = FaultInjector("crash:rank=1:step=3", seed=SEED)
        assert [inj.crash_due(1) for _ in range(5)] == [
            False, False, True, False, False
        ]
        assert not any(inj.crash_due(0) for _ in range(10))

    def test_reset_replays_identically(self):
        inj = FaultInjector("drop:p=0.3", seed=SEED)
        first = [inj.on_message(0, 1, 0) for _ in range(100)]
        inj.reset()
        again = [inj.on_message(0, 1, 0) for _ in range(100)]
        assert first == again


class TestResilientExchange:
    def test_drop_then_retry_matches_fault_free(self):
        clean, _ = _faulty_run(None)
        faulty, inj = _faulty_run("drop:p=0.2")
        assert inj.counts["drop"] > 0, "spec never fired — test is vacuous"
        np.testing.assert_array_equal(clean, faulty)

    def test_dup_delay_reorder_matches_fault_free(self):
        clean, _ = _faulty_run(None)
        faulty, inj = _faulty_run(
            "dup:p=0.2,reorder:p=0.2,delay:p=0.15:ms=5"
        )
        assert sum(inj.counts.values()) > 0
        np.testing.assert_array_equal(clean, faulty)

    def test_faulty_runs_are_reproducible(self):
        # results are bitwise reproducible; exact fault *counts* may
        # differ between runs because retransmissions are themselves
        # subject to injection and their number depends on retry timing
        # (per-message verdicts are deterministic — see TestDeterminism)
        a, inj_a = _faulty_run("drop:p=0.2,dup:p=0.1")
        b, inj_b = _faulty_run("drop:p=0.2,dup:p=0.1")
        np.testing.assert_array_equal(a, b)
        assert inj_a.counts["drop"] > 0
        assert inj_b.counts["drop"] > 0

    def test_injector_attached_but_silent_is_exact(self):
        """p=0 engages the ACK protocol without any faults."""
        clean, _ = _faulty_run(None)
        silent, inj = _faulty_run("drop:p=0.0")
        assert sum(inj.counts.values()) == 0
        np.testing.assert_array_equal(clean, silent)

    def test_retry_counters_nonzero_faulty_zero_clean(self):
        with capture() as (_, reg):
            _faulty_run("drop:p=0.25")
        assert reg.counter_total("comm.retry") > 0
        assert reg.counter_total("faults.drop") > 0
        with capture() as (_, reg):
            _faulty_run(None)
        assert reg.counter_total("comm.retry") == 0

    def test_crash_surfaces_named_rank_quickly(self):
        start = time.monotonic()
        with pytest.raises(SimMPIError, match="rank 2 crashed"):
            _faulty_run("crash:rank=2:step=5")
        assert time.monotonic() - start < 30.0, "crash must not hang"

    def test_retries_exhausted_is_an_error(self):
        """A fabric that drops everything cannot be retried around."""
        from repro.comm.exchange import AsyncHaloExchanger
        from repro.comm.halo import HaloSpec

        def main(comm):
            spec = HaloSpec((4, 4), (1, 1))
            ex = AsyncHaloExchanger(comm, spec, retry_timeout=0.05,
                                    max_retries=2, op_timeout=5.0)
            plane = np.full(spec.padded_shape, float(comm.rank))
            ex.exchange(plane)

        with pytest.raises(SimMPIError, match="unacknowledged|crashed"):
            run_ranks(4, main, cart_dims=(2, 2), periods=(True, True),
                      faults="drop:p=1.0")


class TestFlowEdgesUnderFaults:
    """Message-flow correlation must stay honest when the fabric lies.

    A dropped strip's retransmission is a *new* physical message, so
    its flow edge must land on the ``comm.retry`` span that posted it
    — never on the original ``comm.send`` — while the dropped copy
    stays a legal dangling outbound edge.  These properties must hold
    for any ``REPRO_FAULT_SEED``.
    """

    def _traced_faulty_run(self, spec, steps=3):
        from repro.obs.distributed import DistributedTrace

        with capture() as (tr, reg):
            _, inj = _faulty_run(spec, steps=steps)
        return DistributedTrace.from_live(tr, reg), inj

    def test_trace_well_formed_under_drops(self):
        dt, inj = self._traced_faulty_run("drop:p=0.25")
        assert inj.counts["drop"] > 0
        assert dt.validate() == []
        assert not dt.orphan_in

    def test_retransmission_flows_land_on_retry_spans(self):
        dt, inj = self._traced_faulty_run("drop:p=0.3")
        assert inj.counts["drop"] > 0
        producer_names = {
            dt.by_id[e.src_span]["name"] for e in dt.edges
        }
        assert "comm.retry" in producer_names
        # every matched flow was produced by a send-like span (gather
        # payloads ride the reliable plane but are still flow-tracked),
        # and the dropped originals survive only as dangling edges
        assert producer_names <= {
            "comm.send", "comm.retry", "runtime.gather"
        }
        assert dt.dangling_out
        dangling_producers = {
            dt.by_id[dt.producers[f]]["name"] for f in dt.dangling_out
        }
        assert "comm.send" in dangling_producers

    def test_resilient_consumers_are_unpack_spans(self):
        # defer_flow re-homing: the posted-early Irecv must credit the
        # comm.unpack span that actually consumed the strip, not the
        # enclosing comm.exchange
        dt, _ = self._traced_faulty_run("drop:p=0.0")
        consumer_names = {
            dt.by_id[e.dst_span]["name"] for e in dt.edges
        }
        assert "comm.unpack" in consumer_names
        assert "comm.exchange" not in consumer_names

    def test_duplicate_delivery_shares_one_flow_id(self):
        # an injected duplicate is the *same* physical message twice,
        # so both deliveries carry the original flow id — two
        # consumers, one producer, and the trace stays well-formed
        from repro.obs.distributed import DistributedTrace
        from repro.obs import capture, span

        def main(comm):
            if comm.rank == 0:
                with span("app.send"):
                    comm.Send(np.array([5.0]), dest=1)
                return None
            buf = np.zeros(1)
            with span("app.recv1"):
                comm.Recv(buf, source=0, timeout=2.0)
            with span("app.recv2"):
                comm.Recv(buf, source=0, timeout=2.0)
            return buf[0]

        with capture() as (tr, reg):
            run_ranks(2, main, faults="dup:p=1.0")
        dt = DistributedTrace.from_live(tr, reg)
        assert dt.validate() == []  # two consumers per id are legal
        dup_ids = [f for f, c in dt.consumers.items() if len(c) == 2]
        assert len(dup_ids) == 1
        consumer_names = {
            dt.by_id[s]["name"] for s in dt.consumers[dup_ids[0]]
        }
        assert consumer_names == {"app.recv1", "app.recv2"}

    def test_stale_duplicates_do_not_orphan_the_trace(self):
        dt, inj = self._traced_faulty_run("dup:p=0.3")
        assert inj.counts["dup"] > 0
        assert dt.validate() == []

    def test_flow_edges_cross_ranks_under_faults(self):
        dt, _ = self._traced_faulty_run("drop:p=0.2,dup:p=0.1")
        assert dt.validate() == []
        assert any(e.crosses_ranks for e in dt.edges)


class TestWorldFaultPlumbing:
    def test_run_ranks_accepts_spec_string(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.ones(1), dest=1)
                return None
            buf = np.zeros(1)
            with pytest.raises(SimMPITimeout):
                comm.Recv(buf, source=0, timeout=0.2)
            return True

        assert run_ranks(2, main, faults="drop:p=1.0")[1] is True

    def test_reliable_sends_bypass_message_faults(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.ones(1), dest=1, reliable=True)
                return None
            buf = np.zeros(1)
            comm.Recv(buf, source=0, timeout=2.0)
            return buf[0]

        assert run_ranks(2, main, faults="drop:p=1.0")[1] == 1.0

    def test_collectives_survive_total_drop(self):
        def main(comm):
            return comm.gather(comm.rank, root=0)

        res = run_ranks(3, main, faults="drop:p=1.0")
        assert res[0] == [0, 1, 2]

    def test_duplicate_delivers_twice(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.array([5.0]), dest=1)
                return None
            buf = np.zeros(1)
            comm.Recv(buf, source=0, timeout=2.0)
            comm.Recv(buf, source=0, timeout=2.0)  # the duplicate
            return buf[0]

        assert run_ranks(2, main, faults="dup:p=1.0")[1] == 5.0

    def test_crashed_rank_cannot_send_reliable(self):
        def main(comm):
            if comm.rank == 0:
                for _ in range(3):
                    comm.Send(np.ones(1), dest=1, reliable=True)
                return None
            buf = np.zeros(1)
            for _ in range(3):
                comm.Recv(buf, source=0, timeout=5.0)
            return True

        with pytest.raises(SimMPIError, match="rank 0 crashed"):
            run_ranks(2, main, faults="crash:rank=0:step=2")

    def test_injected_crash_is_rank_crashed_error(self):
        seen = {}

        def main(comm):
            try:
                comm.Send(np.ones(1), dest=(comm.rank + 1) % 2)
            except RankCrashedError as exc:
                seen["exc"] = exc
                raise

        with pytest.raises(SimMPIError, match="rank 1 crashed"):
            run_ranks(2, main, faults="crash:rank=1:step=1")
        assert isinstance(seen["exc"], RankCrashedError)

    def test_summary_lists_hits(self):
        inj = FaultInjector("drop:p=1.0", seed=SEED)
        assert inj.summary() == "no faults injected"
        inj.on_message(0, 1, 0)
        assert inj.summary() == "drop=1"


@pytest.mark.parametrize("mode", ["basic", "diag", "overlap"])
class TestExchangeModesUnderFaults:
    """The fault x exchange-mode matrix: every wire protocol must
    survive every fabric lie with a bit-identical result, and the
    retransmitted strips must stay honestly attributed in the trace."""

    def test_drop_matches_fault_free(self, mode):
        clean, _ = _faulty_run(None, mode=mode)
        faulty, inj = _faulty_run("drop:p=0.2", mode=mode)
        assert inj.counts["drop"] > 0, "spec never fired — test is vacuous"
        np.testing.assert_array_equal(clean, faulty)

    def test_dup_delay_reorder_matches_fault_free(self, mode):
        clean, _ = _faulty_run(None, mode=mode)
        faulty, inj = _faulty_run(
            "dup:p=0.2,reorder:p=0.2,delay:p=0.15:ms=5", mode=mode
        )
        assert sum(inj.counts.values()) > 0
        np.testing.assert_array_equal(clean, faulty)

    def test_modes_agree_under_faults(self, mode):
        # the cross-mode differential also holds on a *faulty* fabric:
        # retransmissions reorder messages, never arithmetic
        base, _ = _faulty_run("drop:p=0.25", mode="basic")
        got, inj = _faulty_run("drop:p=0.25", mode=mode)
        assert inj.counts["drop"] > 0
        np.testing.assert_array_equal(base, got)

    def test_retry_flows_land_on_retry_spans(self, mode):
        from repro.obs.distributed import DistributedTrace

        with capture() as (tr, reg):
            _, inj = _faulty_run("drop:p=0.3", mode=mode)
        assert inj.counts["drop"] > 0
        assert reg.counter_total("comm.retry") > 0
        dt = DistributedTrace.from_live(tr, reg)
        assert dt.validate() == []
        producer_names = {
            dt.by_id[e.src_span]["name"] for e in dt.edges
        }
        assert "comm.retry" in producer_names
