"""Tests for the Sunway and cache-machine architectural simulators."""

import pytest

from repro.evalsuite.harness import build_with_schedule
from repro.ir import f32, f64
from repro.machine import (
    CacheMachineSimulator,
    SunwaySimulator,
    simulate_cpu,
    simulate_matrix,
    simulate_sunway,
)
from repro.machine.spec import CPU_E5_2680V4, MATRIX_SN, SUNWAY_CG
from repro.schedule import Schedule
from tests.conftest import make_3d7pt
from repro.ir import Stencil


def _sunway_ready(shape=(256, 256, 256), dtype=f64):
    tensor, kern = make_3d7pt(shape=shape, dtype=dtype)
    t = Stencil.t
    st = Stencil(tensor, 0.6 * kern[t - 1] + 0.4 * kern[t - 2])
    s = Schedule(kern)
    s.tile(2, 8, 64, "xo", "xi", "yo", "yi", "zo", "zi")
    s.reorder("xo", "yo", "zo", "xi", "yi", "zi")
    s.cache_read(tensor, "br")
    s.cache_write("bw")
    s.compute_at("br", "zo")
    s.compute_at("bw", "zo")
    s.parallel("xo", 64)
    return st, s


class TestSunwaySimulator:
    def test_paper_structural_claims_3d7pt(self):
        # Sec. 5.2.1: 64 CPEs fully utilised, each computing 256 tiles
        st, s = _sunway_ready()
        r = simulate_sunway(st, s)
        assert r.details["ntiles"] == 16384
        assert r.details["tiles_per_cpe"] == 256
        assert r.details["active_cpes"] == 64

    def test_spm_utilisation_under_capacity(self):
        st, s = _sunway_ready()
        r = simulate_sunway(st, s)
        assert 0.0 < r.details["spm_utilisation"] <= 1.0

    def test_memory_bound(self):
        # Fig. 9a: 3d7pt is memory-bound on Sunway
        st, s = _sunway_ready()
        r = simulate_sunway(st, s)
        assert r.memory_s > r.compute_s

    def test_fp32_roughly_halves_time(self):
        st64, s64 = _sunway_ready(dtype=f64)
        st32, s32 = _sunway_ready(dtype=f32)
        t64 = simulate_sunway(st64, s64).step_s
        t32 = simulate_sunway(st32, s32).step_s
        assert t32 == pytest.approx(t64 / 2, rel=0.15)

    def test_dma_stats_cover_all_tiles(self):
        st, s = _sunway_ready()
        r = simulate_sunway(st, s, timesteps=2)
        # two sweeps per step (two applications), one get+put per visit
        assert r.dma.n_gets == 16384 * 2 * 2
        assert r.dma.n_puts == 16384 * 2 * 2

    def test_illegal_schedule_rejected(self):
        tensor, kern = make_3d7pt(shape=(64, 64, 64))
        st = Stencil(tensor, kern[Stencil.t - 1])
        s = Schedule(kern)  # no tiling, no SPM staging
        with pytest.raises(Exception, match="cache_read"):
            simulate_sunway(st, s)

    def test_cache_machine_rejected(self):
        with pytest.raises(ValueError, match="cache-less"):
            SunwaySimulator(MATRIX_SN)

    def test_gflops_positive_and_below_peak(self):
        st, s = _sunway_ready()
        r = simulate_sunway(st, s)
        assert 0 < r.gflops < SUNWAY_CG.peak_gflops

    def test_timesteps_scale_total(self):
        st, s = _sunway_ready()
        r1 = simulate_sunway(st, s, timesteps=1)
        r10 = simulate_sunway(st, s, timesteps=10)
        assert r10.total_s == pytest.approx(10 * r1.total_s)

    def test_bad_timesteps(self):
        st, s = _sunway_ready()
        with pytest.raises(ValueError):
            simulate_sunway(st, s, timesteps=0)


class TestCacheMachineSimulator:
    def _matrix_ready(self, dtype=f64):
        tensor, kern = make_3d7pt(shape=(256, 256, 256), dtype=dtype)
        st = Stencil(tensor, 0.6 * kern[Stencil.t - 1]
                     + 0.4 * kern[Stencil.t - 2])
        s = Schedule(kern)
        s.tile(2, 8, 256, "xo", "xi", "yo", "yi", "zo", "zi")
        s.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        s.parallel("xo", 32)
        return st, s

    def test_memory_bound_3d7pt(self):
        st, s = self._matrix_ready()
        r = simulate_matrix(st, s)
        assert r.memory_s > r.compute_s

    def test_cacheless_machine_rejected(self):
        with pytest.raises(ValueError, match="cache-less"):
            CacheMachineSimulator(SUNWAY_CG)

    def test_cpu_faster_than_matrix_sn(self):
        # E5 server has ~8x the SN's bandwidth
        st, s = self._matrix_ready()
        t_matrix = simulate_matrix(st, s).step_s
        t_cpu = simulate_cpu(st, s).step_s
        assert t_cpu < t_matrix

    def test_tile_fitting_cache_reported(self):
        st, s = self._matrix_ready()
        r = simulate_matrix(st, s)
        assert r.details["fits_in_cache"] == 1.0

    def test_report_speedup_helper(self):
        st, s = self._matrix_ready()
        a = simulate_matrix(st, s)
        b = simulate_cpu(st, s)
        assert b.speedup_over(a) == pytest.approx(a.total_s / b.total_s)


class TestHarnessSchedules:
    @pytest.mark.parametrize("target", ["sunway", "matrix", "cpu"])
    def test_table5_schedules_build(self, target):
        prog, handle = build_with_schedule("3d13pt_star", target)
        nest = handle.schedule.lower(prog.ir.output.shape)
        assert nest.ntiles > 0

    def test_sunway_schedules_legal_for_all_benchmarks(self):
        from repro.frontend.stencils import BENCHMARK_NAMES
        from repro.schedule import check_schedule

        for name in BENCHMARK_NAMES:
            prog, handle = build_with_schedule(name, "sunway")
            nest = handle.schedule.lower(prog.ir.output.shape)
            check_schedule(handle.schedule, nest, SUNWAY_CG)
