"""Unit tests for repro.ir.dtypes."""

import numpy as np
import pytest

from repro.ir.dtypes import ALL_DTYPES, DType, dtype_from_name, f32, f64, i32


class TestDTypeBasics:
    def test_supported_types_match_paper(self):
        # Sec. 4.2: MSC supports i32, f32 and f64
        assert {dt.name for dt in ALL_DTYPES} == {"i32", "f32", "f64"}

    @pytest.mark.parametrize("dt,nbytes", [(i32, 4), (f32, 4), (f64, 8)])
    def test_widths(self, dt, nbytes):
        assert dt.nbytes == nbytes

    @pytest.mark.parametrize(
        "dt,np_dt",
        [(i32, np.int32), (f32, np.float32), (f64, np.float64)],
    )
    def test_numpy_mapping(self, dt, np_dt):
        assert dt.np_dtype == np.dtype(np_dt)

    @pytest.mark.parametrize(
        "dt,c", [(i32, "int"), (f32, "float"), (f64, "double")]
    )
    def test_c_spelling(self, dt, c):
        assert dt.c_name == c

    def test_float_flags(self):
        assert f32.is_float and f64.is_float and not i32.is_float


class TestTolerances:
    def test_paper_tolerances(self):
        # Sec. 5.1: fp32 relative error < 1e-5, fp64 < 1e-10
        assert f32.tolerance == 1e-5
        assert f64.tolerance == 1e-10

    def test_integer_tolerance_exact(self):
        assert i32.tolerance == 0.0


class TestLookup:
    @pytest.mark.parametrize("name", ["i32", "f32", "f64"])
    def test_lookup_roundtrip(self, name):
        assert dtype_from_name(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dtype"):
            dtype_from_name("f16")

    def test_dtype_is_hashable_and_frozen(self):
        assert {f64: 1}[f64] == 1
        with pytest.raises(AttributeError):
            f64.nbytes = 16
