"""Tests for the performance observatory (``repro.obs.perf``)."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro import obs
from repro.cli import main
from repro.obs import perf
from repro.obs.perf.compare import _worse_frac
from repro.obs.perf.runner import MetricSpec, Workload, WorkloadOutput


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# -- phase attribution ---------------------------------------------------
class TestPhases:
    def test_taxonomy_mapping(self):
        assert perf.phase_of("frontend.parse") == "frontend"
        assert perf.phase_of("schedule.lower") == "lower"
        assert perf.phase_of("machine.lower_schedule") == "lower"
        assert perf.phase_of("codegen.sunway.slave") == "codegen"
        assert perf.phase_of("machine.compute_model") == "compute"
        assert perf.phase_of("runtime.kernel_eval") == "compute"
        assert perf.phase_of("machine.dma_model") == "spm-dma"
        assert perf.phase_of("machine.cache_model") == "spm-dma"
        assert perf.phase_of("machine.spm_alloc") == "spm-dma"
        assert perf.phase_of("comm.pack") == "halo-pack"
        assert perf.phase_of("comm.send") == "send-wait"
        assert perf.phase_of("comm.wait") == "send-wait"
        assert perf.phase_of("comm.retry") == "send-wait"
        assert perf.phase_of("comm.unpack") == "unpack"
        assert perf.phase_of("autotune.trial") == "tune"
        assert perf.phase_of("runtime.step") == "runtime"
        assert perf.phase_of("cli.simulate") == "other"
        assert perf.phase_of("machine.sunway_sim") == "other"

    def test_every_mapping_lands_in_taxonomy(self):
        from repro.obs.perf.phases import _EXACT, _PREFIXES

        for phase in list(_EXACT.values()) + [p for _, p in _PREFIXES]:
            assert phase in perf.PHASES

    def test_self_time_attribution(self):
        spans = [
            {"span_id": 1, "parent_id": None, "name": "machine.sunway_sim",
             "duration_s": 1.0, "attrs": {}},
            {"span_id": 2, "parent_id": 1, "name": "machine.dma_model",
             "duration_s": 0.6, "attrs": {}},
            {"span_id": 3, "parent_id": 1, "name": "machine.compute_model",
             "duration_s": 0.3, "attrs": {}},
        ]
        attr = perf.attribute(spans)
        assert attr.total_s == pytest.approx(1.0)
        assert attr.phases["spm-dma"].time_s == pytest.approx(0.6)
        assert attr.phases["compute"].time_s == pytest.approx(0.3)
        # the parent keeps only its self time
        assert attr.phases["other"].time_s == pytest.approx(0.1)
        assert attr.attributed_s == pytest.approx(1.0)
        assert attr.coverage == pytest.approx(1.0)

    def test_bytes_accumulate_per_phase(self):
        spans = [
            {"span_id": 1, "parent_id": None, "name": "comm.send",
             "duration_s": 0.1, "attrs": {"bytes": 100}},
            {"span_id": 2, "parent_id": None, "name": "comm.send",
             "duration_s": 0.1, "attrs": {"bytes": 50}},
        ]
        attr = perf.attribute(spans)
        assert attr.phases["send-wait"].bytes == 150
        assert attr.phases["send-wait"].count == 2

    def test_attribution_from_live_trace(self):
        with obs.capture() as (tr, _):
            with obs.span("runtime.step"):
                with obs.span("comm.pack"):
                    pass
                with obs.span("runtime.kernel_eval"):
                    pass
        attr = perf.attribute(tr.records)
        assert set(attr.phases) >= {"runtime", "halo-pack", "compute"}
        assert attr.coverage >= 0.95

    def test_share_and_empty(self):
        attr = perf.attribute([])
        assert attr.total_s == 0.0
        assert attr.coverage == 1.0
        assert attr.share("compute") == 0.0

    def test_to_dict_orders_phases(self):
        spans = [
            {"span_id": 1, "parent_id": None, "name": "comm.unpack",
             "duration_s": 0.1, "attrs": {}},
            {"span_id": 2, "parent_id": None, "name": "frontend.parse",
             "duration_s": 0.2, "attrs": {}},
        ]
        doc = perf.attribute(spans).to_dict()
        assert list(doc["phases"]) == ["frontend", "unpack"]
        assert doc["coverage"] == pytest.approx(1.0)


# -- statistical aggregation ---------------------------------------------
class TestAggregate:
    def test_median_mad_ci(self):
        agg = perf.aggregate([1.0, 2.0, 3.0, 4.0, 100.0])
        assert agg["median"] == 3.0
        assert agg["mad"] == 1.0  # robust to the outlier
        assert agg["n"] == 5
        assert agg["min"] == 1.0 and agg["max"] == 100.0
        lo, hi = agg["ci95"]
        assert lo < 3.0 < hi

    def test_deterministic_values_zero_width(self):
        agg = perf.aggregate([5.0, 5.0, 5.0])
        assert agg["mad"] == 0.0
        assert agg["ci95"] == [5.0, 5.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            perf.aggregate([])


# -- runner ---------------------------------------------------------------
def _toy_workload(value: float = 1.0, gate: bool = True) -> Workload:
    def fn(seed):
        with obs.span("machine.dma_model"):
            pass
        return WorkloadOutput(
            metrics={"m": value},
            phases_sim={"spm-dma": {"time_s": value}},
        )

    return Workload(
        name="toy",
        fn=fn,
        metric_specs={"m": MetricSpec("s", "lower", gate=gate)},
        meta={"kind": "toy"},
    )


class TestRunner:
    def test_run_workload_shape(self):
        wl = _toy_workload()
        res = perf.run_workload(wl, repeats=3, warmup=1, seed=7)
        assert res["samples"] == 3
        assert res["seed"] == 7
        assert res["metrics"]["m"]["median"] == 1.0
        assert res["metrics"]["m"]["gate"] is True
        assert res["metrics"]["host.wall_s"]["gate"] is False
        assert res["phases_sim"]["spm-dma"]["time_s"] == 1.0
        assert "spm-dma" in res["phases_host"]
        assert res["phase_coverage"] >= 0.95

    def test_run_workload_validates(self):
        wl = _toy_workload()
        with pytest.raises(ValueError):
            perf.run_workload(wl, repeats=0)
        with pytest.raises(ValueError):
            perf.run_workload(wl, warmup=-1)

    def test_run_bench_document(self):
        doc = perf.run_bench([_toy_workload()], "t", repeats=2)
        assert doc["format"] == perf.BENCH_FORMAT
        assert doc["version"] == perf.BENCH_VERSION
        assert "toy" in doc["workloads"]
        assert doc["environment"]["python"]

    def test_run_bench_empty_raises(self):
        with pytest.raises(ValueError):
            perf.run_bench([], "t")

    def test_environment_fingerprint(self):
        fp = perf.environment_fingerprint()
        assert "python" in fp and "numpy" in fp and "platform" in fp


# -- schema ---------------------------------------------------------------
class TestSchema:
    def test_roundtrip(self, tmp_path):
        doc = perf.run_bench([_toy_workload()], "rt", repeats=2)
        path = str(tmp_path / perf.bench_filename("rt"))
        perf.write_bench(path, doc)
        loaded = perf.load_bench(path)
        assert loaded["workloads"]["toy"]["metrics"]["m"]["median"] == 1.0

    def test_bench_filename_sanitised(self):
        assert perf.bench_filename("a b/c") == "BENCH_a_b_c.json"

    def test_load_rejects_wrong_format(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="not a repro-bench"):
            perf.load_bench(str(p))

    def test_load_rejects_wrong_version(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps(
            {"format": "repro-bench", "version": 999, "workloads": {}}
        ))
        with pytest.raises(ValueError, match="version"):
            perf.load_bench(str(p))

    def test_write_rejects_non_bench(self, tmp_path):
        with pytest.raises(ValueError):
            perf.write_bench(str(tmp_path / "x.json"), {"format": "no"})

    def test_load_artifact(self, tmp_path):
        p = tmp_path / "fig.json"
        p.write_text(json.dumps({
            "format": "repro-bench-artifact", "version": 1,
            "name": "fig", "data": [{"r": 1}], "text": "t",
        }))
        doc = perf.load_artifact(str(p))
        assert doc["data"] == [{"r": 1}]
        p.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            perf.load_artifact(str(p))


# -- comparison / regression gate -----------------------------------------
def _bench_doc(value: float, name: str = "doc") -> dict:
    return perf.run_bench([_toy_workload(value)], name, repeats=3)


class TestCompare:
    def test_identical_no_regression(self):
        base = _bench_doc(1.0, "base")
        cur = _bench_doc(1.0, "cur")
        cmp = perf.compare(cur, base)
        assert cmp.ok
        assert cmp.regressions == []
        assert "no regressions" in cmp.format()

    def test_slowdown_regresses_and_names_phase(self):
        base = _bench_doc(1.0, "base")
        cur = _bench_doc(1.5, "cur")
        cmp = perf.compare(cur, base)
        assert not cmp.ok
        names = {(d.kind, d.name) for d in cmp.regressions}
        assert ("metric", "m") in names
        assert ("phase", "spm-dma") in names
        assert "phase 'spm-dma'" in cmp.format()

    def test_small_change_within_threshold_ok(self):
        base = _bench_doc(1.0, "base")
        cur = _bench_doc(1.05, "cur")
        assert perf.compare(cur, base, threshold=0.10).ok

    def test_improvement_flagged_not_failed(self):
        base = _bench_doc(1.0, "base")
        cur = _bench_doc(0.5, "cur")
        cmp = perf.compare(cur, base)
        assert cmp.ok
        assert any(d.improved for d in cmp.deltas)

    def test_ungated_metric_never_regresses(self):
        base = perf.run_bench(
            [_toy_workload(1.0, gate=False)], "base", repeats=2
        )
        cur = perf.run_bench(
            [_toy_workload(10.0, gate=False)], "cur", repeats=2
        )
        cmp = perf.compare(cur, base)
        # the modelled phase still gates; drop it to isolate the metric
        metric_deltas = [d for d in cmp.regressions if d.kind == "metric"]
        assert metric_deltas == []

    def test_higher_is_better_direction(self):
        assert _worse_frac(10.0, 5.0, "higher") == pytest.approx(0.5)
        assert _worse_frac(10.0, 20.0, "higher") == pytest.approx(-1.0)
        assert _worse_frac(0.0, 0.0, "lower") == 0.0
        assert _worse_frac(0.0, 1.0, "lower") == float("inf")

    def test_missing_workloads_noted(self):
        base = _bench_doc(1.0, "base")
        cur = _bench_doc(1.0, "cur")
        cur["workloads"]["new"] = cur["workloads"]["toy"]
        base["workloads"]["gone"] = base["workloads"]["toy"]
        cmp = perf.compare(cur, base)
        text = "\n".join(cmp.notes)
        assert "new" in text and "gone" in text


# -- built-in workloads ----------------------------------------------------
class TestWorkloads:
    def test_resolve_defaults(self):
        wls, name = perf.resolve_workloads([])
        assert name == "perf_smoke"
        assert [w.name for w in wls] == list(perf.DEFAULT_WORKLOADS)

    def test_resolve_explicit_name(self):
        wls, name = perf.resolve_workloads(["3d7pt_star@sunway"])
        assert name == "3d7pt_star_sunway"
        assert wls[0].meta["kind"] == "simulate"

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            perf.workload_by_name("3d7pt_star@gpu")
        with pytest.raises(ValueError, match="cannot parse"):
            perf.workload_by_name("nonsense")
        with pytest.raises(ValueError, match="exchange"):
            perf.workload_by_name("exchange:3d7pt_star",
                                  perturb={"dma_startup_us": 2.0})

    def test_perturb_validation(self):
        wl = perf.workload_by_name(
            "3d7pt_star@sunway", perturb={"no_such_field": 2.0}
        )
        with pytest.raises(ValueError, match="no field"):
            wl.fn(0)
        wl = perf.workload_by_name(
            "3d7pt_star@sunway", perturb={"name": 2.0}
        )
        with pytest.raises(ValueError, match="not numeric"):
            wl.fn(0)

    def test_available_workloads_resolve(self):
        names = perf.available_workloads()
        assert "3d7pt_star@sunway" in names
        assert "exchange:2d9pt_box" in names

    def test_simulate_workload_end_to_end(self):
        wl = perf.workload_by_name("3d7pt_star@sunway")
        res = perf.run_workload(wl, repeats=2, warmup=0)
        m = res["metrics"]
        assert m["sim.step_s"]["gate"] and m["sim.step_s"]["median"] > 0
        assert m["sim.step_s"]["mad"] == 0.0  # deterministic model
        assert res["phases_sim"]["spm-dma"]["time_s"] > 0
        assert res["phases_sim"]["spm-dma"]["bytes"] > 0
        assert res["phase_coverage"] >= 0.95
        pt = res["roofline"]["3d7pt_star"]
        assert 0.0 < pt["utilization"] <= 1.0
        assert pt["bound"] in ("memory", "compute")

    def test_perturbed_dma_regresses_named_phase(self):
        base_wl = perf.workload_by_name("3d7pt_star@sunway")
        slow_wl = perf.workload_by_name(
            "3d7pt_star@sunway", perturb={"dma_startup_us": 10.0}
        )
        base = perf.run_bench([base_wl], "base", repeats=2)
        cur = perf.run_bench([slow_wl], "cur", repeats=2)
        cmp = perf.compare(cur, base)
        assert not cmp.ok
        assert any(d.kind == "phase" and d.name == "spm-dma"
                   for d in cmp.regressions)
        # compute phase is untouched by a DMA slowdown
        assert all(d.name != "compute" for d in cmp.regressions)

    def test_exchange_workload_deterministic(self):
        wl = perf.workload_by_name("exchange:2d9pt_box")
        res = perf.run_workload(wl, repeats=2, warmup=0)
        m = res["metrics"]
        assert m["comm.bytes_sent"]["median"] > 0
        assert m["comm.bytes_sent"]["mad"] == 0.0
        assert m["comm.messages"]["gate"]
        assert {"halo-pack", "send-wait", "unpack"} <= set(
            res["phases_host"]
        )

    def test_exchange_mode_specs_resolve(self):
        names = perf.available_workloads()
        for mode in ("basic", "diag", "overlap"):
            spec = f"exchange:2d9pt_box@{mode}"
            assert spec in names
            wl = perf.workload_by_name(spec)
            assert wl.name == f"exchange:2d9pt_box@{mode}"
            assert wl.meta["exchange_mode"] == mode
        assert perf.workload_by_name(
            "exchange:2d9pt_box"
        ).meta["exchange_mode"] == "compare"
        with pytest.raises(ValueError, match="unknown exchange mode"):
            perf.workload_by_name("exchange:2d9pt_box@warp")

    def test_exchange_comparative_metrics(self):
        wl = perf.workload_by_name("exchange:2d9pt_box")
        res = perf.run_workload(wl, repeats=2, warmup=0)
        m = res["metrics"]
        # diag coalesces corners into direct messages: strictly fewer
        assert m["comm.messages.diag"]["gate"]
        assert m["comm.messages.diag"]["median"] < m["comm.messages"]["median"]
        assert m["diag.msg_saving"]["median"] > 0
        # every mode is bitwise-transparent
        assert m["exchange.modes_bitwise_equal"]["median"] == 1.0
        # all three modes take the zero-copy clean path: no pool staging
        assert m["comm.pool_bytes"]["median"] == 0.0
        assert m["comm.pool_bytes"]["gate"]

    def test_exchange_single_mode_workload(self):
        wl = perf.workload_by_name("exchange:2d9pt_box@diag")
        res = perf.run_workload(wl, repeats=2, warmup=0)
        m = res["metrics"]
        assert m["comm.bytes_sent"]["median"] > 0
        assert m["comm.pool_bytes"]["median"] == 0.0
        # per-mode workloads skip the cross-mode comparison metrics
        assert "diag.msg_saving" not in m


# -- CLI -------------------------------------------------------------------
class TestBenchCLI:
    def test_list_workloads(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "3d7pt_star@sunway" in out

    def test_bench_writes_document(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        rc = main(["bench", "3d7pt_star@sunway",
                   "--repeats", "2", "--warmup", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "roofline 3d7pt_star" in out
        path = tmp_path / "BENCH_3d7pt_star_sunway.json"
        assert path.exists()
        doc = perf.load_bench(str(path))
        wl = doc["workloads"]["3d7pt_star@sunway"]
        assert wl["samples"] == 2
        assert wl["phase_coverage"] >= 0.95

    def test_bench_compare_self_is_clean(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "3d7pt_star@sunway",
                     "--repeats", "2", "--warmup", "0"]) == 0
        assert main([
            "bench", "3d7pt_star@sunway", "--repeats", "2",
            "--warmup", "0",
            "--compare", "BENCH_3d7pt_star_sunway.json",
        ]) == 0

    def test_bench_compare_regression_exits_nonzero(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "3d7pt_star@sunway",
                     "--repeats", "2", "--warmup", "0"]) == 0
        rc = main([
            "bench", "3d7pt_star@sunway", "--repeats", "2",
            "--warmup", "0", "--perturb", "dma_startup_us=10",
            "--name", "slow",
            "--compare", "BENCH_3d7pt_star_sunway.json",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "spm-dma" in out

    def test_bench_report_only_exits_zero(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "3d7pt_star@sunway",
                     "--repeats", "2", "--warmup", "0"]) == 0
        rc = main([
            "bench", "3d7pt_star@sunway", "--repeats", "2",
            "--warmup", "0", "--perturb", "dma_startup_us=10",
            "--name", "slow", "--report-only",
            "--compare", "BENCH_3d7pt_star_sunway.json",
        ])
        assert rc == 0

    def test_bench_mirrors_into_results_dir(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        os.makedirs("benchmarks/results")
        assert main(["bench", "3d7pt_star@sunway",
                     "--repeats", "2", "--warmup", "0"]) == 0
        assert (tmp_path / "benchmarks" / "results"
                / "3d7pt_star_sunway.json").exists()

    def test_bench_bad_perturb(self, capsys):
        assert main(["bench", "--perturb", "oops"]) == 2

    def test_bench_bad_workload(self, capsys):
        assert main(["bench", "bogus@sunway"]) == 1


# -- figure-artefact JSON (benchmarks/_common.py) --------------------------
class TestEmitArtifact:
    def _load_common(self, tmp_path, monkeypatch):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        spec = importlib.util.spec_from_file_location(
            "bench_common", os.path.join(root, "benchmarks", "_common.py")
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        monkeypatch.setattr(mod, "RESULTS_DIR", str(tmp_path))
        return mod

    def test_emit_writes_txt_and_json(self, tmp_path, monkeypatch):
        common = self._load_common(tmp_path, monkeypatch)
        common.emit("figX", "some table",
                    data=[{"benchmark": "3d7pt_star", "speedup": 2.0}])
        assert (tmp_path / "figX.txt").read_text() == "some table\n"
        doc = perf.load_artifact(str(tmp_path / "figX.json"))
        assert doc["name"] == "figX"
        assert doc["data"][0]["speedup"] == 2.0
        assert doc["text"] == "some table"

    def test_emit_without_data(self, tmp_path, monkeypatch):
        common = self._load_common(tmp_path, monkeypatch)
        common.emit("figY", "text only")
        doc = perf.load_artifact(str(tmp_path / "figY.json"))
        assert doc["data"] is None
