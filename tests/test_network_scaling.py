"""Tests for the network model and the Fig. 10 scalability machinery."""

import pytest

from repro.frontend import build_benchmark
from repro.machine.spec import (
    MATRIX_SN,
    SUNWAY_CG,
    SUNWAY_NETWORK,
    TIANHE3_NETWORK,
    NetworkSpec,
)
from repro.runtime.network import NetworkModel, scaling_run


@pytest.fixture
def net():
    return NetworkModel(NetworkSpec("test", 1.0, 10.0, 100.0))


class TestNetworkModel:
    def test_endpoint_limited_small_scale(self, net):
        # 2 procs, 1 MB each: endpoint term dominates
        assert not net.is_congested(2, 1_000_000, 3)

    def test_fabric_limited_large_scale(self, net):
        assert net.is_congested(10_000, 1_000_000, 3)

    def test_exchange_time_monotone_in_volume(self, net):
        t1 = net.exchange_time_s(16, 1_000, 3)
        t2 = net.exchange_time_s(16, 1_000_000, 3)
        assert t2 > t1

    def test_latency_charged_per_phase(self, net):
        t2 = net.exchange_time_s(2, 0, 2)
        t3 = net.exchange_time_s(2, 0, 3)
        assert t3 == pytest.approx(1.5 * t2)

    def test_sync_only_for_2d(self):
        model = NetworkModel(
            NetworkSpec("s", 1.0, 10.0, 100.0, sync_2d_us_per_32p=100.0)
        )
        assert model.sync_time_s(64, 2) == pytest.approx(200e-6)
        assert model.sync_time_s(64, 3) == 0.0

    def test_invalid_args(self, net):
        with pytest.raises(ValueError):
            net.exchange_time_s(0, 100, 3)
        with pytest.raises(ValueError):
            net.exchange_time_s(4, -1, 3)


class TestScalingRun:
    @pytest.fixture(scope="class")
    def stencil(self):
        prog, _ = build_benchmark("3d7pt_star", grid=(16, 16, 16))
        return prog.ir

    def test_weak_scaling_near_linear_on_sunway(self, stencil):
        pts = [
            scaling_run(stencil, (256, 256, 256), grid, SUNWAY_CG,
                        SUNWAY_NETWORK)
            for grid in [(8, 4, 4), (8, 8, 4), (8, 8, 8), (16, 8, 8)]
        ]
        # Fig. 10b: weak scaling almost ideal
        speedup = pts[-1].gflops / pts[0].gflops
        assert 6.8 <= speedup <= 8.0

    def test_strong_scaling_efficiency_drops(self, stencil):
        full = scaling_run(stencil, (256, 256, 256), (8, 4, 4),
                           SUNWAY_CG, SUNWAY_NETWORK)
        eighth = scaling_run(stencil, (128, 128, 128), (16, 8, 8),
                             SUNWAY_CG, SUNWAY_NETWORK)
        assert eighth.efficiency <= full.efficiency + 1e-9

    def test_2d_strong_deviates_on_tianhe3(self):
        prog2d, _ = build_benchmark("2d9pt_star", grid=(32, 32))
        prog3d, _ = build_benchmark("3d7pt_star", grid=(16, 16, 16))
        p2 = [
            scaling_run(prog2d.ir, sub, grid, MATRIX_SN, TIANHE3_NETWORK)
            for sub, grid in [
                ((4096, 4096), (8, 4)), ((2048, 1024), (16, 16))
            ]
        ]
        p3 = [
            scaling_run(prog3d.ir, sub, grid, MATRIX_SN, TIANHE3_NETWORK)
            for sub, grid in [
                ((256, 256, 256), (4, 4, 2)), ((128, 128, 128), (8, 8, 4))
            ]
        ]
        speedup_2d = p2[1].gflops / p2[0].gflops
        speedup_3d = p3[1].gflops / p3[0].gflops
        # Sec. 5.3: 3D near ideal, 2D bent by congestion — on Tianhe-3
        assert speedup_3d > 7.0
        assert speedup_2d < 5.5

    def test_2d_strong_near_ideal_on_sunway(self):
        prog2d, _ = build_benchmark("2d9pt_star", grid=(32, 32))
        pts = [
            scaling_run(prog2d.ir, sub, grid, SUNWAY_CG, SUNWAY_NETWORK)
            for sub, grid in [
                ((4096, 4096), (16, 8)), ((2048, 1024), (32, 32))
            ]
        ]
        # TaihuLight keeps 2D strong scaling much closer to ideal than
        # the prototype Tianhe-3 does (its 8x point lands ~6.5 vs ~3)
        assert pts[1].gflops / pts[0].gflops > 6.0

    def test_cores_accounted(self, stencil):
        pt = scaling_run(stencil, (256, 256, 256), (8, 4, 4), SUNWAY_CG,
                         SUNWAY_NETWORK)
        assert pt.nprocs == 128
        assert pt.cores == 128 * 64  # the paper's 8,192-core row... per CG

    def test_gflops_below_ideal(self, stencil):
        pt = scaling_run(stencil, (128, 128, 128), (16, 8, 8), SUNWAY_CG,
                         SUNWAY_NETWORK)
        assert pt.gflops <= pt.ideal_gflops * (1 + 1e-9)
