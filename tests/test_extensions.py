"""Tests for the Sec. 5.6 extensions: temporal tiling, streaming
pipeline, and the inspector-executor."""

import numpy as np
import pytest

from repro.backend.numpy_backend import reference_run
from repro.backend.temporal_exec import TemporalTilingExecutor
from repro.evalsuite.harness import build_with_schedule
from repro.frontend import build_benchmark
from repro.inspector import (
    ExecutionOutcome,
    Inspector,
    WorkloadMap,
    decompose_weighted,
    execute_plan,
    hotspot_weights,
    ocean_land_mask,
    weighted_cuts,
)
from repro.machine import SPMAllocationError, simulate_streaming
from repro.schedule import TemporalTilePlan, plan_temporal_tiles


class TestTemporalTilePlan:
    def test_extension_is_time_block_times_radius(self, stencil_3d7pt_2dep):
        plan = plan_temporal_tiles(stencil_3d7pt_2dep, (8, 8, 8), 3)
        assert plan.extension == (3, 3, 3)
        assert plan.gathered_shape == (14, 14, 14)

    def test_validity_shrinks_linearly(self, stencil_3d7pt_2dep):
        plan = plan_temporal_tiles(stencil_3d7pt_2dep, (8, 8, 8), 3)
        assert plan.valid_margin_after(0) == (3, 3, 3)
        assert plan.valid_margin_after(3) == (0, 0, 0)
        with pytest.raises(ValueError):
            plan.valid_margin_after(4)

    def test_redundancy_grows_with_depth(self, stencil_3d7pt_2dep):
        shallow = plan_temporal_tiles(stencil_3d7pt_2dep, (8, 8, 8), 1)
        deep = plan_temporal_tiles(stencil_3d7pt_2dep, (8, 8, 8), 4)
        assert shallow.redundancy == 1.0
        assert deep.redundancy > shallow.redundancy

    def test_redundancy_shrinks_with_tile_size(self, stencil_3d7pt_2dep):
        small = plan_temporal_tiles(stencil_3d7pt_2dep, (4, 4, 4), 2)
        large = plan_temporal_tiles(stencil_3d7pt_2dep, (16, 16, 16), 2)
        assert large.redundancy < small.redundancy

    def test_exchanges_saved(self, stencil_3d7pt_2dep):
        plan = plan_temporal_tiles(stencil_3d7pt_2dep, (8, 8, 8), 4)
        assert plan.exchanges_saved() == 3

    def test_invalid_args(self, stencil_3d7pt_2dep):
        with pytest.raises(ValueError):
            plan_temporal_tiles(stencil_3d7pt_2dep, (8, 8, 8), 0)
        with pytest.raises(ValueError):
            plan_temporal_tiles(stencil_3d7pt_2dep, (32, 8, 8), 1)


class TestTemporalExecutor:
    @pytest.mark.parametrize("boundary", ["zero", "periodic"])
    @pytest.mark.parametrize("time_block", [1, 2, 3])
    def test_matches_reference(self, rng, boundary, time_block):
        prog, _ = build_benchmark("3d7pt_star", grid=(12, 12, 12),
                                  boundary=boundary)
        init = [rng.random((12, 12, 12)) for _ in range(2)]
        blocks = 2
        ref = reference_run(prog.ir, init, blocks * time_block,
                            boundary=boundary)
        ex = TemporalTilingExecutor(prog.ir, (6, 6, 6), time_block,
                                    boundary=boundary)
        got = ex.run(init, blocks)
        np.testing.assert_array_equal(got, ref)

    def test_box_stencil_corners_handled(self, rng):
        prog, _ = build_benchmark("2d9pt_box", grid=(20, 16),
                                  boundary="periodic")
        init = [rng.random((20, 16)) for _ in range(2)]
        ref = reference_run(prog.ir, init, 4, boundary="periodic")
        got = TemporalTilingExecutor(
            prog.ir, (10, 8), 2, boundary="periodic"
        ).run(init, 2)
        np.testing.assert_array_equal(got, ref)

    def test_wide_radius(self, rng):
        prog, _ = build_benchmark("3d13pt_star", grid=(14, 14, 14),
                                  boundary="zero")
        init = [rng.random((14, 14, 14)) for _ in range(2)]
        ref = reference_run(prog.ir, init, 4, boundary="zero")
        got = TemporalTilingExecutor(
            prog.ir, (7, 7, 7), 2, boundary="zero"
        ).run(init, 2)
        np.testing.assert_array_equal(got, ref)

    def test_computed_points_tracked(self, rng):
        prog, _ = build_benchmark("2d9pt_star", grid=(16, 16),
                                  boundary="periodic")
        init = [rng.random((16, 16)) for _ in range(2)]
        ex = TemporalTilingExecutor(prog.ir, (8, 8), 2,
                                    boundary="periodic")
        ex.run(init, 1)
        useful = 16 * 16 * 2
        assert ex.computed_points > useful  # redundancy is real

    def test_reflect_rejected(self):
        prog, _ = build_benchmark("2d9pt_star", grid=(16, 16))
        with pytest.raises(ValueError):
            TemporalTilingExecutor(prog.ir, (8, 8), 2,
                                   boundary="reflect")


class TestStreamingPipeline:
    def test_overlap_speedup_at_least_one(self):
        prog, handle = build_with_schedule("3d7pt_star", "sunway")
        report = simulate_streaming(prog.ir, handle.schedule)
        assert report.overlap_speedup >= 1.0
        assert report.dma_bound  # 3d7pt is memory-bound

    def test_double_buffer_capacity_enforced(self):
        prog, handle = build_with_schedule("3d13pt_star", "sunway")
        with pytest.raises(SPMAllocationError):
            simulate_streaming(prog.ir, handle.schedule)

    def test_compute_heavy_gains_more(self):
        lo_p, lo_h = build_with_schedule("3d7pt_star", "sunway")
        hi_p, hi_h = build_with_schedule("2d169pt_box", "sunway")
        lo = simulate_streaming(lo_p.ir, lo_h.schedule)
        hi = simulate_streaming(hi_p.ir, hi_h.schedule)
        assert hi.overlap_speedup > lo.overlap_speedup


class TestWorkload:
    def test_imbalance_of_uniform_weights_is_one(self):
        from repro.comm import decompose

        w = WorkloadMap(np.ones((16, 16)))
        subs = decompose((16, 16), (2, 2))
        assert w.imbalance(subs) == pytest.approx(1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMap(np.array([[-1.0, 1.0]]))

    def test_zero_map_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMap(np.zeros((4, 4)))

    def test_hotspot_and_ocean_generators(self):
        h = hotspot_weights((12, 12), factor=4.0)
        assert h.max() == 4.0 and h.min() == 1.0
        o = ocean_land_mask((24, 24), land_fraction=0.4)
        assert 0.2 < (o < 1.0).mean() < 0.6


class TestWeightedCuts:
    def test_equal_weights_give_balanced_cuts(self):
        cuts = weighted_cuts(np.ones(12), 3)
        assert cuts == [(0, 4), (4, 8), (8, 12)]

    def test_skewed_weights_shift_cuts(self):
        marginal = np.array([10.0] * 4 + [1.0] * 12)
        cuts = weighted_cuts(marginal, 2)
        assert cuts[0][1] < 8  # heavy prefix gets fewer cells

    def test_every_part_nonempty_under_concentration(self):
        marginal = np.zeros(10)
        marginal[0] = 100.0
        cuts = weighted_cuts(marginal, 4)
        assert all(hi > lo for lo, hi in cuts)
        assert cuts[-1][1] == 10

    def test_too_many_parts(self):
        with pytest.raises(ValueError):
            weighted_cuts(np.ones(3), 4)


class TestInspectorExecutor:
    def _setup(self, rng):
        shape = (24, 24)
        prog, _ = build_benchmark("2d9pt_star", grid=shape,
                                  boundary="periodic")
        w = WorkloadMap(hotspot_weights(shape, factor=8.0))
        return prog, w, [rng.random(shape) for _ in range(2)]

    def test_balancing_reduces_imbalance(self, rng):
        prog, w, _ = self._setup(rng)
        plan = Inspector(prog.ir, w).inspect((2, 2))
        assert plan.imbalance_after < plan.imbalance_before
        assert plan.projected_speedup > 1.2

    def test_balanced_run_matches_reference(self, rng):
        prog, w, init = self._setup(rng)
        plan = Inspector(prog.ir, w).inspect((2, 2))
        outcome = execute_plan(prog.ir, plan, w, init, 4,
                               boundary="periodic")
        ref = reference_run(prog.ir, init, 4, boundary="periodic")
        np.testing.assert_array_equal(outcome.result, ref)
        assert outcome.speedup > 1.0

    def test_decompose_weighted_partitions(self, rng):
        w = WorkloadMap(hotspot_weights((20, 20), factor=5.0))
        subs = decompose_weighted((20, 20), (2, 2), w)
        seen = np.zeros((20, 20), dtype=int)
        for sd in subs:
            seen[sd.slices()] += 1
        assert (seen == 1).all()

    def test_per_rank_tiles_fit_subdomains(self, rng):
        prog, w, _ = self._setup(rng)
        plan = Inspector(prog.ir, w).inspect((2, 2))
        for sd in plan.balanced:
            tile = plan.tile_per_rank[sd.rank]
            assert all(t <= s for t, s in zip(tile, sd.shape))

    def test_workload_shape_mismatch_rejected(self, rng):
        prog, _, _ = self._setup(rng)
        with pytest.raises(ValueError, match="does not match"):
            Inspector(prog.ir, WorkloadMap(np.ones((8, 8))))

    def test_3d_inspection(self, rng):
        shape = (12, 12, 12)
        prog, _ = build_benchmark("3d7pt_star", grid=shape,
                                  boundary="zero")
        w = WorkloadMap(hotspot_weights(shape, factor=6.0))
        plan = Inspector(prog.ir, w).inspect((2, 2, 1))
        init = [rng.random(shape) for _ in range(2)]
        outcome = execute_plan(prog.ir, plan, w, init, 3,
                               boundary="zero")
        ref = reference_run(prog.ir, init, 3, boundary="zero")
        np.testing.assert_array_equal(outcome.result, ref)
