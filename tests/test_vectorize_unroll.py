"""Tests for the vectorize / unroll scheduling primitives."""

import shutil
import subprocess

import numpy as np
import pytest

from repro.backend import CCodeGenerator
from repro.backend.numpy_backend import reference_run
from repro.frontend.lang import parse_program
from repro.ir import Stencil
from repro.machine import simulate_sunway
from repro.schedule import Schedule, ScheduleError
from tests.conftest import make_3d7pt

needs_gcc = pytest.mark.skipif(
    shutil.which("gcc") is None, reason="gcc not available"
)


def _sched(kern, vec=None, unrolls=()):
    s = Schedule(kern)
    s.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
    s.reorder("xo", "yo", "zo", "xi", "yi", "zi")
    if vec:
        s.vectorize(vec)
    for axis, factor in unrolls:
        s.unroll(axis, factor)
    return s


class TestScheduleValidity:
    def test_vectorize_innermost_ok(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        s = _sched(kern, vec="zi")
        nest = s.lower((16, 16, 16))
        assert nest.vectorized_axis == "zi"

    def test_vectorize_non_innermost_rejected_at_lowering(
            self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        s = _sched(kern, vec="yi")
        with pytest.raises(ScheduleError, match="innermost"):
            s.lower((16, 16, 16))

    def test_vectorize_unknown_axis(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        with pytest.raises(ScheduleError, match="unknown axis"):
            Schedule(kern).vectorize("vv")

    def test_double_vectorize_rejected(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        s = _sched(kern, vec="zi")
        with pytest.raises(ScheduleError, match="one axis"):
            s.vectorize("yi")

    def test_unroll_records_factor(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        s = _sched(kern, unrolls=[("yi", 4)])
        assert s.unroll_factors == {"yi": 4}

    def test_unroll_factor_bounds(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        with pytest.raises(ValueError):
            _sched(kern, unrolls=[("yi", 1)])

    def test_double_unroll_rejected(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        s = _sched(kern, unrolls=[("yi", 2)])
        with pytest.raises(ScheduleError, match="already unrolled"):
            s.unroll("yi", 4)


class TestCodegen:
    def test_simd_pragma_emitted(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        s = _sched(kern, vec="zi")
        src = CCodeGenerator(
            stencil_3d7pt_2dep, {kern.name: s}
        ).generate("v").main_source
        assert "#pragma omp simd" in src
        assert src.index("#pragma omp simd") < src.index("for (long zi")

    def test_unroll_pragma_emitted(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        s = _sched(kern, unrolls=[("yi", 4)])
        src = CCodeGenerator(
            stencil_3d7pt_2dep, {kern.name: s}
        ).generate("u").main_source
        assert "#pragma GCC unroll 4" in src

    @needs_gcc
    def test_vectorized_program_still_exact(self, tmp_path, rng):
        tensor, kern = make_3d7pt(shape=(12, 12, 16))
        st = Stencil(tensor, 0.6 * kern[Stencil.t - 1]
                     + 0.4 * kern[Stencil.t - 2])
        s = Schedule(kern)
        s.tile(4, 4, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        s.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        s.vectorize("zi")
        s.unroll("yi", 2)
        code = CCodeGenerator(st, {kern.name: s},
                              boundary="periodic").generate("vec")
        code.write_to(str(tmp_path))
        subprocess.run(
            ["gcc", "-O2", "-fopenmp", "-o", str(tmp_path / "vec"),
             str(tmp_path / "vec.c"), "-lm"],
            check=True, capture_output=True,
            timeout=120,
        )
        init = [rng.random((12, 12, 16)) for _ in range(2)]
        np.concatenate([p.ravel() for p in init]).tofile(
            str(tmp_path / "i.bin")
        )
        subprocess.run(
            [str(tmp_path / "vec"), str(tmp_path / "i.bin"), "4",
             str(tmp_path / "o.bin")],
            check=True, capture_output=True,
            timeout=120,
        )
        got = np.fromfile(str(tmp_path / "o.bin")).reshape(12, 12, 16)
        ref = reference_run(st, init, 4, boundary="periodic")
        np.testing.assert_allclose(got, ref, rtol=1e-13)


class TestSimulatorEffect:
    def test_vectorization_speeds_up_compute_bound(self):
        # 2d169pt is compute-bound on Sunway: vectorizing helps
        from repro.evalsuite.harness import build_with_schedule

        prog, handle = build_with_schedule("2d169pt_box", "sunway")
        base = simulate_sunway(prog.ir, handle.schedule)
        prog2, handle2 = build_with_schedule("2d169pt_box", "sunway")
        handle2.vectorize("yi")
        fast = simulate_sunway(prog2.ir, handle2.schedule)
        assert fast.step_s < base.step_s
        assert fast.compute_s < base.compute_s


class TestLangIntegration:
    def test_textual_vectorize(self):
        src = """
        DefVar(j, i32); DefVar(i, i32);
        DefTensor2D(A, 1, f64, 16, 16);
        Kernel S((j,i), 0.5*A[j,i] + 0.25*A[j,i-1] + 0.25*A[j,i+1]);
        S.tile(4, 8, xo, xi, yo, yi);
        S.reorder(xo, yo, xi, yi);
        S.vectorize(yi);
        S.unroll(xi, 2);
        Stencil st((j,i), A[t] << S[t-1]);
        """
        parsed = parse_program(src)
        sched = parsed.kernels["S"].schedule
        assert sched.vectorized_axis == "yi"
        assert sched.unroll_factors == {"xi": 2}
