"""Tests for the simulated MPI runtime."""

import time

import numpy as np
import pytest

from repro.runtime.simmpi import (
    ANY_SOURCE,
    CartComm,
    Request,
    SimMPIError,
    SimMPITimeout,
    run_ranks,
)


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(4.0), dest=1, tag=5)
                return None
            buf = np.zeros(4)
            src, tag, count = comm.Recv(buf, source=0, tag=5)
            assert (src, tag, count) == (0, 5, 4)
            return buf.tolist()

        res = run_ranks(2, main)
        assert res[1] == [0.0, 1.0, 2.0, 3.0]

    def test_send_copies_at_send_time(self):
        def main(comm):
            if comm.rank == 0:
                data = np.ones(4)
                comm.Send(data, dest=1)
                data[:] = 99  # must not affect the message
                comm.Barrier()
            else:
                comm.Barrier()
                buf = np.zeros(4)
                comm.Recv(buf, source=0)
                return buf[0]
            return None

        assert run_ranks(2, main)[1] == 1.0

    def test_fifo_order_per_source_and_tag(self):
        def main(comm):
            if comm.rank == 0:
                for v in range(5):
                    comm.Send(np.array([float(v)]), dest=1, tag=3)
                return None
            got = []
            buf = np.zeros(1)
            for _ in range(5):
                comm.Recv(buf, source=0, tag=3)
                got.append(buf[0])
            return got

        assert run_ranks(2, main)[1] == [0, 1, 2, 3, 4]

    def test_tag_matching_skips_other_tags(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=7)
                comm.Send(np.array([2.0]), dest=1, tag=8)
                return None
            buf = np.zeros(1)
            comm.Recv(buf, source=0, tag=8)
            first = buf[0]
            comm.Recv(buf, source=0, tag=7)
            return (first, buf[0])

        assert run_ranks(2, main)[1] == (2.0, 1.0)

    def test_any_source(self):
        def main(comm):
            if comm.rank != 0:
                comm.Send(np.array([float(comm.rank)]), dest=0)
                return None
            got = set()
            buf = np.zeros(1)
            for _ in range(2):
                src, _, _ = comm.Recv(buf, source=ANY_SOURCE)
                got.add(src)
            return got

        assert run_ranks(3, main)[0] == {1, 2}

    def test_truncation_error(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(10), dest=1)
                return None
            buf = np.zeros(4)
            comm.Recv(buf, source=0)

        with pytest.raises(SimMPIError, match="truncation"):
            run_ranks(2, main)

    def test_short_message_into_large_buffer(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.ones(3), dest=1)
                return None
            buf = np.zeros(10)
            _, _, count = comm.Recv(buf, source=0)
            return count

        assert run_ranks(2, main)[1] == 3

    def test_invalid_peer(self):
        def main(comm):
            comm.Send(np.zeros(1), dest=5)

        with pytest.raises(SimMPIError, match="invalid peer"):
            run_ranks(2, main)

    def test_recv_timeout_is_deadlock_error(self):
        def main(comm):
            buf = np.zeros(1)
            comm.Recv(buf, source=(comm.rank + 1) % 2, timeout=0.3)

        with pytest.raises(SimMPIError):
            run_ranks(2, main)


class TestNonblocking:
    def test_irecv_wait(self):
        def main(comm):
            if comm.rank == 0:
                buf = np.zeros(2)
                req = comm.Irecv(buf, source=1, tag=1)
                req.Wait()
                return buf.tolist()
            comm.Isend(np.array([3.0, 4.0]), dest=0, tag=1).Wait()
            return None

        assert run_ranks(2, main)[0] == [3.0, 4.0]

    def test_test_polls_without_blocking(self):
        def main(comm):
            if comm.rank == 0:
                buf = np.zeros(1)
                req = comm.Irecv(buf, source=1)
                comm.Barrier()  # now the message surely exists
                assert req.Test()
                return buf[0]
            comm.Send(np.array([9.0]), dest=0)
            comm.Barrier()
            return None

        assert run_ranks(2, main)[0] == 9.0

    def test_waitall(self):
        def main(comm):
            peer = (comm.rank + 1) % 2
            recv = np.zeros(1)
            reqs = [
                comm.Irecv(recv, source=peer),
                comm.Isend(np.array([float(comm.rank)]), dest=peer),
            ]
            Request.Waitall(reqs)
            return recv[0]

        assert run_ranks(2, main) == [1.0, 0.0]


class TestCollectives:
    def test_allreduce_ops(self):
        def main(comm):
            return (
                comm.allreduce(comm.rank, "sum"),
                comm.allreduce(comm.rank, "max"),
                comm.allreduce(comm.rank, "min"),
            )

        for result in run_ranks(4, main):
            assert result == (6, 3, 0)

    def test_allreduce_unknown_op(self):
        def main(comm):
            comm.allreduce(1, "prod")

        with pytest.raises(SimMPIError):
            run_ranks(2, main)

    def test_bcast_object(self):
        def main(comm):
            payload = {"grid": (2, 2)} if comm.rank == 0 else None
            return comm.bcast(payload, root=0)

        for result in run_ranks(3, main):
            assert result == {"grid": (2, 2)}

    def test_gather_arbitrary_objects(self):
        def main(comm):
            return comm.gather(("rank", comm.rank), root=0)

        res = run_ranks(3, main)
        assert res[0] == [("rank", 0), ("rank", 1), ("rank", 2)]
        assert res[1] is None

    def test_sequential_collectives_do_not_interfere(self):
        def main(comm):
            a = comm.allreduce(1, "sum")
            b = comm.allreduce(comm.rank, "sum")
            return (a, b)

        for result in run_ranks(3, main):
            assert result == (3, 3)


class TestCartComm:
    def test_coords_roundtrip(self):
        def main(comm):
            coords = comm.Get_coords(comm.rank)
            return comm.Get_cart_rank(coords)

        assert run_ranks(6, main, cart_dims=(2, 3)) == list(range(6))

    def test_shift_nonperiodic_edge(self):
        def main(comm):
            return comm.Shift(0, 1)

        res = run_ranks(4, main, cart_dims=(2, 2), periods=(False, False))
        assert res[0] == (-1, 2)  # top row has no upper neighbour
        assert res[2] == (0, -1)

    def test_shift_periodic_wraps(self):
        def main(comm):
            return comm.Shift(1, 1)

        res = run_ranks(4, main, cart_dims=(2, 2), periods=(False, True))
        assert res[0] == (1, 1)  # wraps around in dim 1

    def test_dims_must_match_world(self):
        def main(comm):
            pass

        with pytest.raises(SimMPIError):
            run_ranks(3, main, cart_dims=(2, 2))


class TestFailurePropagation:
    def test_rank_exception_reported(self):
        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.Barrier()

        with pytest.raises(SimMPIError, match="rank 1 failed"):
            run_ranks(2, main)

    def test_traffic_accounting(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(100), dest=1)
            else:
                buf = np.zeros(100)
                comm.Recv(buf, source=0)
            comm.Barrier()
            return comm.traffic_bytes()

        res = run_ranks(2, main)
        assert res[0] == res[1] == 800


class TestRegressionBugfixes:
    """Regressions for the comm-layer bugfix sweep (ISSUE 2)."""

    def test_test_raises_on_peer_crash(self):
        """``Test()`` must re-raise terminal errors, not report
        'not ready' and let the caller spin until the outer timeout."""
        outcome = {}

        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            buf = np.zeros(1)
            req = comm.Irecv(buf, source=1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    if req.Test():
                        outcome["result"] = "completed"
                        return
                except SimMPIError:
                    outcome["result"] = "raised"
                    return
                time.sleep(0.005)
            outcome["result"] = "spun until timeout"

        with pytest.raises(SimMPIError, match="rank 1 failed"):
            run_ranks(2, main)
        assert outcome["result"] == "raised"

    def test_timeout_survives_notify_storm(self):
        """Deadlines are monotonic-clock based: a flood of unrelated
        deliveries (each a ``notify_all``) must not shrink them."""
        elapsed = {}

        def main(comm):
            if comm.rank == 0:
                buf = np.zeros(1)
                start = time.monotonic()
                try:
                    comm.Recv(buf, source=1, tag=9, timeout=0.6)
                finally:
                    elapsed["s"] = time.monotonic() - start
                return None
            # storm rank 0 with non-matching traffic for ~0.8 s
            payload = np.zeros(1)
            stop = time.monotonic() + 0.8
            while time.monotonic() < stop:
                comm.Send(payload, dest=0, tag=1)
                time.sleep(0.002)
            return None

        with pytest.raises(SimMPIError):
            run_ranks(2, main)
        assert elapsed["s"] >= 0.5, (
            f"deadline shrank to {elapsed['s']:.3f}s under notify load"
        )

    def test_recv_timeout_is_timeout_subclass(self):
        seen = {}

        def main(comm):
            buf = np.zeros(1)
            try:
                comm.Recv(buf, source=(comm.rank + 1) % 2, timeout=0.2)
            except SimMPIError as exc:
                seen.setdefault(comm.rank, exc)
                raise

        with pytest.raises(SimMPIError):
            run_ranks(2, main)
        assert any(
            isinstance(e, SimMPITimeout) for e in seen.values()
        )

    def test_bcast_hands_out_isolated_copies(self):
        """One rank mutating its bcast result must not corrupt the
        object the other ranks received."""

        def main(comm):
            payload = {"grid": [1, 2]} if comm.rank == 0 else None
            obj = comm.bcast(payload, root=0)
            if comm.rank == 1:
                obj["grid"].append(99)
            comm.Barrier()
            return obj["grid"]

        res = run_ranks(3, main)
        assert res[1] == [1, 2, 99]
        assert res[0] == [1, 2]
        assert res[2] == [1, 2]

    def test_waitall_charges_one_shared_deadline(self):
        """N stuck requests fail after ~timeout, not N * timeout."""

        def main(comm):
            if comm.rank != 0:
                return None
            bufs = [np.zeros(1) for _ in range(4)]
            reqs = [
                comm.Irecv(buf, source=1, tag=i)
                for i, buf in enumerate(bufs)
            ]
            start = time.monotonic()
            try:
                Request.Waitall(reqs, timeout=0.4)
            except SimMPITimeout:
                return time.monotonic() - start
            return -1.0

        took = run_ranks(2, main)[0]
        assert took != -1.0, "Waitall should have timed out"
        assert 0.3 <= took < 1.2, (
            f"4 stuck requests took {took:.2f}s — deadline not shared"
        )


class TestStressAndDeterminism:
    def test_many_ranks_many_tags(self):
        """Contention stress: every pair exchanges on several tags."""

        def main(comm):
            rng = np.random.default_rng(comm.rank)
            reqs = []
            bufs = {}
            for peer in range(comm.size):
                if peer == comm.rank:
                    continue
                for tag in (1, 2, 3):
                    buf = np.zeros(tag)
                    bufs[(peer, tag)] = buf
                    reqs.append(comm.Irecv(buf, source=peer, tag=tag))
            for peer in range(comm.size):
                if peer == comm.rank:
                    continue
                for tag in (1, 2, 3):
                    comm.Isend(
                        np.full(tag, comm.rank * 10.0 + tag), peer, tag
                    )
            Request.Waitall(reqs)
            for (peer, tag), buf in bufs.items():
                assert (buf == peer * 10.0 + tag).all()
            return True

        assert all(run_ranks(6, main))

    def test_distributed_run_is_deterministic(self):
        """Two identical distributed runs produce identical bytes
        despite thread scheduling."""
        from repro.frontend import build_benchmark
        from repro.runtime.executor import distributed_run

        prog, _ = build_benchmark("2d9pt_box", grid=(20, 20),
                                  boundary="periodic")
        rng = np.random.default_rng(0)
        init = [rng.random((20, 20)) for _ in range(2)]
        a = distributed_run(prog.ir, init, 5, (2, 2), boundary="periodic")
        b = distributed_run(prog.ir, init, 5, (2, 2), boundary="periodic")
        np.testing.assert_array_equal(a, b)
