"""Tests for the auto-tuning subsystem (Sec. 4.4, Fig. 11)."""

import pytest

from repro.autotune import (
    AutoTuner,
    PerformanceModel,
    TuningConfig,
    simulated_annealing,
)
from repro.frontend import build_benchmark
from repro.machine.spec import SUNWAY_CG, SUNWAY_NETWORK


class TestTuningConfig:
    def test_nprocs(self):
        cfg = TuningConfig((2, 8, 64), (4, 4, 8))
        assert cfg.nprocs == 128

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            TuningConfig((2, 8), (4, 4, 8))

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            TuningConfig((0, 8), (4, 4))


class TestPerformanceModel:
    def _samples(self):
        model = PerformanceModel((128, 128, 128), (1, 1, 1))
        configs = []
        times = []
        for tx in (2, 4, 8):
            for grid in ((8, 2, 1), (4, 2, 2), (16, 1, 1)):
                for mode in ("basic", "diag", "overlap"):
                    cfg = TuningConfig((tx, 8, 32), grid, mode)
                    feats = model.features(cfg)
                    # synthetic linear ground truth over the features
                    times.append(
                        float(feats @ [1, 2, 3, 4, 5, 6, 7, 8, 9]) * 1e-9
                    )
                    configs.append(cfg)
        return model, configs, times

    def test_fit_recovers_linear_function(self):
        model, configs, times = self._samples()
        model.fit(configs, times)
        assert model.score(configs, times) > 0.999

    def test_predict_before_fit_raises(self):
        model = PerformanceModel((64, 64), (1, 1))
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict(TuningConfig((8, 8), (2, 2)))

    def test_too_few_samples(self):
        model = PerformanceModel((64, 64), (1, 1))
        cfgs = [TuningConfig((8, 8), (2, 2))]
        with pytest.raises(ValueError, match="samples"):
            model.fit(cfgs, [1.0])

    def test_features_monotone_in_halo_overhead(self):
        model = PerformanceModel((128, 128), (2, 2))
        small = model.features(TuningConfig((2, 2), (1, 1)))
        large = model.features(TuningConfig((64, 64), (1, 1)))
        idx = model.FEATURE_NAMES.index("halo_overhead")
        assert small[idx] > large[idx]


class TestAnnealing:
    def test_finds_global_minimum_of_convex_energy(self):
        axes = [list(range(20)), list(range(20))]

        def energy(x, y):
            return (x - 7) ** 2 + (y - 3) ** 2 + 1.0

        res = simulated_annealing(axes, energy, iterations=5000, seed=1)
        best = tuple(axes[d][i] for d, i in enumerate(res.best_state))
        assert best == (7, 3)
        assert res.best_energy == 1.0

    def test_history_monotone_nonincreasing(self):
        axes = [list(range(10))]
        res = simulated_annealing(
            axes, lambda x: float((x - 5) ** 2 + 1), iterations=1000, seed=2
        )
        values = [v for _, v in res.history]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_deterministic_under_seed(self):
        axes = [list(range(16)), list(range(16))]

        def energy(x, y):
            return abs(x - 9) + abs(y - 2) + 0.5

        r1 = simulated_annealing(axes, energy, iterations=800, seed=7)
        r2 = simulated_annealing(axes, energy, iterations=800, seed=7)
        assert r1.best_state == r2.best_state
        assert r1.history == r2.history

    def test_improvement_ratio(self):
        axes = [list(range(50))]
        res = simulated_annealing(
            axes, lambda x: float(x + 1), iterations=2000, seed=0
        )
        assert res.best_energy == 1.0
        assert res.improvement == res.initial_energy

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            simulated_annealing([[]], lambda: 0, iterations=10)


class TestAutoTuner:
    @pytest.fixture(scope="class")
    def tuner(self):
        prog, _ = build_benchmark("3d7pt_star", grid=(512, 128, 128))
        return AutoTuner(prog.ir, (512, 128, 128), nprocs=8,
                         machine=SUNWAY_CG, network=SUNWAY_NETWORK)

    def test_measure_rejects_spm_overflow(self, tuner):
        too_big = TuningConfig((64, 64, 64), (8, 1, 1))
        assert tuner.measure(too_big) == float("inf")

    def test_measure_finite_for_feasible(self, tuner):
        cfg = TuningConfig((2, 8, 64), (8, 1, 1))
        t = tuner.measure(cfg)
        assert 0 < t < 1.0

    def test_tune_improves_over_random_start(self, tuner):
        res = tuner.tune(iterations=1500, seed=0, n_samples=30)
        assert res.best_time <= res.initial_time
        assert res.improvement >= 1.0
        assert res.best.nprocs == 8

    def test_surrogate_quality(self, tuner):
        res = tuner.tune(iterations=500, seed=3, n_samples=30)
        assert res.model_r2 > 0.8

    def test_two_runs_converge_to_similar_quality(self, tuner):
        # Fig. 11: two independent runs reach comparable optima
        r1 = tuner.tune(iterations=1500, seed=0, n_samples=30)
        r2 = tuner.tune(iterations=1500, seed=1, n_samples=30)
        assert abs(r1.best_time - r2.best_time) / r1.best_time < 0.35

    def test_no_valid_grid_rejected(self):
        prog, _ = build_benchmark("3d7pt_star", grid=(8, 8, 8))
        with pytest.raises(ValueError, match="no valid MPI grid"):
            AutoTuner(prog.ir, (8, 8, 8), nprocs=1 << 20)


class TestExchangeModeAxis:
    """The exchange mode is a first-class tuning knob."""

    def test_mode_validated(self):
        with pytest.raises(ValueError, match="exchange mode"):
            TuningConfig((8, 8), (2, 2), "warp")

    def test_default_mode_is_basic(self):
        assert TuningConfig((8, 8), (2, 2)).exchange_mode == "basic"

    def test_axes_include_modes(self):
        prog, _ = build_benchmark("3d7pt_star", grid=(64, 32, 32))
        tuner = AutoTuner(prog.ir, (64, 32, 32), nprocs=8)
        axes = tuner.axes()
        assert axes[-1] == ["basic", "diag", "overlap"]
        cfg = tuner._to_config(4, 8, 16, (2, 2, 2), "diag")
        assert cfg == TuningConfig((4, 8, 16), (2, 2, 2), "diag")

    def test_mode_features_distinct(self):
        model = PerformanceModel((128, 128), (1, 1))
        feats = {
            m: model.features(TuningConfig((8, 8), (2, 2), m))
            for m in ("basic", "diag", "overlap")
        }
        mi = model.FEATURE_NAMES.index("messages")
        # basic: 2 per dim; diag/overlap: all 3^n-1 direct neighbours
        assert feats["basic"][mi] == 4.0
        assert feats["diag"][mi] == 8.0
        di = model.FEATURE_NAMES.index("diag_mode")
        oi = model.FEATURE_NAMES.index("overlap_mode")
        assert feats["diag"][di] == 1.0 and feats["diag"][oi] == 0.0
        assert feats["overlap"][oi] == 1.0 and feats["overlap"][di] == 0.0
        assert feats["basic"][di] == feats["basic"][oi] == 0.0

    def test_overlap_measures_cheaper_comm_than_diag(self):
        prog, _ = build_benchmark("3d7pt_star", grid=(128, 64, 64))
        tuner = AutoTuner(prog.ir, (128, 64, 64), nprocs=8)
        diag = tuner.measure(TuningConfig((2, 8, 64), (8, 1, 1), "diag"))
        over = tuner.measure(
            TuningConfig((2, 8, 64), (8, 1, 1), "overlap")
        )
        assert over <= diag

    def test_illegal_overlap_pruned(self):
        from repro import obs

        # global extent 16 split 8 ways -> sub extent 2 == 2*halo:
        # no CORE block, so overlap is pruned while basic/diag are legal
        prog, _ = build_benchmark("3d7pt_star", grid=(16, 16, 16))
        tuner = AutoTuner(prog.ir, (16, 16, 16), nprocs=8)
        bad = TuningConfig((2, 2, 2), (8, 1, 1), "overlap")
        report = tuner.check_config(bad)
        assert report.by_code("EXCH001")
        assert tuner.check_config(
            TuningConfig((2, 2, 2), (8, 1, 1), "diag")
        ).ok
        with obs.capture() as (_, reg):
            tuner.tune(iterations=300, seed=2, n_samples=20)
            assert reg.counter_total("autotune.pruned_illegal") > 0

    def test_tuned_best_carries_a_mode(self):
        prog, _ = build_benchmark("3d7pt_star", grid=(64, 32, 32))
        tuner = AutoTuner(prog.ir, (64, 32, 32), nprocs=8)
        res = tuner.tune(iterations=500, seed=0, n_samples=25)
        assert res.best.exchange_mode in ("basic", "diag", "overlap")
