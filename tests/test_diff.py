"""Tests for ``repro diff`` / ``repro history`` (``repro.obs.diff``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.diff import (
    detect_change_point,
    diff_runs,
    history_report,
    load_views,
)
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    ledger_path,
    metric_point,
    open_ledger,
)


@pytest.fixture
def own_ledger_dir(tmp_path, monkeypatch):
    d = str(tmp_path / "ledger")
    monkeypatch.setenv("REPRO_LEDGER_DIR", d)
    return d


# sunway: its SPM DMA model actually consumes dma_startup_us, so the
# --perturb runs move the spm-dma phase
WORKLOAD = "3d7pt_star@sunway"


def _bench(out, *extra):
    return main(["bench", WORKLOAD, "--repeats", "1",
                 "--warmup", "0", "--out", str(out), *extra])


class TestLoadViews:
    def test_rejects_nonsense_source(self):
        with pytest.raises(ValueError, match="neither a ledger id"):
            load_views("/no/such/file.json")

    def test_missing_ledger_id(self, own_ledger_dir):
        with open_ledger(own_ledger_dir) as led:
            led.record(RunRecord(command="bench", workload="w"))
        with pytest.raises(ValueError, match="no run #42"):
            load_views("42", ledger_dir=own_ledger_dir)

    def test_ledger_id_forms(self, own_ledger_dir):
        with open_ledger(own_ledger_dir) as led:
            led.record(RunRecord(
                command="bench", workload="w",
                metrics={"m": metric_point(1.0, gate=True)},
            ))
        for ref in ("1", "ledger:1"):
            (view,) = load_views(ref, ledger_dir=own_ledger_dir)
            assert view.workload == "w"
            assert view.metrics["m"]["median"] == 1.0

    def test_bench_doc_views(self, own_ledger_dir, tmp_path):
        doc = tmp_path / "b.json"
        assert _bench(doc) == 0
        (view,) = load_views(str(doc))
        assert view.workload == WORKLOAD
        assert view.phases_sim
        assert view.metrics["sim.step_s"]["gate"] is True

    def test_trace_views(self, own_ledger_dir, tmp_path):
        tr = tmp_path / "t.json"
        assert main(["simulate", "2d9pt_box", "--machine", "cpu",
                     "--skip-pipeline", "--trace", str(tr)]) == 0
        (view,) = load_views(str(tr))
        assert view.phases_host
        assert view.spans


class TestDiff:
    def test_same_config_diffs_clean(self, own_ledger_dir, tmp_path,
                                     capsys):
        assert _bench(tmp_path / "a.json") == 0
        assert _bench(tmp_path / "b.json") == 0
        assert main(["diff", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out
        assert "config drift: none" in out

    def test_perturbed_dma_attributed_to_spm_dma(self, own_ledger_dir,
                                                 tmp_path, capsys):
        assert _bench(tmp_path / "a.json") == 0
        assert _bench(tmp_path / "b.json",
                      "--perturb", "dma_startup_us=10") == 0
        assert main(["diff", "1", "2"]) == 1
        out = capsys.readouterr().out
        assert "regression attributed to phase 'spm-dma'" in out
        assert "REGRESSION" in out
        assert "dma_startup_us" in out  # config drift names the cause

    def test_diff_bench_documents_directly(self, own_ledger_dir,
                                           tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert _bench(a) == 0
        assert _bench(b, "--perturb", "dma_startup_us=10") == 0
        assert main(["diff", str(a), str(b)]) == 1
        assert "spm-dma" in capsys.readouterr().out
        # the reverse direction is an improvement, not a regression
        assert main(["diff", str(b), str(a)]) == 0

    def test_diff_json_output(self, own_ledger_dir, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert _bench(a) == 0
        assert _bench(b, "--perturb", "dma_startup_us=10") == 0
        capsys.readouterr()  # drop the bench runs' own stdout
        assert main(["diff", str(a), str(b), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        (run,) = doc["runs"]
        assert run["attributed_phase"] == "spm-dma"
        assert any(d["field"] == "perturb" for d in run["drift"])

    def test_diff_traces(self, own_ledger_dir, tmp_path, capsys):
        t1, t2 = tmp_path / "1.json", tmp_path / "2.json"
        for t in (t1, t2):
            assert main(["simulate", "2d9pt_box", "--machine", "cpu",
                         "--skip-pipeline", "--trace", str(t)]) == 0
        # host-only phases never gate: wall jitter must not fail this
        assert main(["diff", str(t1), str(t2)]) == 0
        out = capsys.readouterr().out
        assert "host phase time" in out

    def test_diff_unknown_source_fails(self, own_ledger_dir, capsys):
        assert main(["diff", "/no/such.json", "/none.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_threshold_respected(self):
        from repro.obs.diff import RunView

        base = RunView(label="a", workload="w", phases_sim={
            "compute": {"time_s": 1.0}})
        cur = RunView(label="b", workload="w", phases_sim={
            "compute": {"time_s": 1.05}})
        assert diff_runs([base], [cur], threshold=0.10).ok
        assert not diff_runs([base], [cur], threshold=0.01).ok


class TestChangePoint:
    def test_detects_step(self):
        cp = detect_change_point([1.0, 1.0, 1.0, 10.0, 10.0])
        assert cp is not None
        assert cp.index == 3
        assert cp.before == 1.0 and cp.after == 10.0
        assert cp.verdict == "regression"

    def test_direction_aware(self):
        cp = detect_change_point([10.0, 10.0, 30.0, 30.0],
                                 direction="higher")
        assert cp is not None and cp.verdict == "improvement"
        cp = detect_change_point([30.0, 30.0, 10.0, 10.0],
                                 direction="higher")
        assert cp is not None and cp.verdict == "regression"

    def test_jitter_is_not_a_change_point(self):
        assert detect_change_point(
            [1.0, 1.02, 0.98, 1.01, 0.99, 1.03]) is None

    def test_below_threshold_shift_ignored(self):
        assert detect_change_point([1.0, 1.0, 1.05, 1.05]) is None

    def test_too_short_series(self):
        assert detect_change_point([1.0, 2.0, 3.0]) is None

    def test_deterministic(self):
        series = [1.0, 1.1, 0.9, 5.0, 5.2, 4.9, 5.1]
        a = detect_change_point(series)
        b = detect_change_point(series)
        assert a is not None and a.index == b.index == 3


class TestHistory:
    def _seed_rows(self, directory, values, gate=True):
        with RunLedger(ledger_path(directory)) as led:
            for v in values:
                led.record(RunRecord(
                    command="bench", workload="w@x",
                    metrics={"sim.step_s": metric_point(
                        v, unit="s", direction="lower", gate=gate)},
                    ts=1700000000.0,
                ))

    def test_trend_and_change_point(self, own_ledger_dir, capsys):
        self._seed_rows(own_ledger_dir,
                        [1.0, 1.0, 1.0, 1.5, 1.5, 1.5])
        assert main(["history", "w@x"]) == 0
        out = capsys.readouterr().out
        assert "RUN HISTORY  w@x" in out
        assert "change point" in out
        assert "REGRESSION: sim.step_s" in out
        assert "run #4" in out

    def test_verdict_annotated_back(self, own_ledger_dir):
        self._seed_rows(own_ledger_dir, [1.0, 1.0, 1.5, 1.5])
        assert main(["history", "w@x"]) == 0
        with open_ledger(own_ledger_dir) as led:
            verdict = led.get(3)["verdict"]
        assert verdict and verdict.startswith("regression:sim.step_s")
        # re-running must not stack duplicate verdicts
        assert main(["history", "w@x"]) == 0
        with open_ledger(own_ledger_dir) as led:
            assert led.get(3)["verdict"] == verdict

    def test_no_annotate_flag(self, own_ledger_dir):
        self._seed_rows(own_ledger_dir, [1.0, 1.0, 1.5, 1.5])
        assert main(["history", "w@x", "--no-annotate"]) == 0
        with open_ledger(own_ledger_dir) as led:
            assert led.get(3)["verdict"] is None

    def test_json_schema(self, own_ledger_dir, capsys):
        self._seed_rows(own_ledger_dir, [1.0, 1.0, 1.5, 1.5])
        assert main(["history", "w@x", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-history"
        assert doc["version"] == 1
        assert doc["workload"] == "w@x"
        assert doc["runs"] == 4
        series = doc["metrics"]["sim.step_s"]["series"]
        assert [p["value"] for p in series] == [1.0, 1.0, 1.5, 1.5]
        cp = doc["metrics"]["sim.step_s"]["change_point"]
        assert cp["run_id"] == 3 and cp["verdict"] == "regression"

    def test_ungated_metrics_not_tracked_by_default(self,
                                                    own_ledger_dir,
                                                    capsys):
        self._seed_rows(own_ledger_dir, [1.0, 1.5], gate=False)
        assert main(["history", "w@x"]) == 0
        assert "no gated metrics" in capsys.readouterr().out

    def test_explicit_metric_filter(self, own_ledger_dir, capsys):
        self._seed_rows(own_ledger_dir, [1.0, 1.5], gate=False)
        assert main(["history", "w@x", "--metric", "sim.step_s"]) == 0
        assert "sim.step_s" in capsys.readouterr().out

    def test_unknown_metric_errors(self, own_ledger_dir, capsys):
        self._seed_rows(own_ledger_dir, [1.0])
        assert main(["history", "w@x", "--metric", "nope"]) == 1
        assert "never recorded" in capsys.readouterr().err

    def test_unknown_workload_errors(self, own_ledger_dir, capsys):
        self._seed_rows(own_ledger_dir, [1.0])
        assert main(["history", "zzz"]) == 1
        assert "no ledger runs" in capsys.readouterr().err

    def test_listing_without_workload(self, own_ledger_dir, capsys):
        self._seed_rows(own_ledger_dir, [1.0, 2.0])
        assert main(["history"]) == 0
        out = capsys.readouterr().out
        assert "w@x" in out and "2 run(s)" in out

    def test_missing_store(self, own_ledger_dir, capsys):
        assert main(["history", "w@x"]) == 1
        assert "no run ledger" in capsys.readouterr().err

    def test_limit(self, own_ledger_dir, capsys):
        self._seed_rows(own_ledger_dir, [1.0, 1.0, 1.0, 9.0])
        assert main(["history", "w@x", "--limit", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"] == 2

    def test_history_report_direct(self):
        rows = [
            {"id": i + 1, "ts": 1.0 * i, "outcome": "ok",
             "metrics": {"m": metric_point(v, gate=True)}}
            for i, v in enumerate([2.0, 2.0, 3.0, 3.0])
        ]
        rep = history_report(rows, "w")
        assert rep.runs == 4
        (mh,) = rep.metrics
        assert mh.change_point is not None
        assert mh.change_run_id == 3
