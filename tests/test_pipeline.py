"""Tests for multi-stage pipelines (STELLA-style, Sec. 2.4)."""

import numpy as np
import pytest

from repro.backend.pipeline_exec import (
    PipelineExecutor,
    distributed_pipeline_run,
)
from repro.ir import (
    Kernel,
    SpNode,
    StagePipeline,
    Stencil,
    ValidationError,
    VarExpr,
    f64,
)


def _tensors(shape=(16, 16)):
    U = SpNode("U", shape, f64, halo=(1, 1), time_window=2)
    R = SpNode("R", shape, f64, halo=(1, 1), time_window=2)
    return U, R


def _smoother_residual(shape=(16, 16)):
    """HPGMG-style two-stage pipeline: Jacobi smooth, then residual."""
    U, R = _tensors(shape)
    j, i = VarExpr("j"), VarExpr("i")
    smooth = Kernel(
        "smooth", (j, i),
        0.5 * U[j, i] + 0.125 * (U[j, i - 1] + U[j, i + 1]
                                 + U[j - 1, i] + U[j + 1, i]),
    )
    resid = Kernel(
        "resid", (j, i),
        4.0 * U[j, i] - (U[j, i - 1] + U[j, i + 1]
                         + U[j - 1, i] + U[j + 1, i]),
    )
    t = Stencil.t
    return StagePipeline((
        Stencil(U, smooth[t - 1]),
        Stencil(R, resid[t - 1]),
    ))


class TestValidation:
    def test_valid_pipeline(self):
        pipe = _smoother_residual()
        assert pipe.nstages == 2
        assert [o.name for o in pipe.outputs] == ["U", "R"]

    def test_required_history(self):
        pipe = _smoother_residual()
        assert pipe.required_history() == {"U": 1, "R": 0}

    def test_duplicate_outputs_rejected(self):
        U, _ = _tensors()
        j, i = VarExpr("j"), VarExpr("i")
        k = Kernel("k", (j, i), U[j, i])
        s = Stencil(U, k[Stencil.t - 1])
        with pytest.raises(ValueError, match="distinct"):
            StagePipeline((s, s))

    def test_forward_reference_rejected(self):
        # stage 1 reads stage 2's current-step output
        U, R = _tensors()
        j, i = VarExpr("j"), VarExpr("i")
        uses_r = Kernel("uses_r", (j, i), R[j, i] + U[j, i])
        makes_r = Kernel("makes_r", (j, i), 1.0 * U[j, i])
        t = Stencil.t
        with pytest.raises(ValidationError, match="runs later"):
            StagePipeline((
                Stencil(U, uses_r[t - 1]),
                Stencil(R, makes_r[t - 1]),
            ))

    def test_previous_step_cross_read_allowed(self):
        # stage 1 may read stage 2's *previous* output (offset -1)
        U, R = _tensors()
        j, i = VarExpr("j"), VarExpr("i")
        uses_r_old = Kernel(
            "uses_r_old", (j, i), R.at(-1)[j, i] + U[j, i]
        )
        makes_r = Kernel("makes_r", (j, i), 1.0 * U[j, i])
        t = Stencil.t
        pipe = StagePipeline((
            Stencil(U, uses_r_old[t - 1]),
            Stencil(R, makes_r[t - 1]),
        ))
        assert pipe.required_history() == {"U": 1, "R": 1}

    def test_shape_mismatch_rejected(self):
        U = SpNode("U", (16, 16), f64, halo=(1, 1), time_window=2)
        R = SpNode("R", (8, 8), f64, halo=(1, 1), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        t = Stencil.t
        with pytest.raises(ValidationError, match="domain shape"):
            StagePipeline((
                Stencil(U, Kernel("a", (j, i), 1.0 * U[j, i])[t - 1]),
                Stencil(R, Kernel("b", (j, i), 1.0 * R[j, i])[t - 1]),
            ))

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            StagePipeline(())

    def test_aux_tensors_detected(self):
        U, R = _tensors()
        C = SpNode("C", (16, 16), f64, halo=(0, 0), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        t = Stencil.t
        pipe = StagePipeline((
            Stencil(U, Kernel("a", (j, i), C[j, i] * U[j, i])[t - 1]),
            Stencil(R, Kernel("b", (j, i), 1.0 * U[j, i])[t - 1]),
        ))
        assert set(pipe.aux_tensors()) == {"C"}


class TestSerialExecution:
    def test_matches_manual_two_stage(self, rng):
        pipe = _smoother_residual()
        u0 = rng.random((16, 16))
        res = PipelineExecutor(pipe, boundary="periodic").run(
            {"U": [u0]}, 3
        )

        def wrap(a):
            p = np.zeros((18, 18))
            p[1:17, 1:17] = a
            p[0, 1:17] = a[-1]
            p[17, 1:17] = a[0]
            p[1:17, 0] = a[:, -1]
            p[1:17, 17] = a[:, 0]
            return p

        u = u0.copy()
        for _ in range(3):
            p = wrap(u)
            u = 0.5 * p[1:17, 1:17] + 0.125 * (
                p[1:17, 0:16] + p[1:17, 2:18]
                + p[0:16, 1:17] + p[2:18, 1:17]
            )
        p = wrap(u)
        r = 4 * p[1:17, 1:17] - (
            p[1:17, 0:16] + p[1:17, 2:18] + p[0:16, 1:17] + p[2:18, 1:17]
        )
        np.testing.assert_allclose(res["U"], u, rtol=1e-13)
        np.testing.assert_allclose(res["R"], r, rtol=1e-12, atol=1e-12)

    def test_missing_seed_rejected(self):
        pipe = _smoother_residual()
        with pytest.raises(ValueError, match="seed"):
            PipelineExecutor(pipe).run({}, 1)

    def test_missing_aux_rejected(self, rng):
        U, R = _tensors()
        C = SpNode("C", (16, 16), f64, halo=(0, 0), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        t = Stencil.t
        pipe = StagePipeline((
            Stencil(U, Kernel("a", (j, i), C[j, i] * U[j, i])[t - 1]),
            Stencil(R, Kernel("b", (j, i), 1.0 * U[j, i])[t - 1]),
        ))
        with pytest.raises(ValueError, match="auxiliary"):
            PipelineExecutor(pipe)

    def test_single_stage_equals_reference_run(self, rng):
        from repro.backend.numpy_backend import reference_run

        U = SpNode("U", (12, 12), f64, halo=(1, 1), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        k = Kernel(
            "k", (j, i),
            0.6 * U[j, i] + 0.1 * (U[j, i - 1] + U[j, i + 1]
                                   + U[j - 1, i] + U[j + 1, i]),
        )
        st = Stencil(U, k[Stencil.t - 1])
        pipe = StagePipeline((st,))
        u0 = rng.random((12, 12))
        res = PipelineExecutor(pipe, boundary="zero").run({"U": [u0]}, 4)
        ref = reference_run(st, [u0], 4, boundary="zero")
        np.testing.assert_array_equal(res["U"], ref)


class TestDistributedExecution:
    @pytest.mark.parametrize("boundary", ["zero", "periodic"])
    def test_matches_serial(self, rng, boundary):
        pipe = _smoother_residual((20, 24))
        u0 = rng.random((20, 24))
        serial = PipelineExecutor(pipe, boundary=boundary).run(
            {"U": [u0]}, 4
        )
        dist = distributed_pipeline_run(
            pipe, {"U": [u0]}, 4, (2, 3), boundary=boundary
        )
        for name in ("U", "R"):
            np.testing.assert_array_equal(dist[name], serial[name])

    def test_three_stage_chain(self, rng):
        shape = (16, 16)
        A = SpNode("A", shape, f64, halo=(1, 1), time_window=2)
        Bt = SpNode("Bt", shape, f64, halo=(1, 1), time_window=2)
        Ct = SpNode("Ct", shape, f64, halo=(1, 1), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        t = Stencil.t
        pipe = StagePipeline((
            Stencil(A, Kernel(
                "s1", (j, i),
                0.5 * A[j, i] + 0.25 * (A[j, i - 1] + A[j, i + 1]),
            )[t - 1]),
            Stencil(Bt, Kernel(
                "s2", (j, i),
                0.5 * A[j, i] + 0.25 * (A[j - 1, i] + A[j + 1, i]),
            )[t - 1]),
            Stencil(Ct, Kernel(
                "s3", (j, i), 2.0 * Bt[j, i] - A[j, i],
            )[t - 1]),
        ))
        a0 = rng.random(shape)
        serial = PipelineExecutor(pipe, boundary="periodic").run(
            {"A": [a0]}, 3
        )
        dist = distributed_pipeline_run(
            pipe, {"A": [a0]}, 3, (2, 2), boundary="periodic"
        )
        for name in ("A", "Bt", "Ct"):
            np.testing.assert_array_equal(dist[name], serial[name])
