"""Tests for the observability layer: spans, metrics, exporters, and
the guarantee that instrumentation is free while disabled."""

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck as _HealthCheck
from hypothesis import given as _given
from hypothesis import settings as _settings
from hypothesis import strategies as _st

from repro import obs
from repro.obs import (
    INSTRUMENTED_SUBSYSTEMS,
    MetricsRegistry,
    Span,
    Tracer,
    capture,
    registry,
    span,
    tracer,
)
from repro.obs.export import (
    EXPORT_FORMATS,
    ascii_summary,
    export_chrome,
    export_json,
    load_trace,
    summarize_trace_file,
    trace_to_dict,
    write_trace,
)
from repro.obs.metrics import format_series
from repro.obs.trace import _NOOP_CONTEXT


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpans:
    def test_disabled_records_nothing(self):
        with span("a"):
            with span("b"):
                pass
        assert tracer().records == []

    def test_disabled_returns_shared_noop(self):
        # the hot-path contract: no allocation while disabled
        assert span("a") is span("b") is _NOOP_CONTEXT

    def test_nesting_and_parents(self):
        obs.enable()
        with span("outer"):
            with span("inner"):
                pass
        by_name = {s.name: s for s in tracer().records}
        assert set(by_name) == {"outer", "inner"}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_attrs_and_set(self):
        obs.enable()
        with span("s", x=1) as sp:
            sp.set(y=2)
        rec = tracer().records[0]
        assert rec.attrs == {"x": 1, "y": 2}

    def test_exception_recorded_and_propagated(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        rec = tracer().records[0]
        assert rec.attrs["error"] == "RuntimeError"

    def test_duration_positive_and_ordered(self):
        obs.enable()
        with span("t"):
            time.sleep(0.002)
        rec = tracer().records[0]
        assert rec.duration_s >= 0.002
        assert rec.end_s == pytest.approx(rec.start_s + rec.duration_s)

    def test_threads_have_independent_stacks(self):
        obs.enable()

        def worker():
            with span("child-root"):
                pass

        with span("main-root"):
            t = threading.Thread(target=worker, name="w-0")
            t.start()
            t.join()
        recs = {s.name: s for s in tracer().records}
        # the other thread's span is a root, not a child of main-root
        assert recs["child-root"].parent_id is None
        assert recs["child-root"].thread == "w-0"

    def test_reset_drops_records(self):
        obs.enable()
        with span("a"):
            pass
        assert len(tracer()) == 1
        obs.reset()
        assert len(tracer()) == 0

    def test_capture_contextmanager(self):
        with capture() as (tr, reg):
            with span("inside"):
                pass
            obs.counter("c")
        assert not tr.enabled
        assert [s.name for s in tr.records] == ["inside"]
        assert reg.counter_value("c") == 1

    def test_span_to_dict_roundtrip(self):
        s = Span(span_id=1, parent_id=None, name="n", start_s=0.5,
                 duration_s=0.25, thread="MainThread", attrs={"k": "v"})
        d = s.to_dict()
        assert d["name"] == "n" and d["attrs"] == {"k": "v"}

    def test_private_tracer_independent(self):
        tr = Tracer()
        tr.enable()
        with tr.span("x"):
            pass
        assert len(tr) == 1
        assert tracer().records == []


class TestWallAnchor:
    def test_wall_time_derives_from_epoch_pair(self):
        tr = Tracer()
        tr.enable()
        before = time.time()
        with tr.span("a"):
            pass
        after = time.time()
        rec = tr.records[0]
        wall = tr.wall_time_s(rec.start_s)
        # the epoch pair was taken before the span started; the derived
        # wall timestamp must land inside the observed wall window
        assert before - 1.0 <= wall <= after + 1.0
        assert tr.wall_time_s(rec.end_s) >= wall

    def test_reset_re_anchors(self):
        tr = Tracer()
        e0 = tr.epoch_wall_s
        time.sleep(0.002)
        tr.reset()
        assert tr.epoch_wall_s >= e0

    def test_enable_re_anchors_only_fresh_recordings(self):
        tr = Tracer()
        tr.enable()
        with tr.span("a"):
            pass
        anchored = tr.epoch_wall_s
        tr.disable()
        time.sleep(0.002)
        # records exist: re-enabling must NOT move their epoch
        tr.enable()
        assert tr.epoch_wall_s == anchored
        tr.disable()
        tr.reset()
        time.sleep(0.002)
        tr.enable()  # fresh recording: re-anchoring is allowed
        assert tr.epoch_wall_s > anchored


class TestMetrics:
    def test_disabled_is_noop(self):
        obs.counter("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 1.0)
        assert len(registry()) == 0

    def test_counter_accumulates(self):
        obs.enable()
        obs.counter("c")
        obs.counter("c", 4)
        assert registry().counter_value("c") == 5

    def test_labels_separate_series(self):
        obs.enable()
        obs.counter("msgs", rank=0)
        obs.counter("msgs", rank=1)
        obs.counter("msgs", rank=1)
        assert registry().counter_value("msgs", rank=0) == 1
        assert registry().counter_value("msgs", rank=1) == 2
        assert registry().counter_total("msgs") == 3

    def test_gauge_last_write_wins(self):
        obs.enable()
        obs.gauge("g", 1.0)
        obs.gauge("g", 7.0)
        assert registry().gauge_value("g") == 7.0

    def test_histogram_summary(self):
        obs.enable()
        for v in range(1, 11):
            obs.observe("h", float(v))
        snap = registry().snapshot()["histograms"]["h"]
        assert snap["count"] == 10
        assert snap["mean"] == pytest.approx(5.5)
        assert snap["p50"] == pytest.approx(5.5)  # interpolated on 1..10
        assert snap["p90"] == pytest.approx(9.1)
        assert snap["p99"] == pytest.approx(9.91)
        assert snap["max"] == 10.0

    def test_percentile_interpolation_small_n(self):
        # the bench runner's repeat counts are tiny; nearest-rank would
        # collapse p90 onto the max for n=5
        obs.enable()
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            obs.observe("r", v)
        snap = registry().snapshot()["histograms"]["r"]
        assert snap["p90"] == pytest.approx(4.6)
        assert snap["p99"] == pytest.approx(4.96)
        assert snap["p50"] == pytest.approx(3.0)

    def test_percentile_empty_raises(self):
        from repro.obs.metrics import _percentile

        with pytest.raises(ValueError):
            _percentile([], 0.5)

    def test_format_series(self):
        obs.enable()
        obs.counter("c", rank=3, dim=0)
        names = list(registry().snapshot()["counters"])
        assert names == ["c{dim=0,rank=3}"]
        assert format_series(("plain", ())) == "plain"

    def test_private_registry(self):
        reg = MetricsRegistry()
        reg.enable()
        reg.counter("c")
        assert reg.counter_value("c") == 1
        assert registry().counter_value("c") == 0


def _record_sample():
    """A small trace: two threads, nesting, metrics."""
    obs.enable()
    with span("root", kind="test"):
        with span("child"):
            time.sleep(0.001)
        with span("child"):
            pass

    def worker():
        with span("other-root"):
            pass

    t = threading.Thread(target=worker, name="rank-1")
    t.start()
    t.join()
    obs.counter("msgs", 3, rank=0)
    obs.gauge("util", 0.5)
    obs.observe("lat", 0.25)
    obs.disable()


class TestExporters:
    def test_export_formats_constant(self):
        assert EXPORT_FORMATS == ("json", "chrome", "summary")

    def test_native_dict_shape(self):
        _record_sample()
        doc = trace_to_dict()
        assert doc["format"] == "repro-trace"
        assert len(doc["spans"]) == 4
        assert doc["metrics"]["counters"]["msgs{rank=0}"] == 3
        # sorted by start time
        starts = [s["start_s"] for s in doc["spans"]]
        assert starts == sorted(starts)

    def test_export_json_is_valid_json(self):
        _record_sample()
        doc = json.loads(export_json())
        assert {s["name"] for s in doc["spans"]} == {
            "root", "child", "other-root"
        }

    def test_chrome_events_valid(self):
        _record_sample()
        doc = json.loads(export_chrome())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 4
        # one thread_name metadata event per recording thread
        assert {m["args"]["name"] for m in metas} >= {"rank-1"}
        for ev in xs:
            assert ev["ts"] >= 0 and ev["dur"] >= 0  # microseconds
            assert isinstance(ev["tid"], int)
        assert doc["otherData"]["metrics"]["gauges"]["util"] == 0.5

    def test_ascii_summary_renders(self):
        _record_sample()
        text = ascii_summary()
        assert "TRACE SUMMARY" in text
        assert "root" in text and "child" in text
        assert "COUNTERS" in text and "msgs{rank=0}" in text
        assert "HISTOGRAMS" in text

    def test_empty_summary_hint(self):
        assert "was tracing enabled?" in ascii_summary()

    def test_write_trace_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(str(tmp_path / "t"), fmt="xml")

    @pytest.mark.parametrize("fmt", ["json", "chrome"])
    def test_file_roundtrip(self, fmt, tmp_path):
        _record_sample()
        path = str(tmp_path / f"trace.{fmt}")
        write_trace(path, fmt=fmt)
        doc = load_trace(path)
        spans = doc["spans"]
        assert {s["name"] for s in spans} == {
            "root", "child", "other-root"
        }
        # parenthood survives both formats (chrome: reconstructed by
        # interval containment per tid)
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], s)
        root_id = by_name["root"]["span_id"]
        children = [s for s in spans if s["name"] == "child"]
        assert all(c["parent_id"] == root_id for c in children)
        assert by_name["other-root"]["parent_id"] is None
        assert doc["metrics"]["counters"]["msgs{rank=0}"] == 3
        assert "TRACE SUMMARY" in summarize_trace_file(path)

    def test_summary_file_writable(self, tmp_path):
        _record_sample()
        path = str(tmp_path / "t.txt")
        write_trace(path, fmt="summary")
        assert "TRACE SUMMARY" in open(path).read()

    def test_bare_event_list_loads(self, tmp_path):
        path = str(tmp_path / "bare.json")
        with open(path, "w") as fh:
            json.dump([
                {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0,
                 "pid": 0, "tid": 0},
                {"name": "b", "ph": "X", "ts": 1.0, "dur": 5.0,
                 "pid": 0, "tid": 0},
            ], fh)
        doc = load_trace(path)
        assert [s["name"] for s in doc["spans"]] == ["a", "b"]
        assert doc["spans"][1]["parent_id"] == doc["spans"][0]["span_id"]

    def test_not_a_trace_rejected(self, tmp_path):
        path = str(tmp_path / "x.json")
        with open(path, "w") as fh:
            json.dump({"hello": 1}, fh)
        with pytest.raises(ValueError, match="neither"):
            load_trace(path)


class TestInstrumentation:
    """The real pipeline emits spans from every advertised subsystem."""

    def test_subsystem_list(self):
        assert set(INSTRUMENTED_SUBSYSTEMS) >= {
            "frontend", "schedule", "codegen", "machine", "comm",
            "runtime", "autotune",
        }

    def test_simulate_pipeline_spans(self):
        from repro.evalsuite.harness import build_with_schedule
        from repro.ir.dtypes import f64

        with capture() as (tr, reg):
            prog, _ = build_with_schedule("3d7pt_star", "sunway", f64)
            prog.compile_to_source_code("x", target="sunway")
            prog.simulate("sunway")
        prefixes = {s.name.split(".", 1)[0] for s in tr.records}
        assert prefixes >= {"schedule", "codegen", "machine"}
        assert reg.counter_total("machine.dma.gets") > 0
        assert 0 < reg.gauge_value(
            "machine.spm_utilisation", machine="SW26010-CG"
        ) <= 1.0

    def test_distributed_run_spans(self):
        from repro.frontend.stencils import benchmark_by_name
        from repro.ir.dtypes import f64
        from repro.runtime.executor import distributed_run

        bench = benchmark_by_name("2d9pt_star")
        shape = (16, 16)
        prog, _ = bench.build(grid=shape, dtype=f64,
                              boundary="periodic")
        rng = np.random.default_rng(0)
        need = prog.ir.required_time_window - 1
        init = [rng.random(shape) for _ in range(need)]
        with capture() as (tr, reg):
            distributed_run(prog.ir, init, 2, (2, 2),
                            boundary="periodic")
        names = {s.name for s in tr.records}
        assert {"runtime.distributed_run", "runtime.step",
                "comm.exchange", "comm.pack", "comm.wait",
                "comm.unpack"} <= names
        # per-rank spans land on the rank threads
        threads = {s.thread for s in tr.records
                   if s.name == "runtime.step"}
        assert len(threads) == 4
        assert reg.counter_total("comm.messages") > 0

    def test_frontend_parse_span(self):
        from repro.frontend.lang import parse_program

        src = """
        const N = 8;
        DefVar(j, i32); DefVar(i, i32);
        DefTensor2D(U, 1, f64, N, N);
        Kernel k((j,i), 0.5*U[j,i]);
        Stencil s((j,i), U[t] << k[t-1]);
        """
        with capture() as (tr, _):
            parse_program(src)
        rec = next(s for s in tr.records if s.name == "frontend.parse")
        assert rec.attrs["kernels"] == 1

    def test_autotune_spans(self):
        from repro.autotune import AutoTuner
        from repro.frontend.stencils import benchmark_by_name
        from repro.ir.dtypes import f64

        bench = benchmark_by_name("3d7pt_star")
        prog, _ = bench.build(grid=(128, 64, 64), dtype=f64)
        tuner = AutoTuner(prog.ir, (128, 64, 64), nprocs=8)
        with capture() as (tr, reg):
            tuner.tune(iterations=200, seed=0, n_samples=20)
        names = {s.name for s in tr.records}
        assert {"autotune.tune", "autotune.sample", "autotune.fit",
                "autotune.trial", "autotune.anneal",
                "autotune.remeasure"} <= names
        assert reg.gauge_value("autotune.best_time_s") > 0


class TestNoopIsFree:
    """Satellite (c): with tracing disabled, instrumented paths record
    nothing and add no measurable overhead."""

    def test_distributed_run_records_nothing(self):
        from repro.frontend.stencils import benchmark_by_name
        from repro.ir.dtypes import f64
        from repro.runtime.executor import distributed_run

        bench = benchmark_by_name("2d9pt_star")
        shape = (16, 16)
        prog, _ = bench.build(grid=shape, dtype=f64,
                              boundary="periodic")
        rng = np.random.default_rng(0)
        need = prog.ir.required_time_window - 1
        init = [rng.random(shape) for _ in range(need)]
        assert not obs.is_enabled()
        distributed_run(prog.ir, init, 2, (2, 2), boundary="periodic")
        assert tracer().records == []
        assert len(registry()) == 0

    def test_disabled_span_overhead_bounded(self):
        # the disabled fast path must stay within a small constant
        # factor of a bare function call (flag check + return of a
        # shared singleton; no allocation)
        def bare():
            pass

        n = 20000

        def timed(fn):
            best = float("inf")
            for _ in range(5):
                t0 = time.perf_counter()
                for _ in range(n):
                    fn()
                best = min(best, time.perf_counter() - t0)
            return best

        base = timed(bare)
        disabled = timed(lambda: span("x"))
        # generous bound: CI machines are noisy, but a recording path
        # (allocation + lock) would be >50x a bare call
        assert disabled < base * 25 + 5e-3


class TestChromeRoundTripProperty:
    """``load_trace`` of a chrome export equals the native export.

    The chrome writer stamps every X event with the native span
    identity (``sid``/``spid``/``t0``/``d``), so the round trip must be
    *lossless* — exact ids, parents, float timestamps, attrs and
    metrics — for any trace, not just ones our pipeline happens to
    produce.
    """

    @staticmethod
    def _fresh_pair():
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        tr = Tracer()
        reg = MetricsRegistry()
        reg.enable()
        return tr, reg

    @_given(_st.data())
    @_settings(
        max_examples=60, deadline=None,
        suppress_health_check=[
            _HealthCheck.too_slow, _HealthCheck.function_scoped_fixture,
        ],
    )
    def test_chrome_export_round_trips_losslessly(self, data):
        import tempfile

        from repro.obs.trace import Span

        attr_values = _st.one_of(
            _st.integers(-1000, 1000),
            _st.floats(allow_nan=False, allow_infinity=False,
                       width=32).map(float),
            _st.text("xyz_", max_size=6),
            _st.booleans(),
            _st.none(),
            _st.lists(_st.text("0123456789>:#", min_size=1, max_size=8),
                      max_size=3),
        )
        # keys stay clear of the reserved flows_out/flows_in, whose
        # values must be flow-id lists
        attrs = _st.dictionaries(
            _st.text("abcdef", min_size=1, max_size=4), attr_values,
            max_size=3,
        )
        threads = _st.sampled_from(
            ["MainThread", "simmpi-rank-0", "simmpi-rank-1"]
        )

        tr, reg = self._fresh_pair()
        n = data.draw(_st.integers(0, 12), label="n_spans")
        for sid in range(1, n + 1):
            a = data.draw(attrs, label=f"attrs{sid}")
            if data.draw(_st.booleans(), label=f"flow{sid}"):
                a["flows_out"] = data.draw(
                    _st.lists(_st.sampled_from(["0>1:5#0", "1>0:5#1"]),
                              max_size=2),
                    label=f"flows{sid}",
                )
            tr.records.append(Span(
                span_id=sid,
                parent_id=data.draw(
                    _st.one_of(_st.none(), _st.integers(1, max(1, sid))),
                    label=f"parent{sid}",
                ),
                name=data.draw(_st.text("abc.", min_size=1, max_size=8),
                               label=f"name{sid}"),
                start_s=data.draw(
                    _st.floats(0, 100, allow_nan=False), label=f"t{sid}"
                ),
                duration_s=data.draw(
                    _st.floats(0, 10, allow_nan=False), label=f"d{sid}"
                ),
                thread=data.draw(threads, label=f"th{sid}"),
                attrs=a,
            ))
        for i in range(data.draw(_st.integers(0, 3), label="n_ctr")):
            reg.counter(f"c{i}", data.draw(_st.integers(0, 99),
                                           label=f"v{i}"))

        with tempfile.NamedTemporaryFile(
            "w", suffix=".chrome.json", delete=False
        ) as fh:
            fh.write(export_chrome(tr, reg))
        assert load_trace(fh.name) == json.loads(export_json(tr, reg))
