"""Unit tests for the expression IR (Table 2 nodes)."""

import pytest

from repro.ir.expr import (
    AssignExpr,
    CallFuncExpr,
    ConstExpr,
    IndexExpr,
    OperatorExpr,
    TensorAccess,
    VarExpr,
    as_expr,
)
from repro.ir.tensor import SpNode


@pytest.fixture
def B():
    return SpNode("B", (8, 8), halo=(1, 1))


@pytest.fixture
def ji():
    return VarExpr("j"), VarExpr("i")


class TestOperatorOverloading:
    def test_add_builds_operator_expr(self, B, ji):
        j, i = ji
        e = B[j, i] + B[j, i - 1]
        assert isinstance(e, OperatorExpr) and e.op == "add"

    def test_scalar_coefficients_coerce(self, B, ji):
        j, i = ji
        e = 0.25 * B[j, i]
        assert isinstance(e.operands[0], ConstExpr)
        assert e.operands[0].value == 0.25

    def test_right_operations(self, B, ji):
        j, i = ji
        for e in (1 - B[j, i], 2 / B[j, i], 3 + B[j, i]):
            assert isinstance(e, OperatorExpr)
            assert isinstance(e.operands[0], ConstExpr)

    def test_negation(self, B, ji):
        j, i = ji
        e = -B[j, i]
        assert e.op == "neg" and len(e.operands) == 1

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="boolean"):
            as_expr(True)

    def test_unconvertible_rejected(self):
        with pytest.raises(TypeError):
            as_expr("hello")


class TestIndexExpr:
    def test_var_plus_int_is_index(self):
        i = VarExpr("i")
        ix = i + 3
        assert isinstance(ix, IndexExpr) and ix.offset == 3

    def test_var_minus_int_is_index(self):
        i = VarExpr("i")
        ix = i - 2
        assert isinstance(ix, IndexExpr) and ix.offset == -2

    def test_index_offsets_accumulate(self):
        i = VarExpr("i")
        ix = (i + 3) - 1
        assert isinstance(ix, IndexExpr) and ix.offset == 2

    def test_var_plus_float_is_arithmetic(self):
        i = VarExpr("i")
        e = i + 0.5
        assert isinstance(e, OperatorExpr)

    def test_c_source(self):
        i = VarExpr("i")
        assert IndexExpr(i, 0).c_source() == "i"
        assert IndexExpr(i, 2).c_source() == "i + 2"
        assert IndexExpr(i, -1).c_source() == "i - 1"

    def test_non_int_offset_rejected(self):
        with pytest.raises(TypeError):
            IndexExpr(VarExpr("i"), 1.5)


class TestTensorAccess:
    def test_offsets_property(self, B, ji):
        j, i = ji
        acc = B[j - 1, i + 1]
        assert acc.offsets == (-1, 1)

    def test_bare_var_normalised(self, B, ji):
        j, i = ji
        acc = B[j, i]
        assert all(isinstance(ix, IndexExpr) for ix in acc.indices)
        assert acc.offsets == (0, 0)

    def test_future_time_offset_rejected(self, B, ji):
        j, i = ji
        with pytest.raises(ValueError, match="future"):
            TensorAccess(B, (IndexExpr(j), IndexExpr(i)), time_offset=1)

    def test_expression_subscript_rejected(self, B, ji):
        j, i = ji
        with pytest.raises(TypeError):
            B[j * 2, i]

    def test_rank_mismatch_rejected(self, B, ji):
        j, _ = ji
        with pytest.raises(IndexError):
            B[j]


class TestOperatorExpr:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown operator"):
            OperatorExpr("pow", (ConstExpr(1), ConstExpr(2)))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            OperatorExpr("add", (ConstExpr(1),))
        with pytest.raises(ValueError):
            OperatorExpr("neg", (ConstExpr(1), ConstExpr(2)))

    def test_c_source_parenthesised(self, B, ji):
        j, i = ji
        src = (B[j, i] + B[j, i - 1]).c_source()
        assert src.startswith("(") and " + " in src


class TestCallFuncExpr:
    def test_known_function(self):
        e = CallFuncExpr("sqrt", (ConstExpr(4.0),))
        assert e.c_source() == "sqrt(4.0)"

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError, match="unknown external function"):
            CallFuncExpr("mystery", (ConstExpr(1),))

    def test_args_coerced(self):
        e = CallFuncExpr("pow", (2, 3))
        assert all(isinstance(a, ConstExpr) for a in e.args)


class TestAssignExpr:
    def test_target_must_be_centre(self, B, ji):
        j, i = ji
        with pytest.raises(ValueError, match="centre"):
            AssignExpr(B[j, i - 1], ConstExpr(0))

    def test_valid_assignment(self, B, ji):
        j, i = ji
        a = AssignExpr(B[j, i], B[j, i - 1] + 1.0)
        assert a.c_source().endswith(";")

    def test_non_access_target_rejected(self):
        with pytest.raises(TypeError):
            AssignExpr(ConstExpr(1), ConstExpr(2))


class TestWalk:
    def test_walk_visits_all_nodes(self, B, ji):
        j, i = ji
        e = 0.5 * B[j, i] + 0.25 * B[j, i - 1]
        accesses = [n for n in e.walk() if isinstance(n, TensorAccess)]
        consts = [n for n in e.walk() if isinstance(n, ConstExpr)]
        assert len(accesses) == 2
        assert len(consts) == 2

    def test_walk_preorder_root_first(self, B, ji):
        j, i = ji
        e = B[j, i] + 1.0
        assert next(iter(e.walk())) is e

    def test_const_nonfinite_c_source_raises(self):
        with pytest.raises(ValueError):
            ConstExpr(float("inf")).c_source()
