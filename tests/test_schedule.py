"""Unit tests for the Schedule and its primitives (Sec. 4.3)."""

import pytest

from repro.machine.spec import MATRIX_SN, SUNWAY_CG
from repro.schedule import (
    LegalityError,
    Schedule,
    ScheduleError,
    check_schedule,
    spm_tile_bytes,
)
from tests.conftest import make_2d5pt, make_3d7pt


@pytest.fixture
def kern3d():
    return make_3d7pt()[1]


@pytest.fixture
def tensor_and_kern():
    return make_3d7pt()


class TestTilePrimitive:
    def test_paper_style_tile_all_axes(self, kern3d):
        s = Schedule(kern3d)
        s.tile(2, 8, 64, "xo", "xi", "yo", "yi", "zo", "zi")
        assert s.tile_factors == {"k": 2, "j": 8, "i": 64}

    def test_single_axis_tile(self, kern3d):
        s = Schedule(kern3d)
        s.tile("i", 16, "io", "ii")
        assert s.tile_factors == {"i": 16}

    def test_wrong_arity_rejected(self, kern3d):
        with pytest.raises(ScheduleError, match="arguments"):
            Schedule(kern3d).tile(2, 8, "xo", "xi")

    def test_double_tile_rejected(self, kern3d):
        s = Schedule(kern3d).tile("i", 4, "io", "ii")
        with pytest.raises(ScheduleError, match="twice"):
            s.tile("i", 8, "io2", "ii2")

    def test_unknown_var_rejected(self, kern3d):
        with pytest.raises(ScheduleError, match="unknown loop variable"):
            Schedule(kern3d).tile("w", 4, "wo", "wi")

    def test_name_collision_rejected(self, kern3d):
        s = Schedule(kern3d).tile("i", 4, "io", "ii")
        with pytest.raises(ScheduleError, match="already in use"):
            s.tile("j", 4, "io", "jj")


class TestReorderPrimitive:
    def test_valid_permutation(self, kern3d):
        s = Schedule(kern3d)
        s.tile(2, 8, 64, "xo", "xi", "yo", "yi", "zo", "zi")
        s.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        nest = s.lower((64, 64, 64))
        assert nest.axis_names == ["xo", "yo", "zo", "xi", "yi", "zi"]

    def test_non_permutation_rejected(self, kern3d):
        s = Schedule(kern3d)
        s.tile(2, 8, 64, "xo", "xi", "yo", "yi", "zo", "zi")
        with pytest.raises(ScheduleError, match="permutation"):
            s.reorder("xo", "yo", "zo", "xi", "yi")

    def test_reorder_untiled_axes(self, kern3d):
        s = Schedule(kern3d)
        s.reorder("i", "j", "k")
        nest = s.lower((8, 8, 8))
        assert nest.axis_names == ["i", "j", "k"]


class TestParallelPrimitive:
    def test_parallel_records_threads(self, kern3d):
        s = Schedule(kern3d)
        s.tile(2, 8, 64, "xo", "xi", "yo", "yi", "zo", "zi")
        s.parallel("xo", 64)
        assert s.nthreads == 64

    def test_unknown_axis_rejected(self, kern3d):
        with pytest.raises(ScheduleError, match="unknown axis"):
            Schedule(kern3d).parallel("qq", 8)


class TestCachePrimitives:
    def test_cache_read_binding(self, tensor_and_kern):
        tensor, kern = tensor_and_kern
        s = Schedule(kern)
        s.cache_read(tensor, "buf_r", "global")
        s.cache_write("buf_w", "global")
        bindings = {b.buffer: b for b in s.cache_bindings()}
        assert bindings["buf_r"].kind == "read"
        assert bindings["buf_r"].tensor == "B"
        assert bindings["buf_w"].kind == "write"

    def test_cache_read_unknown_tensor(self, tensor_and_kern):
        _, kern = tensor_and_kern
        with pytest.raises(ScheduleError, match="does not read"):
            Schedule(kern).cache_read("Z", "buf", "global")

    def test_bad_scope_rejected(self, tensor_and_kern):
        tensor, kern = tensor_and_kern
        with pytest.raises(ValueError, match="scope"):
            Schedule(kern).cache_read(tensor, "buf", "spm")

    def test_compute_at_requires_binding(self, tensor_and_kern):
        _, kern = tensor_and_kern
        s = Schedule(kern)
        with pytest.raises(ScheduleError, match="unbound buffer"):
            s.compute_at("buf", "k")

    def test_compute_at_placement(self, tensor_and_kern):
        tensor, kern = tensor_and_kern
        s = Schedule(kern)
        s.tile(2, 8, 8, "xo", "xi", "yo", "yi", "zo", "zi")
        s.cache_read(tensor, "buf_r")
        s.compute_at("buf_r", "zo")
        (binding,) = s.cache_bindings()
        assert binding.compute_at == "zo"

    def test_double_placement_rejected(self, tensor_and_kern):
        tensor, kern = tensor_and_kern
        s = Schedule(kern).cache_read(tensor, "buf_r")
        s.compute_at("buf_r", "k")
        with pytest.raises(ScheduleError, match="already placed"):
            s.compute_at("buf_r", "j")


class TestLowering:
    def test_tile_factor_exceeding_extent_rejected(self, kern3d):
        s = Schedule(kern3d).tile("i", 128, "io", "ii")
        with pytest.raises(ScheduleError, match="exceeds extent"):
            s.lower((8, 8, 8))

    def test_rank_mismatch_rejected(self, kern3d):
        with pytest.raises(ScheduleError):
            Schedule(kern3d).lower((8, 8))

    def test_untiled_lowering_single_tile(self, kern3d):
        nest = Schedule(kern3d).lower((8, 8, 8))
        tiles = list(nest.iter_tiles())
        assert len(tiles) == 1
        assert tiles[0].shape() == (8, 8, 8)


class TestLegality:
    def _sunway_schedule(self, tensor, kern, tile=(2, 8, 64)):
        s = Schedule(kern)
        s.tile(*tile, "xo", "xi", "yo", "yi", "zo", "zi")
        s.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        s.cache_read(tensor, "br")
        s.cache_write("bw")
        s.compute_at("br", "zo")
        s.compute_at("bw", "zo")
        s.parallel("xo", 64)
        return s

    def test_valid_sunway_schedule(self):
        tensor, kern = make_3d7pt(shape=(256, 256, 256))
        s = self._sunway_schedule(tensor, kern)
        check_schedule(s, s.lower((256, 256, 256)), SUNWAY_CG)

    def test_spm_overflow_detected(self):
        tensor, kern = make_3d7pt(shape=(256, 256, 256))
        s = self._sunway_schedule(tensor, kern, tile=(16, 16, 256))
        with pytest.raises(LegalityError, match="SPM"):
            check_schedule(s, s.lower((256, 256, 256)), SUNWAY_CG)

    def test_cacheless_requires_staging(self):
        tensor, kern = make_3d7pt(shape=(64, 64, 64))
        s = Schedule(kern)
        s.tile(2, 8, 8, "xo", "xi", "yo", "yi", "zo", "zi")
        s.parallel("xo", 64)
        with pytest.raises(LegalityError, match="cache_read"):
            check_schedule(s, s.lower((64, 64, 64)), SUNWAY_CG)

    def test_too_many_threads(self):
        tensor, kern = make_3d7pt(shape=(64, 64, 64))
        s = Schedule(kern)
        s.tile(2, 8, 8, "xo", "xi", "yo", "yi", "zo", "zi")
        s.parallel("xo", 129)
        with pytest.raises(LegalityError, match="exceeds"):
            check_schedule(s, s.lower((64, 64, 64)), MATRIX_SN)

    def test_parallel_inner_axis_flagged(self):
        tensor, kern = make_3d7pt(shape=(64, 64, 64))
        s = Schedule(kern)
        s.tile(2, 8, 8, "xo", "xi", "yo", "yi", "zo", "zi")
        s.parallel("xi", 2)
        with pytest.raises(LegalityError, match="inner"):
            check_schedule(s, s.lower((64, 64, 64)), MATRIX_SN)

    def test_spm_tile_bytes(self):
        tensor, kern = make_3d7pt()
        s = Schedule(kern)
        s.cache_read(tensor, "br")
        s.cache_write("bw")
        need = spm_tile_bytes(kern, (2, 8, 64), s.cache_bindings())
        assert need == (4 * 10 * 66 + 2 * 8 * 64) * 8
