"""Tests for the graph-based interconnect topology model."""

import networkx as nx
import pytest

from repro.frontend import build_benchmark
from repro.ir.analysis import halo_traffic_bytes
from repro.runtime.topology import (
    ExchangeLoad,
    Topology,
    fat_tree,
    route_exchange,
    torus,
)


class TestFatTree:
    def test_host_count(self):
        topo = fat_tree(20, radix=8)
        assert len(topo.hosts) == 20

    def test_connected(self):
        topo = fat_tree(33, radix=8)
        assert nx.is_connected(topo.graph)

    def test_switch_levels(self):
        topo = fat_tree(16, radix=8)
        assert topo.nswitches >= 3  # 2 leaves + >= 1 core

    def test_oversubscription_reduces_core_links(self):
        full = fat_tree(64, radix=8, up_ratio=1.0)
        thin = fat_tree(64, radix=8, up_ratio=0.25)
        assert thin.graph.number_of_edges() < full.graph.number_of_edges()

    def test_invalid(self):
        with pytest.raises(ValueError):
            fat_tree(0)


class TestTorus:
    def test_degree_regular(self):
        topo = torus((4, 4))
        degrees = {d for _, d in topo.graph.degree()}
        assert degrees == {4}  # 2 links per dimension

    def test_3d(self):
        topo = torus((2, 3, 4))
        assert len(topo.hosts) == 24
        assert nx.is_connected(topo.graph)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            torus((0, 4))


class TestRouting:
    @pytest.fixture(scope="class")
    def stencil(self):
        prog, _ = build_benchmark("3d7pt_star", grid=(64, 64, 64))
        return prog.ir

    def test_total_bytes_matches_analysis(self, stencil):
        # periodic exchange total == nprocs × per-proc halo volume
        topo = fat_tree(64)
        load = route_exchange(stencil, (4, 4, 4), topo, periodic=True)
        per_proc = halo_traffic_bytes(stencil, (16, 16, 16))
        assert load.total_bytes == 64 * per_proc

    def test_nonperiodic_routes_fewer_bytes(self, stencil):
        topo = fat_tree(64)
        per = route_exchange(stencil, (4, 4, 4), topo, periodic=True)
        non = route_exchange(stencil, (4, 4, 4), topo, periodic=False)
        assert non.total_bytes < per.total_bytes

    def test_oversubscription_congests(self, stencil):
        full = route_exchange(stencil, (4, 4, 4), fat_tree(64, up_ratio=1.0))
        thin = route_exchange(stencil, (4, 4, 4),
                              fat_tree(64, up_ratio=0.25))
        assert thin.max_link_bytes > full.max_link_bytes
        assert thin.congestion_time_s > full.congestion_time_s

    def test_torus_spreads_neighbour_traffic(self, stencil):
        # a 3-D stencil on a matching 3-D torus keeps traffic local:
        # every loaded link carries the same face (hotspot factor 1)
        load = route_exchange(stencil, (4, 4, 4), torus((4, 4, 4)))
        assert load.hotspot_factor == pytest.approx(1.0)

    def test_too_many_ranks_rejected(self, stencil):
        with pytest.raises(ValueError, match="hosts"):
            route_exchange(stencil, (8, 8, 8), fat_tree(64))

    def test_ecmp_conserves_bytes(self, stencil):
        # host links carry each message once; ECMP splitting must not
        # create or destroy bytes at the hosts
        topo = fat_tree(64, radix=8)
        load = route_exchange(stencil, (4, 4, 4), topo)
        host_ingress = 0.0
        for (a, b), v in load.link_bytes.items():
            if a.startswith("host") or b.startswith("host"):
                host_ingress += v
        # every message crosses exactly two host links (src + dst)
        assert host_ingress == pytest.approx(2 * load.total_bytes)
