"""Tests for the communication library: decomposition, halo geometry,
packing, exchangers and the plugin registry (Sec. 4.4, Fig. 6)."""

import numpy as np
import pytest

from repro.comm import (
    EXCHANGE_MODES,
    AsyncHaloExchanger,
    BufferPool,
    DiagHaloExchanger,
    HaloExchanger,
    HaloSpec,
    MasterCoordinatedExchanger,
    OverlapHaloExchanger,
    available_exchangers,
    core_owned_regions,
    create_exchanger,
    decompose,
    diag_regions,
    get_exchanger,
    halo_regions,
    owner_of,
    pack,
    pack_many,
    partition_regions,
    register_exchanger,
    suggest_grid,
    unpack,
    unpack_many,
)
from repro.runtime.simmpi import run_ranks


class TestDecompose:
    def test_even_split(self):
        subs = decompose((8, 8), (2, 2))
        assert len(subs) == 4
        assert all(sd.shape == (4, 4) for sd in subs)

    def test_uneven_split_balanced(self):
        subs = decompose((10,), (3,))
        sizes = [sd.shape[0] for sd in subs]
        assert sizes == [4, 3, 3]
        assert sum(sizes) == 10

    def test_cover_exactly_once(self):
        subs = decompose((7, 9, 5), (2, 3, 1))
        seen = np.zeros((7, 9, 5), dtype=int)
        for sd in subs:
            seen[sd.slices()] += 1
        assert (seen == 1).all()

    def test_rank_order_row_major(self):
        subs = decompose((4, 4), (2, 2))
        assert [sd.coords for sd in subs] == [
            (0, 0), (0, 1), (1, 0), (1, 1)
        ]

    def test_owner_of(self):
        subs = decompose((8, 8), (2, 2))
        assert owner_of((0, 0), subs) == 0
        assert owner_of((7, 7), subs) == 3
        with pytest.raises(ValueError):
            owner_of((8, 0), subs)

    def test_too_many_procs_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            decompose((4,), (8,))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            decompose((4, 4), (2,))


class TestSuggestGrid:
    def test_product_matches(self):
        for n in (1, 2, 6, 12, 28, 64, 128):
            grid = suggest_grid(n, 3)
            assert np.prod(grid) == n

    def test_prefers_large_dims(self):
        grid = suggest_grid(8, 2, global_shape=(1024, 16))
        assert grid[0] >= grid[1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            suggest_grid(0, 2)


class TestHaloGeometry:
    def test_padded_shape(self):
        spec = HaloSpec((8, 8), (2, 1))
        assert spec.padded_shape == (12, 10)

    def test_regions_two_per_dimension(self):
        spec = HaloSpec((8, 8), (1, 1))
        regions = halo_regions(spec)
        assert len(regions) == 4
        assert {(r.dim, r.direction) for r in regions} == {
            (0, -1), (0, 1), (1, -1), (1, 1)
        }

    def test_zero_halo_dim_skipped(self):
        spec = HaloSpec((8, 8), (0, 1))
        regions = halo_regions(spec)
        assert {r.dim for r in regions} == {1}

    def test_send_strips_inside_valid_recv_outside(self):
        # Along its own exchange dimension, the send strip must lie
        # within the valid band [h, h+s) and the recv strip in the
        # ghost band; other dimensions span the full padded extent (so
        # corners propagate across phases).
        spec = HaloSpec((8, 8), (2, 2))
        for region in halo_regions(spec):
            d, h, s = region.dim, spec.halo[region.dim], spec.sub_shape[region.dim]
            lo, hi, _ = region.send[d].indices(spec.padded_shape[d])
            assert h <= lo and hi <= h + s
            rlo, rhi, _ = region.recv[d].indices(spec.padded_shape[d])
            assert rhi <= h or rlo >= h + s

    def test_halo_wider_than_domain_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            HaloSpec((2, 8), (3, 1))

    def test_partition_fig6(self):
        # Fig. 6b: inner region ∪ inner halo = valid region; outer halo
        # disjoint from valid
        spec = HaloSpec((8, 8), (1, 1))
        inner, inner_strips, outer_strips = partition_regions(spec)
        mask = np.zeros(spec.padded_shape, dtype=int)
        mask[inner] += 1
        for s in inner_strips:
            mask[s] += 1
        valid = np.zeros(spec.padded_shape, dtype=bool)
        valid[spec.interior()] = True
        assert (mask[valid] >= 1).all()
        assert (mask[~valid] == 0).all()
        for s in outer_strips:
            assert not valid[s].any()


class TestPacking:
    def test_roundtrip(self, rng):
        plane = rng.random((6, 6))
        strip = (slice(1, 3), slice(0, 6))
        buf = pack(plane, strip)
        target = np.zeros((6, 6))
        unpack(buf, target, strip)
        np.testing.assert_array_equal(target[strip], plane[strip])

    def test_pack_into_provided_buffer(self, rng):
        plane = rng.random((4, 4))
        out = np.zeros(8)
        buf = pack(plane, (slice(0, 2), slice(0, 4)), out)
        assert buf is out

    def test_size_mismatch(self, rng):
        plane = rng.random((4, 4))
        with pytest.raises(ValueError):
            pack(plane, (slice(0, 2), slice(0, 4)), np.zeros(4))
        with pytest.raises(ValueError):
            unpack(np.zeros(4), plane, (slice(0, 4), slice(0, 4)))

    def test_buffer_pool_reuses(self):
        pool = BufferPool()
        a = pool.get(100, np.float64, tag="x")
        b = pool.get(100, np.float64, tag="x")
        c = pool.get(100, np.float64, tag="y")
        assert a is b and a is not c
        assert len(pool) == 2
        assert pool.nbytes == 1600


def _exchange_world(exchanger_name, boundary, dims=(2, 2), halo=(1, 1),
                    sub=(4, 4)):
    """Each rank fills its interior with its rank id, exchanges, and
    returns the ghost values it received."""
    periods = tuple(boundary == "periodic" for _ in dims)

    def main(comm):
        spec = HaloSpec(sub, halo)
        ex = create_exchanger(exchanger_name, comm, spec)
        plane = np.zeros(spec.padded_shape)
        plane[spec.interior()] = float(comm.rank)
        ex.exchange(plane)
        up, down = comm.Shift(0, 1)
        left, right = comm.Shift(1, 1)
        h = halo[0]
        return {
            "up": plane[0, h] if up >= 0 else None,
            "down": plane[-1, h] if down >= 0 else None,
            "left": plane[h, 0] if left >= 0 else None,
            "right": plane[h, -1] if right >= 0 else None,
            "corner": plane[0, 0],
            "messages": ex.messages,
        }

    nprocs = int(np.prod(dims))
    return run_ranks(nprocs, main, cart_dims=dims, periods=periods)


#: per-step message count on a periodic 2x2 world: the staged modes
#: send 2 per dimension; diag/overlap coalesce the 8 neighbour offsets
#: into one message per *distinct* peer (3 on a 2x2 torus)
_WORLD_MESSAGES = {"async": 4, "master": 4, "diag": 3, "overlap": 3}


@pytest.mark.parametrize("name", ["async", "master", "diag", "overlap"])
class TestExchangers:
    def test_face_values_from_neighbours(self, name):
        res = _exchange_world(name, "periodic")
        # rank 0 at (0,0) in a periodic 2x2: up neighbour is rank 2,
        # left neighbour is rank 1
        assert res[0]["up"] == 2.0
        assert res[0]["down"] == 2.0
        assert res[0]["left"] == 1.0
        assert res[0]["right"] == 1.0

    def test_corner_propagated_via_dimension_phases(self, name):
        res = _exchange_world(name, "periodic")
        # rank 0's (0,0) corner ghost holds the diagonal neighbour (rank 3)
        assert res[0]["corner"] == 3.0

    def test_nonperiodic_edges_not_received(self, name):
        res = _exchange_world(name, "zero")
        assert res[0]["up"] is None and res[0]["left"] is None
        assert res[0]["down"] == 2.0 and res[0]["right"] == 1.0

    def test_message_count(self, name):
        res = _exchange_world(name, "periodic")
        assert res[0]["messages"] == _WORLD_MESSAGES[name]

    def test_wrong_plane_shape_rejected(self, name):
        def main(comm):
            spec = HaloSpec((4, 4), (1, 1))
            ex = create_exchanger(name, comm, spec)
            ex.exchange(np.zeros((4, 4)))

        from repro.runtime.simmpi import SimMPIError

        with pytest.raises(SimMPIError, match="padded"):
            run_ranks(4, main, cart_dims=(2, 2))


class TestRegistry:
    def test_builtins_available(self):
        assert set(available_exchangers()) >= {"async", "master"}
        assert get_exchanger("async") is AsyncHaloExchanger
        assert get_exchanger("master") is MasterCoordinatedExchanger

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown exchanger"):
            get_exchanger("rdma")

    def test_plugin_registration(self):
        class MyExchanger(AsyncHaloExchanger):
            pass

        register_exchanger("custom-gcl", MyExchanger)
        try:
            assert get_exchanger("custom-gcl") is MyExchanger
            with pytest.raises(ValueError, match="already registered"):
                register_exchanger("custom-gcl", MyExchanger)
            register_exchanger("custom-gcl", AsyncHaloExchanger,
                               replace=True)
        finally:
            from repro.comm import library

            library._REGISTRY.pop("custom-gcl", None)

    def test_non_exchanger_rejected(self):
        with pytest.raises(TypeError):
            register_exchanger("bad", dict)


class TestTrafficCounters:
    """Satellite: exact message/byte accounting on the exchangers."""

    @staticmethod
    def _run_async_2d():
        """Periodic 2x2 grid, sub (4,4), halo (1,1), fp64."""
        def main(comm):
            spec = HaloSpec((4, 4), (1, 1))
            ex = AsyncHaloExchanger(comm, spec)
            plane = np.zeros(spec.padded_shape)
            ex.exchange(plane)
            return ex

        return run_ranks(4, main, cart_dims=(2, 2),
                         periods=(True, True))

    def test_exact_counts_2d_async(self):
        # Each strip spans the full padded extent in the other
        # dimension: 1 x (4+2) = 6 float64 = 48 bytes per message;
        # 2 dims x 2 directions = 4 messages per rank.
        exchangers = self._run_async_2d()
        for ex in exchangers:
            assert ex.messages == 4
            assert ex.bytes_sent == 4 * 6 * 8
        assert sum(ex.messages for ex in exchangers) == 16
        assert sum(ex.bytes_sent for ex in exchangers) == 16 * 48

    def test_reset_counters(self):
        for ex in self._run_async_2d():
            assert ex.messages > 0 and ex.bytes_sent > 0
            ex.reset_counters()
            assert ex.messages == 0 and ex.bytes_sent == 0

    def test_nonperiodic_boundary_sends_fewer(self):
        # on a non-periodic 2x2 every rank is a corner: one neighbour
        # per dimension instead of two
        def main(comm):
            spec = HaloSpec((4, 4), (1, 1))
            ex = AsyncHaloExchanger(comm, spec)
            ex.exchange(np.zeros(spec.padded_shape))
            return (ex.messages, ex.bytes_sent)

        res = run_ranks(4, main, cart_dims=(2, 2),
                        periods=(False, False))
        assert all(m == 2 and b == 2 * 48 for m, b in res)

    def test_counters_mirrored_into_metrics_registry(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            exchangers = self._run_async_2d()
        finally:
            obs.disable()
        reg = obs.registry()
        try:
            assert reg.counter_total("comm.messages") == 16
            assert reg.counter_total("comm.bytes_sent") == 16 * 48
            # labeled per rank and per dimension
            assert reg.counter_value("comm.messages", rank=0) == 4
            assert reg.counter_value(
                "comm.bytes_sent", rank=0, dim=0
            ) == 2 * 48
            del exchangers
        finally:
            obs.reset()

    def test_master_strategy_counts_routing_header(self):
        # the master exchanger ships 2 routing slots with each strip
        def main(comm):
            spec = HaloSpec((4, 4), (1, 1))
            ex = MasterCoordinatedExchanger(comm, spec)
            ex.exchange(np.zeros(spec.padded_shape))
            return (ex.messages, ex.bytes_sent)

        res = run_ranks(4, main, cart_dims=(2, 2),
                        periods=(True, True))
        assert all(m == 4 for m, _ in res)
        assert all(b == 4 * (6 + 2) * 8 for _, b in res)


class TestDiagGeometry:
    """Direct-neighbour (diag) block geometry for the coalesced mode."""

    def test_all_offsets_present_2d(self):
        spec = HaloSpec((4, 4), (1, 1))
        regions = diag_regions(spec)
        assert len(regions) == 8  # 3^2 - 1
        assert {r.offset for r in regions} == {
            (a, b) for a in (-1, 0, 1) for b in (-1, 0, 1)
            if (a, b) != (0, 0)
        }

    def test_zero_halo_dim_pinned(self):
        spec = HaloSpec((4, 4), (0, 1))
        regions = diag_regions(spec)
        assert {r.offset for r in regions} == {(0, -1), (0, 1)}

    def test_recv_blocks_tile_ghost_frame_exactly_once(self):
        # unlike the staged strips, diag recv blocks must cover every
        # ghost cell exactly once (no relaying through phases)
        spec = HaloSpec((4, 5), (2, 1))
        mask = np.zeros(spec.padded_shape, dtype=int)
        for r in diag_regions(spec):
            mask[r.recv] += 1
        interior = np.zeros(spec.padded_shape, dtype=bool)
        interior[spec.interior()] = True
        assert (mask[interior] == 0).all()
        assert (mask[~interior] == 1).all()

    def test_send_blocks_inside_valid_region(self):
        spec = HaloSpec((4, 5), (2, 1))
        valid = np.zeros(spec.padded_shape, dtype=bool)
        valid[spec.interior()] = True
        for r in diag_regions(spec):
            assert valid[r.send].all()

    def test_send_recv_counts_match(self):
        spec = HaloSpec((6, 4, 5), (1, 2, 1))
        plane_shape = spec.padded_shape
        for r in diag_regions(spec):
            send_n = int(np.zeros(plane_shape)[r.send].size)
            recv_n = int(np.zeros(plane_shape)[r.recv].size)
            assert send_n == recv_n == r.count(plane_shape)

    def test_3d_counts(self):
        spec = HaloSpec((4, 4, 4), (1, 1, 1))
        assert len(diag_regions(spec)) == 26  # 3^3 - 1


class TestCoreOwnedRegions:
    """CORE/OWNED split used by the overlap mode."""

    @staticmethod
    def _cover(sub_shape, width):
        core, owned = core_owned_regions(sub_shape, width)
        mask = np.zeros(sub_shape, dtype=int)
        if core is not None:
            mask[tuple(slice(lo, hi) for lo, hi in core)] += 1
        for box in owned:
            mask[tuple(slice(lo, hi) for lo, hi in box)] += 1
        return core, owned, mask

    def test_exact_tiling_2d(self):
        core, owned, mask = self._cover((6, 8), (1, 1))
        assert core == [(1, 5), (1, 7)]
        assert (mask == 1).all()

    def test_exact_tiling_3d_mixed_width(self):
        _, _, mask = self._cover((5, 6, 7), (2, 0, 1))
        assert (mask == 1).all()

    def test_zero_width_all_core(self):
        core, owned, mask = self._cover((4, 4), (0, 0))
        assert core == [(0, 4), (0, 4)]
        assert owned == []
        assert (mask == 1).all()

    def test_degenerate_no_core(self):
        # width >= half the extent: the shell swallows the interior
        core, owned, mask = self._cover((2, 4), (1, 1))
        assert core is None
        assert (mask == 1).all()

    def test_owned_boxes_disjoint(self):
        _, owned, _ = self._cover((8, 8, 8), (1, 1, 1))
        seen = np.zeros((8, 8, 8), dtype=int)
        for box in owned:
            seen[tuple(slice(lo, hi) for lo, hi in box)] += 1
        assert seen.max() == 1


class TestManyStripPacking:
    def test_roundtrip(self, rng):
        plane = rng.random((6, 6))
        strips = [(slice(0, 1), slice(1, 5)), (slice(5, 6), slice(1, 5)),
                  (slice(0, 1), slice(0, 1))]
        buf = pack_many(plane, strips)
        assert buf.size == 4 + 4 + 1
        target = np.zeros_like(plane)
        unpack_many(buf, target, strips)
        for s in strips:
            np.testing.assert_array_equal(target[s], plane[s])

    def test_pack_into_oversized_buffer(self, rng):
        plane = rng.random((4, 4))
        strips = [(slice(0, 1), slice(0, 4))]
        out = np.zeros(16)
        buf = pack_many(plane, strips, out)
        assert buf is out
        np.testing.assert_array_equal(out[:4], plane[0, :4])

    def test_undersized_buffer_rejected(self, rng):
        plane = rng.random((4, 4))
        strips = [(slice(0, 2), slice(0, 4))]
        with pytest.raises(ValueError):
            pack_many(plane, strips, np.zeros(4))
        with pytest.raises(ValueError):
            unpack_many(np.zeros(4), plane, strips)


class TestExchangeModeContracts:
    """Counter contracts of the exchange-mode axis (ISSUE satellites):
    diag must beat basic on messages, and the zero-copy fast path must
    never touch the staging pool."""

    @staticmethod
    def _run_mode(mode, periods=(True, True)):
        def main(comm):
            spec = HaloSpec((4, 4), (1, 1))
            ex = AsyncHaloExchanger(comm, spec, mode=mode)
            plane = np.zeros(spec.padded_shape)
            plane[spec.interior()] = float(comm.rank)
            ex.exchange(plane)
            return (ex.messages, ex.bytes_sent, ex.pool.nbytes)

        return run_ranks(4, main, cart_dims=(2, 2), periods=periods)

    def test_modes_registered(self):
        assert EXCHANGE_MODES == ("basic", "diag", "overlap")
        assert set(available_exchangers()) >= {
            "async", "diag", "overlap", "master"
        }
        assert get_exchanger("diag") is DiagHaloExchanger
        assert get_exchanger("overlap") is OverlapHaloExchanger

    def test_unknown_mode_rejected(self):
        from repro.runtime.simmpi import SimMPIError

        def main(comm):
            AsyncHaloExchanger(comm, HaloSpec((4, 4), (1, 1)),
                               mode="warp")

        with pytest.raises(SimMPIError, match="unknown exchange mode"):
            run_ranks(1, main, cart_dims=(1, 1))

    def test_diag_sends_fewer_messages_than_basic(self):
        # periodic 2x2, sub (4,4), halo (1,1), fp64: basic sends 4
        # messages of 6 elements (strips span the padded extent so
        # corners relay); diag sends one coalesced message per distinct
        # peer: 3 messages carrying 4+4+4+4+1x4=20 elements total
        basic = self._run_mode("basic")
        diag = self._run_mode("diag")
        for (bm, bb, _), (dm, db, _) in zip(basic, diag):
            assert bm == 4 and bb == 4 * 6 * 8
            assert dm == 3 and db == 20 * 8
            assert dm < bm and db < bb

    def test_clean_fast_path_never_touches_pool(self):
        # zero-copy contract: on a fault-free world the staging pool
        # stays empty in every mode
        for mode in EXCHANGE_MODES:
            for _, _, pool_bytes in self._run_mode(mode):
                assert pool_bytes == 0, mode

    def test_resilient_path_stages_through_pool(self):
        def main(comm):
            spec = HaloSpec((4, 4), (1, 1))
            ex = AsyncHaloExchanger(comm, spec)
            plane = np.zeros(spec.padded_shape)
            ex.exchange(plane)
            return ex.pool.nbytes

        res = run_ranks(4, main, cart_dims=(2, 2),
                        periods=(True, True), faults="drop:p=0.2")
        assert all(nbytes > 0 for nbytes in res)

    def test_reset_counters_zeroes_retries(self):
        # regression: reset_counters() used to leave the resilience
        # retry counter behind
        def main(comm):
            spec = HaloSpec((4, 4), (1, 1))
            ex = AsyncHaloExchanger(comm, spec)
            plane = np.zeros(spec.padded_shape)
            ex.exchange(plane)
            return ex

        res = run_ranks(4, main, cart_dims=(2, 2),
                        periods=(True, True), faults="drop:p=0.4")
        assert sum(ex.retries for ex in res) > 0
        for ex in res:
            ex.reset_counters()
            assert ex.messages == 0 and ex.bytes_sent == 0
            assert ex.retries == 0
