"""Distributed-run telemetry: rank-scoped spans/metrics, message-flow
edges, the merged-timeline validation, the critical-path extractor and
the load-imbalance report (``repro.obs.distributed``)."""

import json

import numpy as np
import pytest

from repro import obs
from repro.comm.exchange import AsyncHaloExchanger
from repro.comm.halo import HaloSpec
from repro.obs import capture, registry, span, tracer
from repro.obs.distributed import (
    DistributedTrace,
    extract_critical_path,
    format_by_rank,
    format_critical_path,
    imbalance_report,
)
from repro.obs.export import export_chrome, export_json, trace_to_dict
from repro.runtime.simmpi import run_ranks


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _exchange_main(steps=2, sub=(16, 16)):
    def main(comm):
        spec = HaloSpec(sub_shape=sub, halo=(1, 1))
        ex = AsyncHaloExchanger(comm, spec)
        plane = np.full(spec.padded_shape, float(comm.rank))
        for _ in range(steps):
            ex.exchange(plane)
        return comm.gather(float(plane.sum()))

    return main


def _captured_exchange(nprocs=4, dims=(2, 2), steps=2):
    with capture() as (tr, reg):
        run_ranks(nprocs, _exchange_main(steps), cart_dims=dims,
                  periods=(True,) * len(dims))
    return tr, reg


def _span(sid, name, start, dur, thread="MainThread", parent=None,
          **attrs):
    return {
        "span_id": sid, "parent_id": parent, "name": name,
        "start_s": start, "duration_s": dur, "thread": thread,
        "attrs": attrs,
    }


class TestRankScoping:
    def test_rank_threads_tag_every_span(self):
        tr, _ = _captured_exchange()
        ranked = [s for s in tr.records
                  if s.thread.startswith("simmpi-rank-")]
        assert ranked
        for s in ranked:
            expected = int(s.thread.rsplit("-", 1)[1])
            assert s.attrs.get("rank") == expected, s.name

    def test_explicit_rank_attr_wins_over_scope(self):
        obs.enable()
        with tracer().scope(rank=1):
            with span("x", rank=2):
                pass
        assert tracer().records[-1].attrs["rank"] == 2

    def test_scope_nests_and_restores(self):
        obs.enable()
        with tracer().scope(rank=0, tier="a"):
            with tracer().scope(rank=1):
                with span("inner"):
                    pass
            with span("outer"):
                pass
        with span("bare"):
            pass
        by_name = {s.name: s.attrs for s in tracer().records}
        assert by_name["inner"] == {"rank": 1, "tier": "a"}
        assert by_name["outer"] == {"rank": 0, "tier": "a"}
        assert by_name["bare"] == {}

    def test_metrics_scope_labels_series(self):
        reg = registry()
        reg.enable()
        with reg.scope(rank=3):
            reg.counter("m.hits", 2)
            reg.counter("m.hits", 1, rank=5)  # explicit wins
        assert reg.counter_value("m.hits", rank=3) == 2
        assert reg.counter_value("m.hits", rank=5) == 1

    def test_counter_by_label_sums_across_series(self):
        reg = registry()
        reg.enable()
        reg.counter("m.bytes", 10, rank=0, dim=0)
        reg.counter("m.bytes", 5, rank=0, dim=1)
        reg.counter("m.bytes", 7, rank=1, dim=0)
        reg.counter("m.other", 99, rank=0)
        assert reg.counter_by_label("m.bytes", "rank") == {0: 15, 1: 7}

    def test_per_rank_metric_series_from_run(self):
        _, reg = _captured_exchange()
        by_rank = reg.counter_by_label("comm.bytes_sent", "rank")
        assert sorted(by_rank) == [0, 1, 2, 3]
        assert all(v > 0 for v in by_rank.values())


class TestFlowStamping:
    def test_every_halo_message_has_matched_flow(self):
        tr, reg = _captured_exchange()
        dt = DistributedTrace.from_live(tr, reg)
        assert dt.validate() == []
        assert not dt.orphan_in
        assert not dt.dangling_out  # clean fabric drops nothing
        # 2 steps x 4 ranks x 4 strips + 3 gather payloads
        assert len(dt.edges) == 2 * 4 * 4 + 3

    def test_flow_id_format(self):
        tr, reg = _captured_exchange()
        dt = DistributedTrace.from_live(tr, reg)
        for fid in dt.producers:
            src, rest = fid.split(">")
            dst, rest = rest.split(":")
            tag, seq = rest.split("#")
            assert int(src) in range(4) and int(dst) in range(4)
            assert int(tag) >= 0 and int(seq) >= 0

    def test_send_flows_land_on_send_spans(self):
        tr, reg = _captured_exchange()
        dt = DistributedTrace.from_live(tr, reg)
        names = {dt.by_id[e.src_span]["name"] for e in dt.edges}
        assert "comm.send" in names
        # the fast path consumes inside the wait span
        dst_names = {dt.by_id[e.dst_span]["name"] for e in dt.edges}
        assert "comm.wait" in dst_names

    def test_no_flow_tracking_while_disabled(self):
        run_ranks(4, _exchange_main(steps=1), cart_dims=(2, 2),
                  periods=(True, True))
        assert tracer().records == []

    def test_reliable_messages_untracked(self):
        import numpy as np

        def main(comm):
            buf = np.zeros(4)
            with span("app.send"):
                if comm.rank == 0:
                    comm.Send(buf, dest=1, tag=9, reliable=True)
            with span("app.recv"):
                if comm.rank == 1:
                    comm.Recv(buf, source=0, tag=9)

        with capture() as (tr, _):
            run_ranks(2, main)
        for s in tr.records:
            assert "flows_out" not in s.attrs
            assert "flows_in" not in s.attrs


class TestValidation:
    def test_orphan_inbound_is_malformed(self):
        dt = DistributedTrace([
            _span(1, "a", 0.0, 1.0, flows_in=["0>1:5#0"]),
        ])
        problems = dt.validate()
        assert any("orphan inbound" in p for p in problems)

    def test_dangling_outbound_is_legal(self):
        dt = DistributedTrace([
            _span(1, "a", 0.0, 1.0, flows_out=["0>1:5#0"]),
        ])
        assert dt.validate() == []
        assert dt.dangling_out == ["0>1:5#0"]

    def test_duplicate_producer_is_malformed(self):
        dt = DistributedTrace([
            _span(1, "a", 0.0, 1.0, flows_out=["0>1:5#0"]),
            _span(2, "b", 1.0, 1.0, flows_out=["0>1:5#0"]),
        ])
        assert any("more than one span" in p for p in dt.validate())

    def test_duplicate_consumer_is_legal(self):
        # an injected duplicate delivers one physical copy twice
        dt = DistributedTrace([
            _span(1, "a", 0.0, 1.0, flows_out=["0>1:5#0"]),
            _span(2, "b", 1.0, 1.0, flows_in=["0>1:5#0"]),
            _span(3, "c", 2.0, 1.0, flows_in=["0>1:5#0"]),
        ])
        assert dt.validate() == []
        assert len(dt.edges) == 2

    def test_dangling_parent_is_malformed(self):
        dt = DistributedTrace([_span(1, "a", 0.0, 1.0, parent=99)])
        assert any("dangling parent" in p for p in dt.validate())

    def test_real_run_is_well_formed(self):
        tr, reg = _captured_exchange()
        assert DistributedTrace.from_live(tr, reg).validate() == []


class TestCriticalPath:
    def test_synthetic_two_rank_chain(self):
        # rank 0: work(0-1) then send(1-2); rank 1: wait(0.5-3)
        # consuming the flow -> the chain crosses ranks once
        dt = DistributedTrace([
            _span(1, "runtime.kernel_eval", 0.0, 1.0,
                  thread="simmpi-rank-0", rank=0),
            _span(2, "comm.send", 1.0, 1.0, thread="simmpi-rank-0",
                  rank=0, flows_out=["0>1:5#0"]),
            _span(3, "comm.wait", 0.5, 2.5, thread="simmpi-rank-1",
                  rank=1, flows_in=["0>1:5#0"]),
        ])
        cp = extract_critical_path(dt)
        assert cp.chain_spans == 3
        assert cp.chain_crossings == 1
        assert cp.flow_edges == 1
        assert cp.crossings == 1
        assert cp.total_s == pytest.approx(3.0)
        # the wait span is credited only with the post-send stretch
        names = [(seg.name, seg.contribution_s) for seg in cp.segments]
        assert ("comm.wait", pytest.approx(1.0)) in [
            (n, c) for n, c in names
        ]
        flow_segs = [s for s in cp.segments if s.edge == "flow"]
        assert len(flow_segs) == 1
        assert flow_segs[0].flow_id == "0>1:5#0"

    def test_real_2x2_path_crosses_ranks(self):
        tr, reg = _captured_exchange()
        dt = DistributedTrace.from_live(tr, reg)
        cp = extract_critical_path(dt)
        assert cp.flow_edges > 0
        assert cp.chain_crossings >= 1
        assert cp.crossings >= 1
        path_ranks = {seg.rank for seg in cp.segments
                      if seg.rank is not None}
        assert len(path_ranks) >= 2

    def test_phase_times_sum_to_total(self):
        tr, reg = _captured_exchange()
        cp = extract_critical_path(DistributedTrace.from_live(tr, reg))
        assert sum(cp.phase_times.values()) == pytest.approx(cp.total_s)

    def test_chain_stats_deterministic_across_runs(self):
        stats = []
        for _ in range(2):
            obs.reset()
            tr, reg = _captured_exchange()
            cp = extract_critical_path(
                DistributedTrace.from_live(tr, reg)
            )
            stats.append(
                (cp.chain_spans, cp.chain_crossings, cp.flow_edges)
            )
        assert stats[0] == stats[1]

    def test_empty_trace(self):
        cp = extract_critical_path(DistributedTrace([]))
        assert cp.segments == [] and cp.total_s == 0.0

    def test_cycle_in_malformed_input_does_not_hang(self):
        # two spans consuming each other's flows: the DP must skip the
        # back edge instead of recursing forever
        dt = DistributedTrace([
            _span(1, "a", 0.0, 1.0, thread="t0",
                  flows_out=["x"], flows_in=["y"]),
            _span(2, "b", 0.0, 1.0, thread="t1",
                  flows_out=["y"], flows_in=["x"]),
        ])
        cp = extract_critical_path(dt)
        assert cp.chain_spans >= 2


class TestImbalance:
    def test_per_rank_totals_cover_all_ranks(self):
        tr, reg = _captured_exchange()
        rep = imbalance_report(DistributedTrace.from_live(tr, reg))
        assert sorted(rep.per_rank) == [0, 1, 2, 3]
        assert all(rep.totals[r] > 0 for r in range(4))
        assert rep.total_skew >= 1.0

    def test_bytes_by_rank_balanced_on_periodic_grid(self):
        tr, reg = _captured_exchange()
        rep = imbalance_report(DistributedTrace.from_live(tr, reg))
        assert sorted(rep.bytes_by_rank) == [0, 1, 2, 3]
        # periodic 2x2: every rank ships identical strips
        assert rep.bytes_skew == pytest.approx(1.0)

    def test_gating_ranks_counted_per_exchange(self):
        tr, reg = _captured_exchange(steps=3)
        rep = imbalance_report(DistributedTrace.from_live(tr, reg))
        assert sum(rep.gating.values()) == 3

    def test_report_survives_json_round_trip(self):
        tr, reg = _captured_exchange()
        doc = json.loads(export_json(tr, reg))
        rep = imbalance_report(DistributedTrace.from_doc(doc))
        live = imbalance_report(DistributedTrace.from_live(tr, reg))
        assert rep.bytes_by_rank == live.bytes_by_rank
        assert rep.gating == live.gating

    def test_to_dict_is_json_serialisable(self):
        tr, reg = _captured_exchange()
        dt = DistributedTrace.from_live(tr, reg)
        rep = imbalance_report(dt)
        cp = extract_critical_path(dt)
        json.dumps(rep.to_dict())
        json.dumps(cp.to_dict())


class TestFormatting:
    def test_by_rank_table(self):
        tr, reg = _captured_exchange()
        text = format_by_rank(DistributedTrace.from_live(tr, reg))
        assert "PER-RANK SUMMARY" in text
        assert "4 ranks" in text
        assert "skew" in text
        assert "bytes sent" in text

    def test_by_rank_empty(self):
        text = format_by_rank(DistributedTrace([]))
        assert "no rank-attributed spans" in text

    def test_critical_path_rendering(self):
        tr, reg = _captured_exchange()
        dt = DistributedTrace.from_live(tr, reg)
        text = format_critical_path(extract_critical_path(dt))
        assert "CRITICAL PATH" in text
        assert "<- flow" in text
        assert "phase composition:" in text


class TestChromeFlowEvents:
    def test_flow_events_pair_up(self):
        tr, reg = _captured_exchange()
        doc = json.loads(export_chrome(tr, reg))
        evs = doc["traceEvents"]
        starts = [e for e in evs if e.get("ph") == "s"]
        ends = [e for e in evs if e.get("ph") == "f"]
        assert starts and ends
        assert {e["id"] for e in ends} <= {e["id"] for e in starts}
        for e in ends:
            assert e["bp"] == "e"

    def test_flow_events_bind_inside_slices(self):
        tr, reg = _captured_exchange()
        doc = json.loads(export_chrome(tr, reg))
        evs = doc["traceEvents"]
        xs = [e for e in evs if e.get("ph") == "X"]
        for f in (e for e in evs if e.get("ph") in ("s", "f")):
            holder = [
                x for x in xs
                if x["tid"] == f["tid"]
                and x["ts"] <= f["ts"] <= x["ts"] + x["dur"]
            ]
            assert holder, f"flow event {f['id']} binds to no slice"

    def test_chrome_trace_parses_back_to_same_ranks(self, tmp_path):
        from repro.obs.export import load_trace, write_trace

        tr, reg = _captured_exchange()
        live = DistributedTrace.from_live(tr, reg)
        path = tmp_path / "t.chrome.json"
        write_trace(str(path), "chrome", tr, reg)
        loaded = DistributedTrace.from_doc(load_trace(str(path)))
        assert loaded.ranks == live.ranks
        assert len(loaded.edges) == len(live.edges)
        assert loaded.validate() == []


class TestTraceToDictCompat:
    def test_trace_doc_feeds_distributed_view(self):
        tr, reg = _captured_exchange()
        dt = DistributedTrace.from_doc(trace_to_dict(tr, reg))
        assert dt.ranks == [0, 1, 2, 3]
