"""Tests for the textual MSC language (lexer + parser)."""

import numpy as np
import pytest

from repro.backend.numpy_backend import reference_run
from repro.frontend.lang import (
    MSCSyntaxError,
    parse_program,
    tokenize,
)

VALID_3D = """
// 3d7pt with two time dependencies
const N = 12;
const halo_width = 1;
const time_window_size = 3;
DefVar(k, i32); DefVar(j, i32); DefVar(i, i32);
DefTensor3D_TimeWin(B, time_window_size, halo_width, f64, N, N, N);
Kernel S_3d7pt((k,j,i), 0.4*B[k,j,i] + 0.1*B[k,j,i-1] + 0.1*B[k,j,i+1]
               + 0.1*B[k-1,j,i] + 0.1*B[k+1,j,i]
               + 0.1*B[k,j-1,i] + 0.1*B[k,j+1,i]);
S_3d7pt.tile(2, 4, 6, xo, xi, yo, yi, zo, zi);
S_3d7pt.reorder(xo, yo, zo, xi, yi, zi);
S_3d7pt.parallel(xo, 8);
Stencil st((k,j,i), B[t] << 0.6*S_3d7pt[t-1] + 0.4*S_3d7pt[t-2]);
"""


class TestTokenizer:
    def test_token_kinds(self):
        toks = tokenize('Kernel S((k), 0.5*B[k] - 1); // c\n"str"')
        kinds = {t.kind for t in toks}
        assert kinds == {"ident", "op", "number", "string"}

    def test_comments_stripped(self):
        toks = tokenize("a // comment\nb /* multi\nline */ c")
        assert [t.text for t in toks] == ["a", "b", "c"]

    def test_line_numbers_tracked(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks] == [1, 2, 4]

    def test_shift_operator(self):
        toks = tokenize("B[t] << S[t-1]")
        assert any(t.text == "<<" for t in toks)

    def test_bad_character(self):
        with pytest.raises(MSCSyntaxError, match="unexpected character"):
            tokenize("a @ b")


class TestParserAccepts:
    def test_full_program(self):
        parsed = parse_program(VALID_3D)
        assert parsed.consts["N"] == 12
        assert parsed.tensors["B"].time_window == 3
        kern = parsed.kernels["S_3d7pt"].kernel
        assert kern.npoints == 7
        assert parsed.program.ir.time_dependencies == 2

    def test_schedule_calls_applied(self):
        parsed = parse_program(VALID_3D)
        sched = parsed.kernels["S_3d7pt"].schedule
        assert sched.tile_factors == {"k": 2, "j": 4, "i": 6}
        assert sched.nthreads == 8

    def test_parsed_program_runs_correctly(self, rng):
        parsed = parse_program(VALID_3D)
        init = [rng.random((12, 12, 12)) for _ in range(2)]
        parsed.program.set_initial(init)
        got = parsed.program.run(3)
        ref = reference_run(parsed.program.ir, init, 3, boundary="zero")
        np.testing.assert_array_equal(got, ref)

    def test_mpi_shape_recorded(self):
        src = VALID_3D + "DefShapeMPI3D(shape, 2, 1, 2);\n"
        parsed = parse_program(src)
        assert parsed.mpi_grid == (2, 1, 2)
        assert parsed.program.mpi_grid == (2, 1, 2)

    def test_2d_program(self):
        src = """
        DefVar(j, i32); DefVar(i, i32);
        DefTensor2D(A, 1, f32, 16, 16);
        Kernel S((j,i), 0.25*A[j,i] + 0.25*A[j,i-1]
                 + 0.25*A[j-1,i] + 0.25*A[j+1,i]);
        Stencil st((j,i), A[t] << S[t-1]);
        """
        parsed = parse_program(src)
        assert parsed.tensors["A"].dtype.name == "f32"
        assert parsed.program.ir.time_dependencies == 1

    def test_cache_primitives_via_text(self):
        src = VALID_3D.replace(
            "S_3d7pt.parallel(xo, 8);",
            'S_3d7pt.cache_read(B, buffer_read, "global");\n'
            'S_3d7pt.cache_write(buffer_write, "global");\n'
            "S_3d7pt.compute_at(buffer_read, zo);\n"
            "S_3d7pt.parallel(xo, 8);",
        )
        parsed = parse_program(src)
        bindings = parsed.kernels["S_3d7pt"].schedule.cache_bindings()
        assert {b.buffer for b in bindings} == {
            "buffer_read", "buffer_write"
        }

    def test_parenthesised_expressions(self):
        src = """
        DefVar(i, i32);
        DefTensor1D(A, 1, f64, 16);
        Kernel S((i), 0.5*(A[i-1] + A[i+1]) - A[i]/2);
        Stencil st((i), A[t] << S[t-1]);
        """
        parsed = parse_program(src)
        assert parsed.kernels["S"].npoints == 3


class TestParserRejects:
    def test_missing_stencil(self):
        src = "DefVar(i, i32);\nDefTensor1D(A, 1, f64, 8);\n"
        with pytest.raises(MSCSyntaxError, match="no Stencil"):
            parse_program(src)

    def test_undeclared_variable(self):
        src = """
        DefVar(i, i32);
        DefTensor1D(A, 1, f64, 8);
        Kernel S((q), A[q]);
        Stencil st((q), A[t] << S[t-1]);
        """
        with pytest.raises(MSCSyntaxError, match="undeclared"):
            parse_program(src)

    def test_undefined_name_in_expression(self):
        src = """
        DefVar(i, i32);
        DefTensor1D(A, 1, f64, 8);
        Kernel S((i), A[i] + Z[i]);
        Stencil st((i), A[t] << S[t-1]);
        """
        with pytest.raises(MSCSyntaxError, match="undefined name"):
            parse_program(src)

    def test_kernel_redefinition(self):
        src = """
        DefVar(i, i32);
        DefTensor1D(A, 1, f64, 8);
        Kernel S((i), A[i]);
        Kernel S((i), A[i-1] + A[i+1]);
        Stencil st((i), A[t] << S[t-1]);
        """
        with pytest.raises(MSCSyntaxError, match="redefined"):
            parse_program(src)

    def test_unknown_primitive(self):
        src = """
        DefVar(i, i32);
        DefTensor1D(A, 1, f64, 8);
        Kernel S((i), A[i]);
        S.prefetch(i);
        Stencil st((i), A[t] << S[t-1]);
        """
        with pytest.raises(MSCSyntaxError, match="unknown scheduling"):
            parse_program(src)

    def test_error_reports_line_number(self):
        src = "const x = ;\n"
        with pytest.raises(MSCSyntaxError, match="line 1"):
            parse_program(src)

    def test_wrong_subscript_arity(self):
        src = """
        DefVar(j, i32); DefVar(i, i32);
        DefTensor2D(A, 1, f64, 8, 8);
        Kernel S((j,i), A[i]);
        Stencil st((j,i), A[t] << S[t-1]);
        """
        with pytest.raises(MSCSyntaxError, match="2-D"):
            parse_program(src)

    def test_stencil_without_time_index(self):
        src = """
        DefVar(i, i32);
        DefTensor1D(A, 1, f64, 8);
        Kernel S((i), A[i]);
        Stencil st((i), A[i] << S[t-1]);
        """
        with pytest.raises(MSCSyntaxError, match="indexed with t"):
            parse_program(src)

    def test_schedule_error_surfaces_with_line(self):
        src = VALID_3D.replace(
            "S_3d7pt.tile(2, 4, 6, xo, xi, yo, yi, zo, zi);",
            "S_3d7pt.tile(2, 4, xo, xi, yo, yi, zo, zi);",
        )
        with pytest.raises(MSCSyntaxError):
            parse_program(src)

    def test_truncated_program(self):
        with pytest.raises(MSCSyntaxError, match="end of program"):
            parse_program("DefVar(i,")


class TestDriverStatements:
    """Listing 1 lines 14-16: st.input / st.run / st.compile_to_source_code."""

    FULL = VALID_3D + """
    DefShapeMPI3D(shape_mpi, 2, 1, 2);
    st.input(shape_mpi, B, "random");
    st.run(1, 10);
    st.compile_to_source_code("3d7pt");
    """

    def test_specs_recorded(self):
        parsed = parse_program(self.FULL)
        assert parsed.input_spec == ("shape_mpi", "B", "random")
        assert parsed.run_spec == (1, 10)
        assert parsed.compile_spec == "3d7pt"
        assert parsed.timesteps == 10

    def test_random_input_installs_initial_planes(self):
        parsed = parse_program(self.FULL)
        result = parsed.program.run(timesteps=2)
        assert result.shape == (12, 12, 12)

    def test_run_backwards_rejected(self):
        with pytest.raises(MSCSyntaxError, match="end before begin"):
            parse_program(VALID_3D + "st.run(10, 1);")

    def test_unknown_method_rejected(self):
        with pytest.raises(MSCSyntaxError, match="unknown stencil method"):
            parse_program(VALID_3D + "st.execute(1);")

    def test_input_unknown_tensor_rejected(self):
        with pytest.raises(MSCSyntaxError, match="unknown tensor"):
            parse_program(VALID_3D + 'st.input(shape, Z, "random");')

    def test_compile_requires_string(self):
        with pytest.raises(MSCSyntaxError, match="string"):
            parse_program(VALID_3D + "st.compile_to_source_code(name);")

    def test_no_driver_statements_is_fine(self):
        parsed = parse_program(VALID_3D)
        assert parsed.run_spec is None
        assert parsed.timesteps is None
