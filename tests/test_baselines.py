"""Tests for the baseline system models (Figs. 7, 8, 12-14; Table 6)."""

import pytest

from repro.baselines import (
    loc_comparison,
    loc_of,
    render_msc_source,
    render_openacc_source,
    simulate_halide_aot,
    simulate_halide_jit,
    simulate_msc_hybrid,
    simulate_openacc_sunway,
    simulate_openmp_matrix,
    simulate_patus,
    simulate_physis,
)
from repro.evalsuite.harness import build_with_schedule
from repro.frontend.stencils import ALL_BENCHMARKS, benchmark_by_name
from repro.machine import simulate_matrix, simulate_sunway, simulate_cpu


@pytest.fixture(scope="module")
def sunway_3d7pt():
    prog, handle = build_with_schedule("3d7pt_star", "sunway")
    return prog, handle


@pytest.fixture(scope="module")
def cpu_3d7pt():
    prog, handle = build_with_schedule("3d7pt_star", "cpu")
    return prog, handle


class TestOpenACC:
    def test_msc_wins_by_an_order_of_magnitude(self, sunway_3d7pt):
        prog, handle = sunway_3d7pt
        msc = simulate_sunway(prog.ir, handle.schedule)
        acc = simulate_openacc_sunway(prog.ir, handle.schedule)
        assert 10 < acc.step_s / msc.step_s < 50

    def test_high_order_penalised_more(self):
        s_small, h_small = build_with_schedule("3d7pt_star", "sunway")
        s_big, h_big = build_with_schedule("2d169pt_box", "sunway")
        ratio_small = (
            simulate_openacc_sunway(s_small.ir, h_small.schedule).step_s
            / simulate_sunway(s_small.ir, h_small.schedule).step_s
        )
        ratio_big = (
            simulate_openacc_sunway(s_big.ir, h_big.schedule).step_s
            / simulate_sunway(s_big.ir, h_big.schedule).step_s
        )
        assert ratio_big > ratio_small

    def test_rendered_source_has_directives(self, sunway_3d7pt):
        prog, _ = sunway_3d7pt
        src = render_openacc_source(prog.ir)
        assert "#pragma acc data copyin" in src
        assert "#pragma acc parallel loop tile" in src


class TestOpenMP:
    def test_within_ten_percent_of_msc(self):
        prog, handle = build_with_schedule("3d7pt_star", "matrix")
        msc = simulate_matrix(prog.ir, handle.schedule)
        omp = simulate_openmp_matrix(prog.ir, handle.schedule)
        assert 1.0 <= omp.step_s / msc.step_s < 1.10


class TestHalide:
    def test_jit_pays_overhead(self, cpu_3d7pt):
        prog, handle = cpu_3d7pt
        aot = simulate_halide_aot(prog.ir, handle.schedule, timesteps=100)
        jit = simulate_halide_jit(prog.ir, handle.schedule, timesteps=100)
        assert jit.total_s > aot.total_s
        assert jit.overhead_s > 1.0

    def test_aot_wins_small_loses_large(self):
        small_p, small_h = build_with_schedule("3d7pt_star", "cpu")
        large_p, large_h = build_with_schedule("2d169pt_box", "cpu")
        msc_small = simulate_cpu(small_p.ir, small_h.schedule).step_s
        aot_small = simulate_halide_aot(small_p.ir, small_h.schedule).step_s
        msc_large = simulate_cpu(large_p.ir, large_h.schedule).step_s
        aot_large = simulate_halide_aot(large_p.ir, large_h.schedule).step_s
        # Sec. 5.5: Halide-AOT better on small stencils, MSC on large
        assert aot_small <= msc_small * 1.02
        assert aot_large > msc_large * 1.3


class TestPatus:
    def test_msc_faster_everywhere(self):
        for name in ("2d9pt_star", "3d31pt_star"):
            prog, handle = build_with_schedule(name, "cpu")
            msc = simulate_cpu(prog.ir, handle.schedule).step_s
            patus = simulate_patus(prog.ir, handle.schedule).step_s
            assert patus > msc

    def test_3d_star_extra_penalty(self):
        p3, h3 = build_with_schedule("3d31pt_star", "cpu")
        p2, h2 = build_with_schedule("2d9pt_box", "cpu")
        r3 = (simulate_patus(p3.ir, h3.schedule).step_s
              / simulate_cpu(p3.ir, h3.schedule).step_s)
        r2 = (simulate_patus(p2.ir, h2.schedule).step_s
              / simulate_cpu(p2.ir, h2.schedule).step_s)
        assert r3 > r2


class TestPhysis:
    def test_relay_dominates_at_high_order(self):
        prog, _ = benchmark_by_name("3d31pt_star").build(grid=(32, 32, 32))
        phys = simulate_physis(prog.ir, (512, 512, 1792), (2, 2, 7))
        assert phys.memory_s > phys.compute_s

    def test_msc_hybrid_beats_physis(self):
        prog, _ = benchmark_by_name("3d7pt_star").build(grid=(16, 16, 16))
        msc = simulate_msc_hybrid(prog.ir, (512, 512, 1792), (2, 2, 7), 1)
        phys = simulate_physis(prog.ir, (512, 512, 1792), (2, 2, 7))
        assert phys.step_s > msc.step_s

    def test_hybrid_oversubscription_rejected(self):
        prog, _ = benchmark_by_name("3d7pt_star").build(grid=(16, 16, 16))
        with pytest.raises(ValueError, match="exceed"):
            simulate_msc_hybrid(prog.ir, (512, 512, 1792), (2, 2, 7), 4)


class TestLoC:
    def test_msc_always_shortest(self):
        for bench in ALL_BENCHMARKS:
            locs = loc_comparison(bench)
            assert locs["msc"] < locs["openacc"], bench.name
            assert locs["msc"] < locs["openmp"], bench.name

    def test_openmp_reduction_much_larger_than_openacc(self):
        # Table 6: average reduction 27% vs OpenACC, 74% vs OpenMP
        red_acc, red_omp = [], []
        for bench in ALL_BENCHMARKS:
            locs = loc_comparison(bench)
            red_acc.append(1 - locs["msc"] / locs["openacc"])
            red_omp.append(1 - locs["msc"] / locs["openmp"])
        avg_acc = sum(red_acc) / len(red_acc)
        avg_omp = sum(red_omp) / len(red_omp)
        assert avg_omp > avg_acc
        assert 0.10 < avg_acc < 0.55
        assert 0.55 < avg_omp < 0.90

    def test_msc_loc_in_paper_ballpark(self):
        locs = loc_comparison(benchmark_by_name("3d7pt_star"))
        assert 25 <= locs["msc"] <= 45  # paper: 36

    def test_loc_of_skips_blanks(self):
        assert loc_of("a\n\n b\n\n") == 2

    def test_msc_source_larger_for_higher_order(self):
        small = loc_of(render_msc_source(benchmark_by_name("2d9pt_star")))
        large = loc_of(render_msc_source(benchmark_by_name("2d169pt_box")))
        assert large > small
