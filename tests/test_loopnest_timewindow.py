"""Unit tests for LoopNest tile enumeration and the sliding time window."""

import numpy as np
import pytest

from repro.ir import SpNode, f32, f64
from repro.schedule import (
    Schedule,
    SlidingTimeWindow,
    full_history_bytes,
    window_memory_bytes,
)
from tests.conftest import make_3d7pt


@pytest.fixture
def nest():
    _, kern = make_3d7pt(shape=(16, 16, 16))
    s = Schedule(kern)
    s.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
    s.reorder("xo", "yo", "zo", "xi", "yi", "zi")
    s.parallel("xo", 4)
    return s.lower((16, 16, 16))


class TestLoopNest:
    def test_ntiles(self, nest):
        assert nest.ntiles == 4 * 2 * 1

    def test_tiles_cover_domain_exactly(self, nest):
        seen = np.zeros((16, 16, 16), dtype=int)
        for tile in nest.iter_tiles():
            (k_lo, k_hi) = tile.extent("k")
            (j_lo, j_hi) = tile.extent("j")
            (i_lo, i_hi) = tile.extent("i")
            seen[k_lo:k_hi, j_lo:j_hi, i_lo:i_hi] += 1
        assert (seen == 1).all()

    def test_edge_tiles_clipped(self):
        _, kern = make_3d7pt(shape=(10, 10, 10))
        s = Schedule(kern).tile(4, 4, 4, "xo", "xi", "yo", "yi", "zo", "zi")
        nest = s.lower((10, 10, 10))
        shapes = {t.shape() for t in nest.iter_tiles()}
        assert (4, 4, 4) in shapes and (2, 2, 2) in shapes

    def test_worker_partition_is_disjoint_cover(self, nest):
        all_ids = set()
        for w in range(4):
            ids = {t.linear_id for t in nest.tiles_for_worker(w, 4)}
            assert not (all_ids & ids)
            all_ids |= ids
        assert all_ids == set(range(nest.ntiles))

    def test_worker_out_of_range(self, nest):
        with pytest.raises(ValueError):
            list(nest.tiles_for_worker(4, 4))

    def test_tile_shape_in_domain_order(self, nest):
        assert nest.tile_shape() == (4, 8, 16)

    def test_describe_mentions_parallel(self, nest):
        assert "[parallel]" in nest.describe()

    def test_unknown_axis_lookup(self, nest):
        with pytest.raises(KeyError):
            nest.axis("nope")


class TestSlidingTimeWindow:
    def test_rotation_keeps_w_planes(self):
        B = SpNode("B", (4, 4), halo=(1, 1), time_window=3)
        win = SlidingTimeWindow(B)
        win.seed(0, np.zeros((4, 4)))
        win.seed(1, np.ones((4, 4)))
        for t in range(2, 8):
            plane = win.advance(t)
            win.interior_view(plane)[...] = t
        assert win.live_steps() == (5, 6, 7)
        assert win.valid(7)[0, 0] == 7

    def test_expired_plane_raises(self):
        B = SpNode("B", (4, 4), halo=(1, 1), time_window=2)
        win = SlidingTimeWindow(B)
        win.seed(0, np.zeros((4, 4)))
        win.advance(1)
        win.advance(2)
        with pytest.raises(KeyError, match="no longer"):
            win.plane(0)

    def test_advance_must_be_sequential(self):
        B = SpNode("B", (4, 4), time_window=2)
        win = SlidingTimeWindow(B)
        win.seed(0, np.zeros((4, 4)))
        with pytest.raises(ValueError, match="one step"):
            win.advance(5)

    def test_seed_shape_checked(self):
        B = SpNode("B", (4, 4), time_window=2)
        win = SlidingTimeWindow(B)
        with pytest.raises(ValueError, match="shape"):
            win.seed(0, np.zeros((5, 5)))

    def test_window_cannot_exceed_declared(self):
        B = SpNode("B", (4, 4), time_window=2)
        with pytest.raises(ValueError, match="exceeds"):
            SlidingTimeWindow(B, window=3)

    def test_halo_in_plane_not_in_valid(self):
        B = SpNode("B", (4, 4), halo=(2, 2), time_window=2)
        win = SlidingTimeWindow(B)
        win.seed(0, np.ones((4, 4)))
        assert win.plane(0).shape == (8, 8)
        assert win.valid(0).shape == (4, 4)

    def test_valid_is_view_not_copy(self):
        B = SpNode("B", (4, 4), time_window=2)
        win = SlidingTimeWindow(B)
        win.seed(0, np.zeros((4, 4)))
        win.valid(0)[...] = 7.0
        assert win.plane(0)[1, 1] == 7.0


class TestMemoryAccounting:
    def test_window_constant_in_time(self):
        # Fig. 5: sliding window memory does not grow with T
        B = SpNode("B", (64, 64), halo=(1, 1), time_window=3)
        assert window_memory_bytes(B) == 66 * 66 * 8 * 3

    def test_full_history_grows(self):
        B = SpNode("B", (64, 64), halo=(1, 1), time_window=3)
        assert full_history_bytes(B, 100) == 66 * 66 * 8 * 100
        assert full_history_bytes(B, 100) > 30 * window_memory_bytes(B)

    def test_window_nbytes_matches_model(self):
        B = SpNode("B", (8, 8), f32, halo=(1, 1), time_window=4)
        win = SlidingTimeWindow(B)
        assert win.nbytes == window_memory_bytes(B)
