"""Cross-backend differential test harness.

Random star stencils (hypothesis, ``tests.strategies``) paired with
checker-legal schedules are pushed through every backend that can
execute them — the numpy reference, the tile-ordered
``ScheduledExecutor``, the simulated-MPI ``distributed_run`` and the
gcc-compiled C bundle — and the results are compared against the
reference within dtype-dependent bounds (fp64 relative error < 1e-10,
fp32 < 1e-5).  A legal schedule must never change the numerics; a
checker-*rejected* schedule must come with a concrete failure witness.

The hypothesis sweeps are marked ``slow`` (run with ``-m slow``); one
deterministic smoke test stays in the default tier-1 lane.
"""

import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import check_program
from repro.backend import CCodeGenerator
from repro.backend.numpy_backend import ScheduledExecutor, reference_run
from repro.ir import f32, f64
from repro.runtime.executor import distributed_run
from repro.schedule import Schedule
from repro.schedule.schedule import ScheduleError
from tests.strategies import (
    COMMON,
    boundaries,
    box_stencil_cases,
    legal_schedules,
    process_grids,
    seeds,
    star_stencil_cases,
)

GCC = shutil.which("gcc")
needs_gcc = pytest.mark.skipif(GCC is None, reason="gcc not available")

#: maximum relative error per precision (ISSUE acceptance bounds)
REL_TOL = {"f64": 1e-10, "f32": 1e-5}


def rel_err(got: np.ndarray, ref: np.ndarray) -> float:
    scale = max(float(np.abs(ref).max()), 1e-30)
    return float(np.abs(got - ref).max()) / scale


def init_planes(stencil, shape, seed, np_dtype=np.float64):
    nplanes = stencil.output.time_window - 1
    rng = np.random.default_rng(seed)
    return [rng.random(shape).astype(np_dtype) for _ in range(nplanes)]


def assert_schedule_legal(stencil, kern, sched):
    report = check_program(stencil, {kern.name: sched})
    assert report.ok, report.format()


def run_compiled_c(stencil, kern, sched, init, steps, shape, np_dtype):
    gen = CCodeGenerator(stencil, {kern.name: sched} if sched else {},
                         boundary="zero")
    code = gen.generate("diff_case")
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        code.write_to(str(tmp_path))
        src = tmp_path / f"{code.name}.c"
        exe = tmp_path / code.name
        res = subprocess.run(
            [GCC, "-fopenmp", "-O2", "-o", str(exe), str(src), "-lm"],
            capture_output=True, text=True,
            timeout=120,
        )
        assert res.returncode == 0, res.stderr
        init_file = tmp_path / "init.bin"
        out_file = tmp_path / "out.bin"
        np.concatenate([p.ravel() for p in init]).astype(np_dtype).tofile(
            str(init_file)
        )
        res = subprocess.run(
            [str(exe), str(init_file), str(steps), str(out_file)],
            capture_output=True, text=True,
            timeout=120,
        )
        assert res.returncode == 0, res.stderr
        return np.fromfile(str(out_file), dtype=np_dtype).reshape(shape)


# ---------------------------------------------------------------------------
# hypothesis sweeps (slow lane)
# ---------------------------------------------------------------------------

@pytest.mark.slow
@given(case=star_stencil_cases(ndim=2), seed=seeds(),
       boundary=boundaries, data=st.data())
@settings(max_examples=40, **COMMON)
def test_scheduled_executor_matches_reference_fp64(case, seed, boundary,
                                                   data):
    stencil, kern, shape = case
    sched = data.draw(legal_schedules(kern, shape))
    assert_schedule_legal(stencil, kern, sched)
    init = init_planes(stencil, shape, seed)
    steps = 3
    ref = reference_run(stencil, init, steps, boundary=boundary)
    got = ScheduledExecutor(
        stencil, {kern.name: sched}, boundary=boundary
    ).run(init, steps)
    assert rel_err(got, ref) < REL_TOL["f64"]


@pytest.mark.slow
@given(case=star_stencil_cases(ndim=3, max_radius=1, max_side=10),
       seed=seeds(), data=st.data())
@settings(max_examples=15, **COMMON)
def test_scheduled_executor_matches_reference_3d(case, seed, data):
    stencil, kern, shape = case
    sched = data.draw(legal_schedules(kern, shape))
    assert_schedule_legal(stencil, kern, sched)
    init = init_planes(stencil, shape, seed)
    ref = reference_run(stencil, init, 2, boundary="zero")
    got = ScheduledExecutor(stencil, {kern.name: sched}).run(init, 2)
    assert rel_err(got, ref) < REL_TOL["f64"]


@pytest.mark.slow
@given(case=star_stencil_cases(ndim=2, dtype=f32), seed=seeds(),
       data=st.data())
@settings(max_examples=25, **COMMON)
def test_scheduled_executor_matches_reference_fp32(case, seed, data):
    stencil, kern, shape = case
    sched = data.draw(legal_schedules(kern, shape))
    assert_schedule_legal(stencil, kern, sched)
    init = init_planes(stencil, shape, seed, np.float32)
    ref = reference_run(stencil, init, 3, boundary="zero")
    got = ScheduledExecutor(stencil, {kern.name: sched}).run(init, 3)
    assert rel_err(got, ref) < REL_TOL["f32"]


@pytest.mark.slow
@given(case=star_stencil_cases(ndim=2), grid=process_grids(2, 3),
       seed=seeds(), boundary=boundaries)
@settings(max_examples=25, **COMMON)
def test_distributed_run_matches_reference(case, grid, seed, boundary):
    stencil, kern, shape = case
    halo = stencil.output.halo
    # the checker's own decomposition rule decides admissibility
    assume(check_program(stencil, mpi_grid=grid, shape=shape).ok)
    assert all(s // g >= h for s, g, h in zip(shape, grid, halo))
    init = init_planes(stencil, shape, seed)
    steps = 2
    ref = reference_run(stencil, init, steps, boundary=boundary)
    got = distributed_run(stencil, init, steps, grid=grid,
                          boundary=boundary)
    assert rel_err(got, ref) < REL_TOL["f64"]


@pytest.mark.slow
@given(case=star_stencil_cases(ndim=2), grid=process_grids(2, 3),
       seed=seeds(), boundary=boundaries)
@settings(max_examples=20, **COMMON)
def test_exchange_modes_bitwise_identical_star(case, grid, seed,
                                               boundary):
    """Every exchange mode must produce the *bit-identical* result: the
    wire protocol reorders messages, never arithmetic."""
    stencil, kern, shape = case
    assume(check_program(stencil, mpi_grid=grid, shape=shape).ok)
    init = init_planes(stencil, shape, seed)
    steps = 2
    ref = reference_run(stencil, init, steps, boundary=boundary)
    basic = distributed_run(stencil, init, steps, grid=grid,
                            boundary=boundary, exchange_mode="basic")
    assert np.array_equal(basic, ref)
    for mode in ("diag", "overlap"):
        got = distributed_run(stencil, init, steps, grid=grid,
                              boundary=boundary, exchange_mode=mode)
        assert np.array_equal(got, basic), mode


@pytest.mark.slow
@given(case=box_stencil_cases(ndim=2), grid=process_grids(2, 3),
       seed=seeds(), boundary=boundaries)
@settings(max_examples=20, **COMMON)
def test_exchange_modes_bitwise_identical_box(case, grid, seed,
                                              boundary):
    """Box stencils read the diagonal ghosts directly — the corner
    blocks the diag mode ships as first-class messages."""
    stencil, kern, shape = case
    assume(check_program(stencil, mpi_grid=grid, shape=shape).ok)
    init = init_planes(stencil, shape, seed)
    steps = 2
    ref = reference_run(stencil, init, steps, boundary=boundary)
    basic = distributed_run(stencil, init, steps, grid=grid,
                            boundary=boundary, exchange_mode="basic")
    assert np.array_equal(basic, ref)
    for mode in ("diag", "overlap"):
        got = distributed_run(stencil, init, steps, grid=grid,
                              boundary=boundary, exchange_mode=mode)
        assert np.array_equal(got, basic), mode


@pytest.mark.slow
@given(case=box_stencil_cases(ndim=3, max_radius=1, max_side=8),
       seed=seeds(), boundary=boundaries)
@settings(max_examples=10, **COMMON)
def test_exchange_modes_bitwise_identical_box_3d(case, seed, boundary):
    stencil, kern, shape = case
    grid = (2, 1, 2)
    assume(check_program(stencil, mpi_grid=grid, shape=shape).ok)
    init = init_planes(stencil, shape, seed)
    ref = reference_run(stencil, init, 2, boundary=boundary)
    for mode in ("basic", "diag", "overlap"):
        got = distributed_run(stencil, init, 2, grid=grid,
                              boundary=boundary, exchange_mode=mode)
        assert np.array_equal(got, ref), mode


@pytest.mark.slow
@needs_gcc
@given(case=star_stencil_cases(ndim=2, max_radius=1, max_side=12),
       seed=seeds(), data=st.data())
@settings(max_examples=10, **COMMON)
def test_compiled_c_matches_reference(case, seed, data):
    stencil, kern, shape = case
    sched = data.draw(legal_schedules(kern, shape))
    assert_schedule_legal(stencil, kern, sched)
    init = init_planes(stencil, shape, seed)
    steps = 3
    ref = reference_run(stencil, init, steps, boundary="zero")
    got = run_compiled_c(stencil, kern, sched, init, steps, shape,
                         np.float64)
    assert rel_err(got, ref) < REL_TOL["f64"]


@pytest.mark.slow
@given(case=star_stencil_cases(ndim=2), data=st.data())
@settings(max_examples=25, **COMMON)
def test_rejected_schedules_have_witnesses(case, data):
    """Whatever the checker rejects must actually fail to lower/run."""
    stencil, kern, shape = case
    factor = data.draw(st.integers(shape[0] + 1, shape[0] + 8))
    sched = Schedule(kern).tile(factor, 2, "xo", "xi", "yo", "yi")
    report = check_program(stencil, {kern.name: sched}, shape=shape)
    assert report.by_code("TILE001")
    with pytest.raises(ScheduleError, match="exceeds extent"):
        sched.lower(shape)


# ---------------------------------------------------------------------------
# deterministic smoke test (tier-1 lane)
# ---------------------------------------------------------------------------

def test_differential_smoke_all_backends():
    """One fixed case through every available backend (fast lane)."""
    from tests.conftest import make_2d5pt
    from repro.ir import Stencil

    tensor, kern = make_2d5pt(shape=(12, 16))
    stencil = Stencil(tensor, kern[Stencil.t - 1])
    sched = Schedule(kern).tile(4, 5, "xo", "xi", "yo", "yi")
    sched.parallel("xo", 2)
    assert_schedule_legal(stencil, kern, sched)

    init = init_planes(stencil, (12, 16), seed=7)
    steps = 3
    ref = reference_run(stencil, init, steps, boundary="zero")

    got_sched = ScheduledExecutor(stencil, {kern.name: sched}).run(
        init, steps
    )
    assert rel_err(got_sched, ref) < REL_TOL["f64"]

    got_mpi = distributed_run(stencil, init, steps, grid=(2, 2),
                              boundary="zero")
    assert rel_err(got_mpi, ref) < REL_TOL["f64"]

    # the exchange-mode axis must be bitwise-transparent
    for mode in ("basic", "diag", "overlap"):
        got_mode = distributed_run(stencil, init, steps, grid=(2, 2),
                                   boundary="zero", exchange_mode=mode)
        assert np.array_equal(got_mode, got_mpi), mode

    if GCC is not None:
        got_c = run_compiled_c(stencil, kern, sched, init, steps,
                               (12, 16), np.float64)
        assert rel_err(got_c, ref) < REL_TOL["f64"]
