"""Unit tests for machine specs, SPM, DMA, cache and roofline models."""

import pytest

from repro.machine import (
    CacheModel,
    DMAEngine,
    Roofline,
    SPMAllocationError,
    SPMAllocator,
    machine_by_name,
)
from repro.machine.spec import (
    CPU_E5_2680V4,
    MATRIX_SN,
    SUNWAY_CG,
    SUNWAY_NETWORK,
    TIANHE3_NETWORK,
)


class TestSpecs:
    def test_sunway_peak_matches_paper(self):
        # 4 CGs ≈ the chip's 3.06 TFlops (Sec. 2.2)
        assert 4 * SUNWAY_CG.peak_gflops == pytest.approx(2969.6, rel=0.05)

    def test_matrix_chip_peak(self):
        from repro.machine.spec import MATRIX_CHIP

        # Sec. 2.2: 2.048 TFlops DP
        assert MATRIX_CHIP.peak_gflops == pytest.approx(2048.0)

    def test_sunway_is_cacheless_with_64kb_spm(self):
        assert SUNWAY_CG.cacheless
        assert SUNWAY_CG.spm_bytes == 64 * 1024

    def test_fp32_doubles_peak(self):
        assert SUNWAY_CG.peak_gflops_for("fp32") == (
            2 * SUNWAY_CG.peak_gflops_for("fp64")
        )

    def test_unknown_precision(self):
        with pytest.raises(ValueError):
            SUNWAY_CG.peak_gflops_for("fp16")

    def test_lookup_aliases(self):
        assert machine_by_name("sunway") is SUNWAY_CG
        assert machine_by_name("matrix") is MATRIX_SN
        assert machine_by_name("cpu") is CPU_E5_2680V4

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            machine_by_name("gpu")

    def test_network_ptp_time(self):
        t = SUNWAY_NETWORK.ptp_time_s(2_000_000)
        assert t == pytest.approx(
            1e-6 + 2e6 / (SUNWAY_NETWORK.link_bw_GBs * 1e9)
        )

    def test_tianhe3_has_2d_sync_constant(self):
        assert TIANHE3_NETWORK.sync_2d_us_per_32p > 0
        assert SUNWAY_NETWORK.sync_2d_us_per_32p < (
            TIANHE3_NETWORK.sync_2d_us_per_32p
        )


class TestSPMAllocator:
    def test_alloc_and_utilisation(self):
        spm = SPMAllocator(1024, align=32)
        spm.alloc("a", 100)  # rounds to 128
        assert spm.used == 128
        assert spm.utilisation == pytest.approx(128 / 1024)

    def test_overflow_raises(self):
        spm = SPMAllocator(256)
        spm.alloc("a", 200)
        with pytest.raises(SPMAllocationError, match="overflow"):
            spm.alloc("b", 100)

    def test_duplicate_name(self):
        spm = SPMAllocator(1024)
        spm.alloc("a", 64)
        with pytest.raises(ValueError, match="already"):
            spm.alloc("a", 64)

    def test_free_reclaims_tail(self):
        spm = SPMAllocator(256)
        spm.alloc("a", 64)
        spm.alloc("b", 64)
        spm.free("b")
        spm.alloc("c", 128)  # fits only if b's space was reclaimed
        assert "c" in spm

    def test_peak_tracks_high_water(self):
        spm = SPMAllocator(1024)
        spm.alloc("a", 512)
        spm.free("a")
        spm.alloc("b", 64)
        assert spm.peak == 512

    def test_reset(self):
        spm = SPMAllocator(1024)
        spm.alloc("a", 512)
        spm.reset()
        assert spm.used == 0
        spm.alloc("a", 1024)  # full capacity again

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            SPMAllocator(128).free("zz")

    def test_alignment_power_of_two(self):
        with pytest.raises(ValueError):
            SPMAllocator(128, align=30)


class TestDMAEngine:
    def test_transfer_time_model(self):
        eng = DMAEngine(startup_us=1.0, share_bw_GBs=1.0)
        t = eng.get(1_000_000)
        assert t == pytest.approx(1e-6 + 1e6 / 1e9)

    def test_small_transfers_charged_minimum(self):
        eng = DMAEngine(startup_us=0.0, share_bw_GBs=1.0,
                        min_efficient_bytes=256)
        assert eng.get(8) == eng.get(256)

    def test_stats_accumulate(self):
        eng = DMAEngine(startup_us=0.1, share_bw_GBs=1.0)
        eng.get(1000)
        eng.put(500)
        assert eng.stats.n_gets == 1 and eng.stats.n_puts == 1
        assert eng.stats.total_bytes == 1500

    def test_zero_bytes_rejected(self):
        eng = DMAEngine(0.1, 1.0)
        with pytest.raises(ValueError):
            eng.get(0)

    def test_stats_merge_parallel_time(self):
        from repro.machine.dma import DMAStats

        a = DMAStats(1, 1, 10, 10, 1.0)
        b = DMAStats(2, 2, 20, 20, 2.0)
        m = a.merge(b)
        assert m.n_transfers == 6
        assert m.time_s == 2.0  # engines run in parallel


class TestCacheModel:
    def test_fitting_tile_traffic_near_compulsory(self):
        cache = CacheModel(512 * 1024)
        est = cache.estimate((2, 8, 256), (1, 1, 1), 8, 7, planes=2)
        assert est.fits_in_cache
        # traffic per point should be a small multiple of elem size
        assert est.read_bytes_per_point < 8 * 2 * 4

    def test_non_fitting_tile_loses_reuse(self):
        cache = CacheModel(512 * 1024)
        big = cache.estimate((64, 64, 64), (4, 4, 4), 8, 25, planes=2)
        small = cache.estimate((2, 8, 64), (4, 4, 4), 8, 25, planes=2)
        assert not big.fits_in_cache
        assert small.fits_in_cache
        assert big.read_bytes_per_point > small.read_bytes_per_point

    def test_halo_overhead_grows_as_tiles_shrink(self):
        cache = CacheModel(512 * 1024)
        small = cache.halo_overhead((2, 2), (2, 2))
        large = cache.halo_overhead((64, 64), (2, 2))
        assert small > large > 1.0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            CacheModel(0)


class TestRoofline:
    def test_ridge_point(self):
        roof = Roofline(SUNWAY_CG)
        assert roof.ridge_oi == pytest.approx(
            SUNWAY_CG.peak_gflops / SUNWAY_CG.mem_bw_GBs
        )

    def test_attainable_caps_at_peak(self):
        roof = Roofline(SUNWAY_CG)
        assert roof.attainable(1e9) == roof.peak
        assert roof.attainable(1.0) == SUNWAY_CG.mem_bw_GBs

    def test_bound_classification(self):
        roof = Roofline(SUNWAY_CG)
        assert roof.bound(roof.ridge_oi / 2) == "memory"
        assert roof.bound(roof.ridge_oi * 2) == "compute"

    def test_place_rejects_superluminal(self):
        roof = Roofline(SUNWAY_CG)
        with pytest.raises(ValueError, match="exceeds"):
            roof.place("x", 1.0, SUNWAY_CG.mem_bw_GBs * 10)

    def test_negative_oi_rejected(self):
        with pytest.raises(ValueError):
            Roofline(SUNWAY_CG).attainable(-1)

    def test_roof_series(self):
        roof = Roofline(MATRIX_SN)
        series = roof.roof_series([0.1, 1.0, 100.0])
        assert len(series) == 3
        assert series[-1][1] == roof.peak
