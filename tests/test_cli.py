"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main

MSC_DISTRIBUTED = """
const N = 12;
DefVar(k, i32); DefVar(j, i32); DefVar(i, i32);
DefTensor3D_TimeWin(B, 3, 1, f64, N, N, N);
Kernel S((k,j,i), 0.4*B[k,j,i] + 0.1*B[k,j,i-1] + 0.1*B[k,j,i+1]
         + 0.1*B[k-1,j,i] + 0.1*B[k+1,j,i]
         + 0.1*B[k,j-1,i] + 0.1*B[k,j+1,i]);
Stencil st((k,j,i), B[t] << 0.6*S[t-1] + 0.4*S[t-2]);
DefShapeMPI3D(mpi, 2, 1, 2);
"""

MSC_SUNWAY = """
const N = 16;
DefVar(k, i32); DefVar(j, i32); DefVar(i, i32);
DefTensor3D_TimeWin(B, 3, 1, f64, N, N, N);
Kernel S((k,j,i), 0.5*B[k,j,i] + 0.25*B[k,j,i-1] + 0.25*B[k,j,i+1]);
S.tile(4, 8, 16, xo, xi, yo, yi, zo, zi);
S.reorder(xo, yo, zo, xi, yi, zi);
S.cache_read(B, br, "global");
S.cache_write(bw, "global");
S.compute_at(br, zo);
S.compute_at(bw, zo);
S.parallel(xo, 64);
Stencil st((k,j,i), B[t] << S[t-1]);
"""


@pytest.fixture
def msc_file(tmp_path):
    path = tmp_path / "prog.msc"
    path.write_text(MSC_DISTRIBUTED)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_report_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "fig99"])


class TestRun:
    def test_run_distributed(self, msc_file, capsys):
        assert main(["run", msc_file, "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "distributed over (2, 1, 2)" in out
        assert "l2=" in out

    def test_run_serial_flag(self, msc_file, capsys):
        assert main(["run", msc_file, "--steps", "3", "--serial"]) == 0
        assert "single-node" in capsys.readouterr().out

    def test_run_saves_npy(self, msc_file, tmp_path, capsys):
        out = tmp_path / "res.npy"
        assert main(["run", msc_file, "--steps", "2",
                     "--out", str(out)]) == 0
        data = np.load(str(out))
        assert data.shape == (12, 12, 12)

    def test_run_deterministic_under_seed(self, msc_file, capsys):
        main(["run", msc_file, "--steps", "2", "--seed", "5"])
        first = capsys.readouterr().out
        main(["run", msc_file, "--steps", "2", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent.msc"]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_exchange_mode_bitwise_stable(self, msc_file, capsys):
        outputs = {}
        for mode in ("basic", "diag", "overlap"):
            assert main(["run", msc_file, "--steps", "3", "--seed", "5",
                         "--exchange-mode", mode]) == 0
            outputs[mode] = capsys.readouterr().out
            assert "distributed over" in outputs[mode]
        # the printed norms are identical: the mode never changes numerics
        assert outputs["basic"] == outputs["diag"] == outputs["overlap"]

    def test_run_exchange_mode_rejected_by_parser(self, msc_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", msc_file, "--exchange-mode", "warp"]
            )


class TestCompile:
    def test_sunway_bundle(self, tmp_path, capsys):
        src = tmp_path / "s.msc"
        src.write_text(MSC_SUNWAY)
        out = tmp_path / "bundle"
        assert main(["compile", str(src), "--target", "sunway",
                     "-o", str(out)]) == 0
        files = {p.name for p in out.iterdir()}
        assert files == {
            "st_master.c", "st_slave.c", "st_common.c", "st.h",
            "msc_athread_stub.h", "Makefile",
        }

    def test_cpu_bundle_with_name(self, msc_file, tmp_path):
        out = tmp_path / "cpu"
        assert main(["compile", msc_file, "--target", "cpu",
                     "-o", str(out), "--name", "myprog"]) == 0
        assert (out / "myprog.c").exists()

    def test_illegal_sunway_schedule_reported(self, msc_file, tmp_path,
                                              capsys):
        # the distributed program has no SPM staging -> sunway illegal
        assert main(["compile", msc_file, "--target", "sunway",
                     "-o", str(tmp_path)]) == 1
        assert "illegal schedule" in capsys.readouterr().err


class TestSimulateAndReport:
    def test_simulate_sunway(self, capsys):
        assert main(["simulate", "3d7pt_star", "--machine", "sunway"]) == 0
        out = capsys.readouterr().out
        assert "GFlops" in out and "tiles_per_cpe" in out

    def test_simulate_unknown_benchmark(self, capsys):
        assert main(["simulate", "5d_monster"]) == 1

    def test_simulate_exchange_mode_labelled(self, capsys):
        assert main(["simulate", "2d9pt_box", "--machine", "cpu",
                     "--exchange-mode", "diag"]) == 0
        assert "distributed exchange [diag]" in capsys.readouterr().out

    def test_simulate_with_injected_drops(self, capsys):
        assert main([
            "simulate", "2d9pt_box", "--machine", "cpu",
            "--inject-faults", "drop:p=0.2", "--fault-seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "injected faults (seed 7)" in out
        assert "drop=" in out

    def test_simulate_with_injected_crash_fails(self, capsys):
        assert main([
            "simulate", "2d9pt_box", "--machine", "cpu",
            "--inject-faults", "crash:rank=1:step=4",
        ]) == 1
        out = capsys.readouterr().out
        assert "FAILED under injected faults" in out
        assert "rank 1 crashed" in out

    def test_simulate_bad_fault_spec(self, capsys):
        assert main([
            "simulate", "2d9pt_box", "--machine", "cpu",
            "--inject-faults", "jitter:p=0.5",
        ]) == 1
        assert "unknown fault kind" in capsys.readouterr().err

    def test_simulate_faults_ignored_with_skip_pipeline(self, capsys):
        assert main([
            "simulate", "2d9pt_box", "--machine", "cpu",
            "--skip-pipeline", "--inject-faults", "drop:p=0.5",
        ]) == 0
        assert "no effect" in capsys.readouterr().err

    def test_simulate_faulty_trace_records_retries(self, tmp_path,
                                                   capsys):
        path = tmp_path / "faulty.json"
        assert main([
            "simulate", "2d9pt_box", "--machine", "cpu",
            "--inject-faults", "drop:p=0.25", "--fault-seed", "7",
            "--trace", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "retries:" in out
        from repro.obs import registry

        assert registry().counter_total("comm.retry") > 0

    def test_report_table4(self, capsys):
        assert main(["report", "table4"]) == 0
        out = capsys.readouterr().out
        assert "3d7pt_star" in out and "56" in out

    def test_report_fig10(self, capsys):
        assert main(["report", "fig10"]) == 0
        assert "3d7pt_star" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "2d121pt_box" in out and "fig14" in out


class TestTune:
    def test_tune_small(self, capsys):
        assert main([
            "tune", "3d7pt_star", "--nprocs", "8",
            "--shape", "512,128,128", "--iterations", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out


class TestVerify:
    def test_verify_all_paths_pass(self, capsys):
        assert main(["verify", "3d7pt_star", "--timesteps", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") >= 3
        assert "FAIL" not in out

    def test_verify_fp32_tolerance(self, capsys):
        assert main(["verify", "2d9pt_star", "--precision", "fp32",
                     "--timesteps", "2"]) == 0
        assert "1e-05" in capsys.readouterr().out


MSC_PIPELINE = """
const N = 16;
DefVar(j, i32); DefVar(i, i32);
DefTensor2D(U, 1, f64, N, N);
DefTensor2D(R, 1, f64, N, N);
Kernel smooth((j,i), 0.5*U[j,i] + 0.125*U[j,i-1] + 0.125*U[j,i+1]
              + 0.125*U[j-1,i] + 0.125*U[j+1,i]);
Kernel resid((j,i), 4.0*U[j,i] - U[j,i-1] - U[j,i+1] - U[j-1,i]
             - U[j+1,i]);
Stencil s1((j,i), U[t] << smooth[t-1]);
Stencil s2((j,i), R[t] << resid[t-1]);
DefShapeMPI2D(mpi, 2, 2);
"""


class TestPipelineCLI:
    @pytest.fixture
    def pipe_file(self, tmp_path):
        path = tmp_path / "pipe.msc"
        path.write_text(MSC_PIPELINE)
        return str(path)

    def test_run_distributed_pipeline(self, pipe_file, capsys):
        assert main(["run", pipe_file, "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "StagePipeline(U -> R)" in out
        assert "distributed over (2, 2)" in out
        assert out.count("l2=") == 2

    def test_run_serial_pipeline_saves_npz(self, pipe_file, tmp_path,
                                           capsys):
        dest = tmp_path / "res.npz"
        assert main(["run", pipe_file, "--steps", "2", "--serial",
                     "--out", str(dest)]) == 0
        data = np.load(str(dest))
        assert set(data.files) == {"U", "R"}

    def test_serial_matches_distributed(self, pipe_file, capsys):
        main(["run", pipe_file, "--steps", "3", "--seed", "2"])
        dist = capsys.readouterr().out.splitlines()[1:]
        main(["run", pipe_file, "--steps", "3", "--seed", "2",
              "--serial"])
        serial = capsys.readouterr().out.splitlines()[1:]
        assert dist == serial


class TestTraceCLI:
    def _simulate_traced(self, tmp_path, capsys, fmt):
        path = tmp_path / f"trace-{fmt}.json"
        rc = main(["simulate", "3d7pt_star", "--machine", "sunway",
                   "--trace", str(path), "--trace-format", fmt])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"trace written to {path}" in out
        return path, out

    def test_simulate_trace_json(self, tmp_path, capsys):
        import json

        path, out = self._simulate_traced(tmp_path, capsys, "json")
        assert "codegen [sunway]" in out
        assert "distributed exchange" in out
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-trace"
        prefixes = {s["name"].split(".", 1)[0] for s in doc["spans"]}
        # the acceptance bar: spans from codegen, machine sim, comm
        # and the distributed runtime in one command
        assert {"codegen", "machine", "comm", "runtime"} <= prefixes
        assert doc["metrics"]["counters"]

    def test_simulate_trace_chrome(self, tmp_path, capsys):
        import json

        path, _ = self._simulate_traced(tmp_path, capsys, "chrome")
        doc = json.loads(path.read_text())
        xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert xs and all("ts" in e and "dur" in e for e in xs)
        # nested spans: comm.pack sits under comm.exchange by interval
        names = {e["name"] for e in xs}
        assert {"cli.simulate", "comm.exchange", "comm.pack"} <= names
        # simulated ranks appear as separate tracks
        tids = {e["tid"] for e in xs}
        assert len(tids) >= 2

    def test_trace_command_summarizes(self, tmp_path, capsys):
        path, _ = self._simulate_traced(tmp_path, capsys, "json")
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "TRACE SUMMARY" in out
        assert "comm.exchange" in out
        assert "COUNTERS" in out

    def test_trace_command_reads_chrome(self, tmp_path, capsys):
        path, _ = self._simulate_traced(tmp_path, capsys, "chrome")
        assert main(["trace", str(path)]) == 0
        assert "TRACE SUMMARY" in capsys.readouterr().out

    def test_trace_summary_format(self, tmp_path, capsys):
        path, _ = self._simulate_traced(tmp_path, capsys, "summary")
        assert "TRACE SUMMARY" in path.read_text()

    def test_trace_missing_file(self, capsys):
        assert main(["trace", "/nonexistent-trace.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_with_trace(self, msc_file, tmp_path, capsys):
        import json

        path = tmp_path / "run.json"
        assert main(["run", msc_file, "--steps", "2",
                     "--trace", str(path)]) == 0
        doc = json.loads(path.read_text())
        names = {s["name"] for s in doc["spans"]}
        assert {"cli.run", "frontend.parse", "runtime.step"} <= names

    def test_no_trace_flag_records_nothing(self, capsys):
        from repro.obs import is_enabled, tracer

        assert main(["simulate", "3d7pt_star", "--machine", "sunway",
                     "--skip-pipeline"]) == 0
        assert not is_enabled()
        out = capsys.readouterr().out
        assert "trace written" not in out

    def test_list_shows_exporters(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "trace exporters: json, chrome, summary" in out
        assert "instrumented subsystems:" in out
        assert "autotune" in out

    def test_skip_pipeline_omits_stages(self, capsys):
        assert main(["simulate", "3d7pt_star", "--machine", "sunway",
                     "--skip-pipeline"]) == 0
        out = capsys.readouterr().out
        assert "codegen [" not in out
        assert "distributed exchange" not in out


class TestCritpathCLI:
    """``repro critpath`` and the distributed views of ``repro trace``."""

    @pytest.fixture
    def dist_trace(self, tmp_path):
        """A merged 2x2 distributed trace file, written natively."""
        import numpy as np

        from repro import obs
        from repro.comm.exchange import AsyncHaloExchanger
        from repro.comm.halo import HaloSpec
        from repro.obs import capture
        from repro.obs.export import write_trace
        from repro.runtime.simmpi import run_ranks

        def rank_main(comm):
            spec = HaloSpec((12, 12), (1, 1))
            ex = AsyncHaloExchanger(comm, spec)
            plane = np.full(spec.padded_shape, float(comm.rank))
            for _ in range(2):
                ex.exchange(plane)
            return comm.gather(float(plane.sum()))

        try:
            with capture() as (tr, reg):
                run_ranks(4, rank_main, cart_dims=(2, 2),
                          periods=(True, True))
            path = tmp_path / "dist.json"
            write_trace(str(path), "json", tr, reg)
        finally:
            obs.disable()
            obs.reset()
        return str(path)

    def test_critpath_reports_cross_rank_path(self, dist_trace, capsys):
        assert main(["critpath", dist_trace]) == 0
        out = capsys.readouterr().out
        assert "CRITICAL PATH" in out
        assert "<- flow" in out  # the path crosses ranks via messages
        assert "PER-RANK SUMMARY" in out

    def test_critpath_json(self, dist_trace, capsys):
        import json

        assert main(["critpath", dist_trace, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ranks"] == [0, 1, 2, 3]
        cp = doc["critical_path"]
        assert cp["flow_edges"] > 0
        assert cp["chain_crossings"] >= 1
        path_ranks = {
            seg["rank"] for seg in cp["segments"]
            if seg["rank"] is not None
        }
        assert len(path_ranks) >= 2  # the acceptance bar
        assert doc["imbalance"]["bytes_skew"] == 1.0

    def test_critpath_rejects_malformed_dag(self, tmp_path, capsys):
        import json

        # an inbound flow nobody sent: a malformed (orphan) edge
        doc = {
            "format": "repro-trace", "version": 1,
            "spans": [{
                "span_id": 1, "parent_id": None, "name": "comm.wait",
                "start_s": 0.0, "duration_s": 1.0,
                "thread": "simmpi-rank-0",
                "attrs": {"rank": 0, "flows_in": ["9>0:5#0"]},
            }],
            "metrics": {},
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        assert main(["critpath", str(path)]) == 1
        err = capsys.readouterr().err
        assert "malformed" in err and "orphan" in err

    def test_critpath_missing_file(self, capsys):
        assert main(["critpath", "/nonexistent-trace.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_trace_by_rank_table_only(self, dist_trace, capsys):
        assert main(["trace", dist_trace, "--by-rank"]) == 0
        out = capsys.readouterr().out
        assert "PER-RANK SUMMARY" in out
        assert "TRACE SUMMARY" not in out

    def test_trace_default_appends_by_rank_when_multirank(
            self, dist_trace, capsys):
        assert main(["trace", dist_trace]) == 0
        out = capsys.readouterr().out
        assert "TRACE SUMMARY" in out
        assert "PER-RANK SUMMARY" in out

    def test_trace_distributed_adds_critical_path(self, dist_trace,
                                                  capsys):
        assert main(["trace", dist_trace, "--distributed"]) == 0
        out = capsys.readouterr().out
        assert "CRITICAL PATH" in out
        assert "flow edges" in out

    def test_single_rank_trace_stays_plain(self, tmp_path, capsys):
        from repro import obs
        from repro.obs import capture, span
        from repro.obs.export import write_trace

        try:
            with capture() as (tr, reg):
                with span("app.work"):
                    pass
            path = tmp_path / "solo.json"
            write_trace(str(path), "json", tr, reg)
        finally:
            obs.disable()
            obs.reset()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "TRACE SUMMARY" in out
        assert "PER-RANK SUMMARY" not in out


MSC_SINGLE_NODE = """
const N = 12;
DefVar(j, i32); DefVar(i, i32);
DefTensor2D_TimeWin(A, 2, 1, f64, N, N);
Kernel S((j,i), 0.5*A[j,i] + 0.125*A[j,i-1] + 0.125*A[j,i+1]
         + 0.125*A[j-1,i] + 0.125*A[j+1,i]);
Stencil st((j,i), A[t] << S[t-1]);
"""


@pytest.fixture
def single_node_file(tmp_path):
    path = tmp_path / "single.msc"
    path.write_text(MSC_SINGLE_NODE)
    return str(path)


class TestRunBackend:
    def test_backend_numpy_requested(self, single_node_file, capsys):
        assert main(["run", single_node_file, "--steps", "2",
                     "--backend", "numpy"]) == 0
        assert "backend: numpy (requested)" in capsys.readouterr().out

    def test_backend_auto_reports_choice(self, single_node_file, capsys):
        assert main(["run", single_node_file, "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "backend: " in out and "auto" in out

    def test_backend_native_matches_numpy(self, single_node_file,
                                          tmp_path, capsys):
        import shutil

        if shutil.which("gcc") is None:
            pytest.skip("gcc not available")
        a = tmp_path / "native.npy"
        b = tmp_path / "numpy.npy"
        assert main(["run", single_node_file, "--steps", "3",
                     "--backend", "native", "--out", str(a)]) == 0
        assert "backend: native" in capsys.readouterr().out
        assert main(["run", single_node_file, "--steps", "3",
                     "--backend", "numpy", "--out", str(b)]) == 0
        np.testing.assert_array_equal(np.load(str(a)), np.load(str(b)))

    def test_backend_native_unavailable_errors(self, single_node_file,
                                               capsys, monkeypatch):
        from repro.backend import native as native_mod

        monkeypatch.setattr(native_mod, "which_cc", lambda cc=None: None)
        assert main(["run", single_node_file, "--backend",
                     "native"]) == 1
        assert "error" in capsys.readouterr().err

    def test_distributed_ignores_native(self, msc_file, capsys):
        assert main(["run", msc_file, "--steps", "2",
                     "--backend", "native"]) == 0
        out = capsys.readouterr().out
        assert "--backend native ignored" in out
        assert "distributed over (2, 1, 2)" in out

    def test_bench_backend_flag_parsed(self):
        args = build_parser().parse_args(
            ["bench", "2d9pt_star@cpu", "--backend", "native"]
        )
        assert args.backend == "native"

    def test_bench_backend_rejected_for_exchange(self):
        from repro.obs import perf

        with pytest.raises(ValueError, match="exchange workloads"):
            perf.resolve_workloads(["exchange:3d7pt_star"],
                                   backend="numpy")
