"""Tests for the automatic schedule generator."""

import numpy as np
import pytest

from repro.autotune import auto_schedule, candidate_tiles
from repro.backend.numpy_backend import ScheduledExecutor, reference_run
from repro.frontend import ALL_BENCHMARKS, build_benchmark
from repro.machine import simulate_matrix, simulate_sunway
from repro.machine.spec import CPU_E5_2680V4, MATRIX_SN, SUNWAY_CG
from repro.schedule import check_schedule
from repro.ir import Kernel, SpNode, Stencil, VarExpr


class TestCandidateTiles:
    def test_power_of_two_within_shape(self):
        for tile in candidate_tiles((16, 256)):
            assert all(t & (t - 1) == 0 for t in tile)
            assert tile[0] <= 16 and tile[1] <= 256

    def test_prefers_long_unit_stride(self):
        tiles = candidate_tiles((64, 64, 64))
        assert tiles[0][-1] == 64  # longest inner extent first

    def test_bounded_count(self):
        assert len(candidate_tiles((256, 256, 256))) <= 200


class TestAutoSchedule:
    @pytest.mark.parametrize("bench", ALL_BENCHMARKS,
                             ids=lambda b: b.name)
    def test_legal_on_sunway_for_all_benchmarks(self, bench):
        prog, _ = bench.build()
        sched = auto_schedule(prog.ir, SUNWAY_CG)
        check_schedule(sched, sched.lower(prog.ir.output.shape), SUNWAY_CG)
        # SPM staging present on the cache-less target
        assert sched.uses_spm
        assert sched.nthreads == 64
        assert sched.vectorized_axis is not None

    def test_cache_machine_needs_no_spm(self):
        prog, _ = build_benchmark("3d7pt_star")
        sched = auto_schedule(prog.ir, MATRIX_SN)
        assert not sched.uses_spm
        assert sched.nthreads == MATRIX_SN.cores_per_node

    def test_simulates_no_slower_than_table5(self):
        from repro.evalsuite.harness import build_with_schedule

        prog, _ = build_benchmark("3d13pt_star")
        auto = auto_schedule(prog.ir, SUNWAY_CG)
        t_auto = simulate_sunway(prog.ir, auto).step_s
        prog5, h5 = build_with_schedule("3d13pt_star", "sunway")
        t_table = simulate_sunway(prog5.ir, h5.schedule).step_s
        assert t_auto <= t_table * 1.2

    def test_results_unchanged_by_auto_schedule(self, rng):
        prog, _ = build_benchmark("3d7pt_star", grid=(16, 16, 16),
                                  boundary="periodic")
        sched = auto_schedule(prog.ir, CPU_E5_2680V4)
        kern = prog.ir.kernels[0]
        init = [rng.random((16, 16, 16)) for _ in range(2)]
        ref = reference_run(prog.ir, init, 3, boundary="periodic")
        got = ScheduledExecutor(
            prog.ir, {kern.name: sched}, boundary="periodic"
        ).run(init, 3)
        np.testing.assert_array_equal(got, ref)

    def test_infeasible_radius_reported(self):
        # a stencil whose radius makes even a 1-wide tile overflow SPM
        i = VarExpr("i")
        B = SpNode("B", (40000,), halo=(9000,), time_window=2)
        kern = Kernel("wide", (i,), B[i - 9000] + B[i + 9000])
        st = Stencil(B, kern[Stencil.t - 1])
        with pytest.raises(ValueError, match="no feasible tile"):
            auto_schedule(st, SUNWAY_CG)

    def test_vectorize_optional(self):
        prog, _ = build_benchmark("2d9pt_star")
        sched = auto_schedule(prog.ir, MATRIX_SN, vectorize=False)
        assert sched.vectorized_axis is None
