"""The paper's Sec. 5.1 correctness methodology, as tests.

"To ensure the correctness of MSC, we measure the relative errors
between the generated codes and the serial codes.  For all evaluation
results, the relative errors of the single-precision (fp32) results and
the double-precision (fp64) are less than 1e-5 and 1e-10 respectively."

Each benchmark's scheduled execution (the analogue of the generated
code) and distributed execution are compared against the serial
reference under both precisions.
"""

import numpy as np
import pytest

from repro.backend.numpy_backend import ScheduledExecutor, reference_run
from repro.frontend.stencils import ALL_BENCHMARKS, benchmark_by_name
from repro.ir import f32, f64
from repro.runtime.executor import distributed_run
from repro.schedule import Schedule

SMALL_GRIDS = {2: (24, 20), 3: (12, 12, 12)}
MPI_GRIDS = {2: (2, 2), 3: (2, 1, 2)}


def _rel_err(got, ref):
    denom = np.maximum(np.abs(ref), 1e-300)
    return float(np.max(np.abs(got - ref) / denom))


def _tiled_schedule(prog):
    kern = prog.ir.kernels[0]
    sched = Schedule(kern)
    shape = prog.ir.output.shape
    factors = tuple(max(2, s // 3) for s in shape)
    names = (
        ("xo", "xi", "yo", "yi") if len(shape) == 2
        else ("xo", "xi", "yo", "yi", "zo", "zi")
    )
    sched.tile(*factors, *names)
    return {kern.name: sched}


@pytest.mark.parametrize("bench", ALL_BENCHMARKS,
                         ids=lambda b: b.name)
@pytest.mark.parametrize("dtype,tol", [(f64, 1e-10), (f32, 1e-5)],
                         ids=["fp64", "fp32"])
def test_scheduled_matches_serial_within_paper_tolerance(bench, dtype, tol,
                                                         rng):
    grid = SMALL_GRIDS[bench.ndim]
    # high-order stencils need bigger grids than the halo radius
    grid = tuple(max(g, 4 * bench.radius) for g in grid)
    prog, _ = bench.build(grid=grid, dtype=dtype, boundary="periodic")
    init = [
        rng.random(grid).astype(dtype.np_dtype) for _ in range(2)
    ]
    ref = reference_run(prog.ir, init, 4, boundary="periodic")
    ex = ScheduledExecutor(prog.ir, _tiled_schedule(prog),
                           boundary="periodic")
    got = ex.run(init, 4)
    assert _rel_err(got, ref) < tol


@pytest.mark.parametrize("name", ["3d7pt_star", "2d9pt_box",
                                  "3d13pt_star"])
@pytest.mark.parametrize("dtype,tol", [(f64, 1e-10), (f32, 1e-5)],
                         ids=["fp64", "fp32"])
def test_distributed_matches_serial_within_paper_tolerance(name, dtype,
                                                           tol, rng):
    bench = benchmark_by_name(name)
    grid = SMALL_GRIDS[bench.ndim]
    grid = tuple(max(g, 4 * bench.radius) for g in grid)
    prog, _ = bench.build(grid=grid, dtype=dtype, boundary="periodic")
    init = [rng.random(grid).astype(dtype.np_dtype) for _ in range(2)]
    ref = reference_run(prog.ir, init, 4, boundary="periodic")
    got = distributed_run(prog.ir, init, 4, MPI_GRIDS[bench.ndim],
                          boundary="periodic")
    assert _rel_err(got, ref) < tol


def test_iteration_remains_bounded(rng):
    """The benchmark coefficients are normalised: long runs stay finite."""
    prog, _ = benchmark_by_name("3d7pt_star").build(
        grid=(10, 10, 10), boundary="periodic"
    )
    init = [rng.random((10, 10, 10)) for _ in range(2)]
    out = reference_run(prog.ir, init, 50, boundary="periodic")
    assert np.isfinite(out).all()
    assert np.abs(out).max() < 10.0
