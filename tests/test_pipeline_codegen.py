"""Compile-and-run verification of the pipeline C code generator."""

import shutil
import subprocess

import numpy as np
import pytest

from repro.backend.pipeline_codegen import generate_pipeline
from repro.backend.pipeline_exec import PipelineExecutor
from repro.ir import Kernel, SpNode, StagePipeline, Stencil, VarExpr, f64

needs_gcc = pytest.mark.skipif(
    shutil.which("gcc") is None, reason="gcc not available"
)


def _jacobi_pipeline(shape=(14, 18)):
    j, i = VarExpr("j"), VarExpr("i")
    U = SpNode("U", shape, f64, halo=(1, 1), time_window=2)
    R = SpNode("R", shape, f64, halo=(1, 1), time_window=2)
    Brhs = SpNode("Brhs", shape, f64, halo=(1, 1), time_window=2)
    smooth = Kernel(
        "jacobi", (j, i),
        0.2 * U[j, i] + 0.2 * (U[j, i - 1] + U[j, i + 1]
                               + U[j - 1, i] + U[j + 1, i])
        + 0.05 * Brhs[j, i],
    )
    resid = Kernel(
        "residual", (j, i),
        Brhs[j, i] - 4.0 * U[j, i]
        + (U[j, i - 1] + U[j, i + 1] + U[j - 1, i] + U[j + 1, i]),
    )
    t = Stencil.t
    return StagePipeline((
        Stencil(U, smooth[t - 1]),
        Stencil(R, resid[t - 1]),
    ))


def _compile_run(code, tmp_path, init_arrays, steps, nout, shape):
    code.write_to(str(tmp_path))
    exe = tmp_path / code.name
    res = subprocess.run(
        ["gcc", "-O2", "-fopenmp", "-o", str(exe),
         str(tmp_path / f"{code.name}.c"), "-lm"],
        capture_output=True, text=True,
        timeout=120,
    )
    assert res.returncode == 0, res.stderr
    np.concatenate([a.ravel() for a in init_arrays]).tofile(
        str(tmp_path / "init.bin")
    )
    subprocess.run(
        [str(exe), str(tmp_path / "init.bin"), str(steps),
         str(tmp_path / "out.bin")],
        check=True, capture_output=True,
        timeout=120,
    )
    return np.fromfile(str(tmp_path / "out.bin")).reshape(nout, *shape)


class TestGeneratedStructure:
    def test_one_window_per_stage(self):
        code = generate_pipeline(_jacobi_pipeline(), "p")
        src = code.main_source
        assert "static real *U_win;" in src
        assert "static real *R_win;" in src
        assert "static real *Brhs_buf;" in src

    def test_stage_order_in_time_loop(self):
        src = generate_pipeline(_jacobi_pipeline(), "p").main_source
        assert src.index("sweep_U_0(t,") < src.index("sweep_R_0(t,")

    def test_halo_fill_between_stages(self):
        src = generate_pipeline(_jacobi_pipeline(), "p").main_source
        assert src.index("fill_halo_U(p_U)") < src.index("sweep_R_0(t,")

    def test_balanced_braces(self):
        src = generate_pipeline(_jacobi_pipeline(), "p").main_source
        assert src.count("{") == src.count("}")

    def test_reflect_rejected(self):
        with pytest.raises(ValueError):
            generate_pipeline(_jacobi_pipeline(), "p", boundary="reflect")


@needs_gcc
class TestCompiledPipeline:
    @pytest.mark.parametrize("boundary", ["zero", "periodic"])
    def test_matches_python_executor(self, tmp_path, rng, boundary):
        pipe = _jacobi_pipeline()
        code = generate_pipeline(pipe, f"pipe_{boundary}",
                                 boundary=boundary)
        u0 = rng.random((14, 18))
        b = rng.random((14, 18))
        got = _compile_run(code, tmp_path, [u0, b], 5, 2, (14, 18))
        ref = PipelineExecutor(
            pipe, boundary=boundary, inputs={"Brhs": b}
        ).run({"U": [u0]}, 5)
        np.testing.assert_array_equal(got[0], ref["U"])
        np.testing.assert_array_equal(got[1], ref["R"])

    def test_3d_two_history_stage(self, tmp_path, rng):
        # a stage with two time dependencies inside a pipeline
        shape = (8, 10, 12)
        k, j, i = VarExpr("k"), VarExpr("j"), VarExpr("i")
        U = SpNode("U", shape, f64, halo=(1, 1, 1), time_window=3)
        G = SpNode("G", shape, f64, halo=(1, 1, 1), time_window=2)
        wave = Kernel(
            "wave", (k, j, i),
            1.9 * U[k, j, i] + 0.01 * (
                U[k, j, i - 1] + U[k, j, i + 1] + U[k, j - 1, i]
                + U[k, j + 1, i] + U[k - 1, j, i] + U[k + 1, j, i]
            ),
        )
        ident = Kernel("ident", (k, j, i), 1.0 * U[k, j, i])
        grad = Kernel(
            "grad", (k, j, i), U[k, j, i + 1] - U[k, j, i - 1],
        )
        t = Stencil.t
        pipe = StagePipeline((
            Stencil(U, wave[t - 1] - ident[t - 2]),
            Stencil(G, grad[t - 1]),
        ))
        code = generate_pipeline(pipe, "wave3d", boundary="periodic")
        u0 = rng.random(shape)
        u1 = rng.random(shape)
        got = _compile_run(code, tmp_path, [u0, u1], 4, 2, shape)
        ref = PipelineExecutor(pipe, boundary="periodic").run(
            {"U": [u0, u1]}, 4
        )
        np.testing.assert_array_equal(got[0], ref["U"])
        np.testing.assert_array_equal(got[1], ref["G"])

    def test_zero_steps_outputs_seeds(self, tmp_path, rng):
        pipe = _jacobi_pipeline()
        code = generate_pipeline(pipe, "zero_steps")
        u0 = rng.random((14, 18))
        b = rng.random((14, 18))
        got = _compile_run(code, tmp_path, [u0, b], 0, 2, (14, 18))
        np.testing.assert_array_equal(got[0], u0)
