"""Tests asserting the *shape* of every reproduced experiment.

Who wins, by roughly what factor, where crossovers fall — the
reproduction criteria for each table and figure of Sec. 5.
"""

import statistics

import pytest

from repro.evalsuite import (
    TABLE5,
    TABLE7_SUNWAY,
    TABLE7_TIANHE3,
    TABLE8,
    fig7_rows,
    fig8_rows,
    fig9_points,
    fig10_curves,
    fig12_rows,
    fig13_rows,
    fig14_rows,
    format_series,
    format_table,
    geomean,
    table3_rows,
    table4_rows,
    table5_row,
    table6_rows,
)


class TestTables:
    def test_table3_three_platforms(self):
        rows = table3_rows()
        assert [r["platform"] for r in rows] == [
            "Sunway TaihuLight", "Tianhe-3 Prototype", "Local CPU Server"
        ]

    def test_table4_read_write_bytes_exact(self):
        for row in table4_rows():
            assert row["read_bytes"] == row["paper_read"], row["benchmark"]
            assert row["write_bytes"] == row["paper_write"]
            assert row["time_dep"] == row["paper_time_dep"] == 2

    def test_table4_ops_within_convention_delta(self):
        # op counts depend on coefficient-folding convention; ours stay
        # within ~50% of the paper's and exact for the low-order rows
        # (the paper's 3d13pt row, 17 ops for a 13-point stencil, is not
        # reachable under any single consistent convention)
        for row in table4_rows():
            ratio = row["ops"] / row["paper_ops"]
            assert 0.75 < ratio < 1.50, row["benchmark"]
        exact = {r["benchmark"]: r for r in table4_rows()}
        for name in ("2d9pt_star", "2d9pt_box", "3d7pt_star"):
            assert exact[name]["ops"] == exact[name]["paper_ops"]

    def test_table5_rows_complete(self):
        assert len(TABLE5) == 8
        row = table5_row("3d7pt_star")
        assert row.sunway_tile == (2, 8, 64)
        assert row.matrix_tile == (2, 8, 256)
        with pytest.raises(KeyError):
            table5_row("4d_stencil")

    def test_table6_msc_shortest(self):
        for row in table6_rows():
            assert row["msc"] < row["openacc"] < row["openmp"] * 3

    def test_table7_configs(self):
        assert len(TABLE7_SUNWAY) == 8 and len(TABLE7_TIANHE3) == 8
        for row in TABLE7_SUNWAY:
            n = 1
            for g in row.mpi_grid:
                n *= g
            assert n == row.processes

    def test_table8_core_budget(self):
        for row in TABLE8:
            assert row.mpi_processes * row.omp_threads == 28


class TestFig7:
    def test_fp64_average_speedup(self):
        rows = fig7_rows("fp64")
        avg = statistics.mean(r["speedup"] for r in rows)
        assert 20 < avg < 30  # paper: 24.4x

    def test_fp32_average_lower_than_fp64(self):
        avg64 = statistics.mean(r["speedup"] for r in fig7_rows("fp64"))
        avg32 = statistics.mean(r["speedup"] for r in fig7_rows("fp32"))
        assert 17 < avg32 < avg64  # paper: 20.7x < 24.4x

    def test_msc_wins_every_benchmark(self):
        assert all(r["speedup"] > 5 for r in fig7_rows("fp64"))

    def test_3d7pt_structural_claims(self):
        row = next(
            r for r in fig7_rows("fp64") if r["benchmark"] == "3d7pt_star"
        )
        assert row["tiles_per_cpe"] == 256  # Sec. 5.2.1
        assert 0.4 < row["spm_utilisation"] <= 1.0


class TestFig8:
    def test_near_parity_with_manual_openmp(self):
        for prec, target in (("fp64", 1.05), ("fp32", 1.03)):
            avg = statistics.mean(
                r["speedup"] for r in fig8_rows(prec)
            )
            assert abs(avg - target) < 0.03


class TestFig9:
    def test_sunway_only_2d169pt_compute_bound(self):
        points = fig9_points("sunway")
        bounds = {p.name: p.bound for p in points}
        assert bounds.pop("2d169pt_box") == "compute"
        assert all(b == "memory" for b in bounds.values())

    def test_matrix_all_memory_bound(self):
        # "due to the limited bandwidth on Matrix ... still memory-bound"
        points = fig9_points("matrix")
        assert all(p.bound == "memory" for p in points)

    def test_achieved_below_roof(self):
        for machine in ("sunway", "matrix"):
            for p in fig9_points(machine):
                assert p.achieved_gflops <= p.attainable_gflops * 1.001


class TestFig10:
    def test_weak_scaling_speedups(self):
        for platform, target in (("sunway", 7.85), ("tianhe3", 7.38)):
            curves = fig10_curves(platform, "weak")
            avg = statistics.mean(
                pts[-1].gflops / pts[0].gflops for pts in curves.values()
            )
            assert abs(avg - target) < 0.5

    def test_strong_scaling_speedups(self):
        for platform, target in (("sunway", 6.74), ("tianhe3", 5.85)):
            curves = fig10_curves(platform, "strong")
            avg = statistics.mean(
                pts[-1].gflops / pts[0].gflops for pts in curves.values()
            )
            assert abs(avg - target) < 0.6

    def test_tianhe3_2d_deviates_3d_near_ideal(self):
        curves = fig10_curves("tianhe3", "strong")
        s2 = statistics.mean(
            pts[-1].gflops / pts[0].gflops
            for name, pts in curves.items() if name.startswith("2d")
        )
        s3 = statistics.mean(
            pts[-1].gflops / pts[0].gflops
            for name, pts in curves.items() if name.startswith("3d")
        )
        assert s3 > 7.0 > s2

    def test_gflops_increase_monotonically(self):
        curves = fig10_curves("sunway", "weak",
                              benchmarks=["3d7pt_star"])
        pts = curves["3d7pt_star"]
        values = [p.gflops for p in pts]
        assert values == sorted(values)


class TestFigs12to14:
    def test_fig12_averages(self):
        rows = fig12_rows()
        avg_msc = statistics.mean(r["speedup_msc"] for r in rows)
        avg_aot = statistics.mean(r["speedup_aot"] for r in rows)
        assert 3.0 < avg_msc < 3.8  # paper: 3.33
        assert 2.5 < avg_aot < 3.3  # paper: 2.92
        assert avg_msc > avg_aot

    def test_fig12_crossover(self):
        rows = {r["benchmark"]: r for r in fig12_rows()}
        # AOT competitive on small stencils, loses on the big 2D boxes
        assert rows["3d7pt_star"]["msc_vs_aot"] <= 1.02
        assert rows["2d169pt_box"]["msc_vs_aot"] > 1.4

    def test_fig13_average(self):
        avg = statistics.mean(r["speedup"] for r in fig13_rows())
        assert 5.0 < avg < 7.0  # paper: 5.94

    def test_fig14_average_and_order_dependence(self):
        rows = fig14_rows()
        avg = statistics.mean(r["speedup"] for r in rows)
        assert 8.0 < avg < 12.0  # paper: 9.88
        by_bench = {}
        for r in rows:
            by_bench.setdefault(r["benchmark"], []).append(r["speedup"])
        low = statistics.mean(by_bench["3d7pt_star"])
        high = statistics.mean(by_bench["3d31pt_star"])
        assert high > low  # halo volume drives the Physis bottleneck


class TestFormatters:
    def test_format_table(self):
        txt = format_table(
            [{"a": 1, "b": 2.5}], ["a", "b"], title="T"
        )
        assert txt.splitlines()[0] == "T"
        assert "2.5" in txt

    def test_format_table_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table([], ["a"])

    def test_format_series(self):
        txt = format_series({"c": [(1, 2.0)]}, "x", "y")
        assert "[c]" in txt and "x=1" in txt

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([0.0])
