"""Unit tests for SpNode / TeNode tensors."""

import pytest

from repro.ir.dtypes import f32, f64
from repro.ir.expr import TensorAccess, VarExpr
from repro.ir.tensor import SpNode, TeNode, normalize_halo


class TestNormalizeHalo:
    def test_scalar_expands(self):
        assert normalize_halo(2, 3) == (2, 2, 2)

    def test_tuple_passthrough(self):
        assert normalize_halo((1, 2), 2) == (1, 2)

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            normalize_halo((1, 2, 3), 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_halo(-1, 2)


class TestSpNode:
    def test_padded_shape(self):
        B = SpNode("B", (10, 20), halo=(2, 3))
        assert B.padded_shape == (14, 26)

    def test_alloc_bytes_counts_window(self):
        B = SpNode("B", (8, 8), f64, halo=(1, 1), time_window=3)
        assert B.alloc_bytes == 10 * 10 * 8 * 3

    def test_default_halo_is_one(self):
        B = SpNode("B", (8, 8, 8))
        assert B.halo == (1, 1, 1)

    def test_npoints_and_nbytes(self):
        B = SpNode("B", (4, 5, 6), f32)
        assert B.npoints == 120
        assert B.nbytes == 480

    def test_window_lower_bound(self):
        with pytest.raises(ValueError, match="time_window"):
            SpNode("B", (8, 8), time_window=1)

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            SpNode("2bad", (8, 8))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            SpNode("B", (2, 2, 2, 2))

    def test_nonpositive_extent(self):
        with pytest.raises(ValueError):
            SpNode("B", (0, 4))


class TestTimeView:
    def test_at_returns_offset_access(self):
        B = SpNode("B", (8, 8), halo=(1, 1), time_window=3)
        j, i = VarExpr("j"), VarExpr("i")
        acc = B.at(-1)[j, i]
        assert isinstance(acc, TensorAccess)
        assert acc.time_offset == -1

    def test_future_rejected(self):
        B = SpNode("B", (8, 8))
        with pytest.raises(ValueError, match="future"):
            B.at(1)

    def test_beyond_window_rejected(self):
        B = SpNode("B", (8, 8), time_window=2)
        with pytest.raises(ValueError, match="window"):
            B.at(-2)


class TestTeNode:
    def test_for_spnode_strips_halo(self):
        B = SpNode("B", (8, 8), halo=(2, 2))
        tmp = TeNode.for_spnode(B)
        assert tmp.shape == (8, 8)
        assert tmp.name == "B_tmp"
        assert not hasattr(tmp, "halo")

    def test_subscriptable(self):
        tmp = TeNode("tmp", (4, 4))
        j, i = VarExpr("j"), VarExpr("i")
        assert tmp[j, i].offsets == (0, 0)
