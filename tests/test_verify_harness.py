"""Tests for the Sec. 5.1 verification harness."""

import numpy as np
import pytest

from repro.evalsuite import (
    PathResult,
    relative_error,
    verify_benchmark,
)
from repro.ir import f32, f64


class TestRelativeError:
    def test_zero_for_identical(self):
        a = np.arange(8.0)
        assert relative_error(a, a) == 0.0

    def test_scale_invariant(self):
        ref = np.full(4, 1e6)
        got = ref * (1 + 1e-7)
        assert relative_error(got, ref) == pytest.approx(1e-7, rel=1e-3)

    def test_tiny_denominator_guarded(self):
        assert np.isfinite(
            relative_error(np.array([1e-300]), np.array([0.0]))
        )


class TestVerifyBenchmark:
    @pytest.mark.parametrize("name", ["3d7pt_star", "2d121pt_box"])
    def test_all_paths_within_tolerance(self, name):
        for result in verify_benchmark(name, timesteps=2):
            assert result.passed, (result.path, result.rel_error)

    def test_fp32_paths(self):
        results = verify_benchmark("2d9pt_star", dtype=f32, timesteps=2)
        for result in results:
            assert result.tolerance == 1e-5
            assert result.passed

    def test_path_result_skipped_counts_as_passed(self):
        r = PathResult("x", float("nan"), 1e-10, ran=False, note="n/a")
        assert r.passed

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            verify_benchmark("nope")
