"""Unit tests for Kernel, KernelApply and Stencil IR nodes."""

import pytest

from repro.ir import (
    Kernel,
    KernelApply,
    SpNode,
    Stencil,
    VarExpr,
    f32,
    f64,
)
from tests.conftest import make_2d5pt, make_3d7pt


class TestKernel:
    def test_footprint_and_npoints(self):
        _, kern = make_3d7pt()
        assert kern.npoints == 7
        assert (0, 0, 0) in kern.footprint
        assert (0, 0, -1) in kern.footprint

    def test_radius(self):
        _, kern = make_3d7pt()
        assert kern.radius == (1, 1, 1)

    def test_flops_counts_operators(self):
        _, kern = make_2d5pt()
        # 0.5*c + 0.125*(a+b+c+d): 2 muls + 3 inner adds + 1 outer add
        assert kern.flops() == 6

    def test_duplicate_offsets_deduplicated(self):
        B = SpNode("B", (8,), halo=(1,))
        i = VarExpr("i")
        kern = Kernel("dup", (i,), B[i] + B[i] + B[i - 1])
        assert kern.npoints == 2

    def test_input_tensors_distinct(self):
        B = SpNode("B", (8, 8), halo=(1, 1))
        C = SpNode("C", (8, 8), halo=(0, 0))
        j, i = VarExpr("j"), VarExpr("i")
        kern = Kernel("two", (j, i), B[j, i] * C[j, i] + B[j, i - 1])
        assert [t.name for t in kern.input_tensors] == ["B", "C"]

    def test_wrong_subscript_var_rejected(self):
        B = SpNode("B", (8, 8), halo=(1, 1))
        j, i = VarExpr("j"), VarExpr("i")
        with pytest.raises(ValueError, match="subscripted with"):
            Kernel("bad", (j, i), B[i, j])

    def test_rank_mismatch_rejected(self):
        B = SpNode("B", (8, 8, 8), halo=1)
        j, i = VarExpr("j"), VarExpr("i")
        with pytest.raises(ValueError, match="2-D"):
            Kernel("bad", (j, i), B[j, i, i])  # wrong arity caught first

    def test_duplicate_loop_vars_rejected(self):
        B = SpNode("B", (8, 8), halo=1)
        j = VarExpr("j")
        with pytest.raises(ValueError, match="duplicate"):
            Kernel("bad", (j, j), B[j, j])

    def test_default_axes(self):
        _, kern = make_3d7pt()
        axes = kern.default_axes((4, 5, 6))
        assert [(a.name, a.end) for a in axes] == [
            ("k", 4), ("j", 5), ("i", 6)
        ]


class TestKernelApply:
    def test_getitem_with_time_var(self):
        _, kern = make_3d7pt()
        t = Stencil.t
        app = kern[t - 2]
        assert isinstance(app, KernelApply)
        assert app.time_offset == -2

    def test_at_current_time_rejected(self):
        _, kern = make_3d7pt()
        with pytest.raises(ValueError, match="past"):
            kern.at(0)

    def test_wrong_time_variable_rejected(self):
        _, kern = make_3d7pt()
        with pytest.raises(TypeError, match="Stencil.t"):
            kern[VarExpr("s") - 1]


class TestStencil:
    def test_time_dependencies(self, stencil_3d7pt_2dep):
        assert stencil_3d7pt_2dep.time_dependencies == 2
        assert stencil_3d7pt_2dep.time_offsets == (-2, -1)

    def test_required_window(self, stencil_3d7pt_2dep):
        assert stencil_3d7pt_2dep.required_time_window == 3

    def test_window_too_small_rejected(self):
        tensor, kern = make_3d7pt(time_window=2)
        t = Stencil.t
        with pytest.raises(ValueError, match="window"):
            Stencil(tensor, kern[t - 1] + kern[t - 2])

    def test_radius_maxes_over_kernels(self):
        tensor, kern = make_3d7pt()
        k, j, i = kern.loop_vars
        wide = Kernel("wide", (k, j, i),
                      tensor[k, j, i - 1] + tensor[k, j, i + 1])
        t = Stencil.t
        st = Stencil(tensor, kern[t - 1] + wide[t - 2])
        assert st.radius == (1, 1, 1)

    def test_combination_terms_weights(self, stencil_3d7pt_2dep):
        terms = stencil_3d7pt_2dep.combination_terms()
        weights = sorted(w for w, _ in terms)
        assert weights == [0.4, 0.6]

    def test_combination_with_subtraction(self):
        tensor, kern = make_3d7pt()
        t = Stencil.t
        st = Stencil(tensor, kern[t - 1] - 0.5 * kern[t - 2])
        weights = {app.time_offset: w for w, app in st.combination_terms()}
        assert weights == {-1: 1.0, -2: -0.5}

    def test_nonlinear_combination_rejected(self):
        tensor, kern = make_3d7pt()
        t = Stencil.t
        st = Stencil(tensor, kern[t - 1] * kern[t - 2])
        with pytest.raises(ValueError, match="non-linear"):
            st.combination_terms()

    def test_no_kernels_rejected(self):
        tensor, _ = make_3d7pt()
        from repro.ir.expr import ConstExpr

        with pytest.raises(ValueError, match="at least one"):
            Stencil(tensor, ConstExpr(1.0))

    def test_dimension_mismatch_rejected(self):
        tensor2d, kern2d = make_2d5pt()
        tensor3d, _ = make_3d7pt()
        t = Stencil.t
        with pytest.raises(ValueError, match="-D"):
            Stencil(tensor3d, kern2d[t - 1])

    def test_kernels_deduplicated(self, stencil_3d7pt_2dep):
        # same kernel applied twice -> one distinct kernel
        assert len(stencil_3d7pt_2dep.kernels) == 1
        assert len(stencil_3d7pt_2dep.applications) == 2


class TestKernelInternalTimeOffsets:
    """Kernels may read deeper history via ``tensor.at(-k)``; the
    effective step is the application offset plus the internal offset
    and the window accounting must cover it."""

    def _tensors(self, window):
        from repro.ir import f64

        j, i = VarExpr("j"), VarExpr("i")
        B = SpNode("B", (12, 14), f64, halo=(1, 1), time_window=window)
        return B, j, i

    def test_required_window_includes_internal_offsets(self):
        B, j, i = self._tensors(window=3)
        kern = Kernel("K", (j, i), 0.5 * B[j, i] + 0.5 * B.at(-1)[j, i])
        st = Stencil(B, kern[Stencil.t - 1])
        assert st.deepest_read == -2
        assert st.required_time_window == 3

    def test_shallow_window_rejected(self):
        B, j, i = self._tensors(window=2)
        kern = Kernel("K", (j, i), 0.5 * B[j, i] + 0.5 * B.at(-1)[j, i])
        with pytest.raises(ValueError, match="window"):
            Stencil(B, kern[Stencil.t - 1])

    def test_internal_offset_equivalent_to_two_applications(self, rng):
        import numpy as np

        from repro.backend.numpy_backend import reference_run
        from repro.runtime.executor import distributed_run

        B, j, i = self._tensors(window=3)
        combined = Kernel(
            "KC", (j, i),
            0.6 * (0.5 * B[j, i] + 0.25 * (B[j, i - 1] + B[j, i + 1]))
            + 0.4 * (0.5 * B.at(-1)[j, i]
                     + 0.25 * (B.at(-1)[j, i - 1] + B.at(-1)[j, i + 1])),
        )
        single = Kernel(
            "KS", (j, i),
            0.5 * B[j, i] + 0.25 * (B[j, i - 1] + B[j, i + 1]),
        )
        t = Stencil.t
        st_combined = Stencil(B, combined[t - 1])
        st_split = Stencil(B, 0.6 * single[t - 1] + 0.4 * single[t - 2])
        init = [rng.random((12, 14)) for _ in range(2)]
        r1 = reference_run(st_combined, init, 4, boundary="periodic")
        r2 = reference_run(st_split, init, 4, boundary="periodic")
        np.testing.assert_allclose(r1, r2, rtol=1e-12)
        dist = distributed_run(st_combined, init, 4, (2, 2),
                               boundary="periodic")
        np.testing.assert_array_equal(dist, r1)
