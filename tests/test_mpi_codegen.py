"""Tests for the distributed (MPI) C code generator and its bundle.

The generated bundle ships a single-rank MPI stub so the full halo
protocol (pack → Isend/Irecv → Waitall → unpack) can be compiled with
gcc and *executed* here: on a 1×..×1 periodic grid the exchange wraps
the halo through self-messages, and the program output must equal the
serial reference bit-for-bit.
"""

import shutil
import subprocess

import numpy as np
import pytest

from repro.backend import generate, generate_mpi
from repro.backend.numpy_backend import reference_run
from repro.frontend import build_benchmark
from repro.ir import f32

needs_gcc = pytest.mark.skipif(
    shutil.which("gcc") is None, reason="gcc not available"
)


class TestBundleStructure:
    @pytest.fixture(scope="class")
    def bundle(self):
        prog, _ = build_benchmark("3d7pt_star", grid=(64, 64, 64))
        return generate_mpi(prog.ir, {}, "dist3d", (4, 4, 4))

    def test_files(self, bundle):
        assert set(bundle.files) == {
            "msc_comm.h", "msc_comm.c", "msc_mpi_stub.h",
            "dist3d_mpi.c", "Makefile",
        }

    def test_library_implements_async_protocol(self, bundle):
        comm = bundle.files["msc_comm.c"]
        # dimension-phased nonblocking exchange
        assert "MPI_Irecv" in comm and "MPI_Isend" in comm
        assert "MPI_Waitall" in comm
        assert "MPI_Cart_shift" in comm
        # receives posted before sends (no unexpected-message pressure)
        assert comm.index("MPI_Irecv") < comm.index("MPI_Isend")

    def test_program_invokes_library_apis(self, bundle):
        src = bundle.files["dist3d_mpi.c"]
        for api in ("msc_comm_init", "msc_scatter", "msc_exchange",
                    "msc_gather", "msc_comm_free"):
            assert api in src, api
        # Sec. 4.4: the compiler inserts the exchange after each commit
        assert src.index("acc[") < src.index("msc_exchange(&ctx, p)")

    def test_makefile_targets(self, bundle):
        mk = bundle.files["Makefile"]
        assert "mpicc" in mk
        assert "-DMSC_MPI_STUB" in mk  # single-rank test build

    def test_balanced_decomposition_in_library(self, bundle):
        comm = bundle.files["msc_comm.c"]
        assert "global[d] % dims[d]" in comm  # the within-one-cell split

    def test_grid_rank_mismatch_rejected(self):
        prog, _ = build_benchmark("2d9pt_star", grid=(32, 32))
        with pytest.raises(ValueError, match="does not match"):
            generate_mpi(prog.ir, {}, "x", (2, 2, 2))

    def test_fp32_rejected(self):
        prog, _ = build_benchmark("2d9pt_star", grid=(32, 32),
                                  dtype=f32)
        with pytest.raises(ValueError, match="double"):
            generate_mpi(prog.ir, {}, "x", (2, 2))

    def test_targets_dispatch(self):
        prog, _ = build_benchmark("2d9pt_star", grid=(32, 32))
        code = generate(prog.ir, {}, "viatarget", target="mpi",
                        mpi_grid=(2, 2))
        assert "viatarget_mpi.c" in code.files

    def test_targets_dispatch_needs_grid(self):
        prog, _ = build_benchmark("2d9pt_star", grid=(32, 32))
        with pytest.raises(ValueError, match="mpi_grid"):
            generate(prog.ir, {}, "x", target="mpi")


@needs_gcc
class TestStubExecution:
    def _build_and_run(self, tmp_path, code, init, steps, shape):
        code.write_to(str(tmp_path))
        exe = tmp_path / "prog"
        res = subprocess.run(
            ["gcc", "-O2", "-DMSC_MPI_STUB",
             str(tmp_path / f"{code.name}_mpi.c"),
             str(tmp_path / "msc_comm.c"), "-o", str(exe), "-lm",
             "-I", str(tmp_path)],
            capture_output=True, text=True,
            timeout=120,
        )
        assert res.returncode == 0, res.stderr
        np.concatenate([p.ravel() for p in init]).tofile(
            str(tmp_path / "init.bin")
        )
        res = subprocess.run(
            [str(exe), str(tmp_path / "init.bin"), str(steps),
             str(tmp_path / "out.bin")],
            capture_output=True, text=True,
            timeout=120,
        )
        assert res.returncode == 0, res.stderr
        return np.fromfile(str(tmp_path / "out.bin")).reshape(shape)

    def test_3d_periodic_self_exchange(self, tmp_path, rng):
        shape = (10, 12, 14)
        prog, _ = build_benchmark("3d7pt_star", grid=shape,
                                  boundary="periodic")
        code = generate_mpi(prog.ir, {}, "s3d", (1, 1, 1),
                            boundary="periodic")
        init = [rng.random(shape) for _ in range(2)]
        got = self._build_and_run(tmp_path, code, init, 5, shape)
        ref = reference_run(prog.ir, init, 5, boundary="periodic")
        np.testing.assert_array_equal(got, ref)

    def test_2d_zero_boundary(self, tmp_path, rng):
        shape = (20, 24)
        prog, _ = build_benchmark("2d9pt_box", grid=shape,
                                  boundary="zero")
        code = generate_mpi(prog.ir, {}, "s2d", (1, 1), boundary="zero")
        init = [rng.random(shape) for _ in range(2)]
        got = self._build_and_run(tmp_path, code, init, 4, shape)
        ref = reference_run(prog.ir, init, 4, boundary="zero")
        np.testing.assert_array_equal(got, ref)

    def test_wide_halo_periodic(self, tmp_path, rng):
        shape = (16, 16, 16)
        prog, _ = build_benchmark("3d13pt_star", grid=shape,
                                  boundary="periodic")
        code = generate_mpi(prog.ir, {}, "wide", (1, 1, 1),
                            boundary="periodic")
        init = [rng.random(shape) for _ in range(2)]
        got = self._build_and_run(tmp_path, code, init, 3, shape)
        ref = reference_run(prog.ir, init, 3, boundary="periodic")
        np.testing.assert_array_equal(got, ref)
