"""Tests for the IR -> MSC-text pretty-printer and its round-trip."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.numpy_backend import reference_run
from repro.frontend import build_benchmark, parse_program, render_program
from repro.frontend.printer import render_expr
from repro.ir import Kernel, SpNode, Stencil, VarExpr
from repro.ir.expr import ConstExpr
from tests.strategies import COMMON, coefficients, seeds


class TestRenderExpr:
    def test_access_with_offsets(self):
        B = SpNode("B", (8, 8), halo=(1, 1))
        j, i = VarExpr("j"), VarExpr("i")
        assert render_expr(B[j - 1, i + 2]) == "B[j-1,i+2]"

    def test_precedence_parentheses(self):
        a, b, c = ConstExpr(1.0), ConstExpr(2.0), ConstExpr(3.0)
        assert render_expr((a + b) * c) == "(1.0 + 2.0) * 3.0"
        assert render_expr(a + b * c) == "1.0 + 2.0 * 3.0"

    def test_right_associativity_of_subtraction(self):
        a, b, c = ConstExpr(1.0), ConstExpr(2.0), ConstExpr(3.0)
        # 1 - (2 - 3) must keep its parentheses
        assert render_expr(a - (b - c)) == "1.0 - (2.0 - 3.0)"

    def test_negation(self):
        assert render_expr(-ConstExpr(2.0)) == "-2.0"


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["3d7pt_star", "2d9pt_box",
                                      "2d121pt_box"])
    def test_benchmark_roundtrip_same_numerics(self, name, rng):
        grid = (14, 14, 14) if name.startswith("3d") else (24, 24)
        prog, handle = build_benchmark(name, grid=grid)
        src = render_program(prog.ir, prog.schedules())
        parsed = parse_program(src)
        init = [rng.random(grid) for _ in range(2)]
        r1 = reference_run(prog.ir, init, 3)
        r2 = reference_run(parsed.program.ir, init, 3)
        np.testing.assert_array_equal(r1, r2)

    def test_schedule_survives_roundtrip(self):
        prog, handle = build_benchmark("3d7pt_star", grid=(16, 16, 16))
        handle.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        handle.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        handle.cache_read(prog.ir.output, "br", "global")
        handle.cache_write("bw", "global")
        handle.compute_at("br", "zo")
        handle.vectorize("zi")
        handle.unroll("yi", 2)
        handle.parallel("xo", 8)
        src = render_program(prog.ir, prog.schedules())
        parsed = parse_program(src)
        sched = parsed.kernels["S_3d7pt_star"].schedule
        assert sched.tile_factors == {"k": 4, "j": 8, "i": 16}
        assert sched.vectorized_axis == "zi"
        assert sched.unroll_factors == {"yi": 2}
        assert sched.nthreads == 8
        assert {b.buffer for b in sched.cache_bindings()} == {"br", "bw"}

    def test_mpi_grid_roundtrip(self):
        prog, _ = build_benchmark("2d9pt_star", grid=(16, 16))
        src = render_program(prog.ir, mpi_grid=(2, 4))
        assert parse_program(src).mpi_grid == (2, 4)

    def test_nonuniform_halo_rejected(self):
        B = SpNode("B", (8, 8), halo=(1, 2), time_window=2)
        j, i = VarExpr("j"), VarExpr("i")
        kern = Kernel("S", (j, i), B[j, i - 2] + B[j - 1, i])
        stencil = Stencil(B, kern[Stencil.t - 1])
        with pytest.raises(ValueError, match="uniform"):
            render_program(stencil)


@given(
    coef=coefficients(2, 5, nonzero=True),
    seed=seeds(),
)
@settings(max_examples=25, **COMMON)
def test_roundtrip_property_random_coefficients(coef, seed):
    """Any linear 1-D stencil survives the print->parse round trip."""
    i = VarExpr("i")
    B = SpNode("B", (16,), halo=(len(coef),), time_window=2)
    expr = coef[0] * B[i]
    for d, c in enumerate(coef[1:], start=1):
        expr = expr + c * B[i - d]
    kern = Kernel("S", (i,), expr)
    stencil = Stencil(B, kern[Stencil.t - 1])
    src = render_program(stencil)
    parsed = parse_program(src)
    rng = np.random.default_rng(seed)
    init = [rng.random(16)]
    r1 = reference_run(stencil, init, 2, boundary="periodic")
    r2 = reference_run(parsed.program.ir, init, 2, boundary="periodic")
    np.testing.assert_array_equal(r1, r2)
