"""Tests for runtime scalar coefficients (free DefVar symbols)."""

import shutil
import subprocess

import numpy as np
import pytest

import repro as msc
from repro.backend.numpy_backend import (
    ScheduledExecutor,
    evaluate_kernel,
    reference_run,
)
from repro.ir import Kernel, SpNode, Stencil, VarExpr, f64
from repro.ir.analysis import free_scalars

needs_gcc = pytest.mark.skipif(
    shutil.which("gcc") is None, reason="gcc not available"
)


def _scalar_program(shape=(12, 16)):
    j, i = msc.indices("j i")
    c0 = msc.DefVar("c0", msc.f64)
    c1 = msc.DefVar("c1", msc.f64)
    A = msc.DefTensor2D_TimeWin("A", 2, 1, msc.f64, *shape)
    K = msc.Kernel(
        "K", (j, i), c0 * A[j, i] + c1 * (A[j, i - 1] + A[j, i + 1])
    )
    t = msc.StencilProgram.t
    prog = msc.StencilProgram(A, K[t - 1], boundary="periodic")
    return prog, A


class TestFreeScalarDiscovery:
    def test_finds_coefficients_not_indices(self):
        prog, _ = _scalar_program()
        assert free_scalars(prog.ir) == ["c0", "c1"]

    def test_literal_kernel_has_none(self, stencil_3d7pt_2dep):
        assert free_scalars(stencil_3d7pt_2dep) == []


class TestEvaluation:
    def test_evaluate_kernel_binds_scalars(self):
        j, i = VarExpr("j"), VarExpr("i")
        w = VarExpr("w", "f64")
        A = SpNode("A", (4, 4), f64, halo=(1, 1))
        kern = Kernel("k", (j, i), w * A[j, i])
        padded = np.ones((6, 6))
        out = evaluate_kernel(
            kern, {("A", 0): padded}, {"A": (1, 1)},
            scalars={"w": 3.0},
        )
        assert (out == 3.0).all()

    def test_unbound_scalar_reported(self):
        j, i = VarExpr("j"), VarExpr("i")
        w = VarExpr("w", "f64")
        A = SpNode("A", (4, 4), f64, halo=(1, 1))
        kern = Kernel("k", (j, i), w * A[j, i])
        with pytest.raises(KeyError, match="no bound value"):
            evaluate_kernel(
                kern, {("A", 0): np.ones((6, 6))}, {"A": (1, 1)}
            )

    def test_scalar_equals_literal_version(self, rng):
        prog, A = _scalar_program()
        prog.set_scalar("c0", 0.5).set_scalar("c1", 0.25)
        a0 = rng.random((12, 16))
        prog.set_initial([a0])
        got = prog.run(4)

        j, i = msc.indices("j i")
        B = msc.DefTensor2D_TimeWin("A", 2, 1, msc.f64, 12, 16)
        lit = msc.Kernel(
            "lit", (j, i), 0.5 * B[j, i] + 0.25 * (B[j, i - 1]
                                                   + B[j, i + 1])
        )
        st = Stencil(B, lit[Stencil.t - 1])
        ref = reference_run(st, [a0], 4, boundary="periodic")
        np.testing.assert_array_equal(got, ref)

    def test_distributed_scalars(self, rng):
        prog, _ = _scalar_program((16, 16))
        prog.set_scalar("c0", 0.4).set_scalar("c1", 0.3)
        a0 = rng.random((16, 16))
        prog.set_initial([a0])
        serial = prog.run(3)
        prog.set_mpi_grid((2, 2))
        dist = prog.run(3)
        np.testing.assert_array_equal(dist, serial)

    def test_scheduled_executor_scalars(self, rng):
        prog, _ = _scalar_program()
        a0 = rng.random((12, 16))
        ref = reference_run(prog.ir, [a0], 3, boundary="periodic",
                            scalars={"c0": 0.6, "c1": 0.2})
        ex = ScheduledExecutor(prog.ir, {}, boundary="periodic",
                               scalars={"c0": 0.6, "c1": 0.2})
        got = ex.run([a0], 3)
        np.testing.assert_array_equal(got, ref)


class TestCodegen:
    def test_constants_emitted(self):
        prog, _ = _scalar_program()
        prog.set_scalar("c0", 0.5).set_scalar("c1", 0.25)
        src = prog.compile_to_source_code("s", target="cpu").main_source
        assert "static const real c0 = 0.5;" in src
        assert "static const real c1 = 0.25;" in src

    def test_missing_scalar_rejected_at_codegen(self):
        prog, _ = _scalar_program()
        with pytest.raises(ValueError, match="runtime scalars"):
            prog.compile_to_source_code("s", target="cpu")

    @needs_gcc
    def test_compiled_matches_python(self, tmp_path, rng):
        prog, _ = _scalar_program()
        prog.set_scalar("c0", 0.5).set_scalar("c1", 0.25)
        code = prog.compile_to_source_code("sc", target="cpu")
        code.write_to(str(tmp_path))
        subprocess.run(
            ["gcc", "-O2", "-fopenmp", "-o", str(tmp_path / "sc"),
             str(tmp_path / "sc.c"), "-lm"],
            check=True, capture_output=True,
            timeout=120,
        )
        a0 = rng.random((12, 16))
        a0.ravel().tofile(str(tmp_path / "i.bin"))
        subprocess.run(
            [str(tmp_path / "sc"), str(tmp_path / "i.bin"), "4",
             str(tmp_path / "o.bin")],
            check=True, capture_output=True,
            timeout=120,
        )
        got = np.fromfile(str(tmp_path / "o.bin")).reshape(12, 16)
        prog.set_initial([a0])
        ref = prog.run(4, scheduled=False)
        np.testing.assert_array_equal(got, ref)
