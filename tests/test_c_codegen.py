"""Tests for AOT C code generation: structure + compile-and-run vs numpy.

The CPU/OpenMP programs are compiled with gcc and executed; their output
must match the numpy reference bit-for-bit (both evaluate the same IEEE
expressions in the same order per point).
"""

import shutil
import subprocess

import numpy as np
import pytest

from repro.backend import CCodeGenerator, generate, generate_makefile
from repro.backend.numpy_backend import reference_run
from repro.ir import Stencil, f32, f64
from repro.schedule import Schedule
from tests.conftest import make_2d5pt, make_3d7pt

GCC = shutil.which("gcc")

needs_gcc = pytest.mark.skipif(GCC is None, reason="gcc not available")


def _compile_and_run(code, tmp_path, init, steps, shape, np_dtype,
                     use_openmp=True):
    code.write_to(str(tmp_path))
    src = tmp_path / f"{code.name}.c"
    exe = tmp_path / code.name
    cmd = [GCC, "-O2", "-o", str(exe), str(src), "-lm"]
    if use_openmp:
        cmd.insert(1, "-fopenmp")
    res = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    assert res.returncode == 0, res.stderr
    init_file = tmp_path / "init.bin"
    out_file = tmp_path / "out.bin"
    np.concatenate([p.ravel() for p in init]).astype(np_dtype).tofile(
        str(init_file)
    )
    res = subprocess.run(
        [str(exe), str(init_file), str(steps), str(out_file)],
        capture_output=True, text=True,
        timeout=120,
    )
    assert res.returncode == 0, res.stderr
    return np.fromfile(str(out_file), dtype=np_dtype).reshape(shape)


@needs_gcc
class TestCompiledExecution:
    @pytest.mark.parametrize("boundary", ["zero", "periodic"])
    def test_3d_two_time_deps(self, tmp_path, rng, boundary):
        tensor, kern = make_3d7pt(shape=(12, 10, 14))
        st = Stencil(tensor, 0.6 * kern[Stencil.t - 1]
                     + 0.4 * kern[Stencil.t - 2])
        sched = Schedule(kern)
        sched.tile(4, 5, 7, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.reorder("xo", "yo", "zo", "xi", "yi", "zi")
        sched.parallel("xo", 4)
        gen = CCodeGenerator(st, {kern.name: sched}, boundary=boundary)
        code = gen.generate(f"t3d_{boundary}")
        init = [rng.random((12, 10, 14)) for _ in range(2)]
        got = _compile_and_run(code, tmp_path, init, 6, (12, 10, 14),
                               np.float64)
        ref = reference_run(st, init, 6, boundary=boundary)
        np.testing.assert_array_equal(got, ref)

    def test_2d_single_dep_untiled(self, tmp_path, rng):
        tensor, kern = make_2d5pt(shape=(20, 24))
        st = Stencil(tensor, kern[Stencil.t - 1])
        gen = CCodeGenerator(st, {}, boundary="periodic")
        code = gen.generate("t2d")
        init = [rng.random((20, 24))]
        got = _compile_and_run(code, tmp_path, init, 5, (20, 24),
                               np.float64, use_openmp=False)
        ref = reference_run(st, init, 5, boundary="periodic")
        np.testing.assert_array_equal(got, ref)

    def test_fp32_program(self, tmp_path, rng):
        tensor, kern = make_3d7pt(shape=(8, 8, 8), dtype=f32)
        st = Stencil(tensor, 0.5 * kern[Stencil.t - 1]
                     + 0.5 * kern[Stencil.t - 2])
        gen = CCodeGenerator(st, {}, boundary="zero")
        code = gen.generate("t32")
        init = [rng.random((8, 8, 8)).astype(np.float32) for _ in range(2)]
        got = _compile_and_run(code, tmp_path, init, 3, (8, 8, 8),
                               np.float32)
        ref = reference_run(st, init, 3, boundary="zero")
        # Sec. 5.1 correctness criterion for fp32
        rel = np.abs(got - ref) / np.maximum(np.abs(ref), 1e-30)
        assert rel.max() < 1e-5

    def test_zero_steps(self, tmp_path, rng):
        tensor, kern = make_2d5pt(shape=(6, 6))
        st = Stencil(tensor, kern[Stencil.t - 1])
        code = CCodeGenerator(st, {}).generate("t0")
        init = [rng.random((6, 6))]
        got = _compile_and_run(code, tmp_path, init, 0, (6, 6), np.float64,
                               use_openmp=False)
        np.testing.assert_array_equal(got, init[0])


class TestGeneratedStructure:
    def test_openmp_pragma_on_parallel_axis(self, stencil_3d7pt_2dep):
        kern = stencil_3d7pt_2dep.kernels[0]
        sched = Schedule(kern)
        sched.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
        sched.parallel("xo", 8)
        code = CCodeGenerator(
            stencil_3d7pt_2dep, {kern.name: sched}
        ).generate("p")
        src = code.main_source
        assert "#pragma omp parallel for num_threads(8)" in src
        assert src.index("#pragma omp") < src.index("for (long xo")

    def test_window_modulo_addressing(self, stencil_3d7pt_2dep):
        code = CCodeGenerator(stencil_3d7pt_2dep, {}).generate("w")
        assert "#define TWIN 3" in code.main_source
        assert "% TWIN" in code.main_source

    def test_balanced_braces(self, stencil_3d7pt_2dep):
        src = CCodeGenerator(stencil_3d7pt_2dep, {}).generate("b").main_source
        assert src.count("{") == src.count("}")

    def test_combination_scales_emitted(self, stencil_3d7pt_2dep):
        src = CCodeGenerator(stencil_3d7pt_2dep, {}).generate("c").main_source
        assert "(real)0.6" in src and "(real)0.4" in src

    def test_reflect_boundary_supported(self, stencil_3d7pt_2dep):
        src = CCodeGenerator(
            stencil_3d7pt_2dep, {}, boundary="reflect"
        ).generate("r").main_source
        # reflect mirrors the near interior rather than zeroing
        body = src.split("static void fill_halo")[1].split("static")[0]
        assert ") = 0;" not in body
        assert "2 * HZ - 1 - h" in body

    def test_unknown_boundary_rejected(self, stencil_3d7pt_2dep):
        with pytest.raises(ValueError, match="zero/periodic"):
            CCodeGenerator(stencil_3d7pt_2dep, {}, boundary="wrap")

    def test_loc_counts_nonblank(self, stencil_3d7pt_2dep):
        code = CCodeGenerator(stencil_3d7pt_2dep, {}).generate("l")
        assert code.loc() == sum(
            1 for line in code.main_source.splitlines() if line.strip()
        )


class TestTargetsAndMakefiles:
    def test_generate_cpu_bundle_has_makefile(self, stencil_3d7pt_2dep):
        code = generate(stencil_3d7pt_2dep, {}, "bundle", target="cpu")
        assert "Makefile" in code.files
        assert "gcc" in code.files["Makefile"]
        assert "-fopenmp" in code.files["Makefile"]

    def test_generate_unknown_target(self, stencil_3d7pt_2dep):
        with pytest.raises(ValueError, match="unknown target"):
            generate(stencil_3d7pt_2dep, {}, "x", target="gpu")

    def test_sunway_makefile_hybrid_toolchain(self):
        mk = generate_makefile("prog", "sunway")
        assert "sw5cc -host" in mk
        assert "sw5cc -slave" in mk
        assert "mpicc -hybrid" in mk

    def test_mpi_flag(self):
        mk = generate_makefile("prog", "cpu", use_mpi=True)
        assert "mpicc" in mk and "-DMSC_USE_MPI" in mk

    def test_makefile_unknown_target(self):
        with pytest.raises(ValueError):
            generate_makefile("prog", "riscv")

    @needs_gcc
    def test_makefile_actually_builds(self, tmp_path, stencil_3d7pt_2dep):
        code = generate(stencil_3d7pt_2dep, {}, "buildme", target="cpu")
        code.write_to(str(tmp_path))
        res = subprocess.run(
            ["make", "-C", str(tmp_path)], capture_output=True, text=True,
            timeout=120,
        )
        if res.returncode != 0 and "march=native" in res.stderr:
            pytest.skip("march=native unsupported here")
        assert res.returncode == 0, res.stderr + res.stdout
        assert (tmp_path / "buildme").exists()


@needs_gcc
def test_kernel_internal_time_offset_compiled(tmp_path, rng):
    """A kernel reading ``B.at(-1)`` compiles and matches the reference."""
    from repro.ir import SpNode, Kernel, VarExpr, f64

    j, i = VarExpr("j"), VarExpr("i")
    B = SpNode("B", (10, 12), f64, halo=(1, 1), time_window=3)
    kern = Kernel(
        "deep", (j, i),
        0.6 * (0.5 * B[j, i] + 0.25 * (B[j, i - 1] + B[j, i + 1]))
        + 0.4 * (0.5 * B.at(-1)[j, i]
                 + 0.25 * (B.at(-1)[j, i - 1] + B.at(-1)[j, i + 1])),
    )
    st = Stencil(B, kern[Stencil.t - 1])
    code = CCodeGenerator(st, {}, boundary="periodic").generate("deep")
    init = [rng.random((10, 12)) for _ in range(2)]
    got = _compile_and_run(code, tmp_path, init, 4, (10, 12), np.float64,
                           use_openmp=False)
    ref = reference_run(st, init, 4, boundary="periodic")
    np.testing.assert_array_equal(got, ref)
