"""Tests for the live-telemetry layer: flight recorder, metrics
sampler, OpenMetrics exposition, event log, and ``repro monitor``."""

import json
import socket
import threading
import urllib.request

import pytest

from repro import obs
from repro.cli import main
from repro.machine.report import TimingReport
from repro.obs import (
    FlightRecorder,
    registry,
    span,
    tracer,
)
from repro.obs import events as obs_events
from repro.obs import openmetrics
from repro.obs.events import EventLog, install, read_events, uninstall
from repro.obs.export import summarize_trace_file, write_trace
from repro.obs.live import (
    DEFAULT_SAMPLE_PERIOD_S,
    MetricsSampler,
    TelemetryServer,
)
from repro.obs.monitor import (
    collect_from_events,
    collect_from_url,
    render,
    run_monitor,
)
from repro.obs.openmetrics import OpenMetricsError
from repro.obs.trace import Span


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with all obs surfaces off and empty."""
    obs.disable()
    obs.disable_flight()
    uninstall()
    obs.reset()
    yield
    obs.disable()
    obs.disable_flight()
    uninstall()
    obs.reset()


def _mkspan(sid, name, start, dur, **attrs):
    return Span(span_id=sid, parent_id=None, name=name, start_s=start,
                duration_s=dur, thread="t0", attrs=attrs)


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_ring_never_exceeds_capacity(self):
        fl = FlightRecorder(capacity=4)
        for i in range(11):
            fl.record(_mkspan(i, "s", float(i), 0.001))
        assert len(fl) == 4
        assert fl.seen == 11
        assert fl.kept == 11
        assert fl.dropped == 7
        # oldest evicted first: the ring holds the last four
        assert [s.span_id for s in fl.snapshot()] == [7, 8, 9, 10]

    def test_counts_are_consistent(self):
        fl = FlightRecorder(capacity=3, sample={"hot": 2})
        for i in range(10):
            fl.record(_mkspan(i, "hot" if i % 2 else "cold", float(i), 0.1))
        c = fl.counts()
        assert c["seen"] == 10
        assert c["seen"] == c["kept"] + c["sampled_out"]
        assert c["buffered"] == c["kept"] - c["dropped"]
        assert c["buffered"] <= c["capacity"]

    def test_per_name_sampling_is_deterministic(self):
        fl = FlightRecorder(capacity=100, sample={"hot": 4})
        for i in range(16):
            fl.record(_mkspan(i, "hot", float(i), 0.1))
        # keep-1-in-4: spans 0, 4, 8, 12 survive
        assert [s.span_id for s in fl.snapshot()] == [0, 4, 8, 12]
        assert fl.sampled_out == 12
        assert fl.dropped == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(capacity=8, sample={"x": 0})

    def test_evictions_mirror_into_registry(self):
        reg = registry()
        reg.enable()
        fl = FlightRecorder(capacity=1)
        for i in range(3):
            fl.record(_mkspan(i, "s", float(i), 0.1))
        assert reg.counter_value("obs.dropped_spans") == 2

    def test_top_by_total_and_count(self):
        fl = FlightRecorder(capacity=100)
        for i in range(3):
            fl.record(_mkspan(i, "many", float(i), 0.001))
        fl.record(_mkspan(9, "big", 0.0, 1.0))
        by_total = fl.top(k=2, by="total")
        assert by_total[0]["name"] == "big"
        assert by_total[0]["avg_s"] == pytest.approx(1.0)
        by_count = fl.top(k=2, by="count")
        assert by_count[0]["name"] == "many"
        assert by_count[0]["count"] == 3
        with pytest.raises(ValueError):
            fl.top(by="duration")

    def test_span_rate_windowed(self):
        fl = FlightRecorder(capacity=100)
        for i in range(10):
            fl.record(_mkspan(i, "s", float(i), 0.0))
        # spans end at t=0..9; a 4s window at now=9 sees ends in [5, 9]
        assert fl.span_rate(4.0, 9.0) == pytest.approx(5 / 4.0)
        with pytest.raises(ValueError):
            fl.span_rate(0.0, 9.0)

    def test_clear_resets_accounting(self):
        fl = FlightRecorder(capacity=2)
        for i in range(5):
            fl.record(_mkspan(i, "s", float(i), 0.1))
        fl.clear()
        assert len(fl) == 0
        assert fl.counts() == {"capacity": 2, "buffered": 0, "seen": 0,
                               "kept": 0, "dropped": 0, "sampled_out": 0}


class TestTracerFlightMode:
    def test_flight_records_without_full_recording(self):
        fl = obs.enable_flight(capacity=8)
        with span("a"):
            with span("b"):
                pass
        # the ring has both spans; the unbounded record list stays empty
        assert sorted(s.name for s in fl.snapshot()) == ["a", "b"]
        assert tracer().records == []
        assert obs.flight() is fl

    def test_flight_and_full_recording_coexist(self):
        obs.enable()
        fl = obs.enable_flight(capacity=8)
        with span("a"):
            pass
        assert [s.name for s in fl.snapshot()] == ["a"]
        assert [s.name for s in tracer().records] == ["a"]

    def test_disable_flight_detaches(self):
        obs.enable_flight(capacity=8)
        obs.disable_flight()
        with span("a"):
            pass
        assert obs.flight() is None
        assert tracer().records == []

    def test_reset_clears_flight_ring(self):
        fl = obs.enable_flight(capacity=8)
        with span("a"):
            pass
        obs.reset()
        assert len(fl) == 0


# ---------------------------------------------------------------------------
# metrics sampler
# ---------------------------------------------------------------------------

class TestMetricsSampler:
    def test_counter_rate_over_window(self):
        reg = registry()
        reg.enable()
        sampler = MetricsSampler(reg, capacity=16)
        reg.counter("net.bytes", 100)
        sampler.sample_once(now=0.0)
        reg.counter("net.bytes", 200)
        sampler.sample_once(now=0.5)
        reg.counter("net.bytes", 300)
        sampler.sample_once(now=2.0)
        # (600 - 100) / (2.0 - 0.0)
        assert sampler.rate("net.bytes") == pytest.approx(250.0)
        stats = sampler.series_stats("net.bytes")
        assert stats["kind"] == "counter"
        assert stats["last"] == 600.0
        assert stats["min"] == 100.0
        assert stats["max"] == 600.0
        assert stats["points"] == 3

    def test_gauge_has_no_rate(self):
        reg = registry()
        reg.enable()
        sampler = MetricsSampler(reg, capacity=4)
        reg.gauge("depth", 3.0)
        sampler.sample_once(now=0.0)
        reg.gauge("depth", 9.0)
        sampler.sample_once(now=1.0)
        stats = sampler.series_stats("depth")
        assert stats["kind"] == "gauge"
        assert stats["rate"] == 0.0
        assert stats["last"] == 9.0

    def test_histogram_contributes_count_series(self):
        reg = registry()
        reg.enable()
        sampler = MetricsSampler(reg, capacity=4)
        reg.observe("lat", 1.0)
        reg.observe("lat", 2.0)
        sampler.sample_once(now=0.0)
        reg.observe("lat", 3.0)
        sampler.sample_once(now=1.0)
        assert sampler.rate("lat.count") == pytest.approx(1.0)

    def test_series_ring_is_bounded(self):
        reg = registry()
        reg.enable()
        sampler = MetricsSampler(reg, capacity=3)
        reg.counter("c")
        for t in range(10):
            sampler.sample_once(now=float(t))
        assert len(sampler.series_points("c")) == 3
        # oldest points evicted: window is the last three samples
        assert [t for t, _ in sampler.series_points("c")] == [7.0, 8.0, 9.0]
        assert sampler.samples == 10

    def test_labelled_series_stay_separate(self):
        reg = registry()
        reg.enable()
        reg.counter("c", 1, rank=0)
        reg.counter("c", 5, rank=1)
        sampler = MetricsSampler(reg, capacity=4)
        sampler.sample_once(now=0.0)
        names = sampler.series_names()
        assert any("rank=0" in n for n in names)
        assert any("rank=1" in n for n in names)
        summary = sampler.summary()
        assert len(summary) == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MetricsSampler(registry(), period_s=0.0)
        with pytest.raises(ValueError):
            MetricsSampler(registry(), capacity=1)

    def test_unknown_series_rate_is_zero(self):
        sampler = MetricsSampler(registry())
        assert sampler.rate("nope") == 0.0
        with pytest.raises(KeyError):
            sampler.series_stats("nope")

    def test_background_thread_start_stop(self):
        reg = registry()
        reg.enable()
        reg.counter("c", 7)
        sampler = MetricsSampler(reg, period_s=DEFAULT_SAMPLE_PERIOD_S)
        sampler.start()
        sampler.start()  # idempotent
        sampler.stop(final_sample=True)
        # the closing snapshot guarantees at least one sample, no sleeps
        assert sampler.samples >= 1
        assert sampler.series_stats("c")["last"] == 7.0


# ---------------------------------------------------------------------------
# thread-safety under concurrent writers (satellite: barrier-based)
# ---------------------------------------------------------------------------

class TestConcurrentObs:
    N_RANKS = 4
    PER_RANK = 200

    def test_no_lost_updates_no_torn_snapshots(self):
        """Rank threads hammer counter/observe/span while the sampler
        snapshots concurrently: exact totals, monotone counter series,
        bounded ring.  Synchronisation is a start barrier + joins — no
        sleeps, and every assertion is on deterministic final state."""
        reg = registry()
        reg.enable()
        fl = obs.enable_flight(capacity=64)
        sampler = MetricsSampler(reg, capacity=4096)
        start = threading.Barrier(self.N_RANKS + 1)
        done = threading.Event()

        def worker(rank):
            start.wait()
            for i in range(self.PER_RANK):
                with obs.rank_scope(rank):
                    reg.counter("ts.ops")
                    reg.observe("ts.lat", float(i))
                    with span("ts.work"):
                        pass

        threads = [threading.Thread(target=worker, args=(r,))
                   for r in range(self.N_RANKS)]
        for t in threads:
            t.start()
        start.wait()  # release all ranks at once
        # snapshot as fast as possible while the writers run
        while not done.is_set():
            sampler.sample_once()
            if all(not t.is_alive() for t in threads):
                done.set()
        for t in threads:
            t.join()
        sampler.sample_once()  # closing snapshot sees the final totals

        total = self.N_RANKS * self.PER_RANK
        # no lost counter increments, per rank or in aggregate
        assert reg.counter_total("ts.ops") == total
        for r in range(self.N_RANKS):
            assert reg.counter_value("ts.ops", rank=r) == self.PER_RANK
            assert len(reg.histogram_values("ts.lat", rank=r)) == self.PER_RANK
        # no lost spans: every completion was offered to the ring, and
        # the ring never grew past its bound
        assert fl.seen == total
        assert len(fl) <= 64
        c = fl.counts()
        assert c["buffered"] == c["kept"] - c["dropped"]
        # no torn snapshots: counters only increment, so every sampled
        # series must be monotone non-decreasing over time
        for name in sampler.series_names():
            stats = sampler.series_stats(name)
            if stats["kind"] != "counter":
                continue
            values = [v for _, v in sampler.series_points(name)]
            assert values == sorted(values), f"non-monotone series {name}"
        # the final sample observed the exact totals
        per_rank = [sampler.series_stats(n)["last"]
                    for n in sampler.series_names()
                    if n.startswith("ts.ops")]
        assert sum(per_rank) == total


# ---------------------------------------------------------------------------
# OpenMetrics exposition
# ---------------------------------------------------------------------------

class TestOpenMetrics:
    def test_registry_roundtrip_with_hostile_labels(self):
        reg = registry()
        reg.enable()
        nasty = '3d7pt "q"\nx\\y'
        reg.counter("comm.bytes_sent", 768, rank=0, stencil=nasty)
        reg.counter("comm.bytes_sent", 896, rank=1, stencil=nasty)
        reg.gauge("machine.efficiency", 0.37, machine="sw26010")
        reg.observe("machine.step_s", 0.004, machine="sw26010")
        text = reg.to_openmetrics()
        assert text.endswith("# EOF\n")
        fams = openmetrics.parse(text)
        sent = fams["comm_bytes_sent"]
        assert sent.type == "counter"
        assert sent.value(rank="0", stencil=nasty) == 768.0
        assert sent.value(rank="1", stencil=nasty) == 896.0
        assert fams["machine_efficiency"].type == "gauge"
        # histograms expose as summaries with quantiles + _sum/_count
        step = fams["machine_step_s"]
        assert step.type == "summary"
        labels = {s.labels.get("quantile") for s in step.samples}
        assert {"0.5", "0.9", "0.99"} <= labels

    def test_counter_names_get_total_suffix(self):
        reg = registry()
        reg.enable()
        reg.counter("runtime.runs", backend="numpy", exchange_mode="diag")
        text = reg.to_openmetrics()
        assert ('runtime_runs_total{backend="numpy",exchange_mode="diag"} 1'
                in text)

    @pytest.mark.parametrize("payload, fragment", [
        ("x_total 1\n# EOF\n", "TYPE"),                      # no family
        ("# TYPE x counter\nx_total 1\n", "EOF"),            # missing EOF
        ("# TYPE x counter\nx_total 1\nx_total 1\n# EOF\n",
         "duplicate"),                                       # dup sample
        ("# TYPE x counter\nx_total nan_nope\n# EOF\n",
         "value"),                                           # bad float
        ("# TYPE x counter\n\nx_total 1\n# EOF\n", "blank"),  # blank line
    ])
    def test_strict_parser_rejects(self, payload, fragment):
        with pytest.raises(OpenMetricsError) as err:
            openmetrics.parse(payload)
        assert fragment.lower() in str(err.value).lower()

    def test_sanitize_name(self):
        assert openmetrics.sanitize_name("comm.bytes_sent") == (
            "comm_bytes_sent"
        )
        assert openmetrics.sanitize_name("9lives!") == "_9lives_"

    def test_validator_cli(self, tmp_path, capsys):
        reg = registry()
        reg.enable()
        reg.counter("a.b", 2)
        good = tmp_path / "good.txt"
        good.write_text(reg.to_openmetrics())
        assert openmetrics._main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.txt"
        bad.write_text("free text\n")
        assert openmetrics._main([str(bad)]) == 1


# ---------------------------------------------------------------------------
# event log
# ---------------------------------------------------------------------------

class TestEventLog:
    def test_emit_and_read(self, tmp_path):
        path = str(tmp_path / "run.events.jsonl")
        install(path)
        obs_events.emit("phase.enter", phase="tune")
        obs_events.emit("comm.retry", level="warn", rank=1, attempt=2)
        uninstall()
        recs = list(read_events(path))
        assert [r["event"] for r in recs] == ["phase.enter", "comm.retry"]
        assert recs[0]["phase"] == "tune"
        assert recs[1]["level"] == "warn"
        assert recs[1]["rank"] == 1
        assert all("ts" in r for r in recs)

    def test_emit_without_sink_is_noop(self):
        obs_events.emit("anything", field=1)  # must not raise

    def test_min_level_filters(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        log = install(path, min_level="warn")
        obs_events.emit("quiet", level="debug")
        obs_events.emit("normal")          # info < warn: filtered
        obs_events.emit("loud", level="error")
        assert log.count == 1
        uninstall()
        assert [r["event"] for r in read_events(path)] == ["loud"]

    def test_unknown_level_rejected(self, tmp_path):
        log = EventLog(str(tmp_path / "e.jsonl"))
        with pytest.raises(ValueError):
            log.emit("x", level="fatal")
        with pytest.raises(ValueError):
            EventLog(str(tmp_path / "e2.jsonl"), min_level="verbose")
        log.close()

    def test_span_and_scope_correlation(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        obs.enable_flight()
        install(path)
        with obs.rank_scope(2):
            with span("comm.exchange"):
                obs_events.emit("comm.retry", attempt=1)
        uninstall()
        (rec,) = read_events(path)
        assert rec["span"] == "comm.exchange"
        assert rec["rank"] == 2

    def test_tolerant_truncated_tail(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text('{"event":"a","ts":1}\n{"event":"b","ts"')
        recs = list(read_events(str(path)))
        assert [r["event"] for r in recs] == ["a"]
        # strict mode raises on the same file
        with pytest.raises(ValueError):
            list(read_events(str(path), tolerant=False))

    def test_earlier_garbage_always_raises(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text('not json\n{"event":"a","ts":1}\n')
        with pytest.raises(ValueError):
            list(read_events(str(path)))

    def test_install_from_env(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv(obs_events.ENV_EVENT_LOG, path)
        log = obs_events.install_from_env()
        assert log is not None and obs_events.current() is log
        obs_events.emit("hello")
        uninstall()
        assert [r["event"] for r in read_events(path)] == ["hello"]
        monkeypatch.delenv(obs_events.ENV_EVENT_LOG)
        assert obs_events.install_from_env() is None


# ---------------------------------------------------------------------------
# telemetry server + monitor
# ---------------------------------------------------------------------------

def _free_closed_port():
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


class TestTelemetryServer:
    def test_scrape_metrics_flight_series(self):
        reg = registry()
        reg.enable()
        reg.counter("comm.bytes_sent", 100, rank=0)
        reg.counter("comm.bytes_sent", 300, rank=1)
        fl = obs.enable_flight(capacity=4)
        with span("runtime.step"):
            pass
        sampler = MetricsSampler(reg, capacity=8)
        sampler.sample_once(now=0.0)
        reg.counter("comm.bytes_sent", 100, rank=0)
        sampler.sample_once(now=1.0)
        server = TelemetryServer(port=0, reg=reg, sampler=sampler,
                                 recorder=fl)
        server.start()
        try:
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                ctype = resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
            assert "openmetrics-text" in ctype
            fams = openmetrics.parse(body)  # strict: must round-trip
            assert fams["comm_bytes_sent"].value(rank="0") == 200.0
            flight = json.loads(
                urllib.request.urlopen(server.url + "/flight").read()
            )
            assert flight["attached"] is True
            assert flight["buffered"] == 1
            assert flight["top"][0]["name"] == "runtime.step"
            series = json.loads(
                urllib.request.urlopen(server.url + "/series").read()
            )
            assert any(k.startswith("comm.bytes_sent") for k in series)
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/nope")
            assert server.scrapes == 4
        finally:
            server.stop()

    def test_series_404_without_sampler_and_detached_flight(self):
        server = TelemetryServer(port=0, reg=registry())
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/series")
            payload = json.loads(
                urllib.request.urlopen(server.url + "/flight").read()
            )
            assert payload == {"attached": False}
        finally:
            server.stop()


class TestMonitor:
    def _event_log(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        recs = [
            {"ts": 0.0, "level": "info", "event": "phase.enter",
             "phase": "distributed_run"},
            {"ts": 0.5, "level": "info", "event": "comm.bytes",
             "rank": 0, "bytes": 100},
            {"ts": 1.0, "level": "warn", "event": "comm.retry", "rank": 1},
            {"ts": 2.0, "level": "info", "event": "comm.bytes",
             "rank": 1, "bytes": 300},
        ]
        with open(path, "w") as fh:
            for r in recs:
                fh.write(json.dumps(r) + "\n")
        return path

    def test_collect_from_events(self, tmp_path):
        state = collect_from_events(self._event_log(tmp_path))
        assert state["mode"] == "events"
        assert state["phase"] == "distributed_run"  # entered, never exited
        ev = state["events"]
        assert ev["total"] == 4
        assert ev["by_level"] == {"info": 3, "warn": 1}
        assert state["per_rank_bytes"] == {"0": 100.0, "1": 300.0}
        assert state["rates"]["events"] == pytest.approx(4 / 2.0)

    def test_phase_exit_clears_phase(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text(
            '{"ts":0,"event":"phase.enter","phase":"tune"}\n'
            '{"ts":1,"event":"phase.exit","phase":"tune"}\n'
        )
        assert collect_from_events(str(path))["phase"] is None

    def test_render_frame(self, tmp_path):
        frame = render(collect_from_events(self._event_log(tmp_path)))
        assert "phase: distributed_run" in frame
        assert "per-rank" in frame and "skew" in frame
        assert "comm.retry" in frame

    def test_render_empty_state(self):
        frame = render({"source": "x", "mode": "events", "counters": {},
                        "per_rank_bytes": {}, "rates": {}, "phase": None,
                        "flight": None, "events": None})
        assert "(idle / not reported)" in frame

    def test_collect_from_url_and_run_once(self, capsys):
        reg = registry()
        reg.enable()
        reg.counter("comm.bytes_sent", 128, rank=0)
        reg.counter("comm.messages", 4, rank=0)
        obs.enable_flight()
        sampler = MetricsSampler(reg, capacity=8)
        sampler.sample_once(now=0.0)
        reg.counter("comm.bytes_sent", 128, rank=0)
        sampler.sample_once(now=1.0)
        server = TelemetryServer(port=0, reg=reg, sampler=sampler)
        server.start()
        try:
            state = collect_from_url(server.url)
            assert state["mode"] == "scrape"
            assert state["counters"]["comm_bytes_sent"] == 256.0
            assert state["per_rank_bytes"] == {"0": 256.0}
            assert state["rates"]["comm_bytes_sent"] == pytest.approx(128.0)
            assert run_monitor(server.url, once=True) == 0
            assert "repro monitor" in capsys.readouterr().out
        finally:
            server.stop()

    def test_unreachable_source_exits_1(self, capsys):
        url = f"http://127.0.0.1:{_free_closed_port()}"
        assert run_monitor(url, once=True, timeout=0.5) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_bad_telemetry_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "garbage.jsonl"
        bad.write_text("definitely not json\nmore garbage\n")
        assert run_monitor(str(bad), once=True) == 1
        assert "bad telemetry" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

class TestCLILiveFlags:
    def test_monitor_once_on_event_log(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        path.write_text('{"ts":0,"event":"phase.enter","phase":"bench"}\n')
        assert main(["monitor", str(path), "--once"]) == 0
        assert "phase: bench" in capsys.readouterr().out

    def test_monitor_missing_source_fails(self, tmp_path, capsys):
        assert main(["monitor", str(tmp_path / "nope.jsonl"),
                     "--once"]) == 1

    def test_event_log_flag_writes_narration(self, tmp_path, capsys):
        path = str(tmp_path / "sim.jsonl")
        assert main(["simulate", "2d9pt_box", "--machine", "cpu",
                     "--event-log", path]) == 0
        events = [r["event"] for r in read_events(path)]
        assert events[0] == "cli.start"
        assert "cli.exit" in events
        # the run-ledger append is narrated after cli.exit (it happens
        # in main()'s finally, once the outcome is known)
        assert events[-1] == "ledger.record"
        assert "phase.enter" in events and "phase.exit" in events
        # the sink is detached once the command returns
        assert obs_events.current() is None

    def test_flight_state_restored_after_main(self, capsys):
        prior = obs.enable_flight(capacity=7)
        assert main(["simulate", "2d9pt_box", "--machine", "cpu"]) == 0
        assert tracer().flight is prior
        assert tracer().flight.capacity == 7

    def test_flight_opt_out_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT", "0")
        assert main(["simulate", "2d9pt_box", "--machine", "cpu"]) == 0
        assert tracer().flight is None

    def test_serve_metrics_prints_url_and_restores(self, capsys):
        assert main(["simulate", "2d9pt_box", "--machine", "cpu",
                     "--serve-metrics", "0"]) == 0
        out = capsys.readouterr().out
        assert "http://127.0.0.1:" in out
        # server is shut down and prior obs state restored
        assert obs_events.current() is None


# ---------------------------------------------------------------------------
# friendly empty-handling satellites
# ---------------------------------------------------------------------------

class TestEmptyHandling:
    def test_trace_summary_of_empty_trace(self, tmp_path):
        obs.enable()  # enabled but nothing recorded
        path = str(tmp_path / "empty.json")
        write_trace(path)
        text = summarize_trace_file(path)
        assert "0 spans" in text
        assert "no spans recorded" in text

    def test_summary_of_non_trace_file_is_friendly(self, tmp_path):
        path = tmp_path / "report.txt"
        path.write_text("TRACE SUMMARY (this is prose, not JSON)\n")
        with pytest.raises(ValueError) as err:
            summarize_trace_file(str(path))
        assert "not a trace file" in str(err.value)
        assert "--trace-format summary" in str(err.value)

    def test_timing_report_zero_work_has_no_phases(self):
        rep = TimingReport(machine="m", stencil="s", precision="f64",
                           timesteps=0, compute_s=0.0, memory_s=0.0)
        assert rep.phases() == {}
        assert rep.to_dict()["phases"] == {}
