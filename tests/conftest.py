"""Shared fixtures for the MSC test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.ir import SpNode, Kernel, Stencil, VarExpr, f64
from repro.schedule import Schedule


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Keep native-backend builds out of the user's ~/.cache store.

    An explicit REPRO_CACHE_DIR (e.g. CI warming a cache across jobs)
    is honoured.
    """
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("artifact-cache")
        )
    yield


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_ledger(tmp_path_factory):
    """Keep in-process cli.main() calls out of the user's run ledger.

    An explicit REPRO_LEDGER_DIR (e.g. a test exercising the real
    resolution chain) is honoured.
    """
    if "REPRO_LEDGER_DIR" not in os.environ:
        os.environ["REPRO_LEDGER_DIR"] = str(
            tmp_path_factory.mktemp("run-ledger")
        )
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def vars3d():
    return VarExpr("k"), VarExpr("j"), VarExpr("i")


@pytest.fixture
def vars2d():
    return VarExpr("j"), VarExpr("i")


def make_3d7pt(shape=(16, 16, 16), dtype=f64, time_window=3,
               name="B"):
    """A 3d7pt kernel over a fresh tensor; returns (tensor, kernel)."""
    k, j, i = VarExpr("k"), VarExpr("j"), VarExpr("i")
    tensor = SpNode(name, shape, dtype, halo=(1, 1, 1),
                    time_window=time_window)
    kern = Kernel(
        "S_3d7pt", (k, j, i),
        0.4 * tensor[k, j, i]
        + 0.1 * tensor[k, j, i - 1] + 0.1 * tensor[k, j, i + 1]
        + 0.1 * tensor[k - 1, j, i] + 0.1 * tensor[k + 1, j, i]
        + 0.05 * tensor[k, j - 1, i] + 0.05 * tensor[k, j + 1, i],
    )
    return tensor, kern


def make_2d5pt(shape=(16, 16), dtype=f64, time_window=2, name="A"):
    j, i = VarExpr("j"), VarExpr("i")
    tensor = SpNode(name, shape, dtype, halo=(1, 1),
                    time_window=time_window)
    kern = Kernel(
        "S_2d5pt", (j, i),
        0.5 * tensor[j, i]
        + 0.125 * (tensor[j, i - 1] + tensor[j, i + 1]
                   + tensor[j - 1, i] + tensor[j + 1, i]),
    )
    return tensor, kern


@pytest.fixture
def stencil_3d7pt_2dep():
    """3d7pt with two time dependencies over a 16^3 grid."""
    tensor, kern = make_3d7pt()
    t = Stencil.t
    return Stencil(tensor, 0.6 * kern[t - 1] + 0.4 * kern[t - 2])


@pytest.fixture
def stencil_2d5pt_1dep():
    tensor, kern = make_2d5pt()
    t = Stencil.t
    return Stencil(tensor, kern[t - 1])


@pytest.fixture
def tiled_schedule_3d(stencil_3d7pt_2dep):
    kern = stencil_3d7pt_2dep.kernels[0]
    sched = Schedule(kern)
    sched.tile(4, 8, 16, "xo", "xi", "yo", "yi", "zo", "zi")
    sched.reorder("xo", "yo", "zo", "xi", "yi", "zi")
    sched.parallel("xo", 4)
    return sched
