"""Inspector-executor on climate-style workloads (Sec. 5.6).

The paper's discussion motivates extending MSC to WRF and POP2, which
"suffer from serious load imbalance in large-scale execution".  This
demo builds a POP2-style ocean/land cost field and a WRF-style hotspot
field, runs the inspector (weighted decomposition + per-rank tile
schedules), executes the balanced plan over the simulated MPI runtime,
and verifies the numerics against the serial reference.

Run:  python examples/climate_load_balance.py
"""

import numpy as np

from repro.backend.numpy_backend import reference_run
from repro.frontend import build_benchmark
from repro.inspector import (
    Inspector,
    WorkloadMap,
    execute_plan,
    hotspot_weights,
    ocean_land_mask,
)


def show_plan(name, plan):
    print(f"\n[{name}]")
    print(f"  imbalance (max/mean rank cost): uniform "
          f"{plan.imbalance_before:.2f} -> balanced "
          f"{plan.imbalance_after:.2f}")
    print(f"  projected step-time speedup: {plan.projected_speedup:.2f}x")
    shapes = [sd.shape for sd in plan.balanced]
    print(f"  balanced sub-domain shapes: {shapes}")
    print(f"  per-rank tiles: {plan.tile_per_rank}")


def main():
    shape = (64, 64)
    prog, _ = build_benchmark("2d9pt_star", grid=shape,
                              boundary="periodic")
    rng = np.random.default_rng(42)
    init = [rng.random(shape) for _ in range(2)]
    ref = reference_run(prog.ir, init, 5, boundary="periodic")

    # WRF-style: a physics hotspot costing 12x the background
    w_hot = WorkloadMap(hotspot_weights(shape, factor=12.0))
    plan_hot = Inspector(prog.ir, w_hot).inspect((4, 2))
    show_plan("WRF-style hotspot", plan_hot)
    outcome = execute_plan(prog.ir, plan_hot, w_hot, init, 5,
                           boundary="periodic")
    assert np.array_equal(outcome.result, ref)
    print(f"  executed on 8 simulated ranks: result identical to serial; "
          f"measured step-cost speedup {outcome.speedup:.2f}x")

    # POP2-style: land cells cost ~nothing
    w_ocean = WorkloadMap(ocean_land_mask(shape, land_fraction=0.45,
                                          seed=3))
    plan_ocean = Inspector(prog.ir, w_ocean).inspect((4, 2))
    show_plan("POP2-style ocean/land", plan_ocean)
    outcome2 = execute_plan(prog.ir, plan_ocean, w_ocean, init, 5,
                            boundary="periodic")
    assert np.array_equal(outcome2.result, ref)
    print(f"  executed on 8 simulated ranks: result identical to serial; "
          f"measured step-cost speedup {outcome2.speedup:.2f}x")

    print("\nclimate load-balance demo OK")


if __name__ == "__main__":
    main()
