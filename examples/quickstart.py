"""Quickstart: define, schedule, run and verify a 3d7pt stencil.

This is Listing 1 of the paper in the Python embedding: a 7-point
Laplacian-style kernel with *two time dependencies*
(``B[t] << 0.6*S[t-1] + 0.4*S[t-2]``), tiled and parallelised, executed
with the numpy backend and checked against the untiled serial
reference.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as msc


def main():
    # -- definition (Listing 1) ------------------------------------------------
    n = 64
    k, j, i = msc.indices("k j i")
    B = msc.DefTensor3D_TimeWin("B", 3, 1, msc.f64, n, n, n)

    S = msc.Kernel(
        "S_3d7pt", (k, j, i),
        0.4 * B[k, j, i]
        + 0.1 * B[k, j, i - 1] + 0.1 * B[k, j, i + 1]
        + 0.1 * B[k - 1, j, i] + 0.1 * B[k + 1, j, i]
        + 0.1 * B[k, j - 1, i] + 0.1 * B[k, j + 1, i],
    )

    # -- optimization primitives (Listing 2) -----------------------------------
    S.tile(8, 8, 32, "xo", "xi", "yo", "yi", "zo", "zi")
    S.reorder("xo", "yo", "zo", "xi", "yi", "zi")
    S.parallel("xo", 8)

    # -- stencil with multiple time dependencies -------------------------------
    t = msc.StencilProgram.t
    st = msc.StencilProgram(B, 0.6 * S[t - 1] + 0.4 * S[t - 2],
                            boundary="periodic")

    rng = np.random.default_rng(7)
    init = [rng.random((n, n, n)), rng.random((n, n, n))]
    st.set_initial(init)

    print(f"grid {B.shape}, halo {B.halo}, time window {B.time_window}")
    print(f"kernel: {S.npoints} points, radius {S.radius}")
    print("scheduled loop nest:")
    print(S.schedule.lower(B.shape).describe())

    result = st.run(timesteps=10)
    reference = st.run(timesteps=10, scheduled=False)
    err = np.abs(result - reference).max()
    print(f"\nran 10 timesteps; max |scheduled - serial| = {err:.2e}")
    assert err == 0.0

    # -- timing simulation on the modelled machines ----------------------------
    report = st.simulate("cpu")
    print(
        f"simulated on {report.machine}: {report.step_s * 1e3:.2f} ms/step, "
        f"{report.gflops:.1f} GFlops"
    )
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
