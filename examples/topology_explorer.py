"""Interconnect topology exploration for halo exchange.

The paper argues MSC's pluggable communication library "enables easy
adaption to supercomputers or large clusters installed with exotic
network topologies".  This demo routes the halo-exchange wavefront of
two stencils over concrete interconnects (networkx graphs, ECMP
shortest-path routing) and shows where traffic concentrates:

- a full-bisection fat tree spreads the load,
- an over-subscribed fat tree bottlenecks at its thin core layer,
- a torus that *matches* the process grid keeps every message on a
  direct link (the classic topology-aware placement win).

Run:  python examples/topology_explorer.py
"""

from repro.frontend import build_benchmark
from repro.runtime.topology import fat_tree, route_exchange, torus


def report(label, load):
    print(f"  {label:24s} total={load.total_bytes / 1e6:7.2f} MB  "
          f"hottest link={load.max_link_bytes / 1e6:7.3f} MB  "
          f"hotspot={load.hotspot_factor:5.2f}  "
          f"serialisation={load.congestion_time_s * 1e6:8.1f} us")


def main():
    cases = [
        ("3d7pt_star", (64, 64, 64), (4, 4, 4)),
        ("3d31pt_star", (64, 64, 64), (4, 4, 4)),
        ("2d121pt_box", (512, 512), (8, 8)),
    ]
    for name, grid, pgrid in cases:
        prog, _ = build_benchmark(name, grid=grid)
        print(f"\n{name} on a "
              f"{'x'.join(map(str, pgrid))} process grid:")
        report("fat tree (full bisection)",
               route_exchange(prog.ir, pgrid, fat_tree(64, radix=8)))
        report("fat tree (4:1 oversubscribed)",
               route_exchange(prog.ir, pgrid,
                              fat_tree(64, radix=8, up_ratio=0.25)))
        if len(pgrid) == 3:
            report("4x4x4 torus (matched)",
                   route_exchange(prog.ir, pgrid, torus((4, 4, 4))))
        else:
            report("8x8 torus (matched)",
                   route_exchange(prog.ir, pgrid, torus((8, 8))))

    # sanity: matched torus never has a hotspot
    prog, _ = build_benchmark("3d7pt_star", grid=(64, 64, 64))
    matched = route_exchange(prog.ir, (4, 4, 4), torus((4, 4, 4)))
    assert matched.hotspot_factor == 1.0
    print("\nmatched torus routes every halo message on a direct link")
    print("topology explorer OK")


if __name__ == "__main__":
    main()
