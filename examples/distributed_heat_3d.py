"""Large-scale style run: 3-D heat diffusion over an MPI process grid.

Demonstrates the communication library (Sec. 4.4): domain
decomposition, asynchronous halo exchange, and the pluggable exchanger
registry — including swapping in the Physis-style master-coordinated
strategy and observing identical numerics (the strategies differ only
in performance).

Run:  python examples/distributed_heat_3d.py
"""

import time

import numpy as np

import repro as msc
from repro.comm import available_exchangers
from repro.machine.spec import SUNWAY_CG, SUNWAY_NETWORK
from repro.runtime.network import NetworkModel, scaling_run


def build_heat(n=48, alpha=0.12):
    k, j, i = msc.indices("k j i")
    U = msc.DefTensor3D_TimeWin("U", 2, 1, msc.f64, n, n, n)
    kern = msc.Kernel(
        "heat3d", (k, j, i),
        (1.0 - 6.0 * alpha) * U[k, j, i]
        + alpha * (U[k, j, i - 1] + U[k, j, i + 1]
                   + U[k, j - 1, i] + U[k, j + 1, i]
                   + U[k - 1, j, i] + U[k + 1, j, i]),
    )
    t = msc.StencilProgram.t
    return msc.StencilProgram(U, kern[t - 1], boundary="zero")


def main():
    n, steps = 48, 20
    rng = np.random.default_rng(11)
    hot_spot = np.zeros((n, n, n))
    hot_spot[n // 4:n // 2, n // 4:n // 2, n // 4:n // 2] = 100.0
    hot_spot += rng.random((n, n, n))

    program = build_heat(n)
    program.set_initial([hot_spot])
    serial = program.run(timesteps=steps, scheduled=False)

    print(f"available halo-exchange strategies: {available_exchangers()}")
    for grid in [(2, 1, 1), (2, 2, 1), (2, 2, 2)]:
        program.set_mpi_grid(grid)
        t0 = time.perf_counter()
        result = program.run(timesteps=steps)
        elapsed = time.perf_counter() - t0
        err = np.abs(result - serial).max()
        nprocs = int(np.prod(grid))
        print(f"MPI grid {grid} ({nprocs} ranks): "
              f"{elapsed:.2f}s, max |dist - serial| = {err:.1e}")
        assert err == 0.0

    # swap in the master-coordinated (Physis-style) exchanger
    from repro.runtime.executor import distributed_run

    master = distributed_run(program.ir, [hot_spot], steps, (2, 2, 1),
                             boundary="zero", exchanger="master")
    assert np.array_equal(master, serial)
    print("master-coordinated exchanger: identical result "
          "(it only differs in performance)")

    # at-scale projection with the analytical network model (Fig. 10)
    print("\nprojected weak scaling of this stencil on Sunway TaihuLight:")
    for grid in [(8, 4, 4), (8, 8, 4), (8, 8, 8), (16, 8, 8)]:
        pt = scaling_run(program.ir, (256, 256, 256), grid, SUNWAY_CG,
                         SUNWAY_NETWORK)
        print(f"  {pt.nprocs:5d} CGs ({pt.cores:6d} cores): "
              f"{pt.gflops:9.1f} GFlops "
              f"(efficiency {pt.efficiency:.0%})")

    model = NetworkModel(SUNWAY_NETWORK)
    print(f"\ncongested at 1024 CGs? "
          f"{model.is_congested(1024, 6 * 256 * 256 * 8, 3)}")
    print("distributed heat demo OK")


if __name__ == "__main__":
    main()
