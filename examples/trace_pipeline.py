"""Observability tour: trace the full MSC pipeline with ``repro.obs``.

Records hierarchical spans and metrics across schedule lowering, AOT
code generation, the Sunway machine simulator and a distributed run
(halo exchange over the simulated MPI runtime), then exports the
recording in all three formats:

- ``trace_pipeline.json``        — native, re-loadable by ``repro trace``;
- ``trace_pipeline_chrome.json`` — open in chrome://tracing / Perfetto;
- stdout                          — the ASCII summary tree.

Equivalent from the command line::

    python -m repro simulate 3d7pt_star --machine sunway \\
        --trace out.json --trace-format chrome
    python -m repro trace out.json

Run:  python examples/trace_pipeline.py
"""

import os
import tempfile

import numpy as np

from repro import obs
from repro.evalsuite import build_with_schedule
from repro.frontend.stencils import benchmark_by_name
from repro.ir.dtypes import f64
from repro.obs.export import ascii_summary, write_trace
from repro.runtime.executor import distributed_run


def main():
    bench = benchmark_by_name("3d7pt_star")

    with obs.capture() as (tr, reg):
        # 1) schedule lowering + AOT codegen + machine simulation
        prog, _ = build_with_schedule("3d7pt_star", "sunway", f64)
        code = prog.compile_to_source_code("demo", target="sunway")
        report = prog.simulate("sunway")

        # 2) a small distributed run: per-rank spans from the halo
        #    exchangers and the runtime (each rank is a thread)
        shape = (12, 12, 12)
        demo, _ = bench.build(grid=shape, dtype=f64, boundary="periodic")
        rng = np.random.default_rng(0)
        init = [rng.random(shape)
                for _ in range(demo.ir.required_time_window - 1)]
        distributed_run(demo.ir, init, 2, (2, 1, 2), boundary="periodic")

    print(f"generated {len(code.files)} sunway files; "
          f"simulated {report.step_s * 1e3:.2f} ms/step")
    print(f"recorded {len(tr.records)} spans, {len(reg)} metric series\n")

    print(ascii_summary(tr, reg))

    outdir = tempfile.mkdtemp(prefix="msc-trace-")
    native = os.path.join(outdir, "trace_pipeline.json")
    chrome = os.path.join(outdir, "trace_pipeline_chrome.json")
    write_trace(native, "json", tr, reg)
    write_trace(chrome, "chrome", tr, reg)
    print(f"\nwrote {native}")
    print(f"  (summarize with: python -m repro trace {native})")
    print(f"wrote {chrome} (open in chrome://tracing)")

    # the registry doubles as a programmatic query surface
    msgs = reg.counter_total("comm.messages")
    byts = reg.counter_total("comm.bytes_sent")
    print(f"\nhalo traffic during the distributed run: "
          f"{msgs:g} messages, {byts:g} bytes")
    print("\ntrace example OK")


if __name__ == "__main__":
    main()
