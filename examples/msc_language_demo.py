"""Textual MSC language demo: parse a Listing-1-style program and run it.

The same stencil can be written as an ``.msc`` text program (the
paper's C++-embedded surface syntax) and parsed into a ready
StencilProgram — kernels, schedules, stencil combination and MPI grid
all come from the source text.

Run:  python examples/msc_language_demo.py
"""

import numpy as np

from repro.backend.numpy_backend import reference_run
from repro.frontend.lang import parse_program

SOURCE = """
// 3d7pt stencil from HPGMG (Listing 1 of the paper)
const N = 24;
const halo_width = 1;
const time_window_size = 3;

DefVar(k, i32); DefVar(j, i32); DefVar(i, i32);
DefTensor3D_TimeWin(B, time_window_size, halo_width, f64, N, N, N);

Kernel S_3d7pt((k,j,i),
    0.4*B[k,j,i]
  + 0.1*B[k,j,i-1] + 0.1*B[k,j,i+1]
  + 0.1*B[k-1,j,i] + 0.1*B[k+1,j,i]
  + 0.1*B[k,j-1,i] + 0.1*B[k,j+1,i]);

/* optimization primitives (Listing 2) */
S_3d7pt.tile(4, 8, 24, xo, xi, yo, yi, zo, zi);
S_3d7pt.reorder(xo, yo, zo, xi, yi, zi);
S_3d7pt.cache_read(B, buffer_read, "global");
S_3d7pt.cache_write(buffer_write, "global");
S_3d7pt.compute_at(buffer_read, zo);
S_3d7pt.compute_at(buffer_write, zo);
S_3d7pt.parallel(xo, 64);

Stencil st((k,j,i), B[t] << 0.6*S_3d7pt[t-1] + 0.4*S_3d7pt[t-2]);
DefShapeMPI3D(shape_mpi, 2, 2, 1);
"""


def main():
    parsed = parse_program(SOURCE)
    print(f"parsed stencil {parsed.stencil_name!r}:")
    print(f"  constants: {parsed.consts}")
    print(f"  tensors:   {list(parsed.tensors)}")
    print(f"  kernels:   {list(parsed.kernels)}")
    print(f"  MPI grid:  {parsed.mpi_grid}")
    handle = parsed.kernels["S_3d7pt"]
    print(f"  schedule:  tiles {handle.schedule.tile_factors}, "
          f"{handle.schedule.nthreads} threads, "
          f"SPM buffers {[b.buffer for b in handle.schedule.cache_bindings()]}")

    rng = np.random.default_rng(5)
    init = [rng.random((24, 24, 24)) for _ in range(2)]
    parsed.program.set_initial(init)
    # the parsed MPI grid makes this a 4-rank distributed run
    result = parsed.program.run(timesteps=6)
    reference = reference_run(parsed.program.ir, init, 6, boundary="zero")
    err = np.abs(result - reference).max()
    print(f"\n6 timesteps on a {parsed.mpi_grid} MPI grid: "
          f"max |dist - serial| = {err:.1e}")
    assert err == 0.0

    # the parsed program can also drive code generation
    code = parsed.program.compile_to_source_code("from_text",
                                                 target="sunway")
    print(f"generated Sunway bundle: {sorted(code.files)}")
    print("MSC language demo OK")


if __name__ == "__main__":
    main()
