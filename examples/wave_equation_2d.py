"""Second-order wave equation — the paper's motivating PDE class.

The introduction motivates MSC with "second-order wave functions such
as mechanical waves, electromagnetic waves, and gravitational waves",
whose leapfrog discretisation reads the grid at *two* past timesteps:

    u[t] = 2 u[t-1] - u[t-2] + (c dt/dx)^2 * lap(u[t-1])

In MSC this is exactly a Stencil with multiple time dependencies:
one kernel combining the propagation term applied at t-1, minus the
identity kernel applied at t-2.  The demo propagates a Gaussian pulse
on a 2-D membrane, verifies energy stays bounded (CFL-stable
coefficients) and that the scheduled run matches the reference.

Run:  python examples/wave_equation_2d.py
"""

import numpy as np

import repro as msc


def build_wave_program(n=128, courant=0.5):
    j, i = msc.indices("j i")
    U = msc.DefTensor2D_TimeWin("U", 3, 1, msc.f64, n, n)

    c2 = courant ** 2
    # propagation kernel: 2u + c^2 * discrete Laplacian
    prop = msc.Kernel(
        "wave_prop", (j, i),
        (2.0 - 4.0 * c2) * U[j, i]
        + c2 * (U[j, i - 1] + U[j, i + 1] + U[j - 1, i] + U[j + 1, i]),
    )
    # identity kernel for the -u[t-2] term
    ident = msc.Kernel("ident", (j, i), 1.0 * U[j, i])

    prop.tile(16, 64, "xo", "xi", "yo", "yi")
    prop.reorder("xo", "yo", "xi", "yi")
    prop.parallel("xo", 8)

    t = msc.StencilProgram.t
    program = msc.StencilProgram(
        U, prop[t - 1] - ident[t - 2], boundary="zero"
    )
    return program


def gaussian_pulse(n, cx, cy, sigma=6.0):
    y, x = np.mgrid[0:n, 0:n]
    return np.exp(-((x - cx) ** 2 + (y - cy) ** 2) / (2 * sigma ** 2))


def main():
    n = 128
    program = build_wave_program(n)
    st = program.ir
    print(f"wave stencil: {st!r}")
    print(f"time dependencies: {st.time_dependencies} (leapfrog)")
    print(f"required window: {st.required_time_window} planes")

    u0 = gaussian_pulse(n, n // 2, n // 2)
    program.set_initial([u0, u0])  # start at rest: u(-dt) = u(0)

    steps = 120
    result = program.run(timesteps=steps)
    reference = program.run(timesteps=steps, scheduled=False)
    assert np.array_equal(result, reference)

    # the pulse must have propagated outward: centre amplitude drops,
    # energy reaches the mid-radius ring
    centre = abs(result[n // 2, n // 2])
    ring = np.abs(result[n // 2, n // 4])
    print(f"after {steps} steps: centre amplitude {centre:.3f}, "
          f"ring amplitude {ring:.3f}")
    assert centre < 0.9
    assert np.isfinite(result).all()
    rms = float(np.sqrt((result ** 2).mean()))
    print(f"RMS field {rms:.4f} (bounded -> CFL-stable)")
    assert rms < 1.0

    # distributed execution reproduces the same wave field exactly
    program.set_mpi_grid((2, 2))
    distributed = program.run(timesteps=steps)
    assert np.array_equal(distributed, reference)
    print("distributed (2x2 MPI grid) wave field identical to serial")
    print("wave equation demo OK")


if __name__ == "__main__":
    main()
