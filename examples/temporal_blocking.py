"""Overlapped temporal tiling: trade redundant flops for fewer syncs.

Advances a 3d7pt stencil several timesteps per tile visit using the
overlapped (trapezoid-rim) scheme from the paper's background section:
tiles extended by ``time_block x radius`` ghost cells can run
``time_block`` steps without touching neighbours, because stale values
creep inward only ``radius`` cells per step.

The demo verifies exactness against the step-by-step reference at
several depths and prints the redundancy / synchronisation trade-off.

Run:  python examples/temporal_blocking.py
"""

import numpy as np

from repro.backend.numpy_backend import reference_run
from repro.backend.temporal_exec import TemporalTilingExecutor
from repro.frontend import build_benchmark
from repro.schedule import plan_temporal_tiles


def main():
    grid = (32, 32, 32)
    tile = (16, 16, 16)
    prog, _ = build_benchmark("3d7pt_star", grid=grid,
                              boundary="periodic")
    rng = np.random.default_rng(9)
    init = [rng.random(grid) for _ in range(2)]

    total_steps = 12
    print(f"3d7pt over {grid}, tile {tile}, {total_steps} timesteps\n")
    print(f"{'depth':>5}  {'redundancy':>10}  {'exchanges':>9}  "
          f"{'max err':>9}")
    ref = reference_run(prog.ir, init, total_steps, boundary="periodic")
    for depth in (1, 2, 3, 4, 6):
        plan = plan_temporal_tiles(prog.ir, tile, depth)
        ex = TemporalTilingExecutor(prog.ir, tile, depth,
                                    boundary="periodic")
        got = ex.run(init, total_steps // depth)
        err = float(np.abs(got - ref).max())
        exchanges = total_steps // depth  # one sync per block
        print(f"{depth:>5}  {plan.redundancy:>10.2f}  {exchanges:>9}  "
              f"{err:>9.1e}")
        assert err == 0.0

    print("\nall depths bitwise-exact; deeper blocks compute more "
          "redundant points but synchronise less often")
    print("temporal blocking demo OK")


if __name__ == "__main__":
    main()
