"""Multi-stage pipeline: HPGMG-style smoother + residual (STELLA pattern).

The paper's 3d7pt benchmark comes from HPGMG; a real multigrid cycle
applies a *sequence* of stencil stages per step — the "multiple stages
in PDEs" pattern the related work attributes to STELLA.  This demo
solves a 2-D Poisson problem with a weighted-Jacobi smoother stage and
a residual stage chained in one :class:`StagePipeline`:

    stage 1:  U  <-  U + w * (b - A U) / diag(A)      (smooth)
    stage 2:  R  <-  b - A U                          (residual of fresh U)

The residual stage reads the *just-smoothed* U (a current-step stage
reference).  The demo checks the residual norm decreases monotonically
and that the distributed run matches the serial one exactly.

Run:  python examples/multigrid_smoother.py
"""

import numpy as np

from repro.backend.pipeline_exec import (
    PipelineExecutor,
    distributed_pipeline_run,
)
from repro.ir import Kernel, SpNode, StagePipeline, Stencil, VarExpr, f64


def build_pipeline(n, omega=0.8):
    U = SpNode("U", (n, n), f64, halo=(1, 1), time_window=2)
    R = SpNode("R", (n, n), f64, halo=(1, 1), time_window=2)
    Brhs = SpNode("Brhs", (n, n), f64, halo=(1, 1), time_window=2)
    j, i = VarExpr("j"), VarExpr("i")

    # weighted Jacobi for -Laplace(U) = b with Dirichlet-0 boundary:
    # U_new = (1-w) U + w/4 (U_l + U_r + U_u + U_d + b)
    smooth = Kernel(
        "jacobi", (j, i),
        (1.0 - omega) * U[j, i]
        + (omega / 4.0) * (U[j, i - 1] + U[j, i + 1]
                           + U[j - 1, i] + U[j + 1, i] + Brhs[j, i]),
    )
    # residual r = b - A U = b - (4U - neighbours), on the fresh U
    resid = Kernel(
        "residual", (j, i),
        Brhs[j, i] - 4.0 * U[j, i]
        + (U[j, i - 1] + U[j, i + 1] + U[j - 1, i] + U[j + 1, i]),
    )
    t = Stencil.t
    return StagePipeline((
        Stencil(U, smooth[t - 1]),
        Stencil(R, resid[t - 1]),
    ))


def main():
    n = 64
    pipe = build_pipeline(n)
    print(f"pipeline: {pipe}")
    print(f"history needed: {pipe.required_history()}, "
          f"auxiliary inputs: {sorted(pipe.aux_tensors())}")

    rng = np.random.default_rng(4)
    b = rng.random((n, n))
    u0 = np.zeros((n, n))

    ex = PipelineExecutor(pipe, boundary="zero", inputs={"Brhs": b})
    ex.initialize({"U": [u0]})
    norms = []
    for sweep in range(40):
        ex.step()
        r = ex.results()["R"]
        norms.append(float(np.linalg.norm(r)))
    print("\nresidual 2-norm after n smoothing sweeps:")
    for s in (0, 4, 9, 19, 39):
        print(f"  sweep {s + 1:3d}: {norms[s]:10.4f}")
    # weighted Jacobi is a convergent smoother: monotone decrease.
    # (It damps high-frequency error fast and smooth error slowly —
    # which is exactly why multigrid pairs it with coarse grids.)
    assert all(a >= b_ for a, b_ in zip(norms, norms[1:]))
    assert norms[-1] < 0.9 * norms[0]

    serial = PipelineExecutor(
        pipe, boundary="zero", inputs={"Brhs": b}
    ).run({"U": [u0]}, 12)
    dist = distributed_pipeline_run(
        pipe, {"U": [u0]}, 12, (2, 2), boundary="zero",
        inputs={"Brhs": b},
    )
    assert np.array_equal(dist["U"], serial["U"])
    assert np.array_equal(dist["R"], serial["R"])
    print("\ndistributed (2x2) pipeline identical to serial")
    print("multigrid smoother demo OK")


if __name__ == "__main__":
    main()
