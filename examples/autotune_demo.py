"""Auto-tuning demo (Sec. 4.4, Fig. 11).

Tunes tile sizes and the MPI grid shape for the 3d7pt stencil at the
paper's Fig. 11 configuration (8192x128x128 domain, 128 Sunway CGs):
samples configurations on the analytical simulator, fits the linear
performance model, anneals on the surrogate, and reports the
convergence trajectory and improvement.

Run:  python examples/autotune_demo.py
"""

from repro.autotune import AutoTuner
from repro.frontend import build_benchmark
from repro.machine.spec import SUNWAY_CG, SUNWAY_NETWORK


def main():
    shape = (8192, 128, 128)
    prog, _ = build_benchmark("3d7pt_star", grid=shape)
    tuner = AutoTuner(prog.ir, shape, nprocs=128,
                      machine=SUNWAY_CG, network=SUNWAY_NETWORK)

    print(f"tuning 3d7pt_star over domain {shape} on 128 CGs")
    print(f"search axes: {[len(ax) for ax in tuner.axes()]} candidates "
          "per dimension (tiles) + MPI grids")

    for seed in (0, 1):
        result = tuner.tune(iterations=20000, seed=seed, n_samples=60)
        print(f"\nrun with seed {seed}:")
        print(f"  sampled {result.samples} configs; "
              f"surrogate R^2 = {result.model_r2:.3f}")
        print(f"  best tiles {result.best.tile}, "
              f"MPI grid {result.best.mpi_grid}")
        print(f"  step time {result.best_time * 1e3:.3f} ms "
              f"(random-start average {result.initial_time * 1e3:.3f} ms)")
        print(f"  improvement {result.improvement:.2f}x "
              "(paper reports 3.28x)")
        print(f"  converged at iteration {result.annealing.converged_at}")
        print("  convergence (iteration -> best ms):")
        hist = result.history
        for it, val in hist[:: max(1, len(hist) // 8)]:
            print(f"    {it:6d}  {val * 1e3:8.3f}")
    print("\nautotune demo OK")


if __name__ == "__main__":
    main()
