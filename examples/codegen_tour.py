"""AOT code-generation tour: CPU (compile & run), Sunway, Makefiles.

Generates the C bundle for the 3d13pt benchmark on every target.  The
CPU program is compiled with gcc (if present) and executed; its output
is checked against the numpy reference — the full Sec. 3 AOT pipeline,
end to end.  The Sunway bundle (athread master/slave + Makefile for
sw5cc) is printed for inspection.

Run:  python examples/codegen_tour.py
"""

import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.backend.numpy_backend import reference_run
from repro.evalsuite import build_with_schedule


def main():
    prog, handle = build_with_schedule(
        "3d13pt_star", "sunway", grid=(32, 32, 32)
    )

    # -- Sunway bundle ----------------------------------------------------------
    bundle = prog.compile_to_source_code("hpgmg_3d13pt", target="sunway")
    print("Sunway bundle files:", sorted(bundle.files))
    slave = bundle.files["hpgmg_3d13pt_slave.c"]
    print("\n--- slave (CPE) code, first 30 lines ---")
    print("\n".join(slave.splitlines()[:30]))
    print("\n--- Makefile ---")
    print(bundle.files["Makefile"])

    # the bundle also runs here, against the bundled athread stub
    if shutil.which("gcc") is not None:
        import numpy as np  # noqa: F811 - local clarity

        rng0 = np.random.default_rng(1)
        shape = (32, 32, 32)
        init0 = [rng0.random(shape) for _ in range(2)]
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            bundle.write_to(str(tmp))
            subprocess.run(
                ["make", "-C", str(tmp), "single"], check=True,
                capture_output=True,
                timeout=300,
            )
            np.concatenate([p.ravel() for p in init0]).tofile(
                str(tmp / "init.bin")
            )
            subprocess.run(
                [str(tmp / "hpgmg_3d13pt"), str(tmp / "init.bin"), "3",
                 str(tmp / "out.bin")],
                check=True,
                timeout=300,
            )
            got_sw = np.fromfile(str(tmp / "out.bin")).reshape(shape)
        ref_sw = reference_run(prog.ir, init0, 3, boundary="zero")
        err_sw = np.abs(got_sw - ref_sw).max()
        print(f"athread bundle (make single) vs reference: "
              f"max abs err = {err_sw:.2e}")
        assert err_sw == 0.0

    # -- CPU bundle: compile and execute ----------------------------------------
    cpu_prog, cpu_handle = build_with_schedule(
        "3d13pt_star", "cpu", grid=(32, 32, 32)
    )
    cpu = cpu_prog.compile_to_source_code("cpu_3d13pt", target="cpu")
    print(f"CPU program: {cpu.loc()} generated lines")

    if shutil.which("gcc") is None:
        print("gcc not found; skipping compile-and-run check")
        return

    rng = np.random.default_rng(3)
    init = [rng.random((32, 32, 32)) for _ in range(2)]
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        cpu.write_to(str(tmp))
        subprocess.run(
            ["gcc", "-O2", "-fopenmp", "-o", str(tmp / "prog"),
             str(tmp / "cpu_3d13pt.c"), "-lm"],
            check=True,
            timeout=300,
        )
        np.concatenate([p.ravel() for p in init]).tofile(
            str(tmp / "init.bin")
        )
        subprocess.run(
            [str(tmp / "prog"), str(tmp / "init.bin"), "5",
             str(tmp / "out.bin")],
            check=True,
            timeout=300,
        )
        got = np.fromfile(str(tmp / "out.bin")).reshape(32, 32, 32)

    ref = reference_run(cpu_prog.ir, init, 5, boundary="zero")
    err = np.abs(got - ref).max()
    print(f"compiled C vs numpy reference: max abs err = {err:.2e}")
    assert err == 0.0

    # -- distributed bundle: program + comm library in C ------------------------
    from repro.backend import generate_mpi

    dist_prog, _ = build_with_schedule(
        "3d13pt_star", "cpu", grid=(24, 24, 24)
    )
    mpi = generate_mpi(dist_prog.ir, {}, "dist_3d13pt", (1, 1, 1),
                       boundary="periodic")
    print(f"\nMPI bundle files: {sorted(mpi.files)}")
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        mpi.write_to(str(tmp))
        subprocess.run(
            ["gcc", "-O2", "-DMSC_MPI_STUB",
             str(tmp / "dist_3d13pt_mpi.c"), str(tmp / "msc_comm.c"),
             "-o", str(tmp / "prog"), "-lm", "-I", str(tmp)],
            check=True,
            timeout=300,
        )
        rng2 = np.random.default_rng(7)
        init2 = [rng2.random((24, 24, 24)) for _ in range(2)]
        np.concatenate([p.ravel() for p in init2]).tofile(
            str(tmp / "init.bin")
        )
        subprocess.run(
            [str(tmp / "prog"), str(tmp / "init.bin"), "4",
             str(tmp / "out.bin")],
            check=True,
            timeout=300,
        )
        got_mpi = np.fromfile(str(tmp / "out.bin")).reshape(24, 24, 24)
    ref_mpi = reference_run(dist_prog.ir, init2, 4, boundary="periodic")
    err_mpi = np.abs(got_mpi - ref_mpi).max()
    print(f"MPI bundle (single-rank stub) vs reference: "
          f"max abs err = {err_mpi:.2e}")
    assert err_mpi == 0.0
    print("codegen tour OK")


if __name__ == "__main__":
    main()
