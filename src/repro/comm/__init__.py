"""The MSC communication library (Sec. 4.4).

Domain decomposition, halo-region geometry, message packing, and the
asynchronous halo-exchange protocol — exposed through a pluggable
registry so alternative exchangers (e.g. the Physis-style
master-coordinated strategy) can be swapped in without touching the
code generator.
"""

from .decomposition import SubDomain, decompose, owner_of, suggest_grid
from .halo import HaloSpec, Region, halo_regions, partition_regions
from .packing import BufferPool, pack, unpack
from .exchange import (
    AsyncHaloExchanger,
    HaloExchanger,
    MasterCoordinatedExchanger,
)
from .library import (
    available_exchangers,
    create_exchanger,
    get_exchanger,
    register_exchanger,
)

__all__ = [
    "SubDomain", "decompose", "owner_of", "suggest_grid",
    "HaloSpec", "Region", "halo_regions", "partition_regions",
    "BufferPool", "pack", "unpack",
    "AsyncHaloExchanger", "HaloExchanger", "MasterCoordinatedExchanger",
    "available_exchangers", "create_exchanger", "get_exchanger",
    "register_exchanger",
]
