"""The MSC communication library (Sec. 4.4).

Domain decomposition, halo-region geometry, message packing, and the
asynchronous halo-exchange protocol — exposed through a pluggable
registry so alternative exchangers (e.g. the Physis-style
master-coordinated strategy) can be swapped in without touching the
code generator.
"""

from .decomposition import SubDomain, decompose, owner_of, suggest_grid
from .halo import (
    DiagRegion,
    HaloSpec,
    Region,
    core_owned_regions,
    diag_regions,
    halo_regions,
    partition_regions,
)
from .packing import BufferPool, pack, pack_many, unpack, unpack_many
from .exchange import (
    EXCHANGE_MODES,
    AsyncHaloExchanger,
    DiagHaloExchanger,
    HaloExchanger,
    MasterCoordinatedExchanger,
    OverlapHaloExchanger,
)
from .library import (
    available_exchangers,
    create_exchanger,
    get_exchanger,
    register_exchanger,
)

__all__ = [
    "SubDomain", "decompose", "owner_of", "suggest_grid",
    "HaloSpec", "Region", "DiagRegion", "halo_regions", "diag_regions",
    "partition_regions", "core_owned_regions",
    "BufferPool", "pack", "unpack", "pack_many", "unpack_many",
    "EXCHANGE_MODES", "AsyncHaloExchanger", "DiagHaloExchanger",
    "OverlapHaloExchanger", "HaloExchanger",
    "MasterCoordinatedExchanger",
    "available_exchangers", "create_exchanger", "get_exchanger",
    "register_exchanger",
]
