"""Asynchronous halo exchange (Fig. 6b/6c).

For every spatial dimension in order, each process packs its inner-halo
strip, posts ``Irecv``/``Isend`` with both neighbours, waits, and
unpacks into the outer halo.  All processes exchange concurrently
(Fig. 6b: "all MPI processes are exchanging the halo region
asynchronously"); the dimension phases give box stencils their corner
data with only two messages per dimension.

At non-periodic global boundaries a process has no neighbour on a side;
those ghost strips are filled by the boundary condition instead
(zero/reflect), handled by the caller's plane fill.

Two exchanger strategies are provided:

- :class:`AsyncHaloExchanger` — MSC's library (this paper);
- :class:`MasterCoordinatedExchanger` — the Physis-style comparison
  strategy where every message is relayed through a master rank, the
  bottleneck discussed in Sec. 5.5 (used by the baseline model *and*
  runnable here for functional demonstration).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..obs import counter, span
from ..runtime.simmpi import CartComm, Request
from .halo import HaloSpec, Region, halo_regions
from .packing import BufferPool, pack, unpack

__all__ = ["HaloExchanger", "AsyncHaloExchanger", "MasterCoordinatedExchanger"]

_TAG_BASE = 4096


class HaloExchanger:
    """Common machinery: geometry, buffers, neighbour lookup."""

    def __init__(self, comm: CartComm, spec: HaloSpec):
        if len(spec.sub_shape) != len(comm.dims):
            raise ValueError(
                f"halo spec is {len(spec.sub_shape)}-D, cart grid is "
                f"{len(comm.dims)}-D"
            )
        self.comm = comm
        self.spec = spec
        self.regions = halo_regions(spec)
        self.pool = BufferPool()
        #: messages sent / bytes moved by this process (for the tuner)
        self.messages = 0
        self.bytes_sent = 0

    def reset_counters(self) -> None:
        """Zero the per-exchanger traffic counters (between runs)."""
        self.messages = 0
        self.bytes_sent = 0

    def _count_message(self, nbytes: int, dim: int) -> None:
        """One sent message: instance counters + the metrics registry."""
        self.messages += 1
        self.bytes_sent += nbytes
        rank = self.comm.rank
        counter("comm.messages", rank=rank)
        counter("comm.bytes_sent", nbytes, rank=rank, dim=dim)

    def _neighbour(self, region: Region) -> int:
        src, dst = self.comm.Shift(region.dim, 1)
        return dst if region.direction == +1 else src

    def _tag(self, region: Region) -> int:
        # receiving the +1 face means the sender sent its -1-direction
        # strip: tags pair by (dim, sender's direction)
        return _TAG_BASE + 2 * region.dim + (0 if region.direction > 0 else 1)

    def exchange(self, plane: np.ndarray) -> None:
        raise NotImplementedError


class AsyncHaloExchanger(HaloExchanger):
    """MSC's exchanger: concurrent Isend/Irecv per dimension phase."""

    def exchange(self, plane: np.ndarray) -> None:
        if plane.shape != self.spec.padded_shape:
            raise ValueError(
                f"plane shape {plane.shape} != padded shape "
                f"{self.spec.padded_shape}"
            )
        ndim = len(self.spec.sub_shape)
        with span("comm.exchange", rank=self.comm.rank, strategy="async"):
            for d in range(ndim):
                phase = [r for r in self.regions if r.dim == d]
                if not phase:
                    continue
                recvs: List[Optional[Request]] = []
                recv_bufs = []
                for region in phase:
                    peer = self._neighbour(region)
                    if peer < 0:
                        recvs.append(None)
                        recv_bufs.append(None)
                        continue
                    n = region.count(self.spec.padded_shape)
                    buf = self.pool.get(n, plane.dtype,
                                        tag=f"recv-{d}-{region.direction}")
                    recv_bufs.append(buf)
                    recvs.append(
                        self.comm.Irecv(buf, source=peer,
                                        tag=self._tag(region))
                    )
                for region in phase:
                    peer = self._neighbour(region)
                    if peer < 0:
                        continue
                    n = region.count(self.spec.padded_shape)
                    sbuf = self.pool.get(n, plane.dtype,
                                         tag=f"send-{d}-{region.direction}")
                    with span("comm.pack", dim=d, dir=region.direction):
                        pack(plane, region.send, sbuf)
                    # the message a peer receives on its (dim, dir) face
                    # was sent from our opposite-direction strip
                    send_tag = (
                        _TAG_BASE + 2 * d
                        + (0 if region.direction < 0 else 1)
                    )
                    with span("comm.send", dim=d, dir=region.direction,
                              bytes=sbuf.nbytes):
                        self.comm.Isend(sbuf, dest=peer,
                                        tag=send_tag).Wait()
                    self._count_message(sbuf.nbytes, d)
                for region, req, buf in zip(phase, recvs, recv_bufs):
                    if req is None:
                        continue
                    with span("comm.wait", dim=d, dir=region.direction):
                        req.Wait()
                    with span("comm.unpack", dim=d, dir=region.direction):
                        unpack(buf, plane, region.recv)


class MasterCoordinatedExchanger(HaloExchanger):
    """Physis-style exchanger: all halo traffic relayed via rank 0.

    Every process sends its strips to the master, which forwards each
    to the destination — serialising the exchange through one process.
    Functionally identical to the async exchanger; the serialisation is
    what Sec. 5.5 identifies as Physis's large-scale bottleneck.
    """

    MASTER = 0

    def exchange(self, plane: np.ndarray) -> None:
        if plane.shape != self.spec.padded_shape:
            raise ValueError(
                f"plane shape {plane.shape} != padded shape "
                f"{self.spec.padded_shape}"
            )
        comm = self.comm
        ndim = len(self.spec.sub_shape)
        with span("comm.exchange", rank=comm.rank, strategy="master"):
            for d in range(ndim):
                phase = [r for r in self.regions if r.dim == d]
                if not phase:
                    continue
                # 1) everyone ships strips to the master with routing info
                sends = []
                for region in phase:
                    peer = self._neighbour(region)
                    if peer < 0:
                        continue
                    n = region.count(self.spec.padded_shape)
                    sbuf = self.pool.get(
                        n + 2, plane.dtype,
                        tag=f"m-send-{d}-{region.direction}"
                    )
                    sbuf[0] = float(peer)
                    sbuf[1] = float(self._tag_for_peer(region))
                    with span("comm.pack", dim=d, dir=region.direction):
                        pack(plane, region.send, sbuf[2:])
                    sends.append((sbuf, region))
                counts = comm.gather(len(sends), root=self.MASTER)
                # strip sizes differ across ranks (balanced decomposition);
                # the master's relay scratch must fit the largest
                max_strip = comm.allreduce(self._max_strip(phase), "max")
                for sbuf, region in sends:
                    with span("comm.send", dim=d, bytes=sbuf.nbytes):
                        comm.Send(sbuf, dest=self.MASTER,
                                  tag=_TAG_BASE - 1)
                    self._count_message(sbuf.nbytes, d)
                # 2) master relays every message, one at a time
                if comm.rank == self.MASTER:
                    total = sum(counts)
                    scratch = self.pool.get(max_strip + 2, plane.dtype,
                                            tag="relay")
                    with span("comm.relay", dim=d, total=total):
                        for _ in range(total):
                            _, _, count = comm.Recv(scratch,
                                                    tag=_TAG_BASE - 1)
                            dest = int(scratch[0])
                            fwd_tag = int(scratch[1])
                            comm.Send(scratch[2:count], dest=dest,
                                      tag=fwd_tag)
                # 3) everyone receives its ghost strips from the master
                for region in phase:
                    peer = self._neighbour(region)
                    if peer < 0:
                        continue
                    n = region.count(self.spec.padded_shape)
                    rbuf = self.pool.get(
                        n, plane.dtype, tag=f"m-recv-{d}-{region.direction}"
                    )
                    with span("comm.wait", dim=d, dir=region.direction):
                        comm.Recv(rbuf, source=self.MASTER,
                                  tag=self._tag(region))
                    with span("comm.unpack", dim=d, dir=region.direction):
                        unpack(rbuf, plane, region.recv)

    def _tag_for_peer(self, region: Region) -> int:
        # the tag under which the *peer* expects this strip
        return _TAG_BASE + 2 * region.dim + (0 if region.direction < 0 else 1)

    def _max_strip(self, phase: Sequence[Region]) -> int:
        return max(r.count(self.spec.padded_shape) for r in phase)
