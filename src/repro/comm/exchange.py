"""Asynchronous halo exchange (Fig. 6b/6c).

For every spatial dimension in order, each process packs its inner-halo
strip, posts ``Irecv``/``Isend`` with both neighbours, waits, and
unpacks into the outer halo.  All processes exchange concurrently
(Fig. 6b: "all MPI processes are exchanging the halo region
asynchronously"); the dimension phases give box stencils their corner
data with only two messages per dimension.

At non-periodic global boundaries a process has no neighbour on a side;
those ghost strips are filled by the boundary condition instead
(zero/reflect), handled by the caller's plane fill.

Two exchanger strategies are provided:

- :class:`AsyncHaloExchanger` — MSC's library (this paper);
- :class:`MasterCoordinatedExchanger` — the Physis-style comparison
  strategy where every message is relayed through a master rank, the
  bottleneck discussed in Sec. 5.5 (used by the baseline model *and*
  runnable here for functional demonstration).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from ..obs import counter, span
from ..obs.trace import attach_flow
from ..runtime.simmpi import CartComm, Request, SimMPIError
from .halo import HaloSpec, Region, halo_regions
from .packing import BufferPool, pack, unpack

__all__ = ["HaloExchanger", "AsyncHaloExchanger", "MasterCoordinatedExchanger"]

_TAG_BASE = 4096

# The async exchanger stamps every strip with its exchange sequence
# number so a retransmitted (or duplicated) strip from exchange *k* can
# never satisfy a receive posted by exchange *k+1*: stale copies simply
# never match.  512 in-flight sequence slots is far beyond any window
# the per-operation timeouts allow.
_SEQ_WINDOW = 512
_TAG_STRIDE = 8  # 2 * ndim(<=3) direction/dimension sub-tags, rounded up
_ACK_BASE = _TAG_BASE + _TAG_STRIDE * _SEQ_WINDOW


class HaloExchanger:
    """Common machinery: geometry, buffers, neighbour lookup."""

    def __init__(self, comm: CartComm, spec: HaloSpec):
        if len(spec.sub_shape) != len(comm.dims):
            raise ValueError(
                f"halo spec is {len(spec.sub_shape)}-D, cart grid is "
                f"{len(comm.dims)}-D"
            )
        self.comm = comm
        self.spec = spec
        self.regions = halo_regions(spec)
        self.pool = BufferPool()
        #: messages sent / bytes moved by this process (for the tuner)
        self.messages = 0
        self.bytes_sent = 0

    def reset_counters(self) -> None:
        """Zero the per-exchanger traffic counters (between runs)."""
        self.messages = 0
        self.bytes_sent = 0

    def _count_message(self, nbytes: int, dim: int) -> None:
        """One sent message: instance counters + the metrics registry."""
        self.messages += 1
        self.bytes_sent += nbytes
        rank = self.comm.rank
        counter("comm.messages", rank=rank)
        counter("comm.bytes_sent", nbytes, rank=rank, dim=dim)

    def _neighbour(self, region: Region) -> int:
        src, dst = self.comm.Shift(region.dim, 1)
        return dst if region.direction == +1 else src

    def _tag(self, region: Region) -> int:
        # receiving the +1 face means the sender sent its -1-direction
        # strip: tags pair by (dim, sender's direction)
        return _TAG_BASE + 2 * region.dim + (0 if region.direction > 0 else 1)

    def exchange(self, plane: np.ndarray) -> None:
        raise NotImplementedError


class AsyncHaloExchanger(HaloExchanger):
    """MSC's exchanger: concurrent Isend/Irecv per dimension phase.

    When the world has a fault injector attached (or ``resilient=True``
    is forced) each phase runs a retransmission protocol: strips carry
    sequence-numbered tags, the receiver acknowledges every strip over
    the reliable control channel, and a sender whose ACK misses its
    per-operation deadline re-sends the identical strip (idempotent by
    tag) with exponential backoff, up to ``max_retries`` times.  Clean
    worlds take the plain fast path — identical traffic, no ACKs.
    """

    def __init__(self, comm: CartComm, spec: HaloSpec,
                 retry_timeout: float = 0.25, max_retries: int = 6,
                 backoff: float = 2.0, op_timeout: float = 60.0,
                 resilient: Optional[bool] = None):
        super().__init__(comm, spec)
        if retry_timeout <= 0:
            raise ValueError("retry_timeout must be positive")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.op_timeout = op_timeout
        self.resilient = resilient
        #: retransmissions performed by this process (for diagnostics)
        self.retries = 0
        self._seq = 0

    # sequence-stamped data/ACK tags; the (dim, bit) sub-tag keeps the
    # pre-existing pairing: a strip sent in direction ``dir`` matches
    # the peer's receive on its opposite face
    def _data_tag(self, seq: int, dim: int, bit: int) -> int:
        return (_TAG_BASE + (seq % _SEQ_WINDOW) * _TAG_STRIDE
                + 2 * dim + bit)

    def _ack_tag(self, seq: int, dim: int, bit: int) -> int:
        return (_ACK_BASE + (seq % _SEQ_WINDOW) * _TAG_STRIDE
                + 2 * dim + bit)

    @staticmethod
    def _send_bit(region: Region) -> int:
        return 0 if region.direction < 0 else 1

    @staticmethod
    def _recv_bit(region: Region) -> int:
        return 0 if region.direction > 0 else 1

    def exchange(self, plane: np.ndarray) -> None:
        if plane.shape != self.spec.padded_shape:
            raise ValueError(
                f"plane shape {plane.shape} != padded shape "
                f"{self.spec.padded_shape}"
            )
        seq = self._seq
        self._seq += 1
        resilient = (
            self.comm.faults_active if self.resilient is None
            else self.resilient
        )
        ndim = len(self.spec.sub_shape)
        with span("comm.exchange", rank=self.comm.rank, strategy="async",
                  seq=seq, resilient=resilient):
            for d in range(ndim):
                phase = [r for r in self.regions if r.dim == d]
                if not phase:
                    continue
                if resilient:
                    self._exchange_phase_resilient(plane, phase, d, seq)
                else:
                    self._exchange_phase_fast(plane, phase, d, seq)

    # -- clean fast path -------------------------------------------------
    def _exchange_phase_fast(self, plane: np.ndarray,
                             phase: Sequence[Region], d: int,
                             seq: int) -> None:
        rank = self.comm.rank
        recvs: List[Optional[Request]] = []
        recv_bufs = []
        for region in phase:
            peer = self._neighbour(region)
            if peer < 0:
                recvs.append(None)
                recv_bufs.append(None)
                continue
            n = region.count(self.spec.padded_shape)
            buf = self.pool.get(n, plane.dtype,
                                tag=f"recv-{d}-{region.direction}")
            recv_bufs.append(buf)
            recvs.append(
                self.comm.Irecv(
                    buf, source=peer,
                    tag=self._data_tag(seq, d, self._recv_bit(region)),
                )
            )
        for region in phase:
            peer = self._neighbour(region)
            if peer < 0:
                continue
            n = region.count(self.spec.padded_shape)
            sbuf = self.pool.get(n, plane.dtype,
                                 tag=f"send-{d}-{region.direction}")
            with span("comm.pack", rank=rank, dim=d, dir=region.direction):
                pack(plane, region.send, sbuf)
            # the message a peer receives on its (dim, dir) face
            # was sent from our opposite-direction strip
            send_tag = self._data_tag(seq, d, self._send_bit(region))
            with span("comm.send", rank=rank, dim=d, dir=region.direction,
                      bytes=sbuf.nbytes):
                self.comm.Isend(sbuf, dest=peer, tag=send_tag).Wait()
            self._count_message(sbuf.nbytes, d)
        for region, req, buf in zip(phase, recvs, recv_bufs):
            if req is None:
                continue
            with span("comm.wait", rank=rank, dim=d, dir=region.direction):
                req.Wait(self.op_timeout)
            with span("comm.unpack", rank=rank, dim=d,
                      dir=region.direction):
                unpack(buf, plane, region.recv)

    # -- fault-tolerant path ---------------------------------------------
    def _exchange_phase_resilient(self, plane: np.ndarray,
                                  phase: Sequence[Region], d: int,
                                  seq: int) -> None:
        comm = self.comm
        rank = comm.rank
        now = time.monotonic()
        overall_deadline = now + self.op_timeout
        recv_pending = {}
        for region in phase:
            peer = self._neighbour(region)
            if peer < 0:
                continue
            n = region.count(self.spec.padded_shape)
            buf = self.pool.get(n, plane.dtype,
                                tag=f"recv-{d}-{region.direction}")
            # data receives complete inside req.Test() below, under the
            # outer comm.exchange span; defer the flow so it can be
            # re-homed onto the unpack span that consumes the strip
            req = comm.Irecv(
                buf, source=peer,
                tag=self._data_tag(seq, d, self._recv_bit(region)),
                defer_flow=True,
            )
            recv_pending[region.direction] = (region, req, buf, peer)
        ack_pending = {}
        ack_out = self.pool.get(1, np.uint8, tag="ack-out")
        for region in phase:
            peer = self._neighbour(region)
            if peer < 0:
                continue
            n = region.count(self.spec.padded_shape)
            sbuf = self.pool.get(n, plane.dtype,
                                 tag=f"send-{d}-{region.direction}")
            with span("comm.pack", rank=rank, dim=d, dir=region.direction):
                pack(plane, region.send, sbuf)
            bit = self._send_bit(region)
            send_tag = self._data_tag(seq, d, bit)
            with span("comm.send", rank=rank, dim=d, dir=region.direction,
                      bytes=sbuf.nbytes):
                comm.Isend(sbuf, dest=peer, tag=send_tag)
            self._count_message(sbuf.nbytes, d)
            ack_buf = self.pool.get(
                1, np.uint8, tag=f"ack-in-{d}-{region.direction}"
            )
            ack_pending[region.direction] = {
                "region": region,
                "peer": peer,
                "sbuf": sbuf,
                "send_tag": send_tag,
                "req": comm.Irecv(ack_buf, source=peer,
                                  tag=self._ack_tag(seq, d, bit)),
                "deadline": time.monotonic() + self.retry_timeout,
                "attempts": 0,
            }
        while recv_pending or ack_pending:
            gen = comm.activity()
            progressed = False
            for key in list(recv_pending):
                region, req, buf, peer = recv_pending[key]
                if not req.Test():  # terminal errors re-raise here
                    continue
                # acknowledge over the reliable control channel, then
                # install the ghost strip
                comm.Send(
                    ack_out, dest=peer, reliable=True,
                    tag=self._ack_tag(seq, d, self._recv_bit(region)),
                )
                with span("comm.unpack", rank=rank, dim=d,
                          dir=region.direction):
                    flow = comm.pop_parked_flow()
                    if flow is not None:
                        attach_flow("recv", flow)
                    unpack(buf, plane, region.recv)
                del recv_pending[key]
                progressed = True
            for key in list(ack_pending):
                if ack_pending[key]["req"].Test():
                    del ack_pending[key]
                    progressed = True
            if not (recv_pending or ack_pending):
                break
            if progressed:
                continue
            now = time.monotonic()
            for entry in ack_pending.values():
                if now < entry["deadline"]:
                    continue
                region = entry["region"]
                if entry["attempts"] >= self.max_retries:
                    raise SimMPIError(
                        f"rank {comm.rank}: halo strip (dim {d}, dir "
                        f"{region.direction:+d}) to rank "
                        f"{entry['peer']} unacknowledged after "
                        f"{entry['attempts']} retries"
                    )
                entry["attempts"] += 1
                self.retries += 1
                counter("comm.retry", rank=comm.rank, dim=d)
                with span("comm.retry", rank=rank, dim=d,
                          dir=region.direction,
                          attempt=entry["attempts"],
                          bytes=entry["sbuf"].nbytes):
                    comm.Isend(entry["sbuf"], dest=entry["peer"],
                               tag=entry["send_tag"])
                entry["deadline"] = now + self.retry_timeout * (
                    self.backoff ** entry["attempts"]
                )
                progressed = True
            if progressed:
                continue
            if now >= overall_deadline:
                waiting = sorted(recv_pending) + sorted(ack_pending)
                raise SimMPIError(
                    f"rank {comm.rank}: halo exchange (dim {d}) did not "
                    f"complete within {self.op_timeout}s "
                    f"(outstanding directions {waiting})"
                )
            next_deadline = min(
                [e["deadline"] for e in ack_pending.values()]
                + [overall_deadline]
            )
            comm.wait_for_activity(
                max(0.0, next_deadline - now), seen=gen
            )


class MasterCoordinatedExchanger(HaloExchanger):
    """Physis-style exchanger: all halo traffic relayed via rank 0.

    Every process sends its strips to the master, which forwards each
    to the destination — serialising the exchange through one process.
    Functionally identical to the async exchanger; the serialisation is
    what Sec. 5.5 identifies as Physis's large-scale bottleneck.
    """

    MASTER = 0

    def exchange(self, plane: np.ndarray) -> None:
        if plane.shape != self.spec.padded_shape:
            raise ValueError(
                f"plane shape {plane.shape} != padded shape "
                f"{self.spec.padded_shape}"
            )
        comm = self.comm
        ndim = len(self.spec.sub_shape)
        with span("comm.exchange", rank=comm.rank, strategy="master"):
            for d in range(ndim):
                phase = [r for r in self.regions if r.dim == d]
                if not phase:
                    continue
                # 1) everyone ships strips to the master with routing info
                sends = []
                for region in phase:
                    peer = self._neighbour(region)
                    if peer < 0:
                        continue
                    n = region.count(self.spec.padded_shape)
                    sbuf = self.pool.get(
                        n + 2, plane.dtype,
                        tag=f"m-send-{d}-{region.direction}"
                    )
                    sbuf[0] = float(peer)
                    sbuf[1] = float(self._tag_for_peer(region))
                    with span("comm.pack", rank=comm.rank, dim=d,
                              dir=region.direction):
                        pack(plane, region.send, sbuf[2:])
                    sends.append((sbuf, region))
                counts = comm.gather(len(sends), root=self.MASTER)
                # strip sizes differ across ranks (balanced decomposition);
                # the master's relay scratch must fit the largest
                max_strip = comm.allreduce(self._max_strip(phase), "max")
                for sbuf, region in sends:
                    with span("comm.send", rank=comm.rank, dim=d,
                              bytes=sbuf.nbytes):
                        comm.Send(sbuf, dest=self.MASTER,
                                  tag=_TAG_BASE - 1)
                    self._count_message(sbuf.nbytes, d)
                # 2) master relays every message, one at a time
                if comm.rank == self.MASTER:
                    total = sum(counts)
                    scratch = self.pool.get(max_strip + 2, plane.dtype,
                                            tag="relay")
                    with span("comm.relay", rank=comm.rank, dim=d,
                              total=total):
                        for _ in range(total):
                            _, _, count = comm.Recv(scratch,
                                                    tag=_TAG_BASE - 1)
                            dest = int(scratch[0])
                            fwd_tag = int(scratch[1])
                            comm.Send(scratch[2:count], dest=dest,
                                      tag=fwd_tag)
                # 3) everyone receives its ghost strips from the master
                for region in phase:
                    peer = self._neighbour(region)
                    if peer < 0:
                        continue
                    n = region.count(self.spec.padded_shape)
                    rbuf = self.pool.get(
                        n, plane.dtype, tag=f"m-recv-{d}-{region.direction}"
                    )
                    with span("comm.wait", rank=comm.rank, dim=d,
                              dir=region.direction):
                        comm.Recv(rbuf, source=self.MASTER,
                                  tag=self._tag(region))
                    with span("comm.unpack", rank=comm.rank, dim=d,
                              dir=region.direction):
                        unpack(rbuf, plane, region.recv)

    def _tag_for_peer(self, region: Region) -> int:
        # the tag under which the *peer* expects this strip
        return _TAG_BASE + 2 * region.dim + (0 if region.direction < 0 else 1)

    def _max_strip(self, phase: Sequence[Region]) -> int:
        return max(r.count(self.spec.padded_shape) for r in phase)
