"""Asynchronous halo exchange (Fig. 6b/6c) with an exchange-mode axis.

The async exchanger speaks three wire protocols, selected by the
``mode`` knob (Devito's ``HaloExchangeBuilder`` taxonomy):

- ``basic`` — the staged dimension-by-dimension protocol: for every
  spatial dimension in order, each process posts ``Irecv``/``Isend``
  with both face neighbours, waits, and installs the ghost strips.
  The dimension phases give box stencils their corner data with only
  ``2·ndim`` messages per process, at the cost of ``ndim`` dependent
  phases.
- ``diag`` — direct-neighbour exchange: edge/corner blocks go straight
  to their diagonal owners instead of relaying through dimension
  phases.  All blocks destined for the same rank are coalesced into
  one message, so the whole exchange is a *single* phase — on the
  small process grids of the bench workloads that is strictly fewer
  messages than ``basic`` (e.g. 3 vs 4 per rank on a periodic 2×2
  grid), and face blocks shrink to the valid extent.
- ``overlap`` — the ``diag`` wire protocol split into
  :meth:`~AsyncHaloExchanger.begin_exchange` /
  :meth:`~AsyncHaloExchanger.finish_exchange` so the executor can
  compute the CORE of the next step while messages are in flight and
  only the OWNED shell waits for completion (see
  :func:`repro.comm.halo.core_owned_regions`).

Packing is zero-copy on the clean fast path: single-strip messages
hand strided views of the padded plane straight to the transport
(which copies once at post time) and receive straight into the ghost
views, so :class:`~repro.comm.packing.BufferPool` staging only happens
for coalesced multi-strip messages (transient buffers) and on the
resilient path, which must hold every in-flight message stable until
it is acknowledged.

At non-periodic global boundaries a process has no neighbour on a
side; those ghost strips are filled by the boundary condition instead
(zero/reflect), handled by the caller's plane fill.

Two exchanger strategies are provided:

- :class:`AsyncHaloExchanger` — MSC's library (this paper), plus the
  ``diag``/``overlap`` convenience subclasses for the registry;
- :class:`MasterCoordinatedExchanger` — the Physis-style comparison
  strategy where every message is relayed through a master rank, the
  bottleneck discussed in Sec. 5.5 (used by the baseline model *and*
  runnable here for functional demonstration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import counter, span
from ..obs.events import emit
from ..obs.trace import attach_flow
from ..runtime.simmpi import CartComm, Request, SimMPIError
from .halo import HaloSpec, Region, Slices, diag_regions, halo_regions
from .packing import BufferPool, pack_many, unpack_many

__all__ = [
    "EXCHANGE_MODES",
    "HaloExchanger",
    "AsyncHaloExchanger",
    "DiagHaloExchanger",
    "OverlapHaloExchanger",
    "MasterCoordinatedExchanger",
]

#: the exchange-mode axis (autotuner search space, CLI knob)
EXCHANGE_MODES = ("basic", "diag", "overlap")

_TAG_BASE = 4096

# The async exchanger stamps every strip with its exchange sequence
# number so a retransmitted (or duplicated) strip from exchange *k* can
# never satisfy a receive posted by exchange *k+1*: stale copies simply
# never match.  512 in-flight sequence slots is far beyond any window
# the per-operation timeouts allow.
_SEQ_WINDOW = 512
_TAG_STRIDE = 8  # sub-tags 0..5: (dim, direction) faces; 6: coalesced
_ACK_BASE = _TAG_BASE + _TAG_STRIDE * _SEQ_WINDOW

#: sub-tag for diag/overlap per-neighbour coalesced messages (at most
#: one such message per ordered rank pair per exchange)
_DIAG_SUB = 6


@dataclass
class _Transfer:
    """One peer-to-peer message of an exchange: strips + tag plumbing.

    ``send_strips``/``recv_strips`` are laid out back to back in the
    message, in an order both sides derive canonically (basic: one
    strip; diag: offsets sorted lexicographically on the sender, by
    negated offset on the receiver, so strip *k* of the incoming
    message is exactly the block the sender packed *k*-th).
    """

    peer: int
    send_strips: Tuple[Slices, ...]
    recv_strips: Tuple[Slices, ...]
    send_sub: int
    recv_sub: int
    dim: int  # span/counter label; -1 for coalesced messages
    dir: int  # ±1 for face strips, 0 for coalesced messages
    key: str  # stable id for pool tags / error messages


class HaloExchanger:
    """Common machinery: geometry, buffers, neighbour lookup."""

    def __init__(self, comm: CartComm, spec: HaloSpec):
        if len(spec.sub_shape) != len(comm.dims):
            raise ValueError(
                f"halo spec is {len(spec.sub_shape)}-D, cart grid is "
                f"{len(comm.dims)}-D"
            )
        self.comm = comm
        self.spec = spec
        self.regions = halo_regions(spec)
        self.pool = BufferPool()
        #: messages sent / bytes moved by this process (for the tuner)
        self.messages = 0
        self.bytes_sent = 0

    def reset_counters(self) -> None:
        """Zero the per-exchanger traffic counters (between runs)."""
        self.messages = 0
        self.bytes_sent = 0

    def _count_message(self, nbytes: int, dim: int) -> None:
        """One sent message: instance counters + the metrics registry."""
        self.messages += 1
        self.bytes_sent += nbytes
        rank = self.comm.rank
        counter("comm.messages", rank=rank)
        counter("comm.bytes_sent", nbytes, rank=rank, dim=dim)

    def _neighbour(self, region: Region) -> int:
        src, dst = self.comm.Shift(region.dim, 1)
        return dst if region.direction == +1 else src

    def _tag(self, region: Region) -> int:
        # receiving the +1 face means the sender sent its -1-direction
        # strip: tags pair by (dim, sender's direction)
        return _TAG_BASE + 2 * region.dim + (0 if region.direction > 0 else 1)

    def exchange(self, plane: np.ndarray) -> None:
        raise NotImplementedError

    # -- split exchange (compute/communication overlap) -------------------
    def begin_exchange(self, plane: np.ndarray) -> None:
        """Start an exchange; default strategies complete it eagerly."""
        self.exchange(plane)

    def finish_exchange(self) -> None:
        """Complete a begun exchange (no-op when none is pending)."""

    @property
    def pending(self) -> bool:
        """True while a begun exchange has not been finished."""
        return False


class AsyncHaloExchanger(HaloExchanger):
    """MSC's exchanger: concurrent Isend/Irecv, three wire modes.

    ``mode`` selects the protocol: ``"basic"`` (staged per-dimension
    phases), ``"diag"`` (one phase of per-neighbour coalesced direct
    messages) or ``"overlap"`` (the diag protocol split into
    ``begin_exchange``/``finish_exchange`` for compute overlap; a plain
    :meth:`exchange` call runs both halves back to back).

    When the world has a fault injector attached (or ``resilient=True``
    is forced) every mode runs a retransmission protocol: messages
    carry sequence-numbered tags, the receiver acknowledges each over
    the reliable control channel, and a sender whose ACK misses its
    per-operation deadline re-sends the identical message (idempotent
    by tag) with exponential backoff, up to ``max_retries`` times.
    Clean worlds take the zero-copy fast path — identical traffic, no
    ACKs, no staging buffers.
    """

    def __init__(self, comm: CartComm, spec: HaloSpec,
                 mode: str = "basic",
                 retry_timeout: float = 0.25, max_retries: int = 6,
                 backoff: float = 2.0, op_timeout: float = 60.0,
                 resilient: Optional[bool] = None):
        super().__init__(comm, spec)
        if mode not in EXCHANGE_MODES:
            raise ValueError(
                f"unknown exchange mode {mode!r}; expected one of "
                f"{EXCHANGE_MODES}"
            )
        if retry_timeout <= 0:
            raise ValueError("retry_timeout must be positive")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self.mode = mode
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.op_timeout = op_timeout
        self.resilient = resilient
        #: retransmissions performed by this process (for diagnostics)
        self.retries = 0
        self._seq = 0
        self._pending = None
        self._diag_transfer_cache: Optional[List[_Transfer]] = None

    def reset_counters(self) -> None:
        """Zero traffic *and* retransmission counters (between runs)."""
        super().reset_counters()
        self.retries = 0

    @property
    def pending(self) -> bool:
        return self._pending is not None

    # sequence-stamped data/ACK tags; the ``sub`` slot keeps the
    # pre-existing pairing: a face strip sent in direction ``dir``
    # matches the peer's receive on its opposite face, a coalesced
    # message always travels under the single diag sub-tag (at most one
    # per ordered rank pair per exchange)
    def _data_tag(self, seq: int, sub: int) -> int:
        return _TAG_BASE + (seq % _SEQ_WINDOW) * _TAG_STRIDE + sub

    def _ack_tag(self, seq: int, sub: int) -> int:
        return _ACK_BASE + (seq % _SEQ_WINDOW) * _TAG_STRIDE + sub

    @staticmethod
    def _send_bit(region: Region) -> int:
        return 0 if region.direction < 0 else 1

    @staticmethod
    def _recv_bit(region: Region) -> int:
        return 0 if region.direction > 0 else 1

    def _check_plane(self, plane: np.ndarray) -> None:
        if plane.shape != self.spec.padded_shape:
            raise ValueError(
                f"plane shape {plane.shape} != padded shape "
                f"{self.spec.padded_shape}"
            )

    def _resilient_now(self) -> bool:
        return (
            self.comm.faults_active if self.resilient is None
            else self.resilient
        )

    def _strips_count(self, strips: Sequence[Slices]) -> int:
        padded = self.spec.padded_shape
        total = 0
        for strip in strips:
            n = 1
            for d, sl in enumerate(strip):
                start, stop, _ = sl.indices(padded[d])
                n *= stop - start
            total += n
        return total

    # -- transfer construction --------------------------------------------
    def _phase_transfers(self, d: int) -> List[_Transfer]:
        """The two face transfers of one basic-mode dimension phase."""
        out: List[_Transfer] = []
        for region in (r for r in self.regions if r.dim == d):
            peer = self._neighbour(region)
            if peer < 0:
                continue
            out.append(_Transfer(
                peer=peer,
                send_strips=(region.send,),
                recv_strips=(region.recv,),
                send_sub=2 * d + self._send_bit(region),
                recv_sub=2 * d + self._recv_bit(region),
                dim=d,
                dir=region.direction,
                key=f"{d}{'m' if region.direction < 0 else 'p'}",
            ))
        return out

    def _offset_neighbour(self, offset: Sequence[int]) -> int:
        coords = list(self.comm.Get_coords(self.comm.rank))
        for d, o in enumerate(offset):
            c = coords[d] + o
            if self.comm.periods[d]:
                c %= self.comm.dims[d]
            elif not 0 <= c < self.comm.dims[d]:
                return -1
            coords[d] = c
        return self.comm.Get_cart_rank(coords)

    def _diag_transfers(self) -> List[_Transfer]:
        """Per-neighbour coalesced transfers (diag/overlap modes).

        Blocks are grouped by owning rank; the sender lays out its
        blocks by lexicographic offset, the receiver expects them by
        negated-offset order (its ghost block at ``o`` is the peer's
        inner block at ``-o``), so both sides agree on the message
        layout even when one peer is a neighbour at several offsets
        (degenerate periodic grids).
        """
        if self._diag_transfer_cache is not None:
            return self._diag_transfer_cache
        sends: Dict[int, list] = {}
        recvs: Dict[int, list] = {}
        for reg in diag_regions(self.spec):
            peer = self._offset_neighbour(reg.offset)
            if peer < 0:
                continue
            sends.setdefault(peer, []).append(reg)
            recvs.setdefault(peer, []).append(reg)
        transfers: List[_Transfer] = []
        for peer in sorted(sends):
            out_blocks = sorted(sends[peer], key=lambda r: r.offset)
            in_blocks = sorted(
                recvs[peer],
                key=lambda r: tuple(-c for c in r.offset),
            )
            transfers.append(_Transfer(
                peer=peer,
                send_strips=tuple(r.send for r in out_blocks),
                recv_strips=tuple(r.recv for r in in_blocks),
                send_sub=_DIAG_SUB,
                recv_sub=_DIAG_SUB,
                dim=-1,
                dir=0,
                key=f"n{peer}",
            ))
        self._diag_transfer_cache = transfers
        return transfers

    # -- public protocol --------------------------------------------------
    def exchange(self, plane: np.ndarray) -> None:
        if self.mode == "overlap":
            # blocking call on a split-capable exchanger: run both
            # halves back to back (seed planes, static inputs)
            self.begin_exchange(plane)
            self.finish_exchange()
            return
        self._check_plane(plane)
        seq = self._seq
        self._seq += 1
        resilient = self._resilient_now()
        ndim = len(self.spec.sub_shape)
        with span("comm.exchange", rank=self.comm.rank, strategy="async",
                  mode=self.mode, seq=seq, resilient=resilient):
            if self.mode == "basic":
                for d in range(ndim):
                    transfers = self._phase_transfers(d)
                    if not transfers:
                        continue
                    if resilient:
                        self._run_transfers_resilient(
                            plane, transfers, seq, f"dim {d}"
                        )
                    else:
                        self._run_transfers_fast(plane, transfers, seq)
            else:  # diag: one phase of coalesced direct messages
                transfers = self._diag_transfers()
                if transfers:
                    if resilient:
                        self._run_transfers_resilient(
                            plane, transfers, seq, "diag"
                        )
                    else:
                        self._run_transfers_fast(plane, transfers, seq)
        # staging-pool growth audit: stays at 0 on the zero-copy clean
        # path in every mode; only the resilient protocol stages
        counter("comm.pool_bytes", self.pool.nbytes, rank=self.comm.rank)

    def begin_exchange(self, plane: np.ndarray) -> None:
        """Post all sends/receives of one exchange without waiting.

        Only ``mode="overlap"`` actually splits; the other modes
        complete eagerly.  At most one exchange may be in flight.
        """
        if self.mode != "overlap":
            self.exchange(plane)
            return
        if self._pending is not None:
            raise SimMPIError(
                f"rank {self.comm.rank}: begin_exchange while a "
                "previous overlap exchange is still in flight"
            )
        self._check_plane(plane)
        seq = self._seq
        self._seq += 1
        resilient = self._resilient_now()
        transfers = self._diag_transfers()
        with span("comm.exchange", rank=self.comm.rank, strategy="async",
                  mode="overlap", stage="begin", seq=seq,
                  resilient=resilient):
            if resilient:
                state = self._post_transfers_resilient(
                    plane, transfers, seq
                )
            else:
                state = self._post_transfers_fast(plane, transfers, seq)
        self._pending = (plane, seq, resilient, state)

    def finish_exchange(self) -> None:
        """Wait out a begun exchange and install the ghost blocks."""
        if self._pending is None:
            return
        plane, seq, resilient, state = self._pending
        self._pending = None
        with span("comm.exchange", rank=self.comm.rank, strategy="async",
                  mode="overlap", stage="finish", seq=seq,
                  resilient=resilient):
            if resilient:
                recv_pending, ack_pending = state
                # retry clocks start now: peers deep in CORE compute
                # have not drained their receives yet, and that is not
                # a lost message
                now = time.monotonic()
                for entry in ack_pending.values():
                    entry["deadline"] = now + self.retry_timeout
                self._progress_resilient(
                    plane, recv_pending, ack_pending, seq,
                    now + self.op_timeout, "overlap",
                )
            else:
                self._complete_transfers_fast(plane, state)
        counter("comm.pool_bytes", self.pool.nbytes, rank=self.comm.rank)

    # -- clean fast path (zero-copy) --------------------------------------
    def _post_transfers_fast(self, plane: np.ndarray,
                             transfers: Sequence[_Transfer],
                             seq: int) -> list:
        rank = self.comm.rank
        recvs = []
        for tr in transfers:
            tag = self._data_tag(seq, tr.recv_sub)
            if len(tr.recv_strips) == 1:
                # zero-copy: the transport scatters straight into the
                # strided ghost view at completion time
                buf = None
                req = self.comm.Irecv(plane[tr.recv_strips[0]],
                                      source=tr.peer, tag=tag)
            else:
                buf = np.empty(self._strips_count(tr.recv_strips),
                               dtype=plane.dtype)
                req = self.comm.Irecv(buf, source=tr.peer, tag=tag)
            recvs.append((tr, req, buf))
        for tr in transfers:
            zero_copy = len(tr.send_strips) == 1
            with span("comm.pack", rank=rank, dim=tr.dim, dir=tr.dir,
                      zero_copy=zero_copy):
                if zero_copy:
                    # strided view — the transport makes the one copy
                    msg = plane[tr.send_strips[0]]
                else:
                    msg = pack_many(plane, tr.send_strips)
            with span("comm.send", rank=rank, dim=tr.dim, dir=tr.dir,
                      bytes=msg.nbytes):
                self.comm.Isend(
                    msg, dest=tr.peer,
                    tag=self._data_tag(seq, tr.send_sub),
                ).Wait()
            self._count_message(msg.nbytes, tr.dim)
        return recvs

    def _complete_transfers_fast(self, plane: np.ndarray,
                                 recvs: Sequence[tuple]) -> None:
        rank = self.comm.rank
        for tr, req, buf in recvs:
            with span("comm.wait", rank=rank, dim=tr.dim, dir=tr.dir):
                req.Wait(self.op_timeout)
            with span("comm.unpack", rank=rank, dim=tr.dim, dir=tr.dir,
                      zero_copy=buf is None):
                if buf is not None:
                    unpack_many(buf, plane, tr.recv_strips)

    def _run_transfers_fast(self, plane: np.ndarray,
                            transfers: Sequence[_Transfer],
                            seq: int) -> None:
        recvs = self._post_transfers_fast(plane, transfers, seq)
        self._complete_transfers_fast(plane, recvs)

    # -- fault-tolerant path (pool-staged) --------------------------------
    def _post_transfers_resilient(self, plane: np.ndarray,
                                  transfers: Sequence[_Transfer],
                                  seq: int) -> tuple:
        comm = self.comm
        rank = comm.rank
        recv_pending = {}
        for i, tr in enumerate(transfers):
            n = self._strips_count(tr.recv_strips)
            buf = self.pool.get(n, plane.dtype, tag=f"recv-{tr.key}")
            # data receives complete inside req.Test() below, under the
            # outer comm.exchange span; defer the flow so it can be
            # re-homed onto the unpack span that consumes the strip
            req = comm.Irecv(
                buf, source=tr.peer,
                tag=self._data_tag(seq, tr.recv_sub),
                defer_flow=True,
            )
            recv_pending[i] = (tr, req, buf)
        ack_pending = {}
        for i, tr in enumerate(transfers):
            n = self._strips_count(tr.send_strips)
            sbuf = self.pool.get(n, plane.dtype, tag=f"send-{tr.key}")
            with span("comm.pack", rank=rank, dim=tr.dim, dir=tr.dir):
                pack_many(plane, tr.send_strips, sbuf)
            send_tag = self._data_tag(seq, tr.send_sub)
            with span("comm.send", rank=rank, dim=tr.dim, dir=tr.dir,
                      bytes=sbuf.nbytes):
                comm.Isend(sbuf, dest=tr.peer, tag=send_tag)
            self._count_message(sbuf.nbytes, tr.dim)
            ack_buf = self.pool.get(1, np.uint8, tag=f"ack-in-{tr.key}")
            ack_pending[i] = {
                "tr": tr,
                "sbuf": sbuf,
                "send_tag": send_tag,
                "req": comm.Irecv(ack_buf, source=tr.peer,
                                  tag=self._ack_tag(seq, tr.send_sub)),
                "deadline": time.monotonic() + self.retry_timeout,
                "attempts": 0,
            }
        return recv_pending, ack_pending

    def _run_transfers_resilient(self, plane: np.ndarray,
                                 transfers: Sequence[_Transfer],
                                 seq: int, where: str) -> None:
        recv_pending, ack_pending = self._post_transfers_resilient(
            plane, transfers, seq
        )
        self._progress_resilient(
            plane, recv_pending, ack_pending, seq,
            time.monotonic() + self.op_timeout, where,
        )

    def _progress_resilient(self, plane: np.ndarray, recv_pending: dict,
                            ack_pending: dict, seq: int,
                            overall_deadline: float, where: str) -> None:
        comm = self.comm
        rank = comm.rank
        ack_out = self.pool.get(1, np.uint8, tag="ack-out")
        while recv_pending or ack_pending:
            gen = comm.activity()
            progressed = False
            for key in list(recv_pending):
                tr, req, buf = recv_pending[key]
                if not req.Test():  # terminal errors re-raise here
                    continue
                # acknowledge over the reliable control channel, then
                # install the ghost strips
                comm.Send(
                    ack_out, dest=tr.peer, reliable=True,
                    tag=self._ack_tag(seq, tr.recv_sub),
                )
                with span("comm.unpack", rank=rank, dim=tr.dim,
                          dir=tr.dir):
                    flow = comm.pop_parked_flow()
                    if flow is not None:
                        attach_flow("recv", flow)
                    unpack_many(buf, plane, tr.recv_strips)
                del recv_pending[key]
                progressed = True
            for key in list(ack_pending):
                if ack_pending[key]["req"].Test():
                    del ack_pending[key]
                    progressed = True
            if not (recv_pending or ack_pending):
                break
            if progressed:
                continue
            now = time.monotonic()
            for entry in ack_pending.values():
                if now < entry["deadline"]:
                    continue
                tr = entry["tr"]
                if entry["attempts"] >= self.max_retries:
                    raise SimMPIError(
                        f"rank {comm.rank}: halo transfer {tr.key} "
                        f"({where}) to rank {tr.peer} unacknowledged "
                        f"after {entry['attempts']} retries"
                    )
                entry["attempts"] += 1
                self.retries += 1
                counter("comm.retry", rank=comm.rank, dim=tr.dim)
                emit("comm.retry", level="warn", rank=comm.rank,
                     dim=tr.dim, dir=tr.dir, peer=tr.peer,
                     attempt=entry["attempts"])
                with span("comm.retry", rank=rank, dim=tr.dim,
                          dir=tr.dir, attempt=entry["attempts"],
                          bytes=entry["sbuf"].nbytes):
                    comm.Isend(entry["sbuf"], dest=tr.peer,
                               tag=entry["send_tag"])
                entry["deadline"] = now + self.retry_timeout * (
                    self.backoff ** entry["attempts"]
                )
                progressed = True
            if progressed:
                continue
            if now >= overall_deadline:
                waiting = sorted(
                    recv_pending[k][0].key for k in recv_pending
                ) + sorted(
                    ack_pending[k]["tr"].key for k in ack_pending
                )
                raise SimMPIError(
                    f"rank {comm.rank}: halo exchange ({where}) did not "
                    f"complete within {self.op_timeout}s "
                    f"(outstanding transfers {waiting})"
                )
            next_deadline = min(
                [e["deadline"] for e in ack_pending.values()]
                + [overall_deadline]
            )
            comm.wait_for_activity(
                max(0.0, next_deadline - now), seen=gen
            )


class DiagHaloExchanger(AsyncHaloExchanger):
    """``async`` preset to ``mode="diag"`` (registry convenience)."""

    def __init__(self, comm: CartComm, spec: HaloSpec, **options):
        options.setdefault("mode", "diag")
        super().__init__(comm, spec, **options)


class OverlapHaloExchanger(AsyncHaloExchanger):
    """``async`` preset to ``mode="overlap"`` (registry convenience)."""

    def __init__(self, comm: CartComm, spec: HaloSpec, **options):
        options.setdefault("mode", "overlap")
        super().__init__(comm, spec, **options)


class MasterCoordinatedExchanger(HaloExchanger):
    """Physis-style exchanger: all halo traffic relayed via rank 0.

    Every process sends its strips to the master, which forwards each
    to the destination — serialising the exchange through one process.
    Functionally identical to the async exchanger; the serialisation is
    what Sec. 5.5 identifies as Physis's large-scale bottleneck.
    """

    MASTER = 0

    def exchange(self, plane: np.ndarray) -> None:
        if plane.shape != self.spec.padded_shape:
            raise ValueError(
                f"plane shape {plane.shape} != padded shape "
                f"{self.spec.padded_shape}"
            )
        comm = self.comm
        ndim = len(self.spec.sub_shape)
        with span("comm.exchange", rank=comm.rank, strategy="master"):
            for d in range(ndim):
                phase = [r for r in self.regions if r.dim == d]
                if not phase:
                    continue
                # 1) everyone ships strips to the master with routing info
                sends = []
                for region in phase:
                    peer = self._neighbour(region)
                    if peer < 0:
                        continue
                    n = region.count(self.spec.padded_shape)
                    sbuf = self.pool.get(
                        n + 2, plane.dtype,
                        tag=f"m-send-{d}-{region.direction}"
                    )
                    sbuf[0] = float(peer)
                    sbuf[1] = float(self._tag_for_peer(region))
                    with span("comm.pack", rank=comm.rank, dim=d,
                              dir=region.direction):
                        pack_many(plane, (region.send,), sbuf[2:])
                    sends.append((sbuf, region))
                counts = comm.gather(len(sends), root=self.MASTER)
                # strip sizes differ across ranks (balanced decomposition);
                # the master's relay scratch must fit the largest
                max_strip = comm.allreduce(self._max_strip(phase), "max")
                for sbuf, region in sends:
                    with span("comm.send", rank=comm.rank, dim=d,
                              bytes=sbuf.nbytes):
                        comm.Send(sbuf, dest=self.MASTER,
                                  tag=_TAG_BASE - 1)
                    self._count_message(sbuf.nbytes, d)
                # 2) master relays every message, one at a time
                if comm.rank == self.MASTER:
                    total = sum(counts)
                    scratch = self.pool.get(max_strip + 2, plane.dtype,
                                            tag="relay")
                    with span("comm.relay", rank=comm.rank, dim=d,
                              total=total):
                        for _ in range(total):
                            _, _, count = comm.Recv(scratch,
                                                    tag=_TAG_BASE - 1)
                            dest = int(scratch[0])
                            fwd_tag = int(scratch[1])
                            comm.Send(scratch[2:count], dest=dest,
                                      tag=fwd_tag)
                # 3) everyone receives its ghost strips from the master
                for region in phase:
                    peer = self._neighbour(region)
                    if peer < 0:
                        continue
                    n = region.count(self.spec.padded_shape)
                    rbuf = self.pool.get(
                        n, plane.dtype, tag=f"m-recv-{d}-{region.direction}"
                    )
                    with span("comm.wait", rank=comm.rank, dim=d,
                              dir=region.direction):
                        comm.Recv(rbuf, source=self.MASTER,
                                  tag=self._tag(region))
                    with span("comm.unpack", rank=comm.rank, dim=d,
                              dir=region.direction):
                        unpack_many(rbuf, plane, (region.recv,))
                    # ``Recv`` fills the buffer prefix; the unpack above
                    # consumes exactly the strip elements

    def _tag_for_peer(self, region: Region) -> int:
        # the tag under which the *peer* expects this strip
        return _TAG_BASE + 2 * region.dim + (0 if region.direction < 0 else 1)

    def _max_strip(self, phase: Sequence[Region]) -> int:
        return max(r.count(self.spec.padded_shape) for r in phase)
