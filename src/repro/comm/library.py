"""The pluggable communication-library facade (Sec. 4.4).

"Since the communication library works as a plugin to MSC, it is
naturally separated from the stencil kernel optimizations ... users can
easily plug in their own halo-exchanging libraries."  This registry is
that plugin point: strategies are registered by name and the code
generator / distributed executor look them up.

Built-in strategies:

- ``"async"``   — MSC's asynchronous exchanger (the default; takes a
  ``mode`` option selecting the ``basic``/``diag``/``overlap`` wire
  protocol),
- ``"diag"``    — the async exchanger preset to coalesced
  direct-neighbour messages,
- ``"overlap"`` — the async exchanger preset to the split
  begin/finish protocol for compute/communication overlap,
- ``"master"``  — the Physis-style master-coordinated exchanger (for
  the Sec. 5.5 comparison).
"""

from __future__ import annotations

from typing import Dict, Type

from ..runtime.simmpi import CartComm
from .halo import HaloSpec
from .exchange import (
    AsyncHaloExchanger,
    DiagHaloExchanger,
    HaloExchanger,
    MasterCoordinatedExchanger,
    OverlapHaloExchanger,
)

__all__ = [
    "register_exchanger",
    "get_exchanger",
    "create_exchanger",
    "available_exchangers",
]

_REGISTRY: Dict[str, Type[HaloExchanger]] = {}


def register_exchanger(name: str, cls: Type[HaloExchanger],
                       replace: bool = False) -> None:
    """Register a halo-exchange strategy under ``name``."""
    if not issubclass(cls, HaloExchanger):
        raise TypeError(
            f"{cls.__name__} does not implement HaloExchanger"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"exchanger {name!r} already registered (pass replace=True "
            "to override)"
        )
    _REGISTRY[name] = cls


def get_exchanger(name: str) -> Type[HaloExchanger]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown exchanger {name!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None


def create_exchanger(name: str, comm: CartComm, spec: HaloSpec,
                     **options) -> HaloExchanger:
    """Instantiate a registered strategy for one rank.

    ``options`` are forwarded to the strategy's constructor (e.g. the
    async exchanger's ``retry_timeout``/``max_retries`` resilience
    knobs); strategies that take none reject them naturally.
    """
    return get_exchanger(name)(comm, spec, **options)


def available_exchangers() -> list:
    return sorted(_REGISTRY)


register_exchanger("async", AsyncHaloExchanger)
register_exchanger("diag", DiagHaloExchanger)
register_exchanger("overlap", OverlapHaloExchanger)
register_exchanger("master", MasterCoordinatedExchanger)
