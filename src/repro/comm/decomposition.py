"""Domain decomposition (Fig. 6a).

The input tensor is decomposed evenly among the MPI processes; each
sub-tensor goes to one process, identified by its Cartesian coordinates.
Uneven extents are balanced to within one point (the first
``extent % grid`` processes along a dimension get the extra point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["SubDomain", "decompose", "suggest_grid", "owner_of"]


@dataclass(frozen=True)
class SubDomain:
    """One process's share of the global domain.

    ``lo``/``hi`` are per-dimension half-open bounds in *global* valid
    coordinates.
    """

    rank: int
    coords: Tuple[int, ...]
    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def npoints(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def slices(self) -> Tuple[slice, ...]:
        """Global-array slices selecting this sub-domain."""
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))


def _split(extent: int, parts: int) -> List[Tuple[int, int]]:
    """Balanced half-open intervals covering [0, extent)."""
    base, extra = divmod(extent, parts)
    bounds = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def decompose(global_shape: Sequence[int],
              grid: Sequence[int]) -> List[SubDomain]:
    """Decompose ``global_shape`` over a process ``grid``.

    Returns one :class:`SubDomain` per rank, in rank order (row-major
    over the grid, matching the Cartesian communicator).
    """
    if len(global_shape) != len(grid):
        raise ValueError(
            f"grid rank {len(grid)} does not match domain rank "
            f"{len(global_shape)}"
        )
    for s, g in zip(global_shape, grid):
        if g < 1:
            raise ValueError(f"process grid extents must be >= 1, got {g}")
        if g > s:
            raise ValueError(
                f"cannot split extent {s} over {g} processes"
            )
    per_dim = [_split(s, g) for s, g in zip(global_shape, grid)]
    subdomains: List[SubDomain] = []
    ndim = len(grid)

    def rec(dim: int, coords: List[int]) -> None:
        if dim == ndim:
            rank = 0
            for c, g in zip(coords, grid):
                rank = rank * g + c
            lo = tuple(per_dim[d][coords[d]][0] for d in range(ndim))
            hi = tuple(per_dim[d][coords[d]][1] for d in range(ndim))
            subdomains.append(SubDomain(rank, tuple(coords), lo, hi))
            return
        for c in range(grid[dim]):
            rec(dim + 1, coords + [c])

    rec(0, [])
    subdomains.sort(key=lambda s: s.rank)
    return subdomains


def owner_of(point: Sequence[int], subdomains: Sequence[SubDomain]) -> int:
    """Rank owning a global point (linear scan; for tests/debug)."""
    for sd in subdomains:
        if all(l <= p < h for p, l, h in zip(point, sd.lo, sd.hi)):
            return sd.rank
    raise ValueError(f"point {tuple(point)} outside the global domain")


def suggest_grid(nprocs: int, ndim: int,
                 global_shape: Sequence[int] = None) -> Tuple[int, ...]:
    """A near-cubic process grid for ``nprocs`` ranks.

    Greedy largest-factor-first assignment to the largest remaining
    domain extent (or uniformly if no shape given) — the default the
    auto-tuner starts from.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    factors: List[int] = []
    n = nprocs
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    grid = [1] * ndim
    sizes = list(global_shape) if global_shape else [1] * ndim
    for fac in sorted(factors, reverse=True):
        # place on the dimension with the largest per-process extent
        d = max(range(ndim), key=lambda dd: sizes[dd] / grid[dd])
        grid[d] *= fac
    return tuple(grid)
