"""Message packing (Fig. 6c: "packs the data of the inner halo region
in the send buffer ... unpacks the data to update the outer halo").

Halo strips are strided views of the padded plane; MPI wants contiguous
buffers.  ``pack`` copies a strip into a reusable send buffer,
``unpack`` scatters a received buffer back into the ghost strip.
Buffers are cached per (shape, dtype) so steady-state exchange does no
allocation — mirroring the send/recv buffer reuse of the C library.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["BufferPool", "pack", "unpack"]


def pack(plane: np.ndarray, strip: Sequence[slice],
         out: np.ndarray = None) -> np.ndarray:
    """Copy ``plane[strip]`` into a contiguous buffer."""
    view = plane[tuple(strip)]
    if out is None:
        return np.ascontiguousarray(view)
    flat = out.reshape(-1)
    if flat.size != view.size:
        raise ValueError(
            f"pack buffer holds {flat.size} elements, strip has {view.size}"
        )
    flat[...] = view.reshape(-1)
    return out


def unpack(buf: np.ndarray, plane: np.ndarray,
           strip: Sequence[slice]) -> None:
    """Scatter a contiguous buffer into ``plane[strip]``."""
    view = plane[tuple(strip)]
    if buf.size != view.size:
        raise ValueError(
            f"unpack buffer has {buf.size} elements, strip needs {view.size}"
        )
    view[...] = buf.reshape(view.shape)


class BufferPool:
    """Reusable send/receive staging buffers keyed by (size, dtype)."""

    def __init__(self):
        self._pool: Dict[Tuple[int, str, str], np.ndarray] = {}

    def get(self, nelems: int, dtype, tag: str = "") -> np.ndarray:
        """A buffer of ``nelems`` elements; reused across calls.

        ``tag`` separates buffers that must coexist (e.g. one per
        outstanding receive direction).
        """
        key = (int(nelems), np.dtype(dtype).str, tag)
        buf = self._pool.get(key)
        if buf is None:
            buf = np.empty(int(nelems), dtype=dtype)
            self._pool[key] = buf
        return buf

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._pool.values())

    def __len__(self) -> int:
        return len(self._pool)
