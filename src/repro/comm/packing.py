"""Message packing (Fig. 6c: "packs the data of the inner halo region
in the send buffer ... unpacks the data to update the outer halo").

Halo strips are strided views of the padded plane.  On the clean fast
path the simmpi transport accepts those strided views directly (it
copies at ``Isend`` post time and scatters a strided receive in
place), so single-strip exchanges are *zero-copy* on our side and the
:class:`BufferPool` stays empty.  Explicit staging remains for two
cases: coalesced multi-strip messages (``pack_many``/``unpack_many``,
diag-mode corner coalescing) and the resilient retransmission path,
which must keep a stable copy of every in-flight message until it is
acknowledged — that path stages through the pool.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["BufferPool", "pack", "unpack", "pack_many", "unpack_many"]


def pack(plane: np.ndarray, strip: Sequence[slice],
         out: np.ndarray = None) -> np.ndarray:
    """Copy ``plane[strip]`` into a contiguous buffer."""
    view = plane[tuple(strip)]
    if out is None:
        return np.ascontiguousarray(view)
    flat = out.reshape(-1)
    if flat.size != view.size:
        raise ValueError(
            f"pack buffer holds {flat.size} elements, strip has {view.size}"
        )
    flat[...] = view.reshape(-1)
    return out


def unpack(buf: np.ndarray, plane: np.ndarray,
           strip: Sequence[slice]) -> None:
    """Scatter a contiguous buffer into ``plane[strip]``."""
    view = plane[tuple(strip)]
    if buf.size != view.size:
        raise ValueError(
            f"unpack buffer has {buf.size} elements, strip needs {view.size}"
        )
    view[...] = buf.reshape(view.shape)


def pack_many(plane: np.ndarray, strips: Sequence[Sequence[slice]],
              out: np.ndarray = None) -> np.ndarray:
    """Concatenate several strips of ``plane`` into one flat buffer.

    The strips are laid out back to back in the order given; the
    receiver must unpack with the same strip order (``unpack_many``).
    """
    views = [plane[tuple(s)] for s in strips]
    total = sum(v.size for v in views)
    if out is None:
        out = np.empty(total, dtype=plane.dtype)
    flat = out.reshape(-1)
    if flat.size < total:
        raise ValueError(
            f"pack buffer holds {flat.size} elements, strips have {total}"
        )
    pos = 0
    for view in views:
        flat[pos:pos + view.size] = view.reshape(-1)
        pos += view.size
    return out


def unpack_many(buf: np.ndarray, plane: np.ndarray,
                strips: Sequence[Sequence[slice]]) -> None:
    """Scatter a coalesced buffer back into several strips in order."""
    flat = buf.reshape(-1)
    pos = 0
    for strip in strips:
        view = plane[tuple(strip)]
        if pos + view.size > flat.size:
            raise ValueError(
                f"unpack buffer has {flat.size} elements, strips need more"
            )
        view[...] = flat[pos:pos + view.size].reshape(view.shape)
        pos += view.size


class BufferPool:
    """Reusable send/receive staging buffers keyed by (size, dtype)."""

    def __init__(self):
        self._pool: Dict[Tuple[int, str, str], np.ndarray] = {}

    def get(self, nelems: int, dtype, tag: str = "") -> np.ndarray:
        """A buffer of ``nelems`` elements; reused across calls.

        ``tag`` separates buffers that must coexist (e.g. one per
        outstanding receive direction).
        """
        key = (int(nelems), np.dtype(dtype).str, tag)
        buf = self._pool.get(key)
        if buf is None:
            buf = np.empty(int(nelems), dtype=dtype)
            self._pool[key] = buf
        return buf

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._pool.values())

    def __len__(self) -> int:
        return len(self._pool)
