"""Halo-region geometry (Fig. 6b).

Each sub-tensor is dissected into three parts:

- the **outer halo region**: ghost cells receiving neighbours' data,
- the **inner halo region**: boundary strips of valid data that are
  *sent* to neighbours,
- the **inner region**: valid data not participating in exchange.

This module computes the numpy slices for each region over a process's
*padded* local array, per dimension and direction, for the
dimension-by-dimension exchange protocol (exchanging dimension 0 first,
then dimension 1 including the freshly-filled dim-0 ghosts, and so on —
which delivers edge/corner data for box stencils with only ``2·ndim``
messages per process).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "HaloSpec",
    "Region",
    "DiagRegion",
    "halo_regions",
    "diag_regions",
    "partition_regions",
    "core_owned_regions",
]

Slices = Tuple[slice, ...]


@dataclass(frozen=True)
class Region:
    """One face strip of the exchange, for one dimension + direction.

    ``send`` selects the inner-halo strip to pack; ``recv`` the outer
    halo strip to fill.  Both are slices over the padded local array.
    ``dim`` is the exchange dimension; ``direction`` is -1 (towards
    lower coordinates) or +1.
    """

    dim: int
    direction: int
    send: Slices
    recv: Slices

    def count(self, padded_shape: Sequence[int]) -> int:
        """Number of elements in the strip."""
        n = 1
        for d, sl in enumerate(self.send):
            start, stop, _ = sl.indices(padded_shape[d])
            n *= stop - start
        return n


@dataclass(frozen=True)
class HaloSpec:
    """Halo configuration of one sub-domain."""

    sub_shape: Tuple[int, ...]
    halo: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.sub_shape) != len(self.halo):
            raise ValueError("halo rank mismatch")
        for s, h in zip(self.sub_shape, self.halo):
            if h < 0:
                raise ValueError("halo widths must be >= 0")
            if h > s:
                raise ValueError(
                    f"halo {h} wider than sub-domain extent {s}: "
                    "the inner halo strips would overlap"
                )

    @property
    def padded_shape(self) -> Tuple[int, ...]:
        return tuple(s + 2 * h for s, h in zip(self.sub_shape, self.halo))

    def interior(self) -> Slices:
        """The valid region of the padded array."""
        return tuple(
            slice(h, h + s) for s, h in zip(self.sub_shape, self.halo)
        )


def halo_regions(spec: HaloSpec) -> List[Region]:
    """Exchange regions in dimension order, both directions per dim.

    The strips of dimension ``d`` span the *full padded extent* of all
    earlier dimensions (so corners propagate) and the padded extent of
    later dimensions as well — later dims' ghosts are garbage until
    their own phase, but sending them is harmless and keeps strips
    rectangular; what matters is that dimension phases run in order.
    """
    ndim = len(spec.sub_shape)
    regions: List[Region] = []
    for d in range(ndim):
        h = spec.halo[d]
        if h == 0:
            continue
        s = spec.sub_shape[d]
        full = [slice(None)] * ndim
        for direction in (-1, +1):
            send = list(full)
            recv = list(full)
            if direction == -1:
                # send the low inner strip, receive into the low ghosts
                send[d] = slice(h, 2 * h)
                recv[d] = slice(0, h)
            else:
                send[d] = slice(s, s + h)  # == h + s - h .. h + s
                recv[d] = slice(h + s, h + s + h)
            regions.append(
                Region(d, direction, tuple(send), tuple(recv))
            )
    return regions


@dataclass(frozen=True)
class DiagRegion:
    """One *direct* exchange block, addressed by a neighbour offset.

    ``offset`` is a vector in ``{-1, 0, +1}^ndim`` naming the
    neighbouring sub-domain the block is exchanged with (face blocks
    have one nonzero component, edge/corner blocks several).  Unlike
    the staged :class:`Region` strips, the slices span only the *valid*
    extent of the zero-offset dimensions, so every ghost cell is
    covered by exactly one block and no relaying through dimension
    phases is needed.
    """

    offset: Tuple[int, ...]
    send: Slices
    recv: Slices

    def count(self, padded_shape: Sequence[int]) -> int:
        """Number of elements in the block."""
        n = 1
        for d, sl in enumerate(self.send):
            start, stop, _ = sl.indices(padded_shape[d])
            n *= stop - start
        return n


def diag_regions(spec: HaloSpec) -> List[DiagRegion]:
    """Direct-neighbour exchange blocks in canonical offset order.

    One block per offset in ``{-1, 0, +1}^ndim`` (origin excluded;
    dimensions with zero halo are pinned to 0), ordered
    lexicographically.  The block at offset ``o`` sent by a rank lands
    in the receiver's ghost block at offset ``-o``; because both sides
    enumerate offsets in the same canonical order, coalesced
    per-neighbour messages have a deterministic strip layout even when
    one peer is a neighbour at several offsets (small periodic grids).
    """
    ndim = len(spec.sub_shape)
    choices = [
        (-1, 0, +1) if spec.halo[d] > 0 else (0,) for d in range(ndim)
    ]
    regions: List[DiagRegion] = []
    for offset in itertools.product(*choices):
        if all(o == 0 for o in offset):
            continue
        send: List[slice] = []
        recv: List[slice] = []
        for d, o in enumerate(offset):
            s, h = spec.sub_shape[d], spec.halo[d]
            if o == 0:
                send.append(slice(h, h + s))
                recv.append(slice(h, h + s))
            elif o == -1:
                send.append(slice(h, 2 * h))
                recv.append(slice(0, h))
            else:
                send.append(slice(s, s + h))
                recv.append(slice(h + s, h + s + h))
        regions.append(DiagRegion(offset, tuple(send), tuple(recv)))
    return regions


def core_owned_regions(
    sub_shape: Sequence[int], width: Sequence[int]
) -> Tuple[Optional[List[Tuple[int, int]]], List[List[Tuple[int, int]]]]:
    """Split the iteration space for compute/communication overlap.

    Returns ``(core, owned)`` in *interior* coordinates (the executor's
    ``(lo, hi)`` region format).  ``core`` is the block of cells at
    least ``width[d]`` away from every sub-domain edge — its stencil
    footprint stays inside the interior, so it can be computed while
    ghost exchanges are in flight.  ``owned`` is a list of disjoint
    shell slabs covering the rest; they read ghost cells and must wait
    for the exchange to finish.  ``core`` is ``None`` when the
    sub-domain is too thin to have one (then the shell covers
    everything).
    """
    ndim = len(sub_shape)
    if len(width) != ndim:
        raise ValueError("width rank mismatch")
    lo = [min(max(int(w), 0), s) for w, s in zip(width, sub_shape)]
    hi = [max(s - w, l) for w, s, l in zip(width, sub_shape, lo)]
    have_core = all(l < h for l, h in zip(lo, hi))
    core = [(l, h) for l, h in zip(lo, hi)] if have_core else None
    owned: List[List[Tuple[int, int]]] = []
    for d in range(ndim):
        if lo[d] == 0 and hi[d] == sub_shape[d]:
            continue  # no shell in this dimension
        # dims before d are restricted to their core interval (already
        # covered by earlier slabs outside it), dim d takes the edge
        # bands, dims after d span the full extent
        prefix = [(lo[k], hi[k]) for k in range(d)]
        if any(a >= b for a, b in prefix):
            continue
        suffix = [(0, sub_shape[k]) for k in range(d + 1, ndim)]
        if lo[d] > 0:
            owned.append(prefix + [(0, lo[d])] + suffix)
        if hi[d] < sub_shape[d]:
            owned.append(prefix + [(hi[d], sub_shape[d])] + suffix)
    return core, owned


def partition_regions(spec: HaloSpec) -> Tuple[Slices, List[Slices], List[Slices]]:
    """(inner region, inner halo strips, outer halo strips) — Fig. 6b.

    The *inner region* excludes the inner-halo strips; the strips here
    are face-aligned over the valid region only (no padding), used for
    accounting and the Fig. 6 geometry tests rather than the exchange
    protocol itself.
    """
    ndim = len(spec.sub_shape)
    inner = tuple(
        slice(2 * h, h + s - h) if h > 0 else slice(0, s + 2 * h)
        for s, h in zip(spec.sub_shape, spec.halo)
    )
    inner_strips: List[Slices] = []
    outer_strips: List[Slices] = []
    valid = spec.interior()
    for d in range(ndim):
        h = spec.halo[d]
        if h == 0:
            continue
        s = spec.sub_shape[d]
        lo_in = list(valid)
        hi_in = list(valid)
        lo_in[d] = slice(h, 2 * h)
        hi_in[d] = slice(s, s + h)
        inner_strips += [tuple(lo_in), tuple(hi_in)]
        lo_out = list(valid)
        hi_out = list(valid)
        lo_out[d] = slice(0, h)
        hi_out[d] = slice(h + s, h + s + h)
        outer_strips += [tuple(lo_out), tuple(hi_out)]
    return inner, inner_strips, outer_strips
