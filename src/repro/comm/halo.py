"""Halo-region geometry (Fig. 6b).

Each sub-tensor is dissected into three parts:

- the **outer halo region**: ghost cells receiving neighbours' data,
- the **inner halo region**: boundary strips of valid data that are
  *sent* to neighbours,
- the **inner region**: valid data not participating in exchange.

This module computes the numpy slices for each region over a process's
*padded* local array, per dimension and direction, for the
dimension-by-dimension exchange protocol (exchanging dimension 0 first,
then dimension 1 including the freshly-filled dim-0 ghosts, and so on —
which delivers edge/corner data for box stencils with only ``2·ndim``
messages per process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["HaloSpec", "Region", "halo_regions", "partition_regions"]

Slices = Tuple[slice, ...]


@dataclass(frozen=True)
class Region:
    """One face strip of the exchange, for one dimension + direction.

    ``send`` selects the inner-halo strip to pack; ``recv`` the outer
    halo strip to fill.  Both are slices over the padded local array.
    ``dim`` is the exchange dimension; ``direction`` is -1 (towards
    lower coordinates) or +1.
    """

    dim: int
    direction: int
    send: Slices
    recv: Slices

    def count(self, padded_shape: Sequence[int]) -> int:
        """Number of elements in the strip."""
        n = 1
        for d, sl in enumerate(self.send):
            start, stop, _ = sl.indices(padded_shape[d])
            n *= stop - start
        return n


@dataclass(frozen=True)
class HaloSpec:
    """Halo configuration of one sub-domain."""

    sub_shape: Tuple[int, ...]
    halo: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.sub_shape) != len(self.halo):
            raise ValueError("halo rank mismatch")
        for s, h in zip(self.sub_shape, self.halo):
            if h < 0:
                raise ValueError("halo widths must be >= 0")
            if h > s:
                raise ValueError(
                    f"halo {h} wider than sub-domain extent {s}: "
                    "the inner halo strips would overlap"
                )

    @property
    def padded_shape(self) -> Tuple[int, ...]:
        return tuple(s + 2 * h for s, h in zip(self.sub_shape, self.halo))

    def interior(self) -> Slices:
        """The valid region of the padded array."""
        return tuple(
            slice(h, h + s) for s, h in zip(self.sub_shape, self.halo)
        )


def halo_regions(spec: HaloSpec) -> List[Region]:
    """Exchange regions in dimension order, both directions per dim.

    The strips of dimension ``d`` span the *full padded extent* of all
    earlier dimensions (so corners propagate) and the padded extent of
    later dimensions as well — later dims' ghosts are garbage until
    their own phase, but sending them is harmless and keeps strips
    rectangular; what matters is that dimension phases run in order.
    """
    ndim = len(spec.sub_shape)
    regions: List[Region] = []
    for d in range(ndim):
        h = spec.halo[d]
        if h == 0:
            continue
        s = spec.sub_shape[d]
        full = [slice(None)] * ndim
        for direction in (-1, +1):
            send = list(full)
            recv = list(full)
            if direction == -1:
                # send the low inner strip, receive into the low ghosts
                send[d] = slice(h, 2 * h)
                recv[d] = slice(0, h)
            else:
                send[d] = slice(s, s + h)  # == h + s - h .. h + s
                recv[d] = slice(h + s, h + s + h)
            regions.append(
                Region(d, direction, tuple(send), tuple(recv))
            )
    return regions


def partition_regions(spec: HaloSpec) -> Tuple[Slices, List[Slices], List[Slices]]:
    """(inner region, inner halo strips, outer halo strips) — Fig. 6b.

    The *inner region* excludes the inner-halo strips; the strips here
    are face-aligned over the valid region only (no padding), used for
    accounting and the Fig. 6 geometry tests rather than the exchange
    protocol itself.
    """
    ndim = len(spec.sub_shape)
    inner = tuple(
        slice(2 * h, h + s - h) if h > 0 else slice(0, s + 2 * h)
        for s, h in zip(spec.sub_shape, spec.halo)
    )
    inner_strips: List[Slices] = []
    outer_strips: List[Slices] = []
    valid = spec.interior()
    for d in range(ndim):
        h = spec.halo[d]
        if h == 0:
            continue
        s = spec.sub_shape[d]
        lo_in = list(valid)
        hi_in = list(valid)
        lo_in[d] = slice(h, 2 * h)
        hi_in[d] = slice(s, s + h)
        inner_strips += [tuple(lo_in), tuple(hi_in)]
        lo_out = list(valid)
        hi_out = list(valid)
        lo_out[d] = slice(0, h)
        hi_out[d] = slice(h + s, h + s + h)
        outer_strips += [tuple(lo_out), tuple(hi_out)]
    return inner, inner_strips, outer_strips
