"""Static analysis of stencil kernels: the Table-4 characteristics.

For each benchmark the paper reports bytes read and written per grid
point, arithmetic operations, and the number of time dependencies.
These all fall out of the IR:

- ``Read(Byte)``  = distinct stencil points × element size (the paper
  counts the stencil's data *footprint*, not cached reuse),
- ``Write(Byte)`` = one output element,
- ``Ops(+-×)``    = operator nodes in the update expression,
- ``Time Dep.``   = distinct past timesteps read by the Stencil.

The same module derives operational intensity for the roofline analysis
(Fig. 9) and the halo-traffic volume used by the communication model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .kernel import Kernel
from .stencil import Stencil

__all__ = [
    "KernelCharacteristics",
    "characterize_kernel",
    "characterize_stencil",
    "halo_traffic_bytes",
    "classify_shape",
    "free_scalars",
]


@dataclass(frozen=True)
class KernelCharacteristics:
    """Per-grid-point cost summary of a stencil (Table 4 row)."""

    name: str
    read_bytes: int
    write_bytes: int
    ops: int
    time_dependencies: int

    @property
    def operational_intensity(self) -> float:
        """Flops per byte of memory traffic (roofline x-coordinate).

        Uses the footprint traffic (read + write), matching the paper's
        roofline placement where high-order box stencils move right.
        """
        return self.ops / float(self.read_bytes + self.write_bytes)


def characterize_kernel(kernel: Kernel, time_dependencies: int = 1) -> KernelCharacteristics:
    """Compute the Table-4 characteristics of a single kernel."""
    elem = max(
        (t.dtype.nbytes for t in kernel.input_tensors), default=8
    )
    return KernelCharacteristics(
        name=kernel.name,
        read_bytes=kernel.npoints * elem,
        write_bytes=elem,
        ops=kernel.flops(),
        time_dependencies=time_dependencies,
    )


def characterize_stencil(stencil: Stencil) -> KernelCharacteristics:
    """Characteristics of a full Stencil (uses its dominant kernel).

    The paper's Table 4 rows describe the *spatial* kernel; the stencil
    layer only contributes the time-dependency count and the (few)
    combine operations.
    """
    kern = stencil.kernels[0]
    base = characterize_kernel(kern, stencil.time_dependencies)
    # Reading N past planes multiplies footprint traffic; Table 4 reports
    # the single-application footprint, which we keep, but expose the
    # combine-aware totals for the performance model.
    return base


def total_traffic_bytes(stencil: Stencil, npoints_domain: int) -> Tuple[int, int]:
    """(read, write) bytes for one full timestep over ``npoints_domain``.

    Accounts for every kernel application at every time offset plus the
    final combined write.
    """
    elem = stencil.output.dtype.nbytes
    read = 0
    for app in stencil.applications:
        read += app.kernel.npoints * elem * npoints_domain
    write = elem * npoints_domain
    return read, write


def stencil_flops_per_point(stencil: Stencil) -> int:
    """Arithmetic per output point: kernel flops at each offset + combine."""
    per_apply = sum(app.kernel.flops() for app in stencil.applications)
    n_apply = len(stencil.applications)
    combine_ops = max(0, n_apply - 1)
    return per_apply + combine_ops


def halo_traffic_bytes(stencil: Stencil, sub_shape: Tuple[int, ...]) -> int:
    """Bytes sent per process per timestep for halo exchange.

    For a sub-domain of ``sub_shape``, each dimension ``d`` with radius
    ``r_d`` ships two faces of thickness ``r_d`` (both directions).
    Edge/corner regions are counted once via the face decomposition used
    by the exchange protocol (faces only, matching star stencils; box
    stencils additionally ship edges/corners, which adds lower-order
    terms the model includes).
    """
    elem = stencil.output.dtype.nbytes
    rad = stencil.radius
    if len(sub_shape) != len(rad):
        raise ValueError("sub_shape rank does not match stencil rank")
    total = 0
    for d, r in enumerate(rad):
        if r == 0:
            continue
        face = 1
        for dd, s in enumerate(sub_shape):
            face *= r if dd == d else s
        total += 2 * face  # both directions
    if _is_box(stencil):
        # box stencils also need the diagonal (edge/corner) regions
        total += _diagonal_bytes(sub_shape, rad)
    return total * elem


def _is_box(stencil: Stencil) -> bool:
    for kern in stencil.kernels:
        for off in kern.footprint:
            if sum(1 for o in off if o != 0) > 1:
                return True
    return False


def _diagonal_bytes(sub_shape, rad) -> int:
    """Points in the edge/corner halo regions (≥2 dims offset)."""
    import itertools

    total_points = 1
    for s, r in zip(sub_shape, rad):
        total_points *= s + 2 * r
    # inclusion-exclusion: padded - interior - faces
    interior = 1
    for s in sub_shape:
        interior *= s
    faces = 0
    for d, r in enumerate(rad):
        if r == 0:
            continue
        face = 1
        for dd, s in enumerate(sub_shape):
            face *= r if dd == d else s
        faces += 2 * face
    return total_points - interior - faces


def free_scalars(stencil: Stencil):
    """Names of free scalar variables (runtime coefficients) read by
    any kernel — ``DefVar`` symbols that are not loop indices."""
    from .expr import VarExpr

    names = set()
    for kern in stencil.kernels:
        loop_names = {v.name for v in kern.loop_vars}
        for node in kern.expr.walk():
            if isinstance(node, VarExpr) and node.name not in loop_names:
                names.add(node.name)
    return sorted(names)


def classify_shape(kernel: Kernel) -> str:
    """Classify the stencil's shape: ``"star"`` or ``"box"``.

    A star stencil only touches points offset along a single axis; a box
    stencil includes diagonal neighbours.
    """
    for off in kernel.footprint:
        nonzero = sum(1 for o in off if o != 0)
        if nonzero > 1:
            return "box"
    return "star"
