"""Expression IR nodes (Table 2 of the paper).

The expression IR is a small arithmetic language over scalar variables,
constants and tensor accesses with constant spatial offsets.  The node
inventory follows Table 2:

============== =====================================================
Node           Description
============== =====================================================
``AssignExpr``   value assignment (tensor access <- expression)
``OperatorExpr`` unary / binary math operator
``CallFuncExpr`` external function call (e.g. ``sqrt``)
``IndexExpr``    index calculation (loop variable + constant offset)
============== =====================================================

plus the leaves ``ConstExpr`` (literal) and ``VarExpr`` (scalar
variable) and ``TensorAccess`` which ties a tensor to a tuple of
:class:`IndexExpr` and an optional *time offset* used by stencils with
multiple time dependencies.

All nodes are immutable; Python operators are overloaded so stencil
authors can write ``c0 * B[k, j, i] + c1 * B[k, j, i - 1]`` directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Tuple, Union

__all__ = [
    "Expr",
    "ConstExpr",
    "VarExpr",
    "IndexExpr",
    "TensorAccess",
    "OperatorExpr",
    "CallFuncExpr",
    "AssignExpr",
    "as_expr",
    "UNARY_OPS",
    "BINARY_OPS",
    "KNOWN_FUNCS",
]

Number = Union[int, float]

#: Unary operators supported by :class:`OperatorExpr`.
UNARY_OPS = {"neg": lambda a: -a}

#: Binary operators supported by :class:`OperatorExpr`.
BINARY_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
}

#: External functions callable through :class:`CallFuncExpr`.  Each maps
#: to a numpy ufunc in the executable backend and to a libm call in the
#: C backend.
KNOWN_FUNCS = {
    "sqrt": "sqrt",
    "sin": "sin",
    "cos": "cos",
    "exp": "exp",
    "fabs": "abs",
    "pow": "power",
    "fmin": "minimum",
    "fmax": "maximum",
}

_C_OP_SPELLING = {"add": "+", "sub": "-", "mul": "*", "div": "/"}


class Expr:
    """Base class of all expression IR nodes."""

    # -- operator overloading -------------------------------------------------
    def __add__(self, other) -> "OperatorExpr":
        return OperatorExpr("add", (self, as_expr(other)))

    def __radd__(self, other) -> "OperatorExpr":
        return OperatorExpr("add", (as_expr(other), self))

    def __sub__(self, other) -> "OperatorExpr":
        return OperatorExpr("sub", (self, as_expr(other)))

    def __rsub__(self, other) -> "OperatorExpr":
        return OperatorExpr("sub", (as_expr(other), self))

    def __mul__(self, other) -> "OperatorExpr":
        return OperatorExpr("mul", (self, as_expr(other)))

    def __rmul__(self, other) -> "OperatorExpr":
        return OperatorExpr("mul", (as_expr(other), self))

    def __truediv__(self, other) -> "OperatorExpr":
        return OperatorExpr("div", (self, as_expr(other)))

    def __rtruediv__(self, other) -> "OperatorExpr":
        return OperatorExpr("div", (as_expr(other), self))

    def __neg__(self) -> "OperatorExpr":
        return OperatorExpr("neg", (self,))

    # -- traversal -------------------------------------------------------------
    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions of this node."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree (self included)."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- pretty printing ---------------------------------------------------------
    def c_source(self) -> str:
        """A C-syntax rendering of the expression (used by the backends)."""
        raise NotImplementedError


def as_expr(value) -> Expr:
    """Coerce a Python number (or Expr) into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid stencil expressions")
    if isinstance(value, (int, float)):
        return ConstExpr(value)
    raise TypeError(f"cannot convert {type(value).__name__} to Expr")


@dataclass(frozen=True)
class ConstExpr(Expr):
    """A numeric literal."""

    value: Number

    def c_source(self) -> str:
        if isinstance(self.value, float):
            if math.isinf(self.value) or math.isnan(self.value):
                raise ValueError(f"non-finite constant {self.value!r} in IR")
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class VarExpr(Expr):
    """A scalar variable (loop index or runtime coefficient).

    Created in the DSL via ``DefVar(name, dtype)`` / ``indices``.
    """

    name: str
    dtype_name: str = "i32"

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"invalid variable name {self.name!r}")

    def c_source(self) -> str:
        return self.name

    # Loop-index arithmetic: ``i - 1`` inside a subscript must stay an
    # IndexExpr so the halo analysis can read the constant offset.
    def __add__(self, other):
        if isinstance(other, int):
            return IndexExpr(self, other)
        return super().__add__(other)

    def __sub__(self, other):
        if isinstance(other, int):
            return IndexExpr(self, -other)
        return super().__sub__(other)


@dataclass(frozen=True)
class IndexExpr(Expr):
    """An index calculation: loop variable plus a constant offset."""

    var: VarExpr
    offset: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.offset, int):
            raise TypeError("IndexExpr offset must be an int")

    def children(self) -> Tuple[Expr, ...]:
        return (self.var,)

    def c_source(self) -> str:
        if self.offset == 0:
            return self.var.name
        sign = "+" if self.offset > 0 else "-"
        return f"{self.var.name} {sign} {abs(self.offset)}"

    def __add__(self, other):
        if isinstance(other, int):
            return IndexExpr(self.var, self.offset + other)
        return super().__add__(other)

    def __sub__(self, other):
        if isinstance(other, int):
            return IndexExpr(self.var, self.offset - other)
        return super().__sub__(other)


@dataclass(frozen=True)
class TensorAccess(Expr):
    """Read (or, as an assignment target, write) one grid point.

    ``indices`` holds one :class:`IndexExpr` per spatial dimension.
    ``time_offset`` selects a plane of the sliding time window: 0 is the
    plane being produced, -1 the previous timestep, and so on.
    """

    tensor: "object"  # SpNode/TeNode; typed loosely to avoid a cycle
    indices: Tuple[IndexExpr, ...]
    time_offset: int = 0

    def __post_init__(self) -> None:
        norm = []
        for ix in self.indices:
            if isinstance(ix, VarExpr):
                ix = IndexExpr(ix, 0)
            if not isinstance(ix, IndexExpr):
                raise TypeError(
                    "tensor subscripts must be loop variables with constant "
                    f"offsets, got {type(ix).__name__}"
                )
            norm.append(ix)
        object.__setattr__(self, "indices", tuple(norm))
        if self.time_offset > 0:
            raise ValueError(
                "a stencil cannot read from the future: time_offset must be <= 0"
            )

    @property
    def offsets(self) -> Tuple[int, ...]:
        """The constant spatial offset vector of this access."""
        return tuple(ix.offset for ix in self.indices)

    def children(self) -> Tuple[Expr, ...]:
        return self.indices

    def c_source(self) -> str:
        subs = "][".join(ix.c_source() for ix in self.indices)
        name = getattr(self.tensor, "name", str(self.tensor))
        if self.time_offset != 0:
            return f"{name}_t{abs(self.time_offset)}[{subs}]"
        return f"{name}[{subs}]"


@dataclass(frozen=True)
class OperatorExpr(Expr):
    """A unary or binary arithmetic operator."""

    op: str
    operands: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.op in UNARY_OPS:
            if len(self.operands) != 1:
                raise ValueError(f"unary op {self.op!r} takes 1 operand")
        elif self.op in BINARY_OPS:
            if len(self.operands) != 2:
                raise ValueError(f"binary op {self.op!r} takes 2 operands")
        else:
            raise ValueError(f"unknown operator {self.op!r}")
        object.__setattr__(self, "operands", tuple(self.operands))

    def children(self) -> Tuple[Expr, ...]:
        return self.operands

    def c_source(self) -> str:
        if self.op == "neg":
            return f"(-{self.operands[0].c_source()})"
        spell = _C_OP_SPELLING[self.op]
        lhs, rhs = self.operands
        return f"({lhs.c_source()} {spell} {rhs.c_source()})"


@dataclass(frozen=True)
class CallFuncExpr(Expr):
    """A call to an external (libm-style) function."""

    func: str
    args: Tuple[Expr, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.func not in KNOWN_FUNCS:
            raise ValueError(
                f"unknown external function {self.func!r}; "
                f"supported: {sorted(KNOWN_FUNCS)}"
            )
        object.__setattr__(self, "args", tuple(as_expr(a) for a in self.args))

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def c_source(self) -> str:
        args = ", ".join(a.c_source() for a in self.args)
        return f"{self.func}({args})"


@dataclass(frozen=True)
class AssignExpr(Expr):
    """A value assignment: one output grid point per loop iteration."""

    target: TensorAccess
    value: Expr

    def __post_init__(self) -> None:
        if not isinstance(self.target, TensorAccess):
            raise TypeError("assignment target must be a TensorAccess")
        if any(ix.offset != 0 for ix in self.target.indices):
            raise ValueError(
                "assignment target must be the centre point (zero offsets)"
            )
        object.__setattr__(self, "value", as_expr(self.value))

    def children(self) -> Tuple[Expr, ...]:
        return (self.target, self.value)

    def c_source(self) -> str:
        return f"{self.target.c_source()} = {self.value.c_source()};"
