"""Whole-program IR validation.

Run before scheduling and code generation; collects all violations
instead of stopping at the first so DSL users get a complete report.

:func:`stencil_issues` is the collector — it returns ``(category,
message)`` pairs so callers that need structure (the static analyzer in
:mod:`repro.analysis`) can map categories to diagnostic codes, while
:func:`validate_stencil` keeps the original raise-on-anything contract.
"""

from __future__ import annotations

from typing import List, Tuple

from .expr import ConstExpr
from .stencil import Stencil

__all__ = ["ValidationError", "stencil_issues", "validate_stencil"]


class ValidationError(ValueError):
    """Raised when a stencil program is ill-formed; carries all issues."""

    def __init__(self, issues: List[str]):
        self.issues = list(issues)
        super().__init__(
            "invalid stencil program:\n" + "\n".join(f"- {i}" for i in issues)
        )


def stencil_issues(stencil: Stencil) -> List[Tuple[str, str]]:
    """Collect every IR-level problem as ``(category, message)`` pairs.

    Categories: ``halo`` (radius exceeds a halo width), ``time_window``,
    ``dimension``, ``offset``, ``future``, ``dtype``, ``degenerate``.
    """
    issues: List[Tuple[str, str]] = []
    out = stencil.output

    for d, (need, have) in enumerate(zip(stencil.radius, out.halo)):
        if need > have:
            issues.append((
                "halo",
                f"dimension {d}: stencil radius {need} exceeds halo width "
                f"{have} of output {out.name!r}",
            ))

    if stencil.required_time_window > out.time_window:
        issues.append((
            "time_window",
            f"stencil needs a time window of {stencil.required_time_window} "
            f"but {out.name!r} keeps only {out.time_window} planes",
        ))

    dtypes = {out.dtype.name}
    for kern in stencil.kernels:
        for tensor in kern.input_tensors:
            dtypes.add(tensor.dtype.name)
            if tensor.ndim != out.ndim:
                issues.append((
                    "dimension",
                    f"kernel {kern.name!r} reads {tensor.ndim}-D tensor "
                    f"{tensor.name!r} but output is {out.ndim}-D",
                ))
                continue
            halo = getattr(tensor, "halo", (0,) * tensor.ndim)
            for off in kern.footprint:
                for d, o in enumerate(off):
                    if abs(o) > halo[d]:
                        issues.append((
                            "offset",
                            f"kernel {kern.name!r} reads offset {off} of "
                            f"{tensor.name!r} beyond its halo {halo}",
                        ))
                        break

    if len(stencil.applications) > 1:
        for app in stencil.applications:
            for acc in app.kernel.accesses:
                if acc.time_offset > 0:
                    issues.append((
                        "future",
                        f"kernel {app.kernel.name!r} reads a future plane",
                    ))

    if len(dtypes) > 1:
        issues.append((
            "dtype",
            f"mixed dtypes in one stencil: {sorted(dtypes)} (cast inputs "
            "to a common type)",
        ))

    for kern in stencil.kernels:
        if kern.npoints == 0:
            issues.append((
                "degenerate", f"kernel {kern.name!r} reads no tensor data"
            ))
        if all(
            isinstance(n, ConstExpr)
            for n in kern.expr.walk()
            if not n.children()
        ):
            issues.append((
                "degenerate", f"kernel {kern.name!r} is a constant expression"
            ))

    return issues


def validate_stencil(stencil: Stencil) -> None:
    """Validate a stencil program, raising :class:`ValidationError`.

    Checks:
    - halo widths cover every kernel's radius,
    - the time window covers the deepest time dependency,
    - every kernel reads only tensors with matching dimensionality,
    - offsets stay within the declared halo,
    - kernels do not read the plane currently being written (offset 0
      inside a multi-time-dependency stencil would be a race),
    - dtype consistency across the tensors of one stencil.
    """
    issues = [msg for _, msg in stencil_issues(stencil)]
    if issues:
        raise ValidationError(issues)
