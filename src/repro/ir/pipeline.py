"""Multi-stage stencil pipelines (the STELLA-style pattern).

The related work (Sec. 2.4) singles out STELLA for "stencils with
multiple stages in PDEs": one timestep applies a *sequence* of stencil
sweeps, each reading the previous stages' fresh output (plus history).
A classic instance is a smoother followed by a residual evaluation in a
multigrid solver such as HPGMG — the very benchmark family the paper's
3d7pt comes from.

A :class:`StagePipeline` is an ordered list of
:class:`~repro.ir.stencil.Stencil` stages with distinct output tensors.

Time semantics (what a tensor access means while computing step ``t``):

- accesses to the stage's *own* output tensor follow ordinary stencil
  semantics — the kernel application offset selects the history plane
  (``K[t-1]`` reads the previous step);
- accesses to an **earlier stage's output** are *stage references*: the
  access's own time offset is relative to the current step, so offset 0
  reads the plane that stage just produced (``A.at(-1)[...]`` reads its
  previous step's output);
- reading a *later* stage (or one's own output) at offset 0 is a
  dependency violation and rejected at validation.

Each stage's halo is refreshed (boundary fill / exchange) before the
next stage starts, so cross-stage reads may use spatial offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .stencil import Stencil
from .tensor import SpNode
from .validate import ValidationError, validate_stencil

__all__ = ["StagePipeline"]


@dataclass(frozen=True)
class StagePipeline:
    """An ordered sequence of stencil stages executed each timestep."""

    stages: Tuple[Stencil, ...]

    def __post_init__(self) -> None:
        stages = tuple(self.stages)
        object.__setattr__(self, "stages", stages)
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [st.output.name for st in stages]
        if len(set(names)) != len(names):
            raise ValueError(
                f"stage outputs must be distinct tensors, got {names}"
            )
        self._validate()

    # -- validation ------------------------------------------------------------
    def _validate(self) -> None:
        issues: List[str] = []
        produced: Set[str] = set()
        all_outputs = {st.output.name for st in self.stages}
        shapes = {st.output.shape for st in self.stages}
        if len(shapes) != 1:
            issues.append(
                f"stages must share one domain shape, got {sorted(shapes)}"
            )
        for idx, stage in enumerate(self.stages):
            try:
                validate_stencil(stage)
            except ValidationError as err:
                issues.extend(
                    f"stage {idx} ({stage.output.name}): {i}"
                    for i in err.issues
                )
            for app in stage.applications:
                for acc in app.kernel.accesses:
                    name = acc.tensor.name
                    if name in all_outputs and name != stage.output.name:
                        # stage reference: offset relative to step t
                        if acc.time_offset == 0 and name not in produced:
                            issues.append(
                                f"stage {idx} ({stage.output.name}) reads "
                                f"{name!r} at the current step, but that "
                                "stage runs later in the pipeline"
                            )
                        src = self.stage_by_output(name).output
                        if -acc.time_offset + 1 > src.time_window:
                            issues.append(
                                f"stage {idx} reads {name!r} at offset "
                                f"{acc.time_offset}, beyond its window of "
                                f"{src.time_window}"
                            )
            produced.add(stage.output.name)
        if issues:
            raise ValidationError(issues)

    # -- derived properties -------------------------------------------------------
    @property
    def nstages(self) -> int:
        return len(self.stages)

    @property
    def outputs(self) -> Tuple[SpNode, ...]:
        return tuple(st.output for st in self.stages)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.stages[0].output.shape

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def stage_by_output(self, name: str) -> Stencil:
        for st in self.stages:
            if st.output.name == name:
                return st
        raise KeyError(f"no stage produces {name!r}")

    def aux_tensors(self) -> Dict[str, SpNode]:
        """Read-only tensors not produced by any stage."""
        outputs = {st.output.name for st in self.stages}
        aux: Dict[str, SpNode] = {}
        for stage in self.stages:
            for kern in stage.kernels:
                for tensor in kern.input_tensors:
                    if tensor.name not in outputs:
                        aux.setdefault(tensor.name, tensor)
        return aux

    def required_history(self) -> Dict[str, int]:
        """Per stage-output tensor: how many initial planes are needed.

        Own-output reads go through the application offsets (a stage
        reading ``K[t-2]`` needs 2 seed planes); cross-stage references
        at negative offsets need that many seeds of the source stage.
        """
        depth: Dict[str, int] = {st.output.name: 0 for st in self.stages}
        for stage in self.stages:
            own = stage.output.name
            reads_own = any(
                acc.tensor.name == own
                for app in stage.applications
                for acc in app.kernel.accesses
            )
            if reads_own:
                depth[own] = max(
                    depth[own], stage.required_time_window - 1
                )
            for app in stage.applications:
                for acc in app.kernel.accesses:
                    name = acc.tensor.name
                    if name in depth and name != own:
                        depth[name] = max(depth[name], -acc.time_offset)
        return depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        chain = " -> ".join(st.output.name for st in self.stages)
        return f"StagePipeline({chain})"
