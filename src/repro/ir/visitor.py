"""Expression-tree traversal and rewriting utilities.

The scheduling primitives (Sec. 4.3) "rewrite the Axis and Expression IR
in Kernel" — :func:`transform` is the generic bottom-up rewriter they
use, and the helpers below cover the common rewrites (tensor
substitution for ``cache_read``/``cache_write``, offset shifting for
halo-relative addressing, constant folding).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .expr import (
    AssignExpr,
    CallFuncExpr,
    ConstExpr,
    Expr,
    IndexExpr,
    OperatorExpr,
    TensorAccess,
    BINARY_OPS,
    UNARY_OPS,
)

__all__ = [
    "transform",
    "substitute_tensor",
    "shift_offsets",
    "fold_constants",
    "count_nodes",
]


def transform(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Rebuild ``expr`` bottom-up, letting ``fn`` replace any node.

    ``fn`` is called on each node *after* its children have been
    rebuilt; returning ``None`` keeps the (rebuilt) node.
    """
    rebuilt = _rebuild(expr, fn)
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def _rebuild(expr: Expr, fn) -> Expr:
    if isinstance(expr, OperatorExpr):
        ops = tuple(transform(o, fn) for o in expr.operands)
        return OperatorExpr(expr.op, ops)
    if isinstance(expr, CallFuncExpr):
        return CallFuncExpr(expr.func, tuple(transform(a, fn) for a in expr.args))
    if isinstance(expr, AssignExpr):
        target = transform(expr.target, fn)
        if not isinstance(target, TensorAccess):
            raise TypeError("assignment target rewritten to a non-access")
        return AssignExpr(target, transform(expr.value, fn))
    # Leaves (Const, Var, Index, TensorAccess, KernelApply) are returned
    # as-is; fn gets its chance in transform().
    return expr


def substitute_tensor(expr: Expr, mapping: Dict[str, object]) -> Expr:
    """Replace tensors by name — the core of ``cache_read``/``cache_write``.

    ``mapping`` maps tensor names to replacement tensor nodes (e.g. an
    SPM buffer TeNode).  Offsets and time offsets are preserved.
    """

    def fn(node: Expr) -> Optional[Expr]:
        if isinstance(node, TensorAccess) and node.tensor.name in mapping:
            return TensorAccess(
                mapping[node.tensor.name], node.indices, node.time_offset
            )
        return None

    return transform(expr, fn)


def shift_offsets(expr: Expr, shift) -> Expr:
    """Add a constant per-dimension shift to every tensor access.

    Used when lowering valid-domain coordinates to padded (halo
    inclusive) buffer coordinates: a halo of width ``h`` shifts every
    subscript by ``+h``.
    """
    shift = tuple(int(s) for s in shift)

    def fn(node: Expr) -> Optional[Expr]:
        if isinstance(node, TensorAccess):
            if len(shift) != len(node.indices):
                raise ValueError(
                    f"shift has {len(shift)} entries for a "
                    f"{len(node.indices)}-D access"
                )
            idxs = tuple(
                IndexExpr(ix.var, ix.offset + s)
                for ix, s in zip(node.indices, shift)
            )
            return TensorAccess(node.tensor, idxs, node.time_offset)
        return None

    return transform(expr, fn)


def fold_constants(expr: Expr) -> Expr:
    """Evaluate operator nodes whose operands are all constants."""

    def fn(node: Expr) -> Optional[Expr]:
        if isinstance(node, OperatorExpr) and all(
            isinstance(o, ConstExpr) for o in node.operands
        ):
            vals = [o.value for o in node.operands]
            if node.op in UNARY_OPS:
                return ConstExpr(UNARY_OPS[node.op](vals[0]))
            if node.op == "div" and vals[1] == 0:
                raise ZeroDivisionError("division by constant zero in IR")
            return ConstExpr(BINARY_OPS[node.op](*vals))
        return None

    return transform(expr, fn)


def count_nodes(expr: Expr, node_type=Expr) -> int:
    """Count nodes of a given type in an expression tree."""
    return sum(1 for n in expr.walk() if isinstance(n, node_type))
