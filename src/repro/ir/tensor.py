"""Tensor IR nodes: ``SpNode`` and ``TeNode`` (Table 2).

``SpNode`` is the user-visible tensor *with* a halo region and a sliding
time window; it records the number of dimensions, per-dimension shape,
data type, and per-dimension halo width.  ``TeNode`` is a compiler
temporary *without* a halo region, used to buffer one timestep of the
computation domain.

Subscripting an ``SpNode`` with loop variables produces a
:class:`~repro.ir.expr.TensorAccess`, so users write stencil expressions
directly, e.g. ``B[k, j, i - 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

from .dtypes import DType, f64
from .expr import IndexExpr, TensorAccess, VarExpr

__all__ = ["TensorNode", "SpNode", "TeNode", "normalize_halo"]


def normalize_halo(halo: Union[int, Tuple[int, ...]], ndim: int) -> Tuple[int, ...]:
    """Expand a scalar halo width to one entry per dimension and validate."""
    if isinstance(halo, int):
        halo = (halo,) * ndim
    halo = tuple(int(h) for h in halo)
    if len(halo) != ndim:
        raise ValueError(f"halo has {len(halo)} entries for a {ndim}-D tensor")
    if any(h < 0 for h in halo):
        raise ValueError(f"halo widths must be non-negative, got {halo}")
    return halo


@dataclass(frozen=True)
class TensorNode:
    """Common behaviour of SpNode and TeNode."""

    name: str
    shape: Tuple[int, ...]
    dtype: DType = f64

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"invalid tensor name {self.name!r}")
        shape = tuple(int(s) for s in self.shape)
        if not 1 <= len(shape) <= 3:
            raise ValueError("only 1-D, 2-D and 3-D tensors are supported")
        if any(s <= 0 for s in shape):
            raise ValueError(f"tensor extents must be positive, got {shape}")
        object.__setattr__(self, "shape", shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def npoints(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        """Bytes of one (halo-free) timestep plane of this tensor."""
        return self.npoints * self.dtype.nbytes

    def _subscript(self, key, time_offset: int = 0) -> TensorAccess:
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) != self.ndim:
            raise IndexError(
                f"{self.name} is {self.ndim}-D but was subscripted with "
                f"{len(key)} indices"
            )
        idxs = []
        for k in key:
            if isinstance(k, VarExpr):
                k = IndexExpr(k, 0)
            if not isinstance(k, IndexExpr):
                raise TypeError(
                    "tensor subscripts must be loop variables (optionally "
                    f"plus a constant), got {type(k).__name__}"
                )
            idxs.append(k)
        return TensorAccess(self, tuple(idxs), time_offset=time_offset)

    def __getitem__(self, key) -> TensorAccess:
        return self._subscript(key)


@dataclass(frozen=True)
class SpNode(TensorNode):
    """A tensor with a halo region and a sliding time window.

    ``shape`` is the *valid* (halo-free) computation domain.  The
    allocated buffer for each time plane is ``shape + 2*halo`` per
    dimension, and ``time_window`` planes are kept live at once (Fig. 5:
    a stencil that reads ``t-1`` and ``t-2`` needs a window of 3).
    """

    halo: Tuple[int, ...] = field(default=())
    time_window: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        halo = self.halo if self.halo else (1,) * len(self.shape)
        object.__setattr__(self, "halo", normalize_halo(halo, self.ndim))
        if self.time_window < 2:
            raise ValueError(
                "time_window must be >= 2 (one plane read, one written)"
            )

    @property
    def padded_shape(self) -> Tuple[int, ...]:
        """Per-plane allocation shape, halo included."""
        return tuple(s + 2 * h for s, h in zip(self.shape, self.halo))

    @property
    def alloc_bytes(self) -> int:
        """Total allocated bytes: time_window planes, halo included."""
        n = 1
        for s in self.padded_shape:
            n *= s
        return n * self.dtype.nbytes * self.time_window

    def at(self, time_offset: int):
        """A view of this tensor at a relative timestep (0, -1, -2, ...)."""
        return _TimeView(self, time_offset)


class _TimeView:
    """Subscriptable view of an SpNode at a fixed time offset."""

    def __init__(self, node: SpNode, time_offset: int):
        if time_offset > 0:
            raise ValueError("cannot read a tensor at a future timestep")
        if -time_offset >= node.time_window:
            raise ValueError(
                f"time offset {time_offset} outside window of size "
                f"{node.time_window} for tensor {node.name!r}"
            )
        self.node = node
        self.time_offset = time_offset

    def __getitem__(self, key) -> TensorAccess:
        return self.node._subscript(key, time_offset=self.time_offset)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.node.name}.at({self.time_offset})"


@dataclass(frozen=True)
class TeNode(TensorNode):
    """A compiler temporary holding one timestep, without halo.

    TeNodes are created by the compiler (they are transparent to users,
    Sec. 4.2) to buffer the output domain of a kernel before it is
    committed into the sliding time window of the owning SpNode.
    """

    @classmethod
    def for_spnode(cls, sp: SpNode, suffix: str = "tmp") -> "TeNode":
        return cls(name=f"{sp.name}_{suffix}", shape=sp.shape, dtype=sp.dtype)
