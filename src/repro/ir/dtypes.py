"""Scalar data types supported by the MSC DSL.

The paper (Section 4.2) supports three data types: 32-bit integers
(``i32``), 32-bit floats (``f32``) and 64-bit floats (``f64``).  Each
:class:`DType` knows its width in bytes, its numpy dtype for the
executable backend, its C spelling for the AOT code generator, and the
relative-error tolerance used by the paper's correctness methodology
(Section 5.1: fp32 results must match the serial code to 1e-5, fp64 to
1e-10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DType", "i32", "f32", "f64", "ALL_DTYPES", "dtype_from_name"]


@dataclass(frozen=True)
class DType:
    """A scalar data type.

    Parameters
    ----------
    name:
        The DSL spelling, e.g. ``"f64"``.
    nbytes:
        Width in bytes.
    c_name:
        The C spelling emitted by the AOT backend, e.g. ``"double"``.
    is_float:
        Whether the type is a floating-point type.
    """

    name: str
    nbytes: int
    c_name: str
    is_float: bool

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype used by the executable backend."""
        return np.dtype(
            {"i32": np.int32, "f32": np.float32, "f64": np.float64}[self.name]
        )

    @property
    def tolerance(self) -> float:
        """Relative-error tolerance versus the serial reference (Sec. 5.1)."""
        if not self.is_float:
            return 0.0
        return 1e-5 if self.nbytes == 4 else 1e-10

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType({self.name})"


i32 = DType("i32", 4, "int", is_float=False)
f32 = DType("f32", 4, "float", is_float=True)
f64 = DType("f64", 8, "double", is_float=True)

ALL_DTYPES = (i32, f32, f64)

_BY_NAME = {dt.name: dt for dt in ALL_DTYPES}


def dtype_from_name(name: str) -> DType:
    """Look a :class:`DType` up by its DSL spelling.

    Raises
    ------
    KeyError
        If ``name`` is not one of ``i32``, ``f32``, ``f64``.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown dtype {name!r}; supported: {sorted(_BY_NAME)}"
        ) from None
