"""Nested-loop IR: the ``Axis`` node (Table 2).

An ``Axis`` describes one loop of a loop nest: its identifying variable,
its order in the nest (0 = outermost), the half-open iteration range
``[start, end)`` and the stride.  Scheduling primitives (``tile``,
``reorder``) rewrite axes: ``tile`` splits an axis into an outer and an
inner axis, ``reorder`` permutes the ``order`` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .expr import VarExpr

__all__ = ["Axis"]


@dataclass(frozen=True)
class Axis:
    """One loop of a nest.

    Parameters
    ----------
    id_var:
        The loop variable.
    order:
        Position in the nest, 0 being outermost.
    start, end:
        Half-open iteration bounds.
    stride:
        Iteration stride (>= 1).
    parent:
        For axes produced by ``tile``: the variable name of the axis
        that was split, plus which half this is (``"outer"``/``"inner"``).
    """

    id_var: VarExpr
    order: int
    start: int
    end: int
    stride: int = 1
    parent: Optional[str] = None
    role: Optional[str] = None  # "outer" | "inner" | None

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.end < self.start:
            raise ValueError(
                f"empty axis range [{self.start}, {self.end}) for "
                f"{self.id_var.name}"
            )
        if self.role not in (None, "outer", "inner"):
            raise ValueError(f"invalid axis role {self.role!r}")

    @property
    def name(self) -> str:
        return self.id_var.name

    @property
    def extent(self) -> int:
        """Number of iterations of this loop."""
        span = self.end - self.start
        return (span + self.stride - 1) // self.stride

    def with_order(self, order: int) -> "Axis":
        return replace(self, order=order)

    def split(self, factor: int, outer_name: str, inner_name: str):
        """Split into (outer, inner) axes with inner extent ``factor``.

        This is the loop-fission core of the ``tile`` primitive
        (Sec. 4.3): an axis of extent ``N`` becomes an outer axis of
        extent ``ceil(N/factor)`` and an inner axis of extent
        ``factor``.
        """
        if self.stride != 1:
            raise ValueError("cannot split a strided axis")
        if factor < 1:
            raise ValueError(f"tile factor must be >= 1, got {factor}")
        n = self.end - self.start
        if factor > n:
            raise ValueError(
                f"tile factor {factor} exceeds axis extent {n} of "
                f"{self.name}"
            )
        n_outer = (n + factor - 1) // factor
        outer = Axis(
            VarExpr(outer_name), order=self.order, start=0, end=n_outer,
            parent=self.name, role="outer",
        )
        inner = Axis(
            VarExpr(inner_name), order=self.order + 1, start=0, end=factor,
            parent=self.name, role="inner",
        )
        return outer, inner

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.role} of {self.parent}" if self.parent else ""
        return (
            f"Axis({self.name}: [{self.start},{self.end})"
            f" order={self.order}{tag})"
        )
