"""The ``Stencil`` IR node: a stencil with multiple time dependencies.

A Stencil combines the outputs of one or more :class:`Kernel`
applications from *different past timesteps* into the grid value at the
current timestep — the paper's headline expressibility feature
(``Res[t] << S[t-1] + S[t-2]``, Listing 1 line 12).  Each timestep of
execution therefore:

1. evaluates every distinct ``(kernel, time_offset)`` pair against the
   corresponding plane of the sliding time window,
2. combines them with the stencil's arithmetic expression, and
3. commits the result as the window's newest plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .expr import ConstExpr, Expr, IndexExpr, OperatorExpr, VarExpr, as_expr
from .kernel import Kernel, KernelApply
from .tensor import SpNode

__all__ = ["Stencil", "TIME_VAR", "resolve_time_offset"]

#: The symbolic time variable ``t`` used in stencil definitions.
TIME_VAR = VarExpr("t")


def resolve_time_offset(time_ref) -> int:
    """Turn ``t``, ``t - 1``, ``t - 2`` ... into 0, -1, -2 ...

    Raises if the reference is not the symbolic time variable with a
    constant offset.
    """
    if isinstance(time_ref, VarExpr):
        time_ref = IndexExpr(time_ref, 0)
    if isinstance(time_ref, int):
        return time_ref
    if not isinstance(time_ref, IndexExpr) or time_ref.var.name != TIME_VAR.name:
        raise TypeError(
            "time references must be built from Stencil.t "
            "(e.g. kernel[t - 1])"
        )
    return time_ref.offset


@dataclass(frozen=True)
class Stencil:
    """A stencil computation with multiple time dependencies.

    Parameters
    ----------
    output:
        The SpNode whose sliding window receives the per-timestep result.
    expr:
        Arithmetic combination of :class:`KernelApply` leaves (and
        constants).  All kernels must share the output's dimensionality.
    """

    output: SpNode
    expr: Expr

    #: the symbolic time variable, exposed as in the paper (``Stencil::t``)
    t = TIME_VAR

    def __post_init__(self) -> None:
        object.__setattr__(self, "expr", as_expr(self.expr))
        applies = self.applications
        if not applies:
            raise ValueError("a Stencil must apply at least one Kernel")
        for app in applies:
            if app.kernel.ndim != self.output.ndim:
                raise ValueError(
                    f"kernel {app.kernel.name!r} is {app.kernel.ndim}-D but "
                    f"output {self.output.name!r} is {self.output.ndim}-D"
                )
        if self.required_time_window > self.output.time_window:
            raise ValueError(
                f"stencil reads {self.required_time_window - 1} past "
                f"timesteps but output {self.output.name!r} keeps a window "
                f"of only {self.output.time_window}"
            )

    # -- derived properties -------------------------------------------------------
    @property
    def applications(self) -> Tuple[KernelApply, ...]:
        return tuple(
            n for n in self.expr.walk() if isinstance(n, KernelApply)
        )

    @property
    def kernels(self) -> Tuple[Kernel, ...]:
        """Distinct kernels used, in first-seen order."""
        seen: Dict[str, Kernel] = {}
        for app in self.applications:
            seen.setdefault(app.kernel.name, app.kernel)
        return tuple(seen.values())

    @property
    def time_offsets(self) -> Tuple[int, ...]:
        """Sorted distinct past timesteps read (e.g. ``(-2, -1)``)."""
        return tuple(sorted({a.time_offset for a in self.applications}))

    @property
    def time_dependencies(self) -> int:
        """Number of distinct past timesteps read (Table 4 'Time Dep.')."""
        return len(self.time_offsets)

    @property
    def deepest_read(self) -> int:
        """The most negative *effective* step read, application offset
        plus any kernel-internal ``tensor.at(-k)`` offset on the output
        tensor (auxiliary tensors are time-invariant)."""
        deepest = 0
        out_name = self.output.name
        for app in self.applications:
            inner = min(
                (acc.time_offset for acc in app.kernel.accesses
                 if acc.tensor.name == out_name),
                default=0,
            )
            deepest = min(deepest, app.time_offset + inner)
        return deepest

    @property
    def required_time_window(self) -> int:
        """Planes that must be live at once (Fig. 5): deepest read + 1."""
        return -self.deepest_read + 1

    @property
    def ndim(self) -> int:
        return self.output.ndim

    @property
    def radius(self) -> Tuple[int, ...]:
        """Per-dimension halo demand: the max radius over all kernels."""
        rad = [0] * self.ndim
        for k in self.kernels:
            for d, r in enumerate(k.radius):
                rad[d] = max(rad[d], r)
        return tuple(rad)

    def validate_halo(self) -> None:
        """Check the output tensor's halo covers the stencil radius."""
        for d, (need, have) in enumerate(zip(self.radius, self.output.halo)):
            if need > have:
                raise ValueError(
                    f"dimension {d}: stencil radius {need} exceeds halo "
                    f"width {have} of {self.output.name!r}"
                )

    def combination_terms(self) -> List[Tuple[float, KernelApply]]:
        """Flatten the combine expression into weighted KernelApply terms.

        Supports the practically occurring forms: sums/differences of
        optionally scalar-scaled kernel applications.  Raises on
        anything non-linear (e.g. a product of two applications), which
        the executable backend evaluates generically instead.
        """
        terms: List[Tuple[float, KernelApply]] = []

        def visit(e: Expr, scale: float) -> None:
            if isinstance(e, KernelApply):
                terms.append((scale, e))
            elif isinstance(e, OperatorExpr) and e.op == "add":
                visit(e.operands[0], scale)
                visit(e.operands[1], scale)
            elif isinstance(e, OperatorExpr) and e.op == "sub":
                visit(e.operands[0], scale)
                visit(e.operands[1], -scale)
            elif isinstance(e, OperatorExpr) and e.op == "neg":
                visit(e.operands[0], -scale)
            elif isinstance(e, OperatorExpr) and e.op == "mul":
                a, b = e.operands
                if isinstance(a, ConstExpr):
                    visit(b, scale * a.value)
                elif isinstance(b, ConstExpr):
                    visit(a, scale * b.value)
                else:
                    raise ValueError(
                        "non-linear stencil combination: products of kernel "
                        "applications are not supported"
                    )
            elif isinstance(e, ConstExpr):
                if e.value != 0:
                    raise ValueError(
                        "constant terms in a stencil combination are not "
                        "supported (fold them into a kernel instead)"
                    )
            else:
                raise ValueError(
                    f"unsupported node {type(e).__name__} in stencil "
                    "combination"
                )

        visit(self.expr, 1.0)
        return terms

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ks = "+".join(
            f"{a.kernel.name}[t{a.time_offset}]" for a in self.applications
        )
        return f"Stencil({self.output.name} << {ks})"
