"""MSC intermediate representation (Table 2 of the paper).

Single-level IR embedded in the host AST: tensors (``SpNode`` /
``TeNode``), nested loops (``Axis``), expressions (``AssignExpr``,
``OperatorExpr``, ``CallFuncExpr``, ``IndexExpr``), ``Kernel`` and
``Stencil`` nodes, plus the analyses the schedules and the performance
models consume.
"""

from .dtypes import DType, i32, f32, f64, dtype_from_name
from .expr import (
    AssignExpr,
    CallFuncExpr,
    ConstExpr,
    Expr,
    IndexExpr,
    OperatorExpr,
    TensorAccess,
    VarExpr,
    as_expr,
)
from .axis import Axis
from .tensor import SpNode, TeNode, TensorNode
from .kernel import Kernel, KernelApply
from .stencil import Stencil, TIME_VAR
from .pipeline import StagePipeline
from .analysis import (
    KernelCharacteristics,
    characterize_kernel,
    characterize_stencil,
    classify_shape,
    halo_traffic_bytes,
    stencil_flops_per_point,
    total_traffic_bytes,
)
from .validate import ValidationError, validate_stencil
from . import visitor

__all__ = [
    "DType", "i32", "f32", "f64", "dtype_from_name",
    "AssignExpr", "CallFuncExpr", "ConstExpr", "Expr", "IndexExpr",
    "OperatorExpr", "TensorAccess", "VarExpr", "as_expr",
    "Axis", "SpNode", "TeNode", "TensorNode",
    "Kernel", "KernelApply", "Stencil", "TIME_VAR", "StagePipeline",
    "KernelCharacteristics", "characterize_kernel", "characterize_stencil",
    "classify_shape", "halo_traffic_bytes", "stencil_flops_per_point",
    "total_traffic_bytes",
    "ValidationError", "validate_stencil",
    "visitor",
]
