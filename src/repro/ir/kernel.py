"""The ``Kernel`` IR node: a basic stencil kernel (Table 2).

A Kernel is a single spatial stencil sweep: for every point ``(k, j, i)``
of the computation domain it evaluates an expression over neighbouring
points of one or more input tensors.  Kernels are composed of Tensor,
Nested-loop and Expression IR.  Multiple time dependencies are handled
one level up by :class:`~repro.ir.stencil.Stencil`, which combines
kernel applications from different timesteps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .axis import Axis
from .expr import (
    CallFuncExpr,
    Expr,
    OperatorExpr,
    TensorAccess,
    VarExpr,
    as_expr,
)
from .tensor import SpNode

__all__ = ["Kernel", "KernelApply"]


@dataclass(frozen=True)
class Kernel:
    """A basic stencil kernel.

    Parameters
    ----------
    name:
        Kernel identifier, used in generated code.
    loop_vars:
        The spatial loop variables, outermost first (e.g. ``(k, j, i)``
        for a 3-D kernel).
    expr:
        The update expression; every :class:`TensorAccess` inside must
        subscript exclusively with ``loop_vars`` plus constant offsets.
    """

    name: str
    loop_vars: Tuple[VarExpr, ...]
    expr: Expr

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"invalid kernel name {self.name!r}")
        lvs = tuple(self.loop_vars)
        if not 1 <= len(lvs) <= 3:
            raise ValueError("kernels must have 1 to 3 loop variables")
        if len({v.name for v in lvs}) != len(lvs):
            raise ValueError("duplicate loop variables")
        object.__setattr__(self, "loop_vars", lvs)
        object.__setattr__(self, "expr", as_expr(self.expr))
        self._validate_accesses()

    # -- validation -----------------------------------------------------------
    def _validate_accesses(self) -> None:
        lv_names = [v.name for v in self.loop_vars]
        for node in self.expr.walk():
            if isinstance(node, TensorAccess):
                tensor = node.tensor
                if tensor.ndim != len(self.loop_vars):
                    raise ValueError(
                        f"kernel {self.name!r} is {len(self.loop_vars)}-D but "
                        f"accesses {tensor.ndim}-D tensor {tensor.name!r}"
                    )
                for dim, ix in enumerate(node.indices):
                    if ix.var.name != lv_names[dim]:
                        raise ValueError(
                            f"dimension {dim} of {tensor.name!r} must be "
                            f"subscripted with {lv_names[dim]!r}, got "
                            f"{ix.var.name!r}"
                        )

    # -- derived properties -----------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.loop_vars)

    @property
    def accesses(self) -> Tuple[TensorAccess, ...]:
        """All tensor reads in the update expression, in syntax order."""
        return tuple(
            n for n in self.expr.walk() if isinstance(n, TensorAccess)
        )

    @property
    def input_tensors(self) -> Tuple[SpNode, ...]:
        """Distinct tensors read by this kernel (first-seen order)."""
        seen: Dict[str, SpNode] = {}
        for acc in self.accesses:
            seen.setdefault(acc.tensor.name, acc.tensor)
        return tuple(seen.values())

    @property
    def footprint(self) -> Tuple[Tuple[int, ...], ...]:
        """Distinct spatial offset vectors read (the stencil's shape)."""
        seen = []
        for acc in self.accesses:
            if acc.offsets not in seen:
                seen.append(acc.offsets)
        return tuple(seen)

    @property
    def npoints(self) -> int:
        """Number of distinct points in the stencil (e.g. 7 for 3d7pt)."""
        return len(self.footprint)

    @property
    def radius(self) -> Tuple[int, ...]:
        """Per-dimension stencil radius (max |offset|); the halo demand."""
        rad = [0] * self.ndim
        for off in self.footprint:
            for d, o in enumerate(off):
                rad[d] = max(rad[d], abs(o))
        return tuple(rad)

    @property
    def time_offsets(self) -> Tuple[int, ...]:
        """Sorted distinct time offsets read by the expression."""
        return tuple(sorted({a.time_offset for a in self.accesses}))

    def default_axes(self, shape: Sequence[int]) -> List[Axis]:
        """The untransformed loop nest over a domain of ``shape``."""
        if len(shape) != self.ndim:
            raise ValueError(
                f"shape has {len(shape)} dims for a {self.ndim}-D kernel"
            )
        return [
            Axis(v, order=i, start=0, end=int(s))
            for i, (v, s) in enumerate(zip(self.loop_vars, shape))
        ]

    def flops(self) -> int:
        """Arithmetic operations (+, -, ×, ÷ and calls) per grid point.

        Matches the paper's ``Ops(+-×)`` column of Table 4.
        """
        n = 0
        for node in self.expr.walk():
            if isinstance(node, OperatorExpr):
                n += 1
            elif isinstance(node, CallFuncExpr):
                n += 1
        return n

    # -- time application --------------------------------------------------------
    def __getitem__(self, time_ref) -> "KernelApply":
        """``kernel[t - 1]`` — apply this kernel to the state at t-1.

        ``time_ref`` is an :class:`~repro.ir.expr.IndexExpr` built from
        the symbolic time variable ``Stencil.t`` (e.g. ``t - 1``).
        """
        from .stencil import resolve_time_offset

        return KernelApply(self, resolve_time_offset(time_ref))

    def at(self, time_offset: int) -> "KernelApply":
        """Apply this kernel to the grid state ``time_offset`` steps back."""
        return KernelApply(self, int(time_offset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vars_ = ", ".join(v.name for v in self.loop_vars)
        return f"Kernel({self.name}({vars_}), {self.npoints}pt)"


@dataclass(frozen=True)
class KernelApply(Expr):
    """A kernel evaluated against the grid state at a past timestep.

    These are the leaves of a :class:`~repro.ir.stencil.Stencil`
    expression: ``Res[t] << S[t-1] + S[t-2]`` builds an expression whose
    leaves are ``KernelApply(S, -1)`` and ``KernelApply(S, -2)``.
    """

    kernel: Kernel
    time_offset: int

    def __post_init__(self) -> None:
        if self.time_offset >= 0:
            raise ValueError(
                "a stencil may only combine kernels from past timesteps "
                f"(got offset {self.time_offset})"
            )

    def c_source(self) -> str:
        return f"{self.kernel.name}[t{self.time_offset:+d}]"

    def children(self) -> Tuple[Expr, ...]:
        return ()
