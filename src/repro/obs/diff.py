"""Trace-diff and longitudinal history analysis (``repro.obs.diff``).

Two query surfaces over comparable run data:

- :func:`diff_runs` — ``repro diff A B``: align two runs by the stable
  phase taxonomy and span names, compute CI-aware metric deltas with
  the bench gate's median/MAD machinery, and render an ASCII
  *waterfall* attributing the total delta to phases, followed by the
  gated-metric deltas, the span-level movers and a **config drift**
  section listing every fingerprint field that differs.
- :func:`history_report` — ``repro history <workload>``: per-metric
  trend over a workload's ledger rows with a deterministic
  change-point detector (:func:`detect_change_point`, a sliding
  median split — no randomness) flagging the first run where a gated
  metric shifted.

A *run* here is any of three sources (:func:`load_views`):

- a **ledger id** (``7`` or ``ledger:7``) — a row of
  :mod:`repro.obs.ledger`,
- a **bench document** (``BENCH_*.json``) — one view per workload,
- a **trace file** (``--trace`` output, native or chrome) — spans are
  folded through :func:`repro.obs.perf.phases.attribute`, counters
  become gated zero-CI metric points.

Regression semantics match the bench gate: only *gated* metrics and
*deterministic* (modelled) phases can fail the diff — host wall phases
ride along as information.  ``repro diff`` exits 1 iff a regression
survives those rules.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import _percentile
from .perf.compare import Delta, _outside_ci, _worse_frac

__all__ = [
    "RunView",
    "RunDiff",
    "DiffReport",
    "ChangePoint",
    "MetricHistory",
    "HistoryReport",
    "load_views",
    "diff_runs",
    "detect_change_point",
    "history_report",
    "DEFAULT_THRESHOLD",
]

DEFAULT_THRESHOLD = 0.10

HISTORY_FORMAT = "repro-history"
HISTORY_VERSION = 1

_LEDGER_REF = re.compile(r"^(?:ledger:|lg:)?(\d+)$")


# ---------------------------------------------------------------------------
# run views
# ---------------------------------------------------------------------------

@dataclass
class RunView:
    """One comparable run: phases + metric aggregates + fingerprints."""

    label: str
    workload: str
    config: Dict[str, Any] = field(default_factory=dict)
    environment: Dict[str, Any] = field(default_factory=dict)
    #: deterministic modelled phases (regression-eligible)
    phases_sim: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: host phases (informational)
    phases_host: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per-span-name self-times (host, informational)
    spans: Dict[str, float] = field(default_factory=dict)
    #: metric name -> aggregate dict (median/mad/ci95/gate/direction)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def waterfall_phases(self) -> Tuple[Dict[str, Dict[str, float]], bool]:
        """(phases to diff, deterministic?) — modelled when available."""
        if self.phases_sim:
            return self.phases_sim, True
        return self.phases_host, False


def _view_from_ledger_row(row: Mapping[str, Any], label: str) -> RunView:
    return RunView(
        label=label,
        workload=row.get("workload") or row.get("command") or label,
        config=dict(row.get("config", {})),
        environment=dict(row.get("environment", {})),
        phases_sim=dict(row.get("phases_sim", {})),
        phases_host=dict(row.get("phases_host", {})),
        spans=dict(row.get("spans", {})),
        metrics=dict(row.get("metrics", {})),
    )


def _views_from_bench(doc: Mapping[str, Any], label: str) -> List[RunView]:
    views = []
    for wname, wl in doc.get("workloads", {}).items():
        views.append(RunView(
            label=f"{label}:{wname}" if len(doc["workloads"]) > 1
            else label,
            workload=wname,
            config=dict(wl.get("meta", {})),
            environment=dict(doc.get("environment", {})),
            phases_sim=dict(wl.get("phases_sim", {})),
            phases_host=dict(wl.get("phases_host", {})),
            metrics=dict(wl.get("metrics", {})),
        ))
    return views


def _strip_labels(series: str) -> str:
    return series.split("{", 1)[0]


def _view_from_trace(doc: Mapping[str, Any], label: str) -> RunView:
    from .ledger import fold_spans, metric_point

    spans = doc.get("spans", [])
    phases_host, span_times = fold_spans(spans)
    metrics: Dict[str, Any] = {}
    counters = (doc.get("metrics") or {}).get("counters", {})
    totals: Dict[str, float] = {}
    for series, value in counters.items():
        name = _strip_labels(series)
        totals[name] = totals.get(name, 0.0) + float(value)
    for name, total in totals.items():
        # counters are exact model/protocol counts: deterministic for a
        # fixed config, hence eligible for the regression verdict
        metrics[name] = metric_point(total, unit="", direction="lower",
                                     gate=True)
    return RunView(
        label=label,
        workload=label,
        phases_host=phases_host,
        spans=span_times,
        metrics=metrics,
    )


def load_views(source: str,
               ledger_dir: Optional[str] = None) -> List[RunView]:
    """Resolve one ``repro diff`` operand into run views.

    Pure digits (optionally ``ledger:``-prefixed) name a ledger row;
    otherwise the source must be a bench document or a trace file.
    """
    m = _LEDGER_REF.match(source)
    if m:
        from .ledger import ledger_path, open_ledger

        run_id = int(m.group(1))
        path = ledger_path(ledger_dir)
        if not os.path.exists(path):
            raise ValueError(f"no run ledger at {path}")
        with open_ledger(ledger_dir) as ledger:
            row = ledger.get(run_id)
        if row is None:
            raise ValueError(f"ledger has no run #{run_id} ({path})")
        return [_view_from_ledger_row(row, f"ledger:{run_id}")]

    if not os.path.exists(source):
        raise ValueError(
            f"{source!r} is neither a ledger id nor an existing file"
        )
    label = os.path.basename(source)
    from .perf.schema import load_bench

    doc = None
    try:
        doc = load_bench(source)
    except ValueError:
        pass  # not a bench document — try the trace loader
    if doc is not None:
        views = _views_from_bench(doc, label)
        if not views:
            raise ValueError(f"{source}: bench document has no workloads")
        return views
    from .export import load_trace

    return [_view_from_trace(load_trace(source), label)]


# ---------------------------------------------------------------------------
# diffing
# ---------------------------------------------------------------------------

@dataclass
class RunDiff:
    """One aligned pair of run views."""

    workload: str
    base_label: str
    current_label: str
    #: phase waterfall rows: (phase, base_s, cur_s)
    waterfall: List[Tuple[str, float, float]] = field(default_factory=list)
    #: waterfall built from deterministic modelled phases?
    deterministic: bool = False
    #: metric + phase deltas (perf-compare :class:`Delta` objects)
    deltas: List[Delta] = field(default_factory=list)
    #: span-level movers: (name, base_s, cur_s)
    span_moves: List[Tuple[str, float, float]] = field(default_factory=list)
    #: config/environment drift rows: (field, base, current)
    drift: List[Tuple[str, Any, Any]] = field(default_factory=list)

    @property
    def total_base_s(self) -> float:
        return sum(b for _, b, _ in self.waterfall)

    @property
    def total_current_s(self) -> float:
        return sum(c for _, _, c in self.waterfall)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def attributed_phase(self) -> Optional[str]:
        """The regressed phase driving the largest share of the delta."""
        worst, worst_delta = None, 0.0
        for d in self.deltas:
            if d.kind == "phase" and d.regressed:
                delta = d.current - d.base
                if delta > worst_delta:
                    worst, worst_delta = d.name, delta
        return worst

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "base": self.base_label,
            "current": self.current_label,
            "deterministic_phases": self.deterministic,
            "total_base_s": self.total_base_s,
            "total_current_s": self.total_current_s,
            "attributed_phase": self.attributed_phase,
            "phases": [
                {"phase": p, "base_s": b, "current_s": c}
                for p, b, c in self.waterfall
            ],
            "regressions": [
                {"kind": d.kind, "name": d.name, "base": d.base,
                 "current": d.current, "worse_frac": d.worse_frac}
                for d in self.regressions
            ],
            "drift": [
                {"field": f, "base": b, "current": c}
                for f, b, c in self.drift
            ],
        }


@dataclass
class DiffReport:
    """All aligned pairs of one ``repro diff`` invocation."""

    base_label: str
    current_label: str
    threshold: float
    diffs: List[RunDiff] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for rd in self.diffs for d in rd.regressions]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base_label,
            "current": self.current_label,
            "threshold": self.threshold,
            "ok": self.ok,
            "runs": [rd.to_dict() for rd in self.diffs],
            "notes": list(self.notes),
        }

    def format(self) -> str:
        lines = [
            f"RUN DIFF  {self.current_label} vs {self.base_label}  "
            f"(threshold {self.threshold:.0%})"
        ]
        for rd in self.diffs:
            lines.append("")
            lines.extend(_format_run_diff(rd, self.threshold))
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append("")
        if self.regressions:
            lines.append(f"{len(self.regressions)} REGRESSION(S)")
            for rd in self.diffs:
                phase = rd.attributed_phase
                if phase is not None:
                    d = next(d for d in rd.deltas
                             if d.kind == "phase" and d.name == phase)
                    lines.append(
                        f"  {rd.workload}: regression attributed to "
                        f"phase '{phase}' ({d.worse_frac:+.1%}, "
                        f"{_fmt_s(d.base)} -> {_fmt_s(d.current)})"
                    )
            for d in self.regressions:
                if d.kind != "phase":
                    lines.append(
                        f"  {d.label}: {d.base:.6g} -> {d.current:.6g} "
                        f"({d.worse_frac:+.1%} worse)"
                    )
        else:
            lines.append("runs are equivalent within the gate "
                         "(no regressions)")
        return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    if seconds == 0:
        return "0"
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f}s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


_BAR_WIDTH = 28


def _format_run_diff(rd: RunDiff, threshold: float) -> List[str]:
    total_b, total_c = rd.total_base_s, rd.total_current_s
    total_delta = total_c - total_b
    pct = f"{total_delta / total_b:+.1%}" if total_b else "n/a"
    kind = "modelled" if rd.deterministic else "host"
    lines = [
        f"{rd.workload}: total {kind} phase time "
        f"{_fmt_s(total_b)} -> {_fmt_s(total_c)} ({pct})"
    ]
    rows = sorted(rd.waterfall, key=lambda r: -abs(r[2] - r[1]))
    max_abs = max((abs(c - b) for _, b, c in rows), default=0.0)
    header = (f"  {'phase':12s} {'base':>10s} {'current':>10s} "
              f"{'delta':>10s}  waterfall")
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for phase, b, c in rows:
        delta = c - b
        if max_abs > 0:
            n = int(round(_BAR_WIDTH * abs(delta) / max_abs))
            bar = ("+" if delta > 0 else "-") * n
        else:
            bar = ""
        share = (f" {delta / total_delta:>5.1%}"
                 if total_delta and delta else "")
        lines.append(
            f"  {phase:12s} {_fmt_s(b):>10s} {_fmt_s(c):>10s} "
            f"{_fmt_s(delta):>10s}  |{bar}{share}"
        )
    moved = [d for d in rd.deltas
             if d.kind == "metric"
             and (d.regressed or d.improved
                  or (d.gated and abs(d.worse_frac) > 0.02))]
    if moved:
        lines.append("  gated metrics that moved:")
        for d in sorted(moved, key=lambda d: -abs(d.worse_frac)):
            status = ("REGRESSED" if d.regressed else
                      "improved" if d.improved else "ok")
            lines.append(
                f"    {d.name:28s} {d.base:>12.6g} {d.current:>12.6g} "
                f"{d.worse_frac:+8.1%}  {status}"
            )
    movers = sorted(rd.span_moves, key=lambda r: -abs(r[2] - r[1]))[:5]
    movers = [m for m in movers if abs(m[2] - m[1]) > 0]
    if movers:
        lines.append("  span-level movers (host self-time):")
        for name, b, c in movers:
            lines.append(
                f"    {name:28s} {_fmt_s(b):>10s} -> {_fmt_s(c):>10s} "
                f"({_fmt_s(c - b):>9s})"
            )
    if rd.drift:
        lines.append(f"  config drift ({len(rd.drift)} field(s)):")
        for key, b, c in rd.drift:
            lines.append(f"    {key}: {b!r} -> {c!r}")
    else:
        lines.append("  config drift: none")
    return lines


def _pair_views(base: Sequence[RunView], current: Sequence[RunView]
                ) -> Tuple[List[Tuple[RunView, RunView]], List[str]]:
    notes: List[str] = []
    by_name = {v.workload: v for v in base}
    pairs: List[Tuple[RunView, RunView]] = []
    matched_base, matched_cur = set(), set()
    for cur in current:
        if cur.workload in by_name:
            pairs.append((by_name[cur.workload], cur))
            matched_base.add(cur.workload)
            matched_cur.add(cur.workload)
    if not pairs and len(base) == 1 and len(current) == 1:
        # single-run sources always compare, whatever they are named
        pairs.append((base[0], current[0]))
        matched_base.add(base[0].workload)
        matched_cur.add(current[0].workload)
    for v in base:
        if v.workload not in matched_base:
            notes.append(f"workload {v.workload!r} only in base run")
    for v in current:
        if v.workload not in matched_cur:
            notes.append(f"workload {v.workload!r} only in current run")
    return pairs, notes


_DRIFT_IGNORE = ("executable",)


def _config_drift(base: RunView, cur: RunView) -> List[Tuple[str, Any, Any]]:
    drift: List[Tuple[str, Any, Any]] = []
    for prefix, a, b in (("", base.config, cur.config),
                         ("env.", base.environment, cur.environment)):
        for key in sorted(set(a) | set(b)):
            if key in _DRIFT_IGNORE:
                continue
            va, vb = a.get(key), b.get(key)
            if va != vb:
                drift.append((prefix + key, va, vb))
    return drift


def _diff_pair(base: RunView, cur: RunView, threshold: float) -> RunDiff:
    base_ph, base_det = base.waterfall_phases
    cur_ph, cur_det = cur.waterfall_phases
    deterministic = base_det and cur_det
    rd = RunDiff(
        workload=cur.workload,
        base_label=base.label,
        current_label=cur.label,
        deterministic=deterministic,
    )
    # phase alignment through the shared taxonomy (absent phase = 0)
    from .perf.phases import PHASES

    names = [p for p in PHASES
             if p in base_ph or p in cur_ph]
    names += sorted((set(base_ph) | set(cur_ph)) - set(PHASES))
    for phase in names:
        b = float(base_ph.get(phase, {}).get("time_s", 0.0))
        c = float(cur_ph.get(phase, {}).get("time_s", 0.0))
        if b == 0 and c == 0:
            continue
        rd.waterfall.append((phase, b, c))
        worse = _worse_frac(b, c, "lower")
        d = Delta(cur.workload, "phase" if deterministic else
                  "phase-host", phase, b, c, worse,
                  gated=deterministic)
        d.regressed = deterministic and worse > threshold
        d.improved = deterministic and worse < -threshold
        rd.deltas.append(d)

    # CI-aware metric deltas (the bench gate's exact rules)
    for name in sorted(set(base.metrics) & set(cur.metrics)):
        bm, cm = base.metrics[name], cur.metrics[name]
        if not isinstance(bm, Mapping) or not isinstance(cm, Mapping):
            continue
        direction = cm.get("direction", "lower")
        gated = bool(bm.get("gate")) and bool(cm.get("gate"))
        worse = _worse_frac(float(bm["median"]), float(cm["median"]),
                            direction)
        ci = bm.get("ci95") or [bm["median"], bm["median"]]
        d = Delta(cur.workload, "metric", name, float(bm["median"]),
                  float(cm["median"]), worse, gated)
        d.regressed = (gated and worse > threshold
                       and _outside_ci(float(cm["median"]), ci,
                                       direction))
        d.improved = gated and worse < -threshold
        rd.deltas.append(d)

    # span-name alignment below the taxonomy
    for name in sorted(set(base.spans) & set(cur.spans)):
        rd.span_moves.append(
            (name, float(base.spans[name]), float(cur.spans[name]))
        )

    rd.drift = _config_drift(base, cur)
    return rd


def diff_runs(base: Sequence[RunView], current: Sequence[RunView],
              threshold: float = DEFAULT_THRESHOLD,
              base_label: Optional[str] = None,
              current_label: Optional[str] = None) -> DiffReport:
    """Align two runs' views and compute the attribution report."""
    pairs, notes = _pair_views(base, current)
    report = DiffReport(
        base_label=base_label or (base[0].label if base else "?"),
        current_label=current_label or (current[0].label if current
                                        else "?"),
        threshold=threshold,
    )
    report.notes = notes
    for b, c in pairs:
        report.diffs.append(_diff_pair(b, c, threshold))
    if not pairs:
        report.notes.append("no workloads in common — nothing compared")
    return report


# ---------------------------------------------------------------------------
# change-point detection + history
# ---------------------------------------------------------------------------

def _median(values: Sequence[float]) -> float:
    return _percentile(sorted(values), 0.5)


def _mad(values: Sequence[float]) -> float:
    med = _median(values)
    return _median([abs(v - med) for v in values])


@dataclass
class ChangePoint:
    """The first index where a metric series shifted."""

    index: int  # first index of the shifted (right) segment
    before: float  # left-segment median
    after: float  # right-segment median
    shift_frac: float  # direction-adjusted; positive = worse
    verdict: str  # "regression" | "improvement"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "before": self.before,
            "after": self.after,
            "shift_frac": self.shift_frac,
            "verdict": self.verdict,
        }


def detect_change_point(values: Sequence[float],
                        direction: str = "lower",
                        threshold: float = DEFAULT_THRESHOLD,
                        min_segment: int = 2) -> Optional[ChangePoint]:
    """Deterministic sliding-median-split change-point detector.

    Every split position is scored by the summed absolute deviation of
    each segment from its own median (the cost of explaining the series
    as two flat levels); the minimum-cost split wins, ties broken by
    the larger level shift, then the earliest index.  The winning split
    is a change point only if the medians differ by more than the
    relative ``threshold`` *and* by more than 3x the noisier segment's
    MAD — so a deterministic step always flags and pure jitter never
    does.  No randomness anywhere: equal inputs give equal output.
    """
    n = len(values)
    if n < 2 * min_segment:
        return None
    best: Optional[Tuple[float, float, int, float, float]] = None
    for i in range(min_segment, n - min_segment + 1):
        left, right = values[:i], values[i:]
        ml, mr = _median(left), _median(right)
        cost = (sum(abs(v - ml) for v in left)
                + sum(abs(v - mr) for v in right))
        shift = abs(mr - ml)
        key = (cost, -shift, i)
        if best is None or key < (best[0], -best[1], best[2]):
            best = (cost, shift, i, ml, mr)
    assert best is not None
    _, shift, index, ml, mr = best
    scale = max(abs(ml), abs(mr))
    if scale == 0 or shift <= threshold * scale:
        return None
    noise = max(_mad(values[:index]), _mad(values[index:]))
    if shift <= 3 * noise:
        return None
    worse = _worse_frac(ml, mr, direction)
    return ChangePoint(
        index=index,
        before=ml,
        after=mr,
        shift_frac=worse,
        verdict="regression" if worse > 0 else "improvement",
    )


@dataclass
class MetricHistory:
    """One metric's trend over a workload's ledger rows."""

    metric: str
    unit: str
    direction: str
    gate: bool
    #: (run_id, ts, value, outcome) per row carrying the metric
    series: List[Tuple[int, float, float, str]]
    change_point: Optional[ChangePoint] = None

    @property
    def change_run_id(self) -> Optional[int]:
        if self.change_point is None:
            return None
        return self.series[self.change_point.index][0]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "metric": self.metric,
            "unit": self.unit,
            "direction": self.direction,
            "gate": self.gate,
            "series": [
                {"id": rid, "ts": ts, "value": v, "outcome": outcome}
                for rid, ts, v, outcome in self.series
            ],
            "change_point": None,
        }
        if self.change_point is not None:
            cp = self.change_point.to_dict()
            cp["run_id"] = self.change_run_id
            out["change_point"] = cp
        return out


@dataclass
class HistoryReport:
    """``repro history`` output for one workload."""

    workload: str
    runs: int
    metrics: List[MetricHistory] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": HISTORY_FORMAT,
            "version": HISTORY_VERSION,
            "workload": self.workload,
            "runs": self.runs,
            "metrics": {m.metric: m.to_dict() for m in self.metrics},
        }

    def format(self) -> str:
        import datetime

        lines = [f"RUN HISTORY  {self.workload}  ({self.runs} run(s))"]
        if not self.metrics:
            lines.append("(no gated metrics recorded for this workload)")
            return "\n".join(lines)
        for mh in self.metrics:
            better = ("lower" if mh.direction == "lower" else "higher")
            lines.append("")
            lines.append(
                f"{mh.metric}  ({mh.unit or 'unitless'}, "
                f"{better} is better)"
            )
            header = (f"  {'id':>5s}  {'when':16s} {'value':>14s}  "
                      f"{'outcome':10s} note")
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            for pos, (rid, ts, value, outcome) in enumerate(mh.series):
                when = datetime.datetime.fromtimestamp(ts).strftime(
                    "%Y-%m-%d %H:%M"
                )
                note = ""
                cp = mh.change_point
                if cp is not None and pos == cp.index:
                    note = (f"<-- change point: {cp.shift_frac:+.1%} "
                            f"{cp.verdict} since this run")
                lines.append(
                    f"  {rid:>5d}  {when:16s} {value:>14.6g}  "
                    f"{outcome:10s} {note}"
                )
        flagged = [m for m in self.metrics if m.change_point is not None]
        lines.append("")
        if flagged:
            for m in flagged:
                cp = m.change_point
                lines.append(
                    f"{cp.verdict.upper()}: {m.metric} shifted "
                    f"{cp.shift_frac:+.1%} at run #{m.change_run_id} "
                    f"({cp.before:.6g} -> {cp.after:.6g})"
                )
        else:
            lines.append("no change points detected")
        return "\n".join(lines)


def history_report(rows: Sequence[Mapping[str, Any]], workload: str,
                   metric: Optional[str] = None,
                   threshold: float = DEFAULT_THRESHOLD) -> HistoryReport:
    """Build the per-metric trend + change-point report.

    ``rows`` are ledger rows (ascending id).  Without an explicit
    ``metric``, every *gated* metric seen in the rows is tracked.
    """
    report = HistoryReport(workload=workload, runs=len(rows))
    names: List[str] = []
    for row in rows:
        for name, agg in row.get("metrics", {}).items():
            if name in names or not isinstance(agg, Mapping):
                continue
            if metric is not None:
                if name == metric:
                    names.append(name)
            elif agg.get("gate"):
                names.append(name)
    if metric is not None and metric not in names and rows:
        raise ValueError(
            f"metric {metric!r} was never recorded for {workload!r}"
        )
    for name in names:
        series: List[Tuple[int, float, float, str]] = []
        unit, direction, gate = "", "lower", False
        for row in rows:
            agg = row.get("metrics", {}).get(name)
            if not isinstance(agg, Mapping) or "median" not in agg:
                continue
            unit = agg.get("unit", unit)
            direction = agg.get("direction", direction)
            gate = bool(agg.get("gate", gate))
            series.append((int(row["id"]), float(row["ts"]),
                           float(agg["median"]),
                           str(row.get("outcome", "?"))))
        if not series:
            continue
        cp = detect_change_point([v for _, _, v, _ in series],
                                 direction=direction,
                                 threshold=threshold)
        report.metrics.append(MetricHistory(
            metric=name, unit=unit, direction=direction, gate=gate,
            series=series, change_point=cp,
        ))
    return report


def annotate_history(ledger: Any, report: HistoryReport) -> List[str]:
    """Write each change-point verdict back into its ledger row.

    Returns the annotation strings applied (``repro history`` prints
    them); annotation is idempotent — re-running history does not stack
    duplicate verdicts.
    """
    applied: List[str] = []
    for mh in report.metrics:
        cp = mh.change_point
        if cp is None or mh.change_run_id is None:
            continue
        verdict = (f"{cp.verdict}:{mh.metric}"
                   f"{cp.shift_frac:+.0%}")
        if ledger.annotate(mh.change_run_id, verdict):
            applied.append(f"run #{mh.change_run_id}: {verdict}")
    return applied


def _history_json(report: HistoryReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
