"""Labeled metrics (the ``repro.obs`` counter/gauge/histogram layer).

A :class:`MetricsRegistry` holds named series of three kinds:

- **counters** — monotonically accumulated sums
  (``comm.bytes_sent{rank=3,dim=0}``),
- **gauges** — last-written values (``machine.spm_utilisation``),
- **histograms** — full value distributions summarised as
  count/mean/p50/p90/p99/max (``autotune.trial_time_s``).

Series are identified by a metric name plus a label set; labels are
arbitrary keyword arguments (``counter("comm.messages", rank=3)``).
Like the tracer, the global registry is **disabled by default** so the
instrumented code paths are free when observability is off.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Tuple

__all__ = [
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "observe",
    "format_series",
]

_SeriesKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _key(name: str, labels: Dict[str, Any]) -> _SeriesKey:
    return (name, tuple(sorted(labels.items())))


def format_series(key: _SeriesKey) -> str:
    """Render a series key as ``name{k=v,...}`` (plain name if unlabeled)."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _percentile(ordered: List[float], q: float) -> float:
    """Linearly-interpolated percentile of an already-sorted list.

    Nearest-rank is badly biased for the handful of observations the
    bench runner records (p90 of 5 repeats would just be the max), so
    interpolate between the two bracketing order statistics — the same
    convention as ``numpy.percentile(..., method="linear")``.
    """
    if not ordered:
        raise ValueError("percentile of no values")
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._enabled = False
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._counters: Dict[_SeriesKey, float] = {}
        self._gauges: Dict[_SeriesKey, float] = {}
        self._hists: Dict[_SeriesKey, List[float]] = {}

    def _merged(self, labels: Dict[str, Any]) -> Dict[str, Any]:
        """Thread-context labels under the explicit ones (explicit wins)."""
        ctx = getattr(self._tls, "ctx", None)
        if not ctx:
            return labels
        merged = dict(ctx)
        merged.update(labels)
        return merged

    @contextmanager
    def scope(self, **labels: Any):
        """Auto-label every metric written on this thread in the block.

        Mirror of :meth:`Tracer.scope`: the simulated MPI runtime binds
        ``scope(rank=r)`` per rank thread so counters emitted deep in
        the exchange stack carry per-rank series labels.
        """
        prev = getattr(self._tls, "ctx", None)
        merged = dict(prev) if prev else {}
        merged.update(labels)
        self._tls.ctx = merged
        try:
            yield
        finally:
            self._tls.ctx = prev

    # -- state -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._hists = {}

    # -- writing ---------------------------------------------------------
    def counter(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to the counter series (no-op while disabled)."""
        if not self._enabled:
            return
        key = _key(name, self._merged(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge series to ``value`` (no-op while disabled)."""
        if not self._enabled:
            return
        key = _key(name, self._merged(labels))
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram observation (no-op while disabled)."""
        if not self._enabled:
            return
        key = _key(name, self._merged(labels))
        with self._lock:
            self._hists.setdefault(key, []).append(value)

    # -- reading ---------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one counter series (0 if never written)."""
        return self._counters.get(_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: Any) -> float:
        return self._gauges.get(_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter metric across all label series."""
        return sum(
            v for (n, _), v in self._counters.items() if n == name
        )

    def counter_by_label(self, name: str, label: str) -> Dict[Any, float]:
        """Per-label-value sums of one counter metric.

        ``counter_by_label("comm.bytes_sent", "rank")`` returns
        ``{0: ..., 1: ...}`` — the per-rank traffic regardless of any
        other labels on the series.  Series without the label are
        skipped.
        """
        out: Dict[Any, float] = {}
        with self._lock:
            for (n, labels), v in self._counters.items():
                if n != name:
                    continue
                for k, val in labels:
                    if k == label:
                        out[val] = out.get(val, 0) + v
                        break
        return out

    def histogram_values(self, name: str, **labels: Any) -> List[float]:
        return list(self._hists.get(_key(name, labels), ()))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._hists)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time copy, histogram series summarised."""
        with self._lock:
            counters = {
                format_series(k): v for k, v in self._counters.items()
            }
            gauges = {format_series(k): v for k, v in self._gauges.items()}
            hists = {}
            for k, values in self._hists.items():
                ordered = sorted(values)
                hists[format_series(k)] = {
                    "count": len(ordered),
                    "sum": sum(ordered),
                    "mean": sum(ordered) / len(ordered),
                    "p50": _percentile(ordered, 0.50),
                    "p90": _percentile(ordered, 0.90),
                    "p99": _percentile(ordered, 0.99),
                    "max": ordered[-1],
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
        }

    def raw_snapshot(self) -> Dict[str, Dict[_SeriesKey, Any]]:
        """Point-in-time copy keyed by ``(name, labels)`` tuples.

        Unlike :meth:`snapshot` nothing is formatted or summarised —
        histogram series keep their raw observation lists — so exporters
        (OpenMetrics, the live sampler) can aggregate on their own
        terms.  Taken under the registry lock: never torn.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: list(v) for k, v in self._hists.items()},
            }

    def to_openmetrics(self) -> str:
        """Render current state as OpenMetrics text (ends in ``# EOF``)."""
        from .openmetrics import render

        return render(self.raw_snapshot())


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry singleton."""
    return _REGISTRY


def counter(name: str, value: float = 1, **labels: Any) -> None:
    _REGISTRY.counter(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    _REGISTRY.gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    _REGISTRY.observe(name, value, **labels)
