"""Live telemetry (``repro.obs.live``): time-series sampler + scrape server.

The batch obs layer reports end-of-run totals; this module makes them
*rates over time* while the run is still going:

- :class:`MetricsSampler` — snapshots the :class:`MetricsRegistry` at a
  fixed period (background daemon thread, or deterministically via
  :meth:`~MetricsSampler.sample_once` in tests) into per-series ring
  buffers, deriving last/rate/min/max per window.  Counters like
  ``comm.bytes_sent`` become byte rates; histogram series contribute
  their observation counts.
- :class:`TelemetryServer` — a stdlib ``http.server`` scrape endpoint
  (127.0.0.1 only) behind the CLI's ``--serve-metrics PORT``:
  ``GET /metrics`` returns the OpenMetrics exposition, ``GET /flight``
  the flight-recorder accounting + top-k hot spans, ``GET /series``
  the sampler's windowed summary.  This is the surface the ROADMAP's
  compilation-as-a-service front (and ``repro monitor``) scrapes.

Everything here is bounded: series rings hold ``capacity`` points and
evict the oldest, mirroring the flight recorder's never-grow contract.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Deque, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, format_series, registry
from .trace import FlightRecorder, tracer

__all__ = [
    "MetricsSampler",
    "TelemetryServer",
    "DEFAULT_SAMPLE_PERIOD_S",
    "DEFAULT_SERIES_CAPACITY",
]

#: default sampler period (seconds)
DEFAULT_SAMPLE_PERIOD_S = 0.5
#: default points kept per series ring
DEFAULT_SERIES_CAPACITY = 240


class _SeriesRing:
    """Ring of (t, value) points for one metric series."""

    __slots__ = ("kind", "points")

    def __init__(self, kind: str, capacity: int):
        self.kind = kind
        self.points: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def stats(self) -> Dict[str, Any]:
        pts = list(self.points)
        values = [v for _, v in pts]
        out: Dict[str, Any] = {
            "kind": self.kind,
            "points": len(pts),
            "last": values[-1] if values else 0.0,
            "min": min(values) if values else 0.0,
            "max": max(values) if values else 0.0,
        }
        # counters are monotone: rate over the buffered window
        if self.kind == "counter" and len(pts) >= 2:
            (t0, v0), (t1, v1) = pts[0], pts[-1]
            dt = t1 - t0
            out["rate"] = (v1 - v0) / dt if dt > 0 else 0.0
        else:
            out["rate"] = 0.0
        return out


class MetricsSampler:
    """Periodic registry snapshots into bounded per-series rings.

    Deterministic core: :meth:`sample_once` takes an explicit ``now``
    (seconds on the tracer's monotonic timebase) so tests drive the
    sampler without threads or sleeps.  :meth:`start` runs the same
    method on a daemon thread every ``period_s`` until :meth:`stop`.
    """

    def __init__(self, reg: Optional[MetricsRegistry] = None,
                 period_s: float = DEFAULT_SAMPLE_PERIOD_S,
                 capacity: int = DEFAULT_SERIES_CAPACITY):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (rates need 2 points)")
        self.registry = reg if reg is not None else registry()
        self.period_s = period_s
        self.capacity = capacity
        self._lock = threading.Lock()
        self._series: Dict[str, _SeriesRing] = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- deterministic core ---------------------------------------------
    def sample_once(self, now: Optional[float] = None) -> int:
        """Take one snapshot; returns the number of live series.

        ``now`` defaults to the tracer's current monotonic offset so
        sampled timestamps share the span timebase.
        """
        t = tracer().now_s() if now is None else float(now)
        raw = self.registry.raw_snapshot()
        with self._lock:
            self._samples += 1
            for kind, series in (("counter", raw["counters"]),
                                 ("gauge", raw["gauges"])):
                for key, value in series.items():
                    name = format_series(key)
                    ring = self._series.get(name)
                    if ring is None:
                        ring = self._series[name] = _SeriesRing(
                            kind, self.capacity
                        )
                    ring.points.append((t, float(value)))
            # histograms contribute their observation count as a rate
            for key, values in raw["histograms"].items():
                name = format_series(key) + ".count"
                ring = self._series.get(name)
                if ring is None:
                    ring = self._series[name] = _SeriesRing(
                        "counter", self.capacity
                    )
                ring.points.append((t, float(len(values))))
            return len(self._series)

    # -- reading ---------------------------------------------------------
    @property
    def samples(self) -> int:
        """Snapshots taken so far."""
        return self._samples

    def series_names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def series_stats(self, name: str) -> Dict[str, Any]:
        """Windowed stats for one formatted series name (KeyError if unknown)."""
        with self._lock:
            return self._series[name].stats()

    def series_points(self, name: str) -> List[Tuple[float, float]]:
        with self._lock:
            return list(self._series[name].points)

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Windowed last/rate/min/max for every tracked series."""
        with self._lock:
            return {name: ring.stats()
                    for name, ring in sorted(self._series.items())}

    def rate(self, name: str) -> float:
        """Counter rate (units/second) over the buffered window; 0 if unknown."""
        with self._lock:
            ring = self._series.get(name)
        return ring.stats()["rate"] if ring is not None else 0.0

    # -- background thread ----------------------------------------------
    def start(self) -> None:
        """Start sampling every ``period_s`` on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.period_s):
                self.sample_once()

        self._thread = threading.Thread(
            target=loop, name="obs-sampler", daemon=True
        )
        self._thread.start()

    def stop(self, final_sample: bool = True) -> None:
        """Stop the thread; optionally take one last closing snapshot."""
        self._stop.set()
        t = self._thread
        if t is not None:
            t.join(timeout=5.0)
            self._thread = None
        if final_sample:
            self.sample_once()


class TelemetryServer:
    """Localhost HTTP scrape endpoint over the live obs state.

    Routes::

        GET /metrics  -> OpenMetrics text (the registry, right now)
        GET /flight   -> JSON flight-recorder accounting + top-k spans
        GET /series   -> JSON sampler summary (404 without a sampler)

    Binds 127.0.0.1 only — telemetry is for the operator's tunnel, not
    the open network.  ``port=0`` picks a free port (see :attr:`port`).
    """

    def __init__(self, port: int = 0,
                 reg: Optional[MetricsRegistry] = None,
                 sampler: Optional[MetricsSampler] = None,
                 recorder: Optional[FlightRecorder] = None):
        self.registry = reg if reg is not None else registry()
        self.sampler = sampler
        self._recorder = recorder
        self._scrapes = 0
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # scrapes must not spam the run's stdout

            def do_GET(self) -> None:
                server._scrapes += 1
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = server.registry.to_openmetrics().encode("utf-8")
                    ctype = ("application/openmetrics-text; "
                             "version=1.0.0; charset=utf-8")
                elif path == "/flight":
                    body = json.dumps(
                        server.flight_payload(), indent=2, default=str
                    ).encode("utf-8")
                    ctype = "application/json"
                elif path == "/series":
                    if server.sampler is None:
                        self.send_error(404, "no sampler attached")
                        return
                    body = json.dumps(
                        server.sampler.summary(), indent=2, default=str
                    ).encode("utf-8")
                    ctype = "application/json"
                else:
                    self.send_error(404, "unknown path")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    def flight_payload(self) -> Dict[str, Any]:
        """Accounting + top-k of the attached (or global) flight ring."""
        fl = self._recorder if self._recorder is not None else tracer().flight
        if fl is None:
            return {"attached": False}
        payload: Dict[str, Any] = {"attached": True}
        payload.update(fl.counts())
        payload["top"] = fl.top(k=8)
        payload["span_rate"] = fl.span_rate(5.0, tracer().now_s())
        return payload

    @property
    def port(self) -> int:
        """The bound port (the chosen one when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    @property
    def scrapes(self) -> int:
        return self._scrapes

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="obs-telemetry-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
