"""Structured JSONL event log (``obs.events``).

Spans answer *where time went*; events answer *what happened*: one
append-only JSON-lines file of leveled, timestamped, span-correlated
records emitted at the pipeline's state changes — phase boundaries,
exchange retries, injected faults, native-cache misses, autotune
accept/reject steps.  A run's event log is the narration the
``repro monitor`` dashboard tails, and it survives the process (unlike
the in-memory flight ring).

Emission is **off by default** and free when off: :func:`emit` is one
``None`` check until a sink is installed (the CLI's ``--event-log``
flag or ``REPRO_EVENT_LOG=path``).  Each record carries::

    {"ts": <wall seconds>, "level": "info", "event": "comm.retry",
     "span": "comm.exchange", "span_id": 42, "rank": 1, ...fields}

``ts`` is derived from the tracer's anchored (wall, monotonic) clock
pair, so events and exported spans share one timebase.  ``span``/
``span_id`` bind the event to the innermost span open on the emitting
thread (when tracing is live), and thread-scope attrs such as ``rank``
are folded in under the explicit fields.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterator, List, Optional, TextIO

from .trace import tracer

__all__ = [
    "EventLog",
    "emit",
    "install",
    "uninstall",
    "current",
    "read_events",
    "ENV_EVENT_LOG",
    "ENV_EVENT_LOG_MAX_BYTES",
]

#: environment variable naming the default event-log path
ENV_EVENT_LOG = "REPRO_EVENT_LOG"
#: size cap in bytes; exceeding it rolls the file over to ``<path>.1``
ENV_EVENT_LOG_MAX_BYTES = "REPRO_EVENT_LOG_MAX_BYTES"

_LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}


def _max_bytes_from_env() -> Optional[int]:
    raw = os.environ.get(ENV_EVENT_LOG_MAX_BYTES, "")
    try:
        cap = int(raw)
    except ValueError:
        return None
    return cap if cap > 0 else None


class EventLog:
    """One append-only JSONL sink (thread-safe, line-buffered).

    With a size cap (``max_bytes`` argument, default from
    ``REPRO_EVENT_LOG_MAX_BYTES``) the file rolls over **once**: when
    the next record would push it past the cap, the current file is
    renamed to ``<path>.1`` (replacing any previous rollover) and
    emission continues into a fresh ``<path>`` — so an unattended run
    keeps at most ``2 × max_bytes`` of narration, newest always in
    ``<path>``.
    """

    def __init__(self, path: str, min_level: str = "debug",
                 max_bytes: Optional[int] = None):
        if min_level not in _LEVELS:
            raise ValueError(f"unknown event level {min_level!r}")
        self.path = path
        self.min_level = min_level
        self.max_bytes = (max_bytes if max_bytes is not None
                          else _max_bytes_from_env())
        self._threshold = _LEVELS[min_level]
        self._lock = threading.Lock()
        self._fh: Optional[TextIO] = open(path, "a", encoding="utf-8")
        try:
            self._size = os.path.getsize(path)
        except OSError:
            self._size = 0
        self._count = 0
        self._rotations = 0

    @property
    def count(self) -> int:
        """Records written through this sink."""
        return self._count

    @property
    def rotations(self) -> int:
        """How many times the file has rolled over to ``<path>.1``."""
        return self._rotations

    def _rotate_locked(self) -> None:
        assert self._fh is not None
        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self._rotations += 1

    def emit(self, event: str, level: str = "info", **fields: Any) -> None:
        """Append one record (no-op below ``min_level`` or when closed)."""
        lvl = _LEVELS.get(level)
        if lvl is None:
            raise ValueError(f"unknown event level {level!r}")
        if lvl < self._threshold or self._fh is None:
            return
        tr = tracer()
        record: Dict[str, Any] = {
            "ts": round(tr.wall_time_s(tr.now_s()), 6),
            "level": level,
            "event": event,
        }
        cur = tr.current_span()
        if cur is not None:
            record["span"] = cur.name
            record["span_id"] = cur.span_id
        # thread-scope attrs (rank= etc.) under the explicit fields
        ctx = getattr(tr._tls, "ctx", None)
        if ctx:
            for k, v in ctx.items():
                record.setdefault(k, v)
        for k, v in fields.items():
            record[k] = v
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                return
            nbytes = len(line.encode("utf-8")) + 1
            if (self.max_bytes is not None and self._size > 0
                    and self._size + nbytes > self.max_bytes):
                self._rotate_locked()
            self._fh.write(line + "\n")
            self._fh.flush()  # tailers must see records promptly
            self._size += nbytes
            self._count += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


_SINK: Optional[EventLog] = None


def install(path: str, min_level: str = "debug") -> EventLog:
    """Open ``path`` as the process-global event sink (replaces any)."""
    global _SINK
    if _SINK is not None:
        _SINK.close()
    _SINK = EventLog(path, min_level=min_level)
    return _SINK


def install_from_env() -> Optional[EventLog]:
    """Install the sink named by ``REPRO_EVENT_LOG`` (None if unset)."""
    path = os.environ.get(ENV_EVENT_LOG)
    if not path:
        return None
    return install(path)


def uninstall() -> None:
    """Close and detach the global sink (emit() becomes free again)."""
    global _SINK
    if _SINK is not None:
        _SINK.close()
        _SINK = None


def current() -> Optional[EventLog]:
    """The installed global sink, or ``None``."""
    return _SINK


def emit(event: str, level: str = "info", **fields: Any) -> None:
    """Emit one record to the global sink (free no-op when none)."""
    sink = _SINK
    if sink is None:
        return
    sink.emit(event, level=level, **fields)


def read_events(path: str, tolerant: bool = True) -> Iterator[Dict[str, Any]]:
    """Iterate records from a JSONL event log.

    ``tolerant=True`` (the default, for tailing live files) skips a
    truncated final line instead of raising; any *earlier* malformed
    line still raises, since that means the file is not an event log.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines: List[str] = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if tolerant and i == len(lines) - 1:
                return  # mid-write tail of a live file
            raise ValueError(
                f"{path}:{i + 1}: not a JSONL event log record: {line[:80]!r}"
            ) from None
