"""Distributed-trace analysis: merged timelines, flow edges, critical path.

A distributed run records one span tree per simulated MPI rank (each
rank thread opens a ``runtime.rank`` root under :func:`~repro.obs.rank_scope`)
plus message-flow identities stamped by the transport: every tracked
message carries a ``(src, dst, tag, seq)`` id recorded as ``flows_out``
on the span that sent it and ``flows_in`` on the span that consumed it.
This module merges those per-rank timelines into one DAG — program
order within a rank, flow edges across ranks — and answers the
questions the paper's scaling claims hinge on:

- :class:`DistributedTrace` — the merged model: per-rank span lists,
  matched flow edges, and structural validation (orphan inbound edges,
  dangling parents — the malformed-DAG conditions ``repro critpath``
  exits non-zero on);
- :func:`extract_critical_path` — the longest dependency chain through
  the DAG with per-phase composition (which rank/phase actually gates
  the run), plus deterministic structural chain stats for regression
  gating;
- :func:`imbalance_report` — per-rank phase self-times, max/median
  skew, the gating rank per exchange, and per-rank traffic skew;
- :func:`format_by_rank` / :func:`format_critical_path` — the ASCII
  tables behind ``repro trace --by-rank`` and ``repro critpath``.

Two kinds of path metrics coexist on purpose: the **wall-clock** walk
reports where time actually went (informative, but timing jitters run
to run), while the **structural chain** counts spans and rank
crossings on the longest logical chain — program-deterministic under
fixed seeds, so ``repro bench`` can gate on it with zero MAD.

Dropped messages (fault injection) legally leave *dangling outbound*
flows — a send whose strip nobody consumed.  An *orphan inbound* flow
(a span claims to have consumed a message nobody sent) can only come
from a corrupted or hand-edited trace and fails validation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .export import load_trace, trace_to_dict
from .metrics import MetricsRegistry
from .perf.phases import PHASES, phase_of
from .trace import Tracer

__all__ = [
    "DistributedTrace",
    "FlowEdge",
    "CriticalPath",
    "PathSegment",
    "ImbalanceReport",
    "extract_critical_path",
    "imbalance_report",
    "format_by_rank",
    "format_critical_path",
]

_RANK_THREAD_PREFIX = "simmpi-rank-"


def _parse_series(series: str) -> Tuple[str, Dict[str, str]]:
    """Split a ``name{k=v,...}`` metrics-series key (see format_series)."""
    if "{" not in series:
        return series, {}
    name, _, rest = series.partition("{")
    labels: Dict[str, str] = {}
    for item in rest.rstrip("}").split(","):
        if not item:
            continue
        k, _, v = item.partition("=")
        labels[k] = v
    return name, labels


@dataclass(frozen=True)
class FlowEdge:
    """One matched message edge: producing span → consuming span."""

    flow_id: str
    src_span: int
    dst_span: int
    src_rank: Optional[int]
    dst_rank: Optional[int]

    @property
    def crosses_ranks(self) -> bool:
        return (
            self.src_rank is not None
            and self.dst_rank is not None
            and self.src_rank != self.dst_rank
        )


class DistributedTrace:
    """Merged cross-rank view of one recorded trace.

    Build from a loaded trace document (:meth:`from_doc`, any on-disk
    format via :func:`~repro.obs.export.load_trace`) or from the live
    tracer/registry (:meth:`from_live`).
    """

    def __init__(self, spans: List[Dict[str, Any]],
                 counters: Optional[Mapping[str, float]] = None):
        self.spans = spans
        self.counters: Dict[str, float] = dict(counters or {})
        self.by_id: Dict[int, Dict[str, Any]] = {
            s["span_id"]: s for s in spans
        }
        # flow id -> producing span id (first producer wins; a flow id
        # names one physical message, so duplicates are malformed)
        self.producers: Dict[str, int] = {}
        self._dup_producers: List[str] = []
        # flow id -> consuming span ids (an injected duplicate delivers
        # the same physical copy twice, so two consumers are legal)
        self.consumers: Dict[str, List[int]] = {}
        for s in spans:
            attrs = s.get("attrs") or {}
            for fid in attrs.get("flows_out", ()):
                if fid in self.producers:
                    self._dup_producers.append(fid)
                else:
                    self.producers[fid] = s["span_id"]
            for fid in attrs.get("flows_in", ()):
                self.consumers.setdefault(fid, []).append(s["span_id"])
        self.edges: List[FlowEdge] = []
        for fid, dsts in self.consumers.items():
            src = self.producers.get(fid)
            if src is None:
                continue
            for dst in dsts:
                self.edges.append(FlowEdge(
                    fid, src, dst,
                    self.rank_of(self.by_id[src]),
                    self.rank_of(self.by_id[dst]),
                ))

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "DistributedTrace":
        metrics = doc.get("metrics") or {}
        return cls(list(doc.get("spans") or []),
                   metrics.get("counters") or {})

    @classmethod
    def from_live(cls, tr: Optional[Tracer] = None,
                  reg: Optional[MetricsRegistry] = None
                  ) -> "DistributedTrace":
        doc = trace_to_dict(tr, reg)
        return cls.from_doc(doc)

    @classmethod
    def from_file(cls, path: str) -> "DistributedTrace":
        return cls.from_doc(load_trace(path))

    # -- rank attribution ------------------------------------------------
    @staticmethod
    def rank_of(span: Mapping[str, Any]) -> Optional[int]:
        """A span's rank: the ``rank=`` attr, else its thread name."""
        rank = (span.get("attrs") or {}).get("rank")
        if isinstance(rank, bool):
            return None
        if isinstance(rank, int):
            return rank
        thread = span.get("thread") or ""
        if thread.startswith(_RANK_THREAD_PREFIX):
            tail = thread[len(_RANK_THREAD_PREFIX):]
            if tail.isdigit():
                return int(tail)
        return None

    @property
    def ranks(self) -> List[int]:
        """Sorted ranks that contributed at least one span."""
        return sorted({
            r for r in (self.rank_of(s) for s in self.spans)
            if r is not None
        })

    @property
    def dangling_out(self) -> List[str]:
        """Flows sent but never consumed (legal: dropped messages)."""
        return sorted(
            fid for fid in self.producers if fid not in self.consumers
        )

    @property
    def orphan_in(self) -> List[str]:
        """Flows consumed but never produced (malformed)."""
        return sorted(
            fid for fid in self.consumers if fid not in self.producers
        )

    # -- validation ------------------------------------------------------
    def validate(self) -> List[str]:
        """Structural problems, empty when the DAG is well-formed.

        Checks: parent links must resolve, span ids must be unique,
        every inbound flow must have a producer, and no flow id may be
        produced twice.  Dangling *outbound* flows are not an error —
        fault injection drops messages.
        """
        problems: List[str] = []
        seen: set = set()
        for s in self.spans:
            sid = s["span_id"]
            if sid in seen:
                problems.append(f"duplicate span id {sid}")
            seen.add(sid)
        for s in self.spans:
            pid = s.get("parent_id")
            if pid is not None and pid not in self.by_id:
                problems.append(
                    f"span {s['span_id']} ({s['name']}) has dangling "
                    f"parent id {pid}"
                )
        for fid in self.orphan_in:
            dsts = ", ".join(str(d) for d in self.consumers[fid])
            problems.append(
                f"orphan inbound flow {fid} (consumed by span {dsts}, "
                "never produced)"
            )
        for fid in sorted(set(self._dup_producers)):
            problems.append(f"flow {fid} produced by more than one span")
        return problems


# -- critical path ---------------------------------------------------------
@dataclass
class PathSegment:
    """One hop of the wall-clock critical path (chronological order)."""

    span_id: int
    name: str
    rank: Optional[int]
    phase: str
    #: how this span was reached: "start", "program" or "flow"
    edge: str
    flow_id: Optional[str]
    contribution_s: float
    count: int = 1  # collapsed consecutive same-shaped hops


@dataclass
class CriticalPath:
    """The longest dependency chain through a merged distributed trace."""

    #: wall-clock gating walk, chronological, consecutive same-shaped
    #: hops collapsed
    segments: List[PathSegment] = field(default_factory=list)
    total_s: float = 0.0
    #: rank changes via flow edges along the wall path
    crossings: int = 0
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: deterministic structural stats (zero-MAD under fixed seeds)
    chain_spans: int = 0
    chain_crossings: int = 0
    flow_edges: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_s": self.total_s,
            "crossings": self.crossings,
            "phase_times": dict(self.phase_times),
            "chain_spans": self.chain_spans,
            "chain_crossings": self.chain_crossings,
            "flow_edges": self.flow_edges,
            "segments": [
                {
                    "span_id": seg.span_id, "name": seg.name,
                    "rank": seg.rank, "phase": seg.phase,
                    "edge": seg.edge, "flow": seg.flow_id,
                    "time_s": seg.contribution_s, "count": seg.count,
                }
                for seg in self.segments
            ],
        }


def _wall_walk(dt: DistributedTrace) -> Tuple[List[PathSegment], float,
                                              int, Dict[str, float]]:
    """Gating backward walk from the last span to finish.

    At each span the *gating predecessor* is whichever dependency
    finished latest: its last child (a span cannot close before its
    children), the previous span to finish on its thread (program
    order), or the producer of a message it consumed (flow edge).  The
    stretch between the predecessor's end and the span's own end is
    credited to the span's phase.
    """
    spans = dt.spans
    if not spans:
        return [], 0.0, 0, {}
    end_of = {s["span_id"]: s["start_s"] + s["duration_s"] for s in spans}
    # per-thread completion order, for binary-searching "latest span to
    # end at or before t"
    by_thread: Dict[str, List[Dict[str, Any]]] = {}
    for s in spans:
        by_thread.setdefault(s.get("thread") or "", []).append(s)
    thread_ends: Dict[str, List[float]] = {}
    for th, ss in by_thread.items():
        ss.sort(key=lambda s: (end_of[s["span_id"]], s["span_id"]))
        thread_ends[th] = [end_of[s["span_id"]] for s in ss]
    last_child: Dict[int, Dict[str, Any]] = {}
    for s in spans:
        pid = s.get("parent_id")
        if pid is None:
            continue
        cur = last_child.get(pid)
        if cur is None or end_of[s["span_id"]] > end_of[cur["span_id"]]:
            last_child[pid] = s
    # rank-thread root spans (runtime.rank) have no parent link; the
    # main-thread span that joins those threads still cannot finish
    # before them — model the join as a dependency on any other
    # thread's root temporally contained in the current span
    roots = [s for s in spans if s.get("parent_id") is None]

    def program_pred(s: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        th = s.get("thread") or ""
        idx = bisect_right(thread_ends[th], s["start_s"] + 1e-12) - 1
        return by_thread[th][idx] if idx >= 0 else None

    # thread-spawn fallback: the first span on a rank thread depends on
    # whatever ran last before the thread started (the spawning code)
    all_by_end = sorted(spans, key=lambda s: (end_of[s["span_id"]],
                                              s["span_id"]))
    all_ends = [end_of[s["span_id"]] for s in all_by_end]

    def spawn_pred(s: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        idx = bisect_right(all_ends, s["start_s"] + 1e-12) - 1
        return all_by_end[idx] if idx >= 0 else None

    cur = max(spans, key=lambda s: (end_of[s["span_id"]], s["span_id"]))
    segments: List[PathSegment] = []
    crossings = 0
    phase_times: Dict[str, float] = {}
    guard = len(spans) + len(dt.edges) + 1
    while guard > 0:
        guard -= 1
        cur_end = end_of[cur["span_id"]]
        candidates: List[Tuple[float, int, str, Optional[str],
                               Dict[str, Any]]] = []
        child = last_child.get(cur["span_id"])
        if child is not None:
            candidates.append((
                end_of[child["span_id"]], child["span_id"],
                "program", None, child,
            ))
        prog = program_pred(cur)
        if prog is not None:
            candidates.append((
                end_of[prog["span_id"]], prog["span_id"],
                "program", None, prog,
            ))
        cur_thread = cur.get("thread") or ""
        for r in roots:
            if (r is cur or (r.get("thread") or "") == cur_thread):
                continue
            if (r["start_s"] >= cur["start_s"] - 1e-12
                    and end_of[r["span_id"]] <= cur_end + 1e-12):
                candidates.append((
                    end_of[r["span_id"]], r["span_id"],
                    "program", None, r,
                ))
        for fid in (cur.get("attrs") or {}).get("flows_in", ()):
            src = dt.producers.get(fid)
            if src is None:
                continue
            producer = dt.by_id[src]
            if end_of[src] < cur_end:
                # flow sorts above a program pred ending at the same
                # instant: surface the cross-rank dependency
                candidates.append((end_of[src], src, "flow", fid,
                                   producer))
        if not candidates:
            spawn = spawn_pred(cur)
            if spawn is not None:
                candidates.append((
                    end_of[spawn["span_id"]], spawn["span_id"],
                    "program", None, spawn,
                ))
        pred = max(candidates, default=None,
                   key=lambda c: (c[0], c[2] == "flow", c[1]))
        if pred is None:
            contribution = cur["duration_s"]
        else:
            contribution = max(0.0, cur_end - pred[0])
        phase = phase_of(cur["name"])
        # a segment's edge names how it was reached from the previous
        # (chronologically earlier) segment — i.e. from this pred
        segments.append(PathSegment(
            span_id=cur["span_id"], name=cur["name"],
            rank=dt.rank_of(cur), phase=phase,
            edge="start" if pred is None else pred[2],
            flow_id=None if pred is None else pred[3],
            contribution_s=contribution,
        ))
        phase_times[phase] = phase_times.get(phase, 0.0) + contribution
        if pred is None:
            break
        if (pred[2] == "flow"
                and dt.rank_of(pred[4]) != dt.rank_of(cur)):
            crossings += 1
        if pred[0] >= cur_end and pred[1] >= cur["span_id"]:
            break  # zero-width tie: stop rather than loop
        cur = pred[4]
    segments.reverse()
    total = sum(seg.contribution_s for seg in segments)
    return segments, total, crossings, phase_times


def _collapse(segments: List[PathSegment]) -> List[PathSegment]:
    """Merge consecutive same (rank, name, program-edge) hops."""
    out: List[PathSegment] = []
    for seg in segments:
        prev = out[-1] if out else None
        if (prev is not None and seg.edge == "program"
                and prev.name == seg.name and prev.rank == seg.rank):
            prev.contribution_s += seg.contribution_s
            prev.count += 1
        else:
            out.append(seg)
    return out


def _chain_stats(dt: DistributedTrace) -> Tuple[int, int]:
    """Longest structural chain: (span count, rank crossings).

    Unit-weight DP over the logical DAG — program-order edges between
    consecutive spans opened on one thread plus matched flow edges —
    maximising ``(length, crossings)`` lexicographically.  Span open
    order per thread and flow matching are both program-deterministic
    under fixed seeds, so these numbers carry no timing noise (the
    zero-MAD property ``repro bench`` gates on).  A back edge from a
    malformed input is skipped rather than recursed into.
    """
    spans = dt.spans
    if not spans:
        return 0, 0
    by_thread: Dict[str, List[int]] = {}
    for s in sorted(spans, key=lambda s: s["span_id"]):
        by_thread.setdefault(s.get("thread") or "", []).append(
            s["span_id"]
        )
    succs: Dict[int, List[Tuple[int, bool]]] = {
        s["span_id"]: [] for s in spans
    }
    for ids in by_thread.values():
        for a, b in zip(ids, ids[1:]):
            succs[a].append((b, False))
    for edge in sorted(dt.edges,
                       key=lambda e: (e.src_span, e.dst_span)):
        succs[edge.src_span].append(
            (edge.dst_span, edge.crosses_ranks)
        )
    best: Dict[int, Tuple[int, int]] = {}
    on_stack: set = set()

    def longest(sid: int) -> Tuple[int, int]:
        cached = best.get(sid)
        if cached is not None:
            return cached
        on_stack.add(sid)
        tail = (0, 0)
        for nxt, crosses in succs[sid]:
            if nxt in on_stack:
                continue
            length, cross = longest(nxt)
            cand = (length, cross + (1 if crosses else 0))
            if cand > tail:
                tail = cand
        on_stack.discard(sid)
        best[sid] = (tail[0] + 1, tail[1])
        return best[sid]

    # iterative-friendly order: spans late in id order first, so the
    # recursion depth stays shallow for long per-thread chains
    result = (0, 0)
    for s in sorted(spans, key=lambda s: -s["span_id"]):
        result = max(result, longest(s["span_id"]))
    return result


def extract_critical_path(dt: DistributedTrace) -> CriticalPath:
    """Walk the merged DAG and report the run's gating chain."""
    segments, total, crossings, phase_times = _wall_walk(dt)
    chain_spans, chain_crossings = _chain_stats(dt)
    return CriticalPath(
        segments=_collapse(segments),
        total_s=total,
        crossings=crossings,
        phase_times=phase_times,
        chain_spans=chain_spans,
        chain_crossings=chain_crossings,
        flow_edges=len(dt.edges),
    )


# -- load imbalance --------------------------------------------------------
@dataclass
class ImbalanceReport:
    """Per-rank work distribution of one distributed trace."""

    #: rank -> phase -> self time (only ranked spans contribute)
    per_rank: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: rank -> total self time across phases
    totals: Dict[int, float] = field(default_factory=dict)
    #: phase -> max/median self time across ranks
    phase_skew: Dict[str, float] = field(default_factory=dict)
    #: max/median of per-rank totals
    total_skew: float = 1.0
    #: rank -> number of exchanges it finished last in (gated)
    gating: Dict[int, int] = field(default_factory=dict)
    #: rank -> comm.bytes_sent, from the metrics snapshot
    bytes_by_rank: Dict[int, float] = field(default_factory=dict)
    #: max/median of per-rank bytes (deterministic under fixed seeds)
    bytes_skew: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "per_rank": {
                str(r): dict(p) for r, p in self.per_rank.items()
            },
            "totals": {str(r): t for r, t in self.totals.items()},
            "phase_skew": dict(self.phase_skew),
            "total_skew": self.total_skew,
            "gating": {str(r): n for r, n in self.gating.items()},
            "bytes_by_rank": {
                str(r): b for r, b in self.bytes_by_rank.items()
            },
            "bytes_skew": self.bytes_skew,
        }


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _skew(values: List[float]) -> float:
    """max/median, 1.0 when degenerate (".0 of nothing is balanced")."""
    if len(values) < 2:
        return 1.0
    med = _median(values)
    if med <= 0:
        return 1.0
    return max(values) / med


def imbalance_report(dt: DistributedTrace) -> ImbalanceReport:
    """Fold a merged trace into the per-rank load-imbalance view."""
    rep = ImbalanceReport()
    child_time: Dict[int, float] = {}
    for s in dt.spans:
        pid = s.get("parent_id")
        if pid is not None:
            child_time[pid] = child_time.get(pid, 0.0) + s["duration_s"]
    for s in dt.spans:
        rank = dt.rank_of(s)
        if rank is None:
            continue
        self_s = max(
            0.0, s["duration_s"] - child_time.get(s["span_id"], 0.0)
        )
        phase = phase_of(s["name"])
        per = rep.per_rank.setdefault(rank, {})
        per[phase] = per.get(phase, 0.0) + self_s
        rep.totals[rank] = rep.totals.get(rank, 0.0) + self_s
    ranks = sorted(rep.per_rank)
    for phase in PHASES:
        values = [rep.per_rank[r].get(phase, 0.0) for r in ranks]
        if any(v > 0 for v in values):
            rep.phase_skew[phase] = _skew(values)
    rep.total_skew = _skew([rep.totals[r] for r in ranks])
    # which rank finished each exchange last (the one the others'
    # subsequent receives implicitly waited on)
    by_seq: Dict[Any, List[Dict[str, Any]]] = {}
    for s in dt.spans:
        if s["name"] != "comm.exchange":
            continue
        seq = (s.get("attrs") or {}).get("seq")
        by_seq.setdefault(seq, []).append(s)
    for seq, group in by_seq.items():
        if len(group) < 2:
            continue
        gate = max(
            group,
            key=lambda s: (s["start_s"] + s["duration_s"], s["span_id"]),
        )
        rank = dt.rank_of(gate)
        if rank is not None:
            rep.gating[rank] = rep.gating.get(rank, 0) + 1
    for series, value in dt.counters.items():
        name, labels = _parse_series(series)
        if name != "comm.bytes_sent" or "rank" not in labels:
            continue
        try:
            rank = int(labels["rank"])
        except ValueError:
            continue
        rep.bytes_by_rank[rank] = rep.bytes_by_rank.get(rank, 0.0) + value
    rep.bytes_skew = _skew(list(rep.bytes_by_rank.values()))
    return rep


# -- rendering -------------------------------------------------------------
def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def format_by_rank(dt: DistributedTrace,
                   rep: Optional[ImbalanceReport] = None) -> str:
    """Per-rank phase self-time table with a skew column."""
    rep = rep or imbalance_report(dt)
    ranks = sorted(rep.per_rank)
    if not ranks:
        return "PER-RANK SUMMARY\n(no rank-attributed spans in trace)"
    phases = [
        p for p in PHASES
        if any(rep.per_rank[r].get(p, 0.0) > 0 for r in ranks)
    ]
    lines = [f"PER-RANK SUMMARY  ({len(ranks)} ranks)"]
    header = "rank " + "".join(f"{p:>11s}" for p in phases)
    header += f"{'total':>11s}{'skew':>7s}"
    lines.append(header)
    lines.append("-" * len(header))
    med_total = _median([rep.totals[r] for r in ranks])
    for r in ranks:
        row = f"{r:<5d}"
        for p in phases:
            row += f"{_fmt_time(rep.per_rank[r].get(p, 0.0)):>11s}"
        total = rep.totals[r]
        skew = total / med_total if med_total > 0 else 1.0
        row += f"{_fmt_time(total):>11s}{skew:>6.2f}x"
        lines.append(row)
    skew_row = "skew "
    for p in phases:
        skew_row += f"{rep.phase_skew.get(p, 1.0):>10.2f}x"
    skew_row += f"{rep.total_skew:>10.2f}x"
    lines.append(skew_row)
    if rep.gating:
        gates = ", ".join(
            f"rank {r}: {n}" for r, n in sorted(rep.gating.items())
        )
        total_ex = sum(rep.gating.values())
        lines.append(f"exchange gating ranks ({total_ex} exchanges): "
                     f"{gates}")
    if rep.bytes_by_rank:
        lines.append(
            "bytes sent: "
            + ", ".join(
                f"rank {r}: {int(b)}"
                for r, b in sorted(rep.bytes_by_rank.items())
            )
            + f"  (skew {rep.bytes_skew:.2f}x)"
        )
    return "\n".join(lines)


def format_critical_path(cp: CriticalPath) -> str:
    """Human-readable rendering of one extracted critical path."""
    lines = [
        f"CRITICAL PATH  (wall {_fmt_time(cp.total_s)}, "
        f"{cp.crossings} rank crossings, "
        f"chain {cp.chain_spans} spans / {cp.chain_crossings} crossings, "
        f"{cp.flow_edges} flow edges)"
    ]
    for seg in cp.segments:
        rank = f"rank {seg.rank}" if seg.rank is not None else "main"
        label = seg.name + (f" x{seg.count}" if seg.count > 1 else "")
        via = ""
        if seg.edge == "flow" and seg.flow_id:
            via = f"  <- flow {seg.flow_id}"
        lines.append(
            f"  {rank:>8s}  {label:36s} {_fmt_time(seg.contribution_s):>10s}"
            f"{via}"
        )
    if cp.phase_times:
        total = sum(cp.phase_times.values()) or 1.0
        comp = "  ".join(
            f"{p} {cp.phase_times[p] / total * 100:.0f}%"
            for p in PHASES if cp.phase_times.get(p, 0.0) > 0
        )
        lines.append(f"phase composition: {comp}")
    return "\n".join(lines)
