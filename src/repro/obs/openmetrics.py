"""OpenMetrics text exposition — renderer and strict parser.

The scrape surface for the metrics registry: :func:`render` turns a raw
registry snapshot into the `OpenMetrics text format
<https://prometheus.io/docs/specs/om/open_metrics_spec/>`_ that any
Prometheus-compatible collector understands, and :func:`parse` is the
deliberately *strict* inverse used by tests and the CI monitor-smoke
lane to prove the payload is well-formed (not merely "looks like text").

Mapping from registry series to exposition families:

========== ============ ==========================================
registry    OpenMetrics  sample lines
========== ============ ==========================================
counter     counter      ``name_total{labels} value``
gauge       gauge        ``name{labels} value``
histogram   summary      ``name{quantile="0.5"} v`` (p50/p90/p99)
                         + ``name_sum`` / ``name_count``
========== ============ ==========================================

Dotted repro metric names (``comm.bytes_sent``) are sanitised to the
OpenMetrics name charset (``comm_bytes_sent``); label *values* pass
through escaped but otherwise intact, so ``rank``/``backend``/
``exchange_mode`` grouping survives the round trip.

Run as a module to validate a payload::

    python -m repro.obs.openmetrics metrics.txt   # or - for stdin
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

__all__ = [
    "render",
    "parse",
    "sanitize_name",
    "Family",
    "Sample",
    "OpenMetricsError",
]

#: legal exposition metric/label name (OpenMetrics ABNF, sans colon for
#: labels)
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: histogram summary quantiles exposed per series
_QUANTILES = (("0.5", 0.50), ("0.9", 0.90), ("0.99", 0.99))


class OpenMetricsError(ValueError):
    """A payload violated the OpenMetrics text format."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


@dataclass
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: Dict[str, str]
    value: float


@dataclass
class Family:
    """One ``# TYPE`` family and the samples declared under it."""

    name: str
    type: str
    samples: List[Sample] = field(default_factory=list)

    def value(self, **labels: str) -> float:
        """The sample value with exactly this label set (KeyError if absent)."""
        want = {k: str(v) for k, v in labels.items()}
        for s in self.samples:
            if s.labels == want:
                return s.value
        raise KeyError(f"{self.name}{want!r}")


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def sanitize_name(name: str) -> str:
    """Map a dotted repro metric name onto the OpenMetrics charset."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_RE.match(out):
        out = "_" + out
    return out


def _escape_label_value(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\"", "\\\"")
        .replace("\n", "\\n")
    )


def _render_labels(labels: Tuple[Tuple[str, Any], ...],
                   extra: Tuple[Tuple[str, Any], ...] = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{sanitize_name(str(k))}="{_escape_label_value(v)}"'
        for k, v in pairs
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    # integral values print without a trailing .0 — easier on the eyes
    # and still a legal OpenMetrics float
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def render(raw: Mapping[str, Mapping]) -> str:
    """Render a raw registry snapshot as OpenMetrics text.

    ``raw`` is :meth:`MetricsRegistry.raw_snapshot` output: keyed
    (name, labels-tuple) -> value/values maps under ``counters``,
    ``gauges`` and ``histograms``.  Families are emitted sorted by
    exposition name; the payload always ends with the mandatory
    ``# EOF`` terminator.
    """
    # group series by sanitised family name, preserving kind
    families: Dict[str, List[Tuple[str, Any, Any]]] = {}
    kinds: Dict[str, str] = {}
    for kind, series in (("counter", raw.get("counters", {})),
                         ("gauge", raw.get("gauges", {})),
                         ("summary", raw.get("histograms", {}))):
        for (name, labels), value in series.items():
            fam = sanitize_name(name)
            prev = kinds.setdefault(fam, kind)
            if prev != kind:
                # same sanitised name used by two metric kinds — keep
                # both by suffixing the later family
                fam = f"{fam}_{kind}"
                kinds.setdefault(fam, kind)
            families.setdefault(fam, []).append((name, labels, value))

    lines: List[str] = []
    for fam in sorted(families):
        kind = kinds[fam]
        lines.append(f"# TYPE {fam} {kind}")
        for _, labels, value in sorted(
                families[fam], key=lambda e: tuple(str(p) for p in e[1])):
            if kind == "counter":
                lines.append(
                    f"{fam}_total{_render_labels(labels)} {_fmt(value)}"
                )
            elif kind == "gauge":
                lines.append(f"{fam}{_render_labels(labels)} {_fmt(value)}")
            else:  # summary over raw histogram observations
                ordered = sorted(value)
                for qlabel, q in _QUANTILES:
                    lines.append(
                        f"{fam}"
                        f"{_render_labels(labels, (('quantile', qlabel),))}"
                        f" {_fmt(_percentile(ordered, q))}"
                    )
                lines.append(
                    f"{fam}_sum{_render_labels(labels)} {_fmt(sum(ordered))}"
                )
                lines.append(
                    f"{fam}_count{_render_labels(labels)} {len(ordered)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _percentile(ordered: List[float], q: float) -> float:
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


# ---------------------------------------------------------------------------
# strict parsing
# ---------------------------------------------------------------------------

def _unescape_label_value(raw: str, lineno: int) -> str:
    out: List[str] = []
    it = iter(range(len(raw)))
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            if i + 1 >= len(raw):
                raise OpenMetricsError(lineno, "dangling escape in label value")
            nxt = raw[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise OpenMetricsError(
                    lineno, f"illegal escape \\{nxt} in label value"
                )
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(raw: str, lineno: int) -> Dict[str, str]:
    """Parse the ``k="v",...`` body between braces."""
    labels: Dict[str, str] = {}
    i = 0
    while i < len(raw):
        m = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"", raw[i:])
        if not m:
            raise OpenMetricsError(lineno, f"malformed label at ...{raw[i:]!r}")
        name = m.group(1)
        if name in labels:
            raise OpenMetricsError(lineno, f"duplicate label {name!r}")
        i += m.end()
        # scan the quoted value honouring escapes
        val: List[str] = []
        while i < len(raw):
            ch = raw[i]
            if ch == "\\":
                if i + 1 >= len(raw):
                    raise OpenMetricsError(lineno, "dangling escape")
                val.append(raw[i:i + 2])
                i += 2
                continue
            if ch == '"':
                break
            val.append(ch)
            i += 1
        else:
            raise OpenMetricsError(lineno, "unterminated label value")
        labels[name] = _unescape_label_value("".join(val), lineno)
        i += 1  # closing quote
        if i < len(raw):
            if raw[i] != ",":
                raise OpenMetricsError(
                    lineno, f"expected ',' between labels, got {raw[i]!r}"
                )
            i += 1
            if i == len(raw):
                raise OpenMetricsError(lineno, "trailing comma in labels")
    return labels


#: sample-name suffixes each family type may expose
_ALLOWED_SUFFIXES = {
    "counter": ("_total", "_created"),
    "gauge": ("",),
    "summary": ("", "_sum", "_count", "_created"),
    "histogram": ("_bucket", "_sum", "_count", "_created"),
    "unknown": ("",),
    "info": ("_info",),
    "stateset": ("",),
}


def parse(text: str) -> Dict[str, Family]:
    """Strictly parse an OpenMetrics payload into families by name.

    Raises :class:`OpenMetricsError` on any violation: missing or
    repeated ``# TYPE`` declarations, samples outside their family,
    counter samples without the ``_total`` suffix, malformed labels,
    non-float values, text after — or a payload without — the final
    ``# EOF`` line.
    """
    families: Dict[str, Family] = {}
    seen_samples: set = set()
    eof_seen = False
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline
    for lineno, line in enumerate(lines, 1):
        if eof_seen:
            raise OpenMetricsError(lineno, "content after # EOF")
        if line == "# EOF":
            eof_seen = True
            continue
        if not line:
            raise OpenMetricsError(lineno, "blank line")
        if line.startswith("#"):
            m = re.match(r"^# (TYPE|HELP|UNIT) ([^ ]+)(?: (.*))?$", line)
            if not m:
                raise OpenMetricsError(lineno, f"malformed comment {line!r}")
            keyword, name = m.group(1), m.group(2)
            if not _NAME_RE.match(name):
                raise OpenMetricsError(lineno, f"illegal metric name {name!r}")
            if keyword == "TYPE":
                mtype = (m.group(3) or "").strip()
                if mtype not in _ALLOWED_SUFFIXES:
                    raise OpenMetricsError(
                        lineno, f"unknown metric type {mtype!r}"
                    )
                if name in families:
                    raise OpenMetricsError(
                        lineno, f"duplicate # TYPE for {name!r}"
                    )
                families[name] = Family(name=name, type=mtype)
            continue

        # sample line: name[{labels}] value [timestamp]
        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (.+)$", line)
        if not m:
            raise OpenMetricsError(lineno, f"malformed sample {line!r}")
        sample_name, label_body = m.group(1), m.group(3)
        rest = m.group(4).split(" ")
        if len(rest) not in (1, 2):
            raise OpenMetricsError(lineno, "too many fields after value")
        try:
            value = float(rest[0])
        except ValueError:
            raise OpenMetricsError(
                lineno, f"non-float sample value {rest[0]!r}"
            ) from None

        # find the owning family by longest matching declared name
        fam = None
        for name, f in families.items():
            if sample_name == name or sample_name.startswith(name + "_"):
                suffix = sample_name[len(name):]
                if suffix in _ALLOWED_SUFFIXES[f.type]:
                    if fam is None or len(name) > len(fam.name):
                        fam = f
        if fam is None:
            raise OpenMetricsError(
                lineno,
                f"sample {sample_name!r} has no matching # TYPE family "
                "(counters must use the _total suffix)",
            )
        labels = _parse_labels(label_body, lineno) if label_body else {}
        dedup_key = (sample_name, tuple(sorted(labels.items())))
        if dedup_key in seen_samples:
            raise OpenMetricsError(
                lineno, f"duplicate sample {sample_name}{labels!r}"
            )
        seen_samples.add(dedup_key)
        fam.samples.append(Sample(sample_name, labels, value))

    if not eof_seen:
        raise OpenMetricsError(len(lines) + 1, "payload missing # EOF")
    return families


def _main(argv: List[str]) -> int:
    """Validate a payload file (``-`` for stdin); exit 0 iff well-formed."""
    if len(argv) != 1:
        print("usage: python -m repro.obs.openmetrics <file|->",
              file=sys.stderr)
        return 2
    if argv[0] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[0], "r", encoding="utf-8") as fh:
            text = fh.read()
    try:
        families = parse(text)
    except OpenMetricsError as exc:
        print(f"INVALID OpenMetrics payload: {exc}", file=sys.stderr)
        return 1
    nsamples = sum(len(f.samples) for f in families.values())
    print(f"OK: {len(families)} families, {nsamples} samples")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main(sys.argv[1:]))
