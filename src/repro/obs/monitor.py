"""``repro monitor`` — a refreshing ASCII dashboard over a live run.

Two sources, one frame:

- **scrape endpoint** (``repro monitor http://127.0.0.1:9100``): pulls
  ``/metrics`` (strict-parsed OpenMetrics), ``/flight`` and ``/series``
  from a run started with ``--serve-metrics``;
- **event log** (``repro monitor run.events.jsonl``): replays the JSONL
  narration written via ``--event-log``/``REPRO_EVENT_LOG``.

Either way the dashboard shows the current phase, span throughput,
top-k hot spans from the flight recorder, comm byte/message rates, and
per-rank skew whenever rank labels are present.  ``--once`` renders a
single frame and exits (CI smoke mode); otherwise the frame redraws
every ``--interval`` seconds until interrupted.

The frame pipeline is deliberately pure: ``collect_*`` builds a plain
state dict, :func:`render` turns it into text.  Tests drive both
without a terminal or a clock.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from .events import read_events
from .openmetrics import parse as parse_openmetrics

__all__ = [
    "collect_from_url",
    "collect_from_events",
    "collect",
    "render",
    "run_monitor",
]

#: counter families surfaced as rate lines, in display order
_COMM_RATES = (
    ("comm_bytes_sent", "comm bytes/s"),
    ("comm_messages", "comm msgs/s"),
    ("native_cache_hit", "native cache hits"),
    ("native_cache_miss", "native cache misses"),
    ("obs_dropped_spans", "flight drops"),
)


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------

def _fetch(url: str, timeout: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read()


def collect_from_url(base_url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """One dashboard state dict scraped from a telemetry endpoint."""
    base = base_url.rstrip("/")
    families = parse_openmetrics(
        _fetch(base + "/metrics", timeout).decode("utf-8")
    )
    state: Dict[str, Any] = {
        "source": base,
        "mode": "scrape",
        "counters": {},
        "per_rank_bytes": {},
        "rates": {},
        "phase": None,
        "events": None,
    }
    for fam in families.values():
        if fam.type != "counter":
            continue
        total = sum(s.value for s in fam.samples)
        state["counters"][fam.name] = total
        if fam.name == "comm_bytes_sent":
            for s in fam.samples:
                rank = s.labels.get("rank")
                if rank is not None:
                    state["per_rank_bytes"][rank] = (
                        state["per_rank_bytes"].get(rank, 0.0) + s.value
                    )
    try:
        state["flight"] = json.loads(_fetch(base + "/flight", timeout))
    except (urllib.error.URLError, OSError, ValueError):
        state["flight"] = None
    try:
        series = json.loads(_fetch(base + "/series", timeout))
    except (urllib.error.URLError, OSError, ValueError):
        series = {}
    # fold windowed per-series rates up to the family level
    for name, stats in series.items():
        if stats.get("kind") != "counter":
            continue
        fam = name.split("{", 1)[0].replace(".", "_")
        state["rates"][fam] = state["rates"].get(fam, 0.0) + stats["rate"]
    return state


def collect_from_events(path: str) -> Dict[str, Any]:
    """One dashboard state dict replayed from a JSONL event log."""
    state: Dict[str, Any] = {
        "source": path,
        "mode": "events",
        "counters": {},
        "per_rank_bytes": {},
        "rates": {},
        "phase": None,
        "flight": None,
        "events": {"total": 0, "by_level": {}, "by_event": {},
                   "last_ts": None, "first_ts": None, "per_rank": {}},
    }
    ev = state["events"]
    for rec in read_events(path):
        ev["total"] += 1
        lvl = rec.get("level", "info")
        ev["by_level"][lvl] = ev["by_level"].get(lvl, 0) + 1
        name = rec.get("event", "?")
        ev["by_event"][name] = ev["by_event"].get(name, 0) + 1
        ts = rec.get("ts")
        if ts is not None:
            if ev["first_ts"] is None:
                ev["first_ts"] = ts
            ev["last_ts"] = ts
        rank = rec.get("rank")
        if rank is not None:
            key = str(rank)
            ev["per_rank"][key] = ev["per_rank"].get(key, 0) + 1
        if name.startswith("phase."):
            # phase.enter/phase.exit records carry phase=
            if name == "phase.enter":
                state["phase"] = rec.get("phase")
            elif name == "phase.exit" and state["phase"] == rec.get("phase"):
                state["phase"] = None
        if name == "comm.bytes" and rank is not None:
            state["per_rank_bytes"][str(rank)] = (
                state["per_rank_bytes"].get(str(rank), 0.0)
                + float(rec.get("bytes", 0))
            )
    span = ev["last_ts"], ev["first_ts"]
    if None not in span and ev["last_ts"] > ev["first_ts"]:
        state["rates"]["events"] = ev["total"] / (
            ev["last_ts"] - ev["first_ts"]
        )
    return state


def collect(source: str, timeout: float = 5.0) -> Dict[str, Any]:
    """Dispatch on the source: URL → scrape, anything else → event log."""
    if source.startswith(("http://", "https://")):
        return collect_from_url(source, timeout=timeout)
    return collect_from_events(source)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _human(n: float) -> str:
    for unit in ("", "K", "M", "G"):
        if abs(n) < 1000:
            return f"{n:.1f}{unit}" if unit else f"{n:.0f}"
        n /= 1000.0
    return f"{n:.1f}T"


def _bar(frac: float, width: int = 20) -> str:
    frac = max(0.0, min(1.0, frac))
    fill = int(round(frac * width))
    return "#" * fill + "." * (width - fill)


def render(state: Dict[str, Any], width: int = 78) -> str:
    """Render one dashboard frame (pure text, no terminal control)."""
    rule = "-" * width
    lines: List[str] = []
    lines.append(f"repro monitor · {state['mode']} · {state['source']}")
    lines.append(rule)

    phase = state.get("phase")
    lines.append(f"phase: {phase if phase else '(idle / not reported)'}")

    fl = state.get("flight")
    if fl and fl.get("attached"):
        lines.append(
            "flight: "
            f"{fl['buffered']}/{fl['capacity']} spans buffered, "
            f"{fl['dropped']} dropped, {fl['sampled_out']} sampled out, "
            f"{fl.get('span_rate', 0.0):.1f} span/s"
        )
        top = fl.get("top") or []
        if top:
            lines.append("hot spans (by total time in window):")
            t_max = max(t["total_s"] for t in top) or 1.0
            for t in top[:5]:
                lines.append(
                    f"  {t['name']:<28} {_bar(t['total_s'] / t_max)} "
                    f"{t['total_s'] * 1e3:8.2f} ms x{t['count']}"
                )

    rates = state.get("rates") or {}
    rate_lines = []
    for fam, label in _COMM_RATES:
        if fam in rates and rates[fam] > 0:
            rate_lines.append(f"  {label:<22} {_human(rates[fam])}/s")
    if "events" in rates:
        rate_lines.append(f"  {'event rate':<22} {rates['events']:.1f}/s")
    if rate_lines:
        lines.append("rates (windowed):")
        lines.extend(rate_lines)

    counters = state.get("counters") or {}
    totals = [(f, counters[f]) for f, _ in _COMM_RATES if f in counters]
    if totals:
        lines.append("totals: " + "  ".join(
            f"{f}={_human(v)}" for f, v in totals
        ))

    per_rank = state.get("per_rank_bytes") or {}
    ev = state.get("events")
    if not per_rank and ev and ev.get("per_rank"):
        per_rank = {k: float(v) for k, v in ev["per_rank"].items()}
        rank_unit = "events"
    else:
        rank_unit = "bytes"
    if len(per_rank) >= 2:
        vals = list(per_rank.values())
        mean = sum(vals) / len(vals)
        skew = (max(vals) / mean) if mean else 0.0
        lines.append(
            f"per-rank {rank_unit} (skew max/mean = {skew:.2f}):"
        )
        v_max = max(vals) or 1.0
        for rank in sorted(per_rank, key=lambda r: (len(r), r)):
            v = per_rank[rank]
            lines.append(
                f"  rank {rank:>3} {_bar(v / v_max)} {_human(v)}"
            )

    if ev:
        lines.append(
            f"events: {ev['total']} total "
            + " ".join(f"{k}={v}" for k, v in sorted(ev["by_level"].items()))
        )
        hot = sorted(ev["by_event"].items(), key=lambda kv: -kv[1])[:5]
        for name, count in hot:
            lines.append(f"  {name:<28} x{count}")

    lines.append(rule)
    return "\n".join(lines)


def run_monitor(source: str, once: bool = False, interval: float = 1.0,
                timeout: float = 5.0, out=None) -> int:
    """Drive the dashboard loop; returns a process exit code."""
    out = out if out is not None else sys.stdout
    while True:
        try:
            state = collect(source, timeout=timeout)
        except (urllib.error.URLError, OSError) as exc:
            print(f"monitor: cannot reach {source}: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"monitor: bad telemetry from {source}: {exc}",
                  file=sys.stderr)
            return 1
        frame = render(state)
        if once:
            print(frame, file=out)
            return 0
        # clear + home between frames; plain ANSI keeps it stdlib-only
        print("\x1b[2J\x1b[H" + frame, file=out, flush=True)
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover
            return 0
