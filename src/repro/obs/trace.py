"""Hierarchical execution tracing (the ``repro.obs`` span layer).

A *span* is one timed region of the pipeline — ``codegen.sunway``,
``comm.pack``, ``autotune.trial`` — with arbitrary key/value attributes
and parent/child nesting.  Spans are recorded by a process-global
:class:`Tracer` that is **disabled by default**: every instrumentation
site calls :func:`span`, and when tracing is off that call returns one
shared, stateless no-op context manager, so the instrumented hot paths
(``distributed_run`` steps, halo exchanges, annealing trials) pay only
a flag check and allocate nothing.

The tracer is thread-safe: the simulated MPI runtime runs every rank on
its own thread, and each thread keeps its own span stack (so nesting is
per rank) while finished spans land in one shared record list.

Typical use::

    from repro.obs import span, enable, tracer

    enable()
    with span("codegen.sunway", stencil="3d7pt_star") as sp:
        ...
        sp.set(files=6)
    print(len(tracer().records))
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional

__all__ = [
    "Span",
    "FlightRecorder",
    "Tracer",
    "tracer",
    "span",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "attach_flow",
    "enable_flight",
    "disable_flight",
    "flight",
]

#: default flight-recorder ring capacity (spans)
DEFAULT_FLIGHT_CAPACITY = 2048


@dataclass
class Span:
    """One finished span (times are seconds since the tracer epoch)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    duration_s: float
    thread: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


class FlightRecorder:
    """Bounded ring buffer of completed spans (the *flight recorder*).

    Full tracing (:meth:`Tracer.enable`) keeps every span in an
    unbounded list — right for one bounded run that exports a file at
    the end, wrong for a long-lived service.  The flight recorder is
    the always-on alternative: completed spans land in a ring of fixed
    ``capacity``; once full, the oldest span is evicted and counted
    under ``obs.dropped_spans``, so memory never grows past the
    configured bound no matter how long the run lives.

    ``sample`` maps span names to a keep-1-in-N rate
    (``{"runtime.kernel_eval": 16}``): only every Nth completed span of
    that name enters the ring (deterministic per-name counters, no
    RNG), which keeps hot inner loops from flushing out the rare
    interesting spans.  Sampled-out spans are accounted separately
    from ring evictions.

    All methods are thread-safe; the recorder is attached to a
    :class:`Tracer` via :meth:`Tracer.enable_flight`.
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY,
                 sample: Optional[Mapping[str, int]] = None):
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError("flight-recorder capacity must be >= 1")
        self.capacity = capacity
        self.sample: Dict[str, int] = {}
        for name, n in (sample or {}).items():
            n = int(n)
            if n < 1:
                raise ValueError(
                    f"sample rate for {name!r} must be >= 1, got {n}"
                )
            self.sample[str(name)] = n
        self._lock = threading.Lock()
        # maxlen is a hard backstop: even a bookkeeping bug can never
        # grow the ring past capacity
        self._ring: Deque[Span] = deque(maxlen=capacity)
        self._seen = 0
        self._kept = 0
        self._dropped = 0
        self._sampled_out = 0
        self._name_counts: Dict[str, int] = {}

    # -- recording -------------------------------------------------------
    def record(self, record: Span) -> None:
        """Offer one completed span to the ring."""
        with self._lock:
            self._seen += 1
            rate = self.sample.get(record.name, 1)
            if rate > 1:
                seq = self._name_counts.get(record.name, 0)
                self._name_counts[record.name] = seq + 1
                if seq % rate:
                    self._sampled_out += 1
                    return
            if len(self._ring) == self.capacity:
                self._dropped += 1
                dropped = True
            else:
                dropped = False
            self._ring.append(record)
            self._kept += 1
        if dropped:
            # mirror the eviction into the metrics registry so scrapes
            # see drop pressure; the local counter above is the source
            # of truth and never depends on the registry being enabled
            from .metrics import counter as _counter

            _counter("obs.dropped_spans")

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._seen = self._kept = 0
            self._dropped = self._sampled_out = 0
            self._name_counts = {}

    # -- accounting ------------------------------------------------------
    @property
    def seen(self) -> int:
        """Completed spans offered to the recorder."""
        return self._seen

    @property
    def kept(self) -> int:
        """Spans that entered the ring (≤ seen)."""
        return self._kept

    @property
    def dropped(self) -> int:
        """Ring evictions (the ``obs.dropped_spans`` count)."""
        return self._dropped

    @property
    def sampled_out(self) -> int:
        """Spans skipped by per-name sampling (not evictions)."""
        return self._sampled_out

    def counts(self) -> Dict[str, int]:
        """One consistent accounting snapshot."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "buffered": len(self._ring),
                "seen": self._seen,
                "kept": self._kept,
                "dropped": self._dropped,
                "sampled_out": self._sampled_out,
            }

    # -- reading ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def snapshot(self) -> List[Span]:
        """Buffered spans, oldest first (a consistent copy)."""
        with self._lock:
            return list(self._ring)

    def top(self, k: int = 5, by: str = "total") -> List[Dict[str, Any]]:
        """Hottest span names over the buffered window.

        ``by`` is ``"total"`` (aggregate duration) or ``"count"``.
        Each entry carries name/count/total_s/max_s/avg_s.
        """
        if by not in ("total", "count"):
            raise ValueError(f"unknown top-k ordering {by!r}")
        agg: Dict[str, Dict[str, Any]] = {}
        for s in self.snapshot():
            node = agg.setdefault(
                s.name, {"name": s.name, "count": 0, "total_s": 0.0,
                         "max_s": 0.0}
            )
            node["count"] += 1
            node["total_s"] += s.duration_s
            node["max_s"] = max(node["max_s"], s.duration_s)
        for node in agg.values():
            node["avg_s"] = node["total_s"] / node["count"]
        key = "total_s" if by == "total" else "count"
        ordered = sorted(agg.values(), key=lambda n: -n[key])
        return ordered[:max(0, int(k))]

    def span_rate(self, window_s: float, now_s: float) -> float:
        """Spans/second completed in the trailing window.

        ``now_s`` is the caller's current tracer-epoch offset (pair it
        with ``time.perf_counter() - epoch``); only buffered spans are
        visible, so the rate saturates once the window outlives the
        ring.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        lo = now_s - window_s
        n = sum(1 for s in self.snapshot() if s.end_s >= lo)
        return n / window_s


class _NoopSpan:
    """The active-span stand-in when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


class _NoopContext:
    """Shared, stateless no-op context manager (safe to re-enter)."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_NOOP_CONTEXT = _NoopContext()


class _ActiveSpan:
    """A span currently open on some thread's stack."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "t0")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 attrs: Dict[str, Any]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_attrs", "_active")

    def __init__(self, tr: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tr
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> _ActiveSpan:
        tr = self._tracer
        ctx = getattr(tr._tls, "ctx", None)
        if ctx:
            # thread-context attrs (e.g. rank=) under explicit ones
            merged = dict(ctx)
            merged.update(self._attrs)
            self._attrs = merged
        stack = tr._stack()
        parent = stack[-1].span_id if stack else None
        with tr._lock:
            sid = tr._next_id
            tr._next_id += 1
        active = _ActiveSpan(sid, parent, self._name, self._attrs)
        stack.append(active)
        self._active = active
        active.t0 = time.perf_counter()
        return active

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        tr = self._tracer
        active = self._active
        stack = tr._stack()
        # tolerate out-of-order exits (e.g. enable() raced a live span)
        if stack and stack[-1] is active:
            stack.pop()
        if exc_type is not None:
            active.attrs["error"] = exc_type.__name__
        record = Span(
            span_id=active.span_id,
            parent_id=active.parent_id,
            name=active.name,
            start_s=active.t0 - tr._epoch,
            duration_s=t1 - active.t0,
            thread=threading.current_thread().name,
            attrs=active.attrs,
        )
        if tr._keep_all:
            with tr._lock:
                tr.records.append(record)
        fl = tr._flight
        if fl is not None:
            fl.record(record)
        return False


class Tracer:
    """Thread-safe in-memory span recorder.

    Disabled by default; :meth:`span` is a no-op until :meth:`enable`.
    """

    def __init__(self) -> None:
        self._enabled = False
        #: full recording on (every span appended to ``records``)
        self._keep_all = False
        #: attached :class:`FlightRecorder`, or ``None``
        self._flight: Optional[FlightRecorder] = None
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_id = 1
        self._anchor()
        #: finished spans, appended at span exit
        self.records: List[Span] = []

    def _anchor(self) -> None:
        """Capture one (wall, monotonic) clock pair.

        All span timestamps are offsets of ``time.perf_counter()`` from
        ``self._epoch``; the *only* wall-clock read is the paired
        ``time.time()`` taken here.  Exported wall timestamps are always
        derived as ``epoch_wall + monotonic offset``, so an NTP step
        mid-run cannot make the trace drift or go backwards.
        """
        self._epoch_wall = time.time()
        self._epoch = time.perf_counter()

    # -- state -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        """Turn on full recording (every completed span kept)."""
        # re-anchor the clock pair on a fresh recording only: records
        # already taken must keep their epoch
        if not self._enabled and not self.records:
            self._anchor()
        self._keep_all = True
        self._sync()

    def disable(self) -> None:
        """Turn off full recording (an attached flight ring stays live)."""
        self._keep_all = False
        self._sync()

    def _sync(self) -> None:
        # spans are produced while either consumer is attached; the
        # single `_enabled` flag keeps the span() fast path one check
        self._enabled = self._keep_all or self._flight is not None

    # -- flight recorder ------------------------------------------------
    @property
    def flight(self) -> Optional[FlightRecorder]:
        """The attached :class:`FlightRecorder`, or ``None``."""
        return self._flight

    def enable_flight(self, capacity: int = DEFAULT_FLIGHT_CAPACITY,
                      sample: Optional[Mapping[str, int]] = None,
                      ) -> FlightRecorder:
        """Attach a flight recorder (bounded ring of completed spans).

        Independent of :meth:`enable`: the ring can run alone (the
        always-on default for services) or alongside full recording.
        Re-attaching replaces the previous ring.
        """
        if not self._enabled and not self.records:
            self._anchor()
        fl = FlightRecorder(capacity=capacity, sample=sample)
        self._flight = fl
        self._sync()
        return fl

    def disable_flight(self) -> None:
        """Detach (and discard) the flight recorder, if any."""
        self._flight = None
        self._sync()

    def now_s(self) -> float:
        """Current offset from the tracer epoch (pairs with span times)."""
        return time.perf_counter() - self._epoch

    def reset(self) -> None:
        """Drop all records and restart the clock epoch."""
        with self._lock:
            self.records = []
            self._next_id = 1
            self._anchor()
        self._tls = threading.local()
        fl = self._flight
        if fl is not None:
            fl.clear()

    # -- recording -------------------------------------------------------
    def _stack(self) -> List[_ActiveSpan]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str, **attrs: Any):
        """Open a span; returns a context manager yielding the span.

        When the tracer is disabled this returns a shared no-op context
        manager and records nothing.
        """
        if not self._enabled:
            return _NOOP_CONTEXT
        return _SpanContext(self, name, attrs)

    def current_span(self) -> Optional[_ActiveSpan]:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def scope(self, **attrs: Any):
        """Auto-tag every span opened on this thread inside the block.

        Context attrs sit *under* a span's explicit attrs (explicit
        wins); scopes nest, the inner block shadowing key-by-key.  The
        simulated MPI runtime binds ``scope(rank=r)`` around each rank
        thread so all spans it emits carry per-rank attribution.
        """
        prev = getattr(self._tls, "ctx", None)
        merged = dict(prev) if prev else {}
        merged.update(attrs)
        self._tls.ctx = merged
        try:
            yield
        finally:
            self._tls.ctx = prev

    def attach_flow(self, direction: str, flow_id: str) -> None:
        """Append a message-flow id to the innermost open span.

        ``direction`` is ``"send"`` or ``"recv"``; the id lands in the
        span's ``flows_out``/``flows_in`` list attribute, from which the
        Chrome exporter emits ``ph: "s"/"f"`` flow events and the
        critical-path extractor builds cross-rank edges.  No-op while
        disabled or when no span is open on the calling thread.
        """
        if not self._enabled:
            return
        cur = self.current_span()
        if cur is None:
            return
        key = "flows_out" if direction == "send" else "flows_in"
        cur.attrs.setdefault(key, []).append(flow_id)

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    @property
    def epoch_wall_s(self) -> float:
        """Wall-clock time (``time.time``) of the tracer epoch.

        Captured as one atomic pair with the monotonic epoch at
        construction/:meth:`reset`/first :meth:`enable`; combine with a
        span's monotonic ``start_s`` via :meth:`wall_time_s`.
        """
        return self._epoch_wall

    def wall_time_s(self, offset_s: float) -> float:
        """Wall-clock timestamp of a monotonic offset (e.g. ``start_s``)."""
        return self._epoch_wall + offset_s


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global tracer singleton."""
    return _TRACER


def span(name: str, **attrs: Any):
    """Open a span on the global tracer (no-op while disabled)."""
    if not _TRACER._enabled:
        return _NOOP_CONTEXT
    return _SpanContext(_TRACER, name, attrs)


def enable() -> None:
    _TRACER.enable()


def disable() -> None:
    _TRACER.disable()


def is_enabled() -> bool:
    return _TRACER._enabled


def reset() -> None:
    _TRACER.reset()


def attach_flow(direction: str, flow_id: str) -> None:
    """Record a message-flow id on the global tracer's current span."""
    _TRACER.attach_flow(direction, flow_id)


def enable_flight(capacity: int = DEFAULT_FLIGHT_CAPACITY,
                  sample: Optional[Mapping[str, int]] = None,
                  ) -> FlightRecorder:
    """Attach a flight recorder to the global tracer."""
    return _TRACER.enable_flight(capacity=capacity, sample=sample)


def disable_flight() -> None:
    """Detach the global tracer's flight recorder."""
    _TRACER.disable_flight()


def flight() -> Optional[FlightRecorder]:
    """The global tracer's flight recorder, or ``None``."""
    return _TRACER._flight
