"""Exporters for recorded traces and metrics.

Three formats:

- ``json``    — the native format: full span records plus a metrics
  snapshot, re-loadable by ``repro trace``;
- ``chrome``  — the Chrome ``trace_event`` format (complete events,
  ``ph: "X"``), loadable in ``chrome://tracing`` or Perfetto; one track
  (tid) per recording thread, so simulated MPI ranks show as parallel
  timelines;
- ``summary`` — a human-readable ASCII tree aggregating spans by call
  path (count / total / self / avg time) followed by the metrics.

``summarize_trace_file`` re-renders the summary from a saved file of
either on-disk format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry, registry
from .trace import Tracer, tracer

__all__ = [
    "EXPORT_FORMATS",
    "trace_to_dict",
    "export_json",
    "export_chrome",
    "ascii_summary",
    "write_trace",
    "load_trace",
    "summarize_trace_file",
]

EXPORT_FORMATS = ("json", "chrome", "summary")

NATIVE_FORMAT = "repro-trace"
NATIVE_VERSION = 1


# -- native format -------------------------------------------------------
def trace_to_dict(tr: Optional[Tracer] = None,
                  reg: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """The native serialisation: sorted span records + metrics."""
    tr = tr or tracer()
    reg = reg or registry()
    spans = sorted(tr.records, key=lambda s: (s.start_s, s.span_id))
    return {
        "format": NATIVE_FORMAT,
        "version": NATIVE_VERSION,
        "epoch_wall_s": tr.epoch_wall_s,
        "spans": [s.to_dict() for s in spans],
        "metrics": reg.snapshot(),
    }


def export_json(tr: Optional[Tracer] = None,
                reg: Optional[MetricsRegistry] = None) -> str:
    return json.dumps(trace_to_dict(tr, reg), indent=2)


# -- Chrome trace_event format -------------------------------------------
def export_chrome(tr: Optional[Tracer] = None,
                  reg: Optional[MetricsRegistry] = None) -> str:
    """Chrome ``trace_event`` JSON (open in chrome://tracing/Perfetto).

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; each recording thread gets its own ``tid`` plus a
    ``thread_name`` metadata event.  Spans carrying message-flow ids
    (``flows_out``/``flows_in`` attrs, see ``Tracer.attach_flow``)
    additionally emit flow events (``ph: "s"``/``"f"``) so Perfetto
    draws send→recv arrows between rank tracks.

    Each X event also carries the native span identity as top-level
    ``sid``/``spid``/``t0``/``d`` fields — unknown to viewers, ignored
    by them, but enough for :func:`load_trace` to round-trip the file
    losslessly (exact ids, parents and float timestamps, no interval
    guessing).  The metrics snapshot and tracer epoch ride along under
    ``otherData``.
    """
    tr = tr or tracer()
    reg = reg or registry()
    spans = sorted(tr.records, key=lambda s: (s.start_s, s.span_id))
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    flows: List[Dict[str, Any]] = []
    for s in spans:
        if s.thread not in tids:
            tid = tids[s.thread] = len(tids)
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": s.thread},
            })
        tid = tids[s.thread]
        events.append({
            "name": s.name,
            "cat": s.name.split(".", 1)[0],
            "ph": "X",
            "ts": s.start_s * 1e6,
            "dur": s.duration_s * 1e6,
            "pid": 0,
            "tid": tid,
            "sid": s.span_id,
            "spid": s.parent_id,
            "t0": s.start_s,
            "d": s.duration_s,
            "args": {str(k): v for k, v in s.attrs.items()},
        })
        # flow events bind to the slice enclosing their ts on the same
        # track; the midpoint is strictly inside for any dur > 0
        mid_us = (s.start_s + s.duration_s / 2) * 1e6
        for fid in s.attrs.get("flows_out", ()):
            flows.append({
                "name": "msg", "cat": "flow", "ph": "s", "id": fid,
                "ts": mid_us, "pid": 0, "tid": tid,
            })
        for fid in s.attrs.get("flows_in", ()):
            flows.append({
                "name": "msg", "cat": "flow", "ph": "f", "bp": "e",
                "id": fid, "ts": mid_us, "pid": 0, "tid": tid,
            })
    doc = {
        "traceEvents": events + flows,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": NATIVE_FORMAT,
            "version": NATIVE_VERSION,
            "epoch_wall_s": tr.epoch_wall_s,
            "metrics": reg.snapshot(),
        },
    }
    return json.dumps(doc, indent=2)


# -- ASCII summary -------------------------------------------------------
def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _aggregate(spans: List[Dict[str, Any]]) -> Dict[tuple, Dict[str, Any]]:
    """Group span dicts by their root→leaf name path."""
    by_id = {s["span_id"]: s for s in spans}
    paths: Dict[int, tuple] = {}

    def path_of(s: Dict[str, Any]) -> tuple:
        sid = s["span_id"]
        cached = paths.get(sid)
        if cached is not None:
            return cached
        parent = by_id.get(s.get("parent_id"))
        p = (path_of(parent) if parent is not None else ()) + (s["name"],)
        paths[sid] = p
        return p

    agg: Dict[tuple, Dict[str, Any]] = {}
    for s in spans:
        p = path_of(s)
        node = agg.setdefault(p, {"count": 0, "total": 0.0})
        node["count"] += 1
        node["total"] += s["duration_s"]
    # self time = total - direct children's total
    for p, node in agg.items():
        child_total = sum(
            n["total"] for q, n in agg.items()
            if len(q) == len(p) + 1 and q[:len(p)] == p
        )
        node["self"] = max(0.0, node["total"] - child_total)
    return agg


def _summarize(spans: List[Dict[str, Any]],
               metrics: Dict[str, Dict[str, Any]]) -> str:
    lines: List[str] = []
    if not spans and not metrics:
        return ("TRACE SUMMARY  (empty: 0 spans)\n"
                "(no spans recorded — was tracing enabled?)")
    threads = {s["thread"] for s in spans if s.get("thread")}
    total = sum(
        s["duration_s"] for s in spans if s.get("parent_id") is None
    )
    lines.append(
        f"TRACE SUMMARY  ({len(spans)} spans, {len(threads)} "
        f"threads, root total {_fmt_time(total)})"
    )
    if spans:
        agg = _aggregate(spans)
        header = f"{'span':44s} {'count':>7s} {'total':>10s} " \
                 f"{'self':>10s} {'avg':>10s}"
        lines.append(header)
        lines.append("-" * len(header))
        for p in sorted(agg, key=lambda q: (q[:-1], -agg[q]["total"])):
            node = agg[p]
            label = "  " * (len(p) - 1) + p[-1]
            if len(label) > 44:
                label = label[:41] + "..."
            lines.append(
                f"{label:44s} {node['count']:>7d} "
                f"{_fmt_time(node['total']):>10s} "
                f"{_fmt_time(node['self']):>10s} "
                f"{_fmt_time(node['total'] / node['count']):>10s}"
            )
    else:
        lines.append("(no spans recorded — was tracing enabled?)")
    for kind in ("counters", "gauges"):
        series = metrics.get(kind) or {}
        if series:
            lines.append("")
            lines.append(f"{kind.upper()}")
            for name in sorted(series):
                value = series[name]
                shown = f"{value:g}" if isinstance(value, float) else value
                lines.append(f"  {name:50s} {shown}")
    hists = metrics.get("histograms") or {}
    if hists:
        lines.append("")
        lines.append("HISTOGRAMS")
        for name in sorted(hists):
            h = hists[name]
            line = (
                f"  {name:40s} n={h['count']} mean={h['mean']:.4g} "
                f"p50={h['p50']:.4g} p90={h['p90']:.4g}"
            )
            if "p99" in h:  # absent from traces saved before v1 p99
                line += f" p99={h['p99']:.4g}"
            lines.append(line + f" max={h['max']:.4g}")
    return "\n".join(lines)


def ascii_summary(tr: Optional[Tracer] = None,
                  reg: Optional[MetricsRegistry] = None) -> str:
    """Aggregated span tree + metrics for the live tracer/registry."""
    doc = trace_to_dict(tr, reg)
    return _summarize(doc["spans"], doc["metrics"])


# -- file I/O ------------------------------------------------------------
def write_trace(path: str, fmt: str = "json",
                tr: Optional[Tracer] = None,
                reg: Optional[MetricsRegistry] = None) -> None:
    """Serialise the recorded trace to ``path`` in ``fmt``."""
    if fmt == "json":
        text = export_json(tr, reg)
    elif fmt == "chrome":
        text = export_chrome(tr, reg)
    elif fmt == "summary":
        text = ascii_summary(tr, reg) + "\n"
    else:
        raise ValueError(
            f"unknown trace format {fmt!r}; known: {EXPORT_FORMATS}"
        )
    with open(path, "w") as fh:
        fh.write(text)


def _spans_from_chrome(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rebuild span records (with parents) from chrome X events.

    Files written by :func:`export_chrome` carry the native span
    identity as top-level ``sid``/``spid``/``t0``/``d`` fields; those
    round-trip losslessly.  Foreign chrome files fall back to per-track
    interval containment: events on one tid are sorted by start time
    and nested with a stack.
    """
    tid_names: Dict[Any, str] = {}
    xs = []
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tid_names[ev.get("tid")] = ev.get("args", {}).get("name", "")
        elif ev.get("ph") == "X":
            xs.append(ev)
    if xs and all("sid" in ev for ev in xs):
        spans = [
            {
                "span_id": ev["sid"],
                "parent_id": ev.get("spid"),
                "name": ev["name"],
                "start_s": ev["t0"],
                "duration_s": ev["d"],
                "thread": tid_names.get(
                    ev.get("tid", 0), f"tid-{ev.get('tid', 0)}"
                ),
                "attrs": dict(ev.get("args", {})),
            }
            for ev in xs
        ]
        spans.sort(key=lambda s: (s["start_s"], s["span_id"]))
        return spans
    xs.sort(key=lambda e: (e.get("tid", 0), e["ts"], -e.get("dur", 0)))
    spans: List[Dict[str, Any]] = []
    stack: List[Dict[str, Any]] = []  # open spans on the current tid
    cur_tid: Any = object()
    for i, ev in enumerate(xs):
        tid = ev.get("tid", 0)
        if tid != cur_tid:
            stack = []
            cur_tid = tid
        start = ev["ts"] / 1e6
        end = start + ev.get("dur", 0) / 1e6
        while stack and start >= stack[-1]["_end"] - 1e-12:
            stack.pop()
        rec = {
            "span_id": i + 1,
            "parent_id": stack[-1]["span_id"] if stack else None,
            "name": ev["name"],
            "start_s": start,
            "duration_s": end - start,
            "thread": tid_names.get(tid, f"tid-{tid}"),
            "attrs": dict(ev.get("args", {})),
            "_end": end,
        }
        spans.append(rec)
        stack.append(rec)
    for rec in spans:
        rec.pop("_end", None)
    return spans


def load_trace(path: str) -> Dict[str, Any]:
    """Load a saved trace file (native or chrome) into the native dict."""
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path} is not a trace file (invalid JSON at line "
                f"{exc.lineno}: {exc.msg}) — was it saved with "
                f"--trace-format summary?"
            ) from None
    if isinstance(doc, dict) and doc.get("format") == NATIVE_FORMAT:
        return doc
    if isinstance(doc, dict) and "traceEvents" in doc:
        other = doc.get("otherData") or {}
        native: Dict[str, Any] = {
            "format": NATIVE_FORMAT,
            "version": other.get("version", NATIVE_VERSION),
            "spans": _spans_from_chrome(doc["traceEvents"]),
            "metrics": other.get("metrics") or {},
        }
        if "epoch_wall_s" in other:
            native["epoch_wall_s"] = other["epoch_wall_s"]
        return native
    # a bare chrome event array is also legal trace_event JSON
    if isinstance(doc, list):
        return {
            "format": NATIVE_FORMAT,
            "version": NATIVE_VERSION,
            "spans": _spans_from_chrome(doc),
            "metrics": {},
        }
    raise ValueError(
        f"{path} is neither a repro trace nor a Chrome trace_event file"
    )


def summarize_trace_file(path: str) -> str:
    """ASCII summary of a saved trace file (either format)."""
    doc = load_trace(path)
    return _summarize(doc.get("spans", []), doc.get("metrics", {}))
