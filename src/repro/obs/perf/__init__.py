"""``repro.obs.perf`` — the performance observatory.

Turns the raw :mod:`repro.obs` spans/metrics into durable, comparable
performance data (the role Devito's "performance mode" plays for that
DSL):

- :mod:`~repro.obs.perf.runner` — statistical bench runner: warmup +
  N repeats, median/MAD/95% CI, fixed seeds, environment fingerprint;
- :mod:`~repro.obs.perf.phases` — span-based phase attribution into a
  stable taxonomy (frontend/lower/codegen/compute/spm-dma/halo-pack/
  send-wait/unpack/tune/...);
- :mod:`~repro.obs.perf.schema` — the versioned ``BENCH_<name>.json``
  document format;
- :mod:`~repro.obs.perf.compare` — baseline deltas + the regression
  gate (median worse by >10% and outside the baseline CI);
- :mod:`~repro.obs.perf.report` — ASCII phase/roofline rendering;
- :mod:`~repro.obs.perf.workloads` — built-in ``<bench>@<machine>``
  and ``exchange:<bench>`` workloads.

Driven by ``repro bench [--compare BASELINE.json]``; see
``docs/PERF.md`` for the schema and methodology.
"""

from __future__ import annotations

from .compare import (
    DEFAULT_THRESHOLD,
    ComparisonReport,
    Delta,
    compare,
)
from .phases import PHASES, PhaseAttribution, PhaseStats, attribute, phase_of
from .report import format_bench, format_workload
from .runner import (
    MetricSpec,
    Workload,
    WorkloadOutput,
    aggregate,
    environment_fingerprint,
    run_bench,
    run_workload,
)
from .schema import (
    BENCH_FORMAT,
    BENCH_VERSION,
    bench_filename,
    load_artifact,
    load_bench,
    write_bench,
)
from .workloads import (
    DEFAULT_WORKLOADS,
    available_workloads,
    resolve_workloads,
    workload_by_name,
)

__all__ = [
    "BENCH_FORMAT",
    "BENCH_VERSION",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WORKLOADS",
    "ComparisonReport",
    "Delta",
    "MetricSpec",
    "PHASES",
    "PhaseAttribution",
    "PhaseStats",
    "Workload",
    "WorkloadOutput",
    "aggregate",
    "attribute",
    "available_workloads",
    "bench_filename",
    "compare",
    "environment_fingerprint",
    "format_bench",
    "format_workload",
    "load_artifact",
    "load_bench",
    "phase_of",
    "resolve_workloads",
    "run_bench",
    "run_workload",
    "workload_by_name",
    "write_bench",
]
