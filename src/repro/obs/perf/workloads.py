"""Built-in perf-observatory workloads.

Two families, both deterministic under a fixed seed:

- ``<bench>@<machine>`` — the full single-node pipeline for one
  Table-4 benchmark on ``sunway``/``matrix``/``cpu``: schedule build,
  AOT codegen, architectural simulation, roofline placement.  Gated
  metrics are the *modelled* times/rates (deterministic); the host
  wall time rides along ungated.
- ``exchange:<bench>`` — a scaled-down distributed run over the
  simulated MPI fabric: gated on halo-traffic bytes/messages (exact
  model outputs), with host pack/send-wait/unpack attribution.

``workload_by_name`` also accepts a ``perturb`` mapping
(``{"dma_startup_us": 10.0}``) that *multiplies* numeric fields of the
machine spec — the knob the regression-gate tests (and ``repro bench
--perturb``) use to fake a slowed phase.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from .runner import MetricSpec, Workload, WorkloadOutput

__all__ = [
    "DEFAULT_WORKLOADS",
    "available_workloads",
    "workload_by_name",
    "resolve_workloads",
]

#: the CI perf-smoke pair: one SPM/DMA (Sunway) path, one cache path
DEFAULT_WORKLOADS = ("3d7pt_star@sunway", "2d9pt_box@matrix")

_MACHINES = ("sunway", "matrix", "cpu")

_GRID_2D = (64, 64)
_GRID_3D = (24, 24, 24)


def available_workloads() -> List[str]:
    """Every resolvable built-in workload name."""
    from ...frontend.stencils import BENCHMARK_NAMES

    from ...comm.exchange import EXCHANGE_MODES

    names = [f"{b}@{m}" for b in BENCHMARK_NAMES for m in _MACHINES]
    names += [f"exchange:{b}" for b in BENCHMARK_NAMES]
    names += [f"exchange:{b}@{m}" for b in BENCHMARK_NAMES
              for m in EXCHANGE_MODES]
    names.append("telemetry-overhead")
    return names


def _perturbed(spec, perturb: Optional[Dict[str, float]]):
    """Scale numeric machine-spec fields by the given factors."""
    if not perturb:
        return spec
    changes = {}
    for key, factor in perturb.items():
        if not hasattr(spec, key):
            raise ValueError(
                f"machine spec {spec.name!r} has no field {key!r}"
            )
        value = getattr(spec, key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"machine-spec field {key!r} is not numeric")
        changes[key] = type(value)(value * factor)
    return dataclasses.replace(spec, **changes)


def _simulate_workload(bench_name: str, machine_alias: str,
                       perturb: Optional[Dict[str, float]] = None,
                       timesteps: int = 1,
                       backend: Optional[str] = None,
                       exec_steps: int = 8) -> Workload:
    def fn(seed: int) -> WorkloadOutput:
        from ...evalsuite.harness import build_with_schedule
        from ...ir.analysis import stencil_flops_per_point
        from ...ir.dtypes import f64
        from ...machine.matrix_sim import CacheMachineSimulator
        from ...machine.roofline import Roofline
        from ...machine.spec import machine_by_name
        from ...machine.sunway_sim import SunwaySimulator

        bench = _bench(bench_name)
        grid = _GRID_2D if bench.ndim == 2 else _GRID_3D
        prog, handle = build_with_schedule(
            bench_name, machine_alias, f64, grid=grid
        )
        spec = _perturbed(machine_by_name(machine_alias), perturb)

        codegen_bytes = 0
        try:
            code = prog.compile_to_source_code(
                bench_name, target=machine_alias, check=False
            )
            codegen_bytes = sum(len(t) for t in code.files.values())
        except Exception:  # noqa: BLE001 - codegen is optional context
            pass

        sim = (SunwaySimulator(spec) if spec.cacheless
               else CacheMachineSimulator(spec))
        report = sim.run(prog.ir, handle.schedule, timesteps=timesteps)

        # roofline placement (the Fig. 9 operational-intensity model)
        flops_pp = stencil_flops_per_point(prog.ir)
        elem = prog.ir.output.dtype.nbytes
        napply = len(prog.ir.applications)
        write_cost = 1.0 if spec.cacheless else 2.0
        oi = flops_pp / (elem * (napply + write_cost))
        roof = Roofline(spec, report.precision)
        point = roof.place(bench_name, oi, report.gflops)

        phases_sim: Dict[str, Dict[str, float]] = {}
        for phase, seconds in report.phases().items():
            if seconds <= 0:
                continue
            entry: Dict[str, float] = {"time_s": seconds}
            if phase == "spm-dma" and report.dma is not None:
                entry["bytes"] = float(report.dma.total_bytes)
            if phase == "compute" and seconds > 0:
                total_flops = report.flops_per_step * report.timesteps
                entry["gflops"] = total_flops / seconds / 1e9
            phases_sim[phase] = entry

        metrics = {
            "sim.step_s": report.step_s,
            "sim.total_s": report.total_s,
            "sim.compute_s": report.compute_s,
            "sim.memory_s": report.memory_s,
            "sim.gflops": report.gflops,
            "codegen.bytes": float(codegen_bytes),
        }
        if backend is not None:
            # real host execution through the requested engine: wall
            # time is ungated (host noise), but the run's spans land in
            # the host phase attribution, so ``repro bench --compare``
            # can show the compute-phase delta between numpy and the
            # compiled native backend
            import time

            import numpy as np

            rng = np.random.default_rng(seed)
            need = prog.ir.required_time_window - 1
            prog.set_initial([
                rng.random(grid).astype(
                    prog.ir.output.dtype.np_dtype
                )
                for _ in range(need)
            ])
            t0 = time.perf_counter()
            result = prog.run(exec_steps, check=False, backend=backend)
            metrics["exec.wall_s"] = time.perf_counter() - t0
            metrics["exec.l2"] = float(np.linalg.norm(result))
        return WorkloadOutput(
            metrics=metrics,
            phases_sim=phases_sim,
            roofline={bench_name: point.to_dict()},
        )

    bench = _bench(bench_name)
    metric_specs = {
        "sim.step_s": MetricSpec("s", "lower", gate=True),
        "sim.total_s": MetricSpec("s", "lower", gate=True),
        "sim.compute_s": MetricSpec("s", "lower", gate=True),
        "sim.memory_s": MetricSpec("s", "lower", gate=True),
        "sim.gflops": MetricSpec("GFlops", "higher", gate=True),
        "codegen.bytes": MetricSpec("B", "lower", gate=False),
    }
    if backend is not None:
        metric_specs["exec.wall_s"] = MetricSpec("s", "lower",
                                                 gate=False)
        metric_specs["exec.l2"] = MetricSpec("", "higher", gate=False)
    return Workload(
        name=f"{bench_name}@{machine_alias}",
        fn=fn,
        metric_specs=metric_specs,
        meta={
            "kind": "simulate",
            "benchmark": bench_name,
            "machine": machine_alias,
            "grid": list(_GRID_2D if bench.ndim == 2 else _GRID_3D),
            "timesteps": timesteps,
            "perturb": dict(perturb or {}),
            "backend": backend,
            "exec_steps": exec_steps if backend is not None else 0,
        },
    )


#: counters snapshotted around each per-mode run of an exchange workload
_EXCHANGE_COUNTERS = ("comm.bytes_sent", "comm.messages",
                      "comm.pool_bytes")


def _exchange_workload(bench_name: str, steps: int = 2,
                       mode: Optional[str] = None) -> Workload:
    """Distributed halo-exchange workload.

    ``mode=None`` is the *comparative* form: it runs all three exchange
    modes back to back with per-mode counter deltas, gates the diag
    coalescing win (``diag.msg_saving``), the zero-copy pool audit
    (``comm.pool_bytes``) and cross-mode bitwise equality.  A concrete
    ``mode`` (``exchange:<bench>@<mode>``) runs just that wire protocol.
    """

    def fn(seed: int) -> WorkloadOutput:
        import numpy as np

        from ... import obs
        from ...comm.exchange import EXCHANGE_MODES
        from ...frontend.stencils import benchmark_by_name
        from ...ir.dtypes import f64
        from ...runtime.executor import distributed_run

        bench = benchmark_by_name(bench_name)
        grid = (2, 2) if bench.ndim == 2 else (2, 1, 2)
        base = (24, 20) if bench.ndim == 2 else (12, 12, 12)
        shape = tuple(max(s, 4 * bench.radius) for s in base)
        demo, _ = bench.build(grid=shape, dtype=f64,
                              boundary="periodic")
        need = demo.ir.required_time_window - 1
        rng = np.random.default_rng(seed)
        init = [rng.random(shape) for _ in range(need)]
        reg = obs.registry()

        def snap() -> Dict[str, float]:
            return {k: reg.counter_total(k) for k in _EXCHANGE_COUNTERS}

        modes = [mode] if mode is not None else list(EXCHANGE_MODES)
        deltas: Dict[str, Dict[str, float]] = {}
        results: Dict[str, Any] = {}
        for m in modes:
            before = snap()
            results[m] = distributed_run(
                demo.ir, init, steps, grid, boundary="periodic",
                exchange_mode=m,
            )
            after = snap()
            deltas[m] = {k: after[k] - before[k] for k in after}
        first = modes[0]

        # structural distributed-trace metrics: the longest logical
        # span chain and its rank crossings are program-deterministic
        # under fixed seeds (zero MAD), so the gate can regress on an
        # added synchronisation point or lost overlap
        from ...obs.distributed import (
            DistributedTrace,
            extract_critical_path,
            imbalance_report,
        )

        dt = DistributedTrace.from_live(obs.tracer(), reg)
        cp = extract_critical_path(dt)
        imb = imbalance_report(dt)
        metrics = {
            "comm.bytes_sent": deltas[first]["comm.bytes_sent"],
            "comm.messages": deltas[first]["comm.messages"],
            "comm.pool_bytes": sum(
                d["comm.pool_bytes"] for d in deltas.values()
            ),
            "critpath.spans": float(cp.chain_spans),
            "critpath.crossings": float(cp.chain_crossings),
            "critpath.flow_edges": float(cp.flow_edges),
            "imbalance.bytes_skew": imb.bytes_skew,
            "result.l2": float(np.linalg.norm(results[first])),
        }
        if mode is None:
            # the diag coalescing win and the cross-mode differential
            # result, gated so a protocol regression fails the bench
            metrics["comm.messages.diag"] = (
                deltas["diag"]["comm.messages"]
            )
            metrics["diag.msg_saving"] = (
                deltas["basic"]["comm.messages"]
                - deltas["diag"]["comm.messages"]
            )
            metrics["exchange.modes_bitwise_equal"] = float(all(
                np.array_equal(results[m], results["basic"])
                for m in modes
            ))
        return WorkloadOutput(metrics=metrics)

    bench = _bench(bench_name)
    metric_specs = {
        "comm.bytes_sent": MetricSpec("B", "lower", gate=True),
        "comm.messages": MetricSpec("msgs", "lower", gate=True),
        "comm.pool_bytes": MetricSpec("B", "lower", gate=True),
        "critpath.spans": MetricSpec("spans", "lower", gate=True),
        "critpath.crossings": MetricSpec("edges", "lower",
                                         gate=True),
        "critpath.flow_edges": MetricSpec("edges", "lower",
                                          gate=True),
        "imbalance.bytes_skew": MetricSpec("x", "lower", gate=True),
        "result.l2": MetricSpec("", "higher", gate=False),
    }
    if mode is None:
        metric_specs["comm.messages.diag"] = MetricSpec(
            "msgs", "lower", gate=True
        )
        metric_specs["diag.msg_saving"] = MetricSpec(
            "msgs", "higher", gate=True
        )
        metric_specs["exchange.modes_bitwise_equal"] = MetricSpec(
            "", "higher", gate=True
        )
    suffix = f"@{mode}" if mode is not None else ""
    return Workload(
        name=f"exchange:{bench_name}{suffix}",
        fn=fn,
        metric_specs=metric_specs,
        meta={
            "kind": "exchange",
            "benchmark": bench_name,
            "steps": steps,
            "mpi_grid": list((2, 2) if bench.ndim == 2 else (2, 1, 2)),
            "exchange_mode": mode or "compare",
        },
    )


def _telemetry_overhead_workload(steps: int = 16,
                                 pairs: int = 7) -> Workload:
    """The observability self-test: what does always-on telemetry cost?

    Runs one single-node stencil execution repeatedly in two obs
    configurations — everything off, and the always-on default (flight
    recorder + metrics registry + live sampler) — interleaved A/B.
    The overhead estimate is the *median of per-pair ratios*: the two
    runs of a pair are temporally adjacent, so slow host drift cancels
    within each pair, and the median across pairs sheds the occasional
    preempted outlier that wrecks per-arm aggregates on shared CI
    runners.

    The *gate* is the deterministic boolean ``telemetry.overhead_ok``
    (1.0 iff the paired-median overhead stays under the 5% budget):
    raw wall deltas are host noise and ride along ungated.
    """

    def fn(seed: int) -> WorkloadOutput:
        import statistics
        import time

        import numpy as np

        from ... import obs
        from ...obs.live import DEFAULT_SAMPLE_PERIOD_S, MetricsSampler

        # enough work per run (tens of ms) that the fixed per-span cost
        # amortizes and host jitter stays well inside the 5% budget
        bench = _bench("2d9pt_box")
        shape = (160, 160)
        demo, _ = bench.build(grid=shape)
        need = demo.ir.required_time_window - 1
        rng = np.random.default_rng(seed)
        init = [
            rng.random(shape).astype(demo.ir.output.dtype.np_dtype)
            for _ in range(need)
        ]

        def one_run() -> float:
            demo.set_initial(init)
            t0 = time.perf_counter()
            demo.run(steps, check=False, backend="numpy")
            return time.perf_counter() - t0

        # the bench harness wraps this fn in capture() (full tracing
        # on); save that state and restore it on the way out so the
        # harness's own attribution still works
        tr = obs.tracer()
        reg = obs.registry()
        prior_keep_all = tr._keep_all
        prior_reg = reg.enabled
        prior_flight = tr.flight
        times_off = []
        times_on = []
        fl_kept = fl_dropped = 0
        sampler_samples = 0
        try:
            one_run()  # warm caches outside both measurement arms
            for _ in range(pairs):
                # arm A: every obs surface off
                tr.disable()
                tr._flight = None
                tr._sync()
                reg.disable()
                times_off.append(one_run())
                # arm B: the always-on default (flight ring + metrics
                # + background sampler at its *default* period — a
                # faster one would measure a config nobody runs), full
                # recording still off
                fl = tr.enable_flight()
                reg.enable()
                sampler = MetricsSampler(reg, period_s=DEFAULT_SAMPLE_PERIOD_S)
                sampler.start()
                try:
                    times_on.append(one_run())
                finally:
                    sampler.stop(final_sample=True)
                fl_kept += fl.kept
                fl_dropped += fl.dropped
                sampler_samples += sampler.samples
                tr.disable_flight()
        finally:
            tr._flight = prior_flight
            tr._sync()
            tr.enable() if prior_keep_all else tr.disable()
            reg.enable() if prior_reg else reg.disable()
        frac = statistics.median(
            (on - off) / off
            for off, on in zip(times_off, times_on) if off > 0
        )
        return WorkloadOutput(metrics={
            "telemetry.overhead_ok": 1.0 if frac < 0.05 else 0.0,
            "telemetry.overhead_frac": frac,
            "telemetry.median_on_s": statistics.median(times_on),
            "telemetry.median_off_s": statistics.median(times_off),
            "telemetry.flight_spans": float(fl_kept),
            "telemetry.flight_dropped": float(fl_dropped),
            "telemetry.sampler_samples": float(sampler_samples),
        })

    return Workload(
        name="telemetry-overhead",
        fn=fn,
        metric_specs={
            # the boolean verdict is the only gated metric: it is
            # deterministic unless the 5% budget is actually blown
            "telemetry.overhead_ok": MetricSpec("", "higher", gate=True),
            "telemetry.overhead_frac": MetricSpec("frac", "lower",
                                                  gate=False),
            "telemetry.median_on_s": MetricSpec("s", "lower", gate=False),
            "telemetry.median_off_s": MetricSpec("s", "lower",
                                                 gate=False),
            "telemetry.flight_spans": MetricSpec("spans", "higher",
                                                 gate=False),
            "telemetry.flight_dropped": MetricSpec("spans", "lower",
                                                   gate=False),
            "telemetry.sampler_samples": MetricSpec("", "higher",
                                                    gate=False),
        },
        meta={
            "kind": "telemetry-overhead",
            "benchmark": "2d9pt_box",
            "steps": steps,
            "pairs": pairs,
            "budget_frac": 0.05,
        },
    )


def _bench(name: str):
    from ...frontend.stencils import benchmark_by_name

    return benchmark_by_name(name)


def workload_by_name(spec: str,
                     perturb: Optional[Dict[str, float]] = None,
                     backend: Optional[str] = None) -> Workload:
    """Resolve one workload spec string.

    - ``<bench>@<machine>`` → simulate workload,
    - ``exchange:<bench>`` → comparative distributed halo-exchange
      workload (all three exchange modes),
    - ``exchange:<bench>@<mode>`` → one exchange mode only.

    ``backend`` (``auto``/``native``/``numpy``) additionally executes
    simulate workloads on the host through that engine, adding the
    ungated ``exec.*`` metrics and host-phase compute attribution.
    """
    if spec == "telemetry-overhead":
        if perturb or backend:
            raise ValueError(
                "telemetry-overhead takes no --perturb/--backend; it "
                "measures the obs layer itself"
            )
        return _telemetry_overhead_workload()
    if spec.startswith("exchange:"):
        if perturb:
            raise ValueError(
                "--perturb applies to machine specs; exchange workloads "
                "have none"
            )
        if backend:
            raise ValueError(
                "--backend applies to <bench>@<machine> workloads; "
                "exchange workloads always run on the simulated MPI "
                "runtime"
            )
        rest = spec.split(":", 1)[1]
        mode: Optional[str] = None
        if "@" in rest:
            rest, mode = rest.rsplit("@", 1)
            from ...comm.exchange import EXCHANGE_MODES

            if mode not in EXCHANGE_MODES:
                raise ValueError(
                    f"unknown exchange mode {mode!r} in workload "
                    f"{spec!r}; known: {list(EXCHANGE_MODES)}"
                )
        return _exchange_workload(rest, mode=mode)
    if "@" in spec:
        bench_name, machine = spec.rsplit("@", 1)
        if machine not in _MACHINES:
            raise ValueError(
                f"unknown machine {machine!r} in workload {spec!r}; "
                f"known: {_MACHINES}"
            )
        return _simulate_workload(bench_name, machine, perturb,
                                  backend=backend)
    raise ValueError(
        f"cannot parse workload {spec!r}; expected '<bench>@<machine>' "
        "or 'exchange:<bench>'"
    )


def resolve_workloads(specs: List[str],
                      perturb: Optional[Dict[str, float]] = None,
                      backend: Optional[str] = None
                      ) -> Tuple[List[Workload], str]:
    """Resolve CLI workload specs (default pair when empty).

    Returns the workloads plus a default bench-document name derived
    from them.
    """
    if not specs:
        specs = list(DEFAULT_WORKLOADS)
        name = "perf_smoke"
    else:
        name = "_".join(
            s.replace("@", "_").replace(":", "_") for s in specs
        )[:64]
    return [
        workload_by_name(s, perturb, backend=backend) for s in specs
    ], name
