"""Versioned on-disk schema for performance-observatory results.

Two document kinds:

- **bench documents** (``BENCH_<name>.json``) — the statistical bench
  runner's output: per-workload metric aggregates, phase attribution,
  roofline placement and an environment fingerprint.  Written to the
  repo root (the durable perf trajectory every PR is measured against)
  and mirrored under ``benchmarks/results/``.
- **artefact documents** (``benchmarks/results/<name>.json``) — the
  machine-readable twin of each paper-figure ``.txt`` artefact,
  emitted by ``benchmarks/_common.emit``.

Both carry ``format``/``version`` headers so future schema changes can
migrate old files instead of silently misreading them.
"""

from __future__ import annotations

import json
from typing import Any, Dict

__all__ = [
    "BENCH_FORMAT",
    "BENCH_VERSION",
    "ARTIFACT_FORMAT",
    "bench_filename",
    "write_bench",
    "load_bench",
    "load_artifact",
]

BENCH_FORMAT = "repro-bench"
BENCH_VERSION = 1

ARTIFACT_FORMAT = "repro-bench-artifact"


def bench_filename(name: str) -> str:
    """Canonical repo-root filename for a bench document."""
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
    return f"BENCH_{safe}.json"


def write_bench(path: str, doc: Dict[str, Any]) -> None:
    """Serialise a bench document (stable key order, trailing newline)."""
    if doc.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"not a bench document (format={doc.get('format')!r})"
        )
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    """Load + validate a ``BENCH_*.json`` document."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{path} is not a {BENCH_FORMAT} document (format="
            f"{doc.get('format') if isinstance(doc, dict) else type(doc)!r})"
        )
    version = doc.get("version")
    if version != BENCH_VERSION:
        raise ValueError(
            f"{path} has schema version {version!r}; this build reads "
            f"version {BENCH_VERSION}"
        )
    if "workloads" not in doc:
        raise ValueError(f"{path}: bench document has no workloads")
    return doc


def load_artifact(path: str) -> Dict[str, Any]:
    """Load a ``benchmarks/results/*.json`` figure artefact."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("format") != ARTIFACT_FORMAT:
        raise ValueError(f"{path} is not a {ARTIFACT_FORMAT} document")
    return doc
