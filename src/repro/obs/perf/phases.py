"""Span-based phase attribution.

Folds a recorded trace tree into a **stable phase taxonomy** so runs
can be compared across PRs even when the underlying span names evolve:

========== ====================================================
phase       what it covers (span-name prefixes)
========== ====================================================
frontend    MSC source parsing (``frontend.*``)
lower       schedule lowering (``schedule.*``,
            ``machine.lower_schedule``)
analysis    static legality checks (``analysis.*``)
codegen     AOT code generation (``codegen.*``) and native-backend
            compilation (``native.compile``)
compute     arithmetic: the simulators' compute model, the
            runtime's kernel evaluation and the native backend's
            in-process execution (``native.exec`` / ``native.run``)
spm-dma     memory system: SPM allocation, DMA model, cache model
halo-pack   halo strip packing (``comm.pack``)
send-wait   message send/wait/retry/relay (``comm.send`` etc.)
unpack      halo strip unpacking (``comm.unpack``)
tune        auto-tuner sampling/annealing (``autotune.*``)
runtime     distributed-run orchestration (``runtime.*``)
other       everything unmapped (CLI shell, bench harness, ...)
========== ====================================================

Attribution is by **self time**: each span's duration minus its direct
children's durations is credited to the span's phase, so the per-phase
times sum to the trace's total root time (no double counting across
the tree).  Span ``bytes`` attributes accumulate per phase the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Tuple

__all__ = [
    "PHASES",
    "PhaseStats",
    "PhaseAttribution",
    "phase_of",
    "attribute",
]

#: the stable taxonomy, in report order
PHASES: Tuple[str, ...] = (
    "frontend", "lower", "analysis", "codegen", "compute", "spm-dma",
    "halo-pack", "send-wait", "unpack", "tune", "runtime", "other",
)

# exact span names first, then prefixes (longest match wins)
_EXACT = {
    "machine.lower_schedule": "lower",
    "machine.compute_model": "compute",
    "machine.cache_model": "spm-dma",
    "machine.dma_model": "spm-dma",
    "machine.spm_alloc": "spm-dma",
    "runtime.kernel_eval": "compute",
    "native.exec": "compute",
    "native.run": "compute",
    "native.compile": "codegen",
    "comm.pack": "halo-pack",
    "comm.unpack": "unpack",
}

_PREFIXES = (
    ("frontend.", "frontend"),
    ("schedule.", "lower"),
    ("analysis.", "analysis"),
    ("codegen.", "codegen"),
    ("comm.", "send-wait"),  # send/wait/retry/relay/exchange shell
    ("autotune.", "tune"),
    ("runtime.", "runtime"),
    ("machine.", "other"),  # simulator orchestration shells
    ("native.", "other"),  # cache lookups and executor shell
)


def phase_of(name: str) -> str:
    """Map one span name onto the stable taxonomy."""
    mapped = _EXACT.get(name)
    if mapped is not None:
        return mapped
    for prefix, phase in _PREFIXES:
        if name.startswith(prefix):
            return phase
    return "other"


@dataclass
class PhaseStats:
    """Accumulated attribution for one phase."""

    phase: str
    time_s: float = 0.0
    count: int = 0
    bytes: float = 0.0
    #: achieved arithmetic rate, when the caller can supply flops
    gflops: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_s": self.time_s,
            "count": self.count,
            "bytes": self.bytes,
            "gflops": self.gflops,
        }


@dataclass
class PhaseAttribution:
    """Per-phase fold of one trace."""

    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    #: sum of root-span durations (the trace's wall coverage)
    total_s: float = 0.0

    def share(self, phase: str) -> float:
        """Fraction of total span time credited to ``phase``."""
        if self.total_s <= 0:
            return 0.0
        stats = self.phases.get(phase)
        return stats.time_s / self.total_s if stats else 0.0

    @property
    def attributed_s(self) -> float:
        """Sum of per-phase times (should ≈ ``total_s``)."""
        return sum(p.time_s for p in self.phases.values())

    @property
    def coverage(self) -> float:
        """attributed / total — the acceptance bar is ≥ 0.95."""
        if self.total_s <= 0:
            return 1.0
        return min(1.0, self.attributed_s / self.total_s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_s": self.total_s,
            "coverage": self.coverage,
            "phases": {
                name: self.phases[name].to_dict()
                for name in PHASES if name in self.phases
            },
        }


def _as_dicts(spans: Iterable[Any]) -> List[Mapping[str, Any]]:
    out = []
    for s in spans:
        out.append(s if isinstance(s, Mapping) else s.to_dict())
    return out


def attribute(spans: Iterable[Any]) -> PhaseAttribution:
    """Fold spans (``Span`` objects or their dicts) into phases.

    Self-time attribution: a parent is credited only with the time its
    direct children do not cover, so nested instrumentation never
    counts twice and the phase times sum to the root total.
    """
    records = _as_dicts(spans)
    child_time: Dict[Any, float] = {}
    for s in records:
        pid = s.get("parent_id")
        if pid is not None:
            child_time[pid] = child_time.get(pid, 0.0) + s["duration_s"]

    attr = PhaseAttribution()
    for s in records:
        if s.get("parent_id") is None:
            attr.total_s += s["duration_s"]
        phase = phase_of(s["name"])
        stats = attr.phases.get(phase)
        if stats is None:
            stats = attr.phases[phase] = PhaseStats(phase)
        self_s = s["duration_s"] - child_time.get(s["span_id"], 0.0)
        stats.time_s += max(0.0, self_s)
        stats.count += 1
        nbytes = s.get("attrs", {}).get("bytes")
        if isinstance(nbytes, (int, float)):
            stats.bytes += nbytes
    return attr
