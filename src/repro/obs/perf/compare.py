"""Baseline comparison and the perf-regression gate.

``compare`` takes two bench documents (current vs. baseline) and
computes per-metric and per-phase deltas.  A delta **flags a
regression** when all of:

1. the metric is *gated* (a deterministic model output — host wall
   times never gate),
2. the median is worse than the baseline median by more than the
   noise ``threshold`` (default 10%), direction-aware, and
3. the current median falls outside the baseline's 95% CI for the
   median (zero-width for deterministic metrics, so any >threshold
   shift trips it).

The CLI exits non-zero when ``ComparisonReport.ok`` is false, so CI
can gate on ``repro bench --compare BASELINE.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["Delta", "ComparisonReport", "compare", "DEFAULT_THRESHOLD"]

DEFAULT_THRESHOLD = 0.10


@dataclass
class Delta:
    """One compared quantity."""

    workload: str
    kind: str  # "metric" | "phase" | "phase-host"
    name: str
    base: float
    current: float
    #: direction-adjusted fractional change; positive = worse
    worse_frac: float
    gated: bool
    regressed: bool = False
    improved: bool = False

    @property
    def label(self) -> str:
        what = f"phase '{self.name}'" if "phase" in self.kind \
            else self.name
        return f"{self.workload}: {what}"


@dataclass
class ComparisonReport:
    """All deltas of one current-vs-baseline comparison."""

    baseline_name: str
    current_name: str
    threshold: float
    deltas: List[Delta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> List[Delta]:
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [
            f"PERF COMPARISON  {self.current_name} vs baseline "
            f"{self.baseline_name}  (threshold {self.threshold:.0%})"
        ]
        header = (f"{'workload / quantity':44s} {'baseline':>12s} "
                  f"{'current':>12s} {'delta':>8s}  status")
        lines.append(header)
        lines.append("-" * len(header))
        for d in sorted(self.deltas,
                        key=lambda d: (-abs(d.worse_frac), d.label)):
            if not d.gated and not (d.regressed or d.improved) \
                    and abs(d.worse_frac) < 0.02:
                continue  # keep the table focused on what moved
            status = ("REGRESSED" if d.regressed
                      else "improved" if d.improved
                      else "ok" if d.gated else "info")
            pct = ("n/a" if math.isinf(d.worse_frac)
                   else f"{d.worse_frac:+.1%}")
            label = d.label
            if len(label) > 44:
                label = label[:41] + "..."
            lines.append(
                f"{label:44s} {d.base:>12.6g} {d.current:>12.6g} "
                f"{pct:>8s}  {status}"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.regressions:
            lines.append("")
            lines.append(f"{len(self.regressions)} REGRESSION(S):")
            for d in self.regressions:
                lines.append(
                    f"  {d.label}: {d.base:.6g} -> {d.current:.6g} "
                    f"({d.worse_frac:+.1%} worse)"
                )
        else:
            lines.append("")
            lines.append("no regressions beyond the noise threshold")
        return "\n".join(lines)


def _worse_frac(base: float, cur: float, direction: str) -> float:
    """Fractional change with positive = worse for the direction."""
    delta = cur - base if direction == "lower" else base - cur
    if base == 0:
        if delta == 0:
            return 0.0
        return math.inf if delta > 0 else -math.inf
    return delta / abs(base)


def _outside_ci(cur: float, ci: List[float], direction: str) -> bool:
    lo, hi = ci
    return cur > hi if direction == "lower" else cur < lo


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            threshold: float = DEFAULT_THRESHOLD) -> ComparisonReport:
    """Compare two bench documents (see module docstring)."""
    report = ComparisonReport(
        baseline_name=baseline.get("name", "?"),
        current_name=current.get("name", "?"),
        threshold=threshold,
    )
    base_wls = baseline.get("workloads", {})
    cur_wls = current.get("workloads", {})
    for wname in cur_wls:
        if wname not in base_wls:
            report.notes.append(
                f"workload {wname!r} has no baseline (new?)"
            )
    for wname in base_wls:
        if wname not in cur_wls:
            report.notes.append(
                f"baseline workload {wname!r} missing from current run"
            )

    for wname, cur_wl in cur_wls.items():
        base_wl = base_wls.get(wname)
        if base_wl is None:
            continue
        _compare_metrics(report, wname, cur_wl, base_wl, threshold)
        _compare_phases(report, wname, cur_wl, base_wl, threshold)
    return report


def _compare_metrics(report: ComparisonReport, wname: str,
                     cur_wl: Dict[str, Any], base_wl: Dict[str, Any],
                     threshold: float) -> None:
    base_metrics = base_wl.get("metrics", {})
    for mname, cur_m in cur_wl.get("metrics", {}).items():
        base_m = base_metrics.get(mname)
        if base_m is None:
            continue
        direction = cur_m.get("direction", "lower")
        gated = bool(cur_m.get("gate")) and bool(base_m.get("gate"))
        worse = _worse_frac(base_m["median"], cur_m["median"], direction)
        ci = base_m.get("ci95") or [base_m["median"], base_m["median"]]
        outside = _outside_ci(cur_m["median"], ci, direction)
        d = Delta(wname, "metric", mname, base_m["median"],
                  cur_m["median"], worse, gated)
        d.regressed = gated and worse > threshold and outside
        d.improved = gated and worse < -threshold
        report.deltas.append(d)


def _compare_phases(report: ComparisonReport, wname: str,
                    cur_wl: Dict[str, Any], base_wl: Dict[str, Any],
                    threshold: float) -> None:
    # modelled phases gate (deterministic, zero-width CI); host phases
    # are informational
    for kind, gated in (("phases_sim", True), ("phases_host", False)):
        base_ph = base_wl.get(kind, {})
        for pname, cur_p in cur_wl.get(kind, {}).items():
            base_p = base_ph.get(pname)
            if base_p is None:
                continue
            worse = _worse_frac(base_p["time_s"], cur_p["time_s"],
                                "lower")
            d = Delta(
                wname, "phase" if gated else "phase-host", pname,
                base_p["time_s"], cur_p["time_s"], worse, gated,
            )
            d.regressed = gated and worse > threshold
            d.improved = gated and worse < -threshold
            report.deltas.append(d)
