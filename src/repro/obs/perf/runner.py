"""Statistical benchmark runner.

Runs a workload ``warmup + repeats`` times under the :mod:`repro.obs`
tracer, folds each repeat's trace into the stable phase taxonomy, and
aggregates every metric across repeats with *robust* statistics:

- **median** — the reported central value,
- **MAD** — median absolute deviation (the noise scale),
- **ci95** — a notch-style 95% interval for the median,
  ``median ± 1.57 × IQR / sqrt(n)`` (McGill et al.), degenerate
  (zero-width) for deterministic model outputs,
- mean/min/max for context.

Workload metrics split into two classes, recorded per metric in the
schema:

- ``gate=True`` — *deterministic model outputs* (simulated step time,
  modelled DMA time, halo traffic bytes).  Fixed seeds make them
  reproducible bit-for-bit, so the regression gate can compare them
  across machines and CI runs without noise heuristics.
- ``gate=False`` — *host measurements* (wall time per repeat, host
  phase attribution).  Reported for trend-watching, never gated.
"""

from __future__ import annotations

import math
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .. import capture
from ..events import emit
from ..metrics import _percentile
from .phases import PhaseAttribution, attribute
from .schema import BENCH_FORMAT, BENCH_VERSION

__all__ = [
    "MetricSpec",
    "Workload",
    "WorkloadOutput",
    "run_workload",
    "run_bench",
    "aggregate",
    "environment_fingerprint",
]


@dataclass(frozen=True)
class MetricSpec:
    """How one metric is aggregated and compared."""

    unit: str = "s"
    #: "lower" (times) or "higher" (rates) is better
    direction: str = "lower"
    #: deterministic model output → eligible for the regression gate
    gate: bool = False


@dataclass
class WorkloadOutput:
    """What one workload invocation hands back to the runner."""

    metrics: Dict[str, float] = field(default_factory=dict)
    #: modelled per-phase attribution (deterministic; gated)
    phases_sim: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: roofline placement per kernel (``RooflinePoint.to_dict()`` form)
    roofline: Dict[str, Dict[str, Any]] = field(default_factory=dict)


@dataclass
class Workload:
    """A benchmarkable unit of pipeline work."""

    name: str
    #: ``fn(seed) -> WorkloadOutput``; runs under an enabled tracer
    fn: Callable[[int], WorkloadOutput]
    metric_specs: Dict[str, MetricSpec] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def spec_for(self, metric: str) -> MetricSpec:
        return self.metric_specs.get(metric, MetricSpec())


def aggregate(values: List[float]) -> Dict[str, Any]:
    """Robust summary of one metric's repeat values."""
    if not values:
        raise ValueError("aggregate of no values")
    ordered = sorted(values)
    n = len(ordered)
    median = _percentile(ordered, 0.5)
    mad = _percentile(sorted(abs(v - median) for v in ordered), 0.5)
    iqr = _percentile(ordered, 0.75) - _percentile(ordered, 0.25)
    half = 1.57 * iqr / math.sqrt(n)
    return {
        "n": n,
        "median": median,
        "mad": mad,
        "mean": sum(ordered) / n,
        "min": ordered[0],
        "max": ordered[-1],
        "ci95": [median - half, median + half],
    }


def _perf_counter() -> float:
    import time

    return time.perf_counter()


def run_workload(workload: Workload, repeats: int = 5, warmup: int = 1,
                 seed: int = 0) -> Dict[str, Any]:
    """Run one workload and return its schema fragment."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    emit("phase.enter", phase="bench.workload", workload=workload.name,
         repeats=repeats, warmup=warmup)
    for _ in range(warmup):
        workload.fn(seed)

    samples: List[Dict[str, float]] = []
    host_attrs: List[PhaseAttribution] = []
    out: Optional[WorkloadOutput] = None
    for rep in range(repeats):
        with capture() as (tr, _reg):
            t0 = _perf_counter()
            out = workload.fn(seed)
            wall = _perf_counter() - t0
        host_attrs.append(attribute(tr.records))
        sample = dict(out.metrics)
        sample["host.wall_s"] = wall
        samples.append(sample)
        emit("bench.repeat", level="debug", workload=workload.name,
             repeat=rep, wall_s=round(wall, 6))
    assert out is not None
    emit("phase.exit", phase="bench.workload", workload=workload.name)

    specs = dict(workload.metric_specs)
    specs.setdefault("host.wall_s", MetricSpec(unit="s", gate=False))
    metrics: Dict[str, Any] = {}
    for name in samples[-1]:
        values = [s[name] for s in samples if name in s]
        spec = specs.get(name, MetricSpec())
        metrics[name] = aggregate(values) | {
            "unit": spec.unit,
            "direction": spec.direction,
            "gate": spec.gate,
        }

    # host phase attribution: median time/bytes per phase over repeats
    phase_names = sorted({p for a in host_attrs for p in a.phases})
    phases_host: Dict[str, Any] = {}
    for pname in phase_names:
        times = [a.phases[pname].time_s if pname in a.phases else 0.0
                 for a in host_attrs]
        byts = [a.phases[pname].bytes if pname in a.phases else 0.0
                for a in host_attrs]
        counts = [a.phases[pname].count if pname in a.phases else 0
                  for a in host_attrs]
        phases_host[pname] = {
            "time_s": _percentile(sorted(times), 0.5),
            "bytes": _percentile(sorted(byts), 0.5),
            "count": int(_percentile(sorted(float(c) for c in counts),
                                     0.5)),
        }
    coverage = _percentile(sorted(a.coverage for a in host_attrs), 0.5)
    total_host = _percentile(sorted(a.total_s for a in host_attrs), 0.5)

    return {
        "meta": dict(workload.meta),
        "samples": repeats,
        "warmup": warmup,
        "seed": seed,
        "metrics": metrics,
        "phases_host": phases_host,
        "phase_total_host_s": total_host,
        "phase_coverage": coverage,
        "phases_sim": {k: dict(v) for k, v in out.phases_sim.items()},
        "roofline": {k: dict(v) for k, v in out.roofline.items()},
    }


def environment_fingerprint() -> Dict[str, Any]:
    """Where/how this bench ran (informational; never gated)."""
    import numpy

    fp: Dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
        "executable": sys.executable,
    }
    # git state is load-bearing for the run ledger: always present (so
    # ledger rows line up column-wise), "unknown" when rev-parse fails,
    # and a dirty-tree bool so historical rows from uncommitted trees
    # are distinguishable from clean ones.
    fp["git"] = "unknown"
    try:
        import subprocess

        cwd = os.path.dirname(os.path.abspath(__file__))
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5, cwd=cwd,
        )
        if sha.returncode == 0 and sha.stdout.strip():
            fp["git"] = sha.stdout.strip()
            status = subprocess.run(
                ["git", "status", "--porcelain"],
                capture_output=True, text=True, timeout=5, cwd=cwd,
            )
            if status.returncode == 0:
                fp["git_dirty"] = bool(status.stdout.strip())
    except Exception:  # noqa: BLE001 - fingerprint stays best-effort
        pass
    return fp


def run_bench(workloads: List[Workload], name: str, repeats: int = 5,
              warmup: int = 1, seed: int = 0) -> Dict[str, Any]:
    """Run a workload list into one versioned bench document."""
    if not workloads:
        raise ValueError("no workloads to bench")
    doc: Dict[str, Any] = {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "name": name,
        "repeats": repeats,
        "warmup": warmup,
        "seed": seed,
        "workloads": {},
        "environment": environment_fingerprint(),
    }
    for w in workloads:
        doc["workloads"][w.name] = run_workload(
            w, repeats=repeats, warmup=warmup, seed=seed
        )
    return doc
