"""ASCII rendering of bench documents (the ``repro bench`` output).

One block per workload: the gated metric medians with their noise
scale, a phase bar chart (host attribution alongside the modelled
phases), and the roofline placement per kernel with a utilization
bar.  Rendering imports :mod:`repro.evalsuite.ascii_plot` lazily so
``repro.obs`` stays importable without the evalsuite package loaded.
"""

from __future__ import annotations

from typing import Any, Dict

from .phases import PHASES

__all__ = ["format_bench", "format_workload"]


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def _fmt_value(value: float, unit: str) -> str:
    if unit == "s":
        return _fmt_time(value)
    shown = f"{value:.4g}"
    return f"{shown} {unit}".rstrip()


def format_workload(name: str, wl: Dict[str, Any]) -> str:
    from ...evalsuite.ascii_plot import bar_chart

    lines = [f"## {name}  ({wl['samples']} samples, "
             f"{wl['warmup']} warmup, seed {wl['seed']})"]

    metrics = wl.get("metrics", {})
    if metrics:
        header = (f"  {'metric':20s} {'median':>12s} {'mad':>10s} "
                  f"{'ci95':>26s}  gate")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for mname in sorted(metrics):
            m = metrics[mname]
            unit = m.get("unit", "")
            ci = m.get("ci95", [m["median"], m["median"]])
            lines.append(
                f"  {mname:20s} {_fmt_value(m['median'], unit):>12s} "
                f"{_fmt_value(m['mad'], unit):>10s} "
                f"[{_fmt_value(ci[0], unit)}, "
                f"{_fmt_value(ci[1], unit)}]".ljust(64)
                + ("  gated" if m.get("gate") else "")
            )

    sim = wl.get("phases_sim", {})
    if sim:
        lines.append("  modelled phases:")
        bars = {p: sim[p]["time_s"] for p in PHASES if p in sim}
        bars.update({p: v["time_s"] for p, v in sim.items()
                     if p not in bars})
        chart = bar_chart(bars, width=32, fmt=_fmt_time)
        lines.extend("    " + ln for ln in chart.splitlines())

    host = wl.get("phases_host", {})
    if host:
        total = wl.get("phase_total_host_s", 0.0)
        cov = wl.get("phase_coverage", 0.0)
        lines.append(
            f"  host phase attribution (total {_fmt_time(total)}, "
            f"coverage {cov:.1%}):"
        )
        bars = {p: host[p]["time_s"] for p in PHASES if p in host}
        bars.update({p: v["time_s"] for p, v in host.items()
                     if p not in bars})
        chart = bar_chart(bars, width=32, fmt=_fmt_time)
        lines.extend("    " + ln for ln in chart.splitlines())

    roofline = wl.get("roofline", {})
    for kname in sorted(roofline):
        pt = roofline[kname]
        util = pt.get("utilization", 0.0)
        bar = "#" * int(round(util * 20))
        lines.append(
            f"  roofline {kname}: OI {pt['operational_intensity']:.3f} "
            f"flops/B, {pt['achieved_gflops']:.1f} / "
            f"{pt['attainable_gflops']:.1f} GFlops "
            f"({pt['bound']}-bound)  |{bar:<20s}| {util:.1%}"
        )
    return "\n".join(lines)


def format_bench(doc: Dict[str, Any]) -> str:
    """Render one bench document for the terminal."""
    env = doc.get("environment", {})
    lines = [
        f"BENCH {doc.get('name', '?')}  "
        f"(schema {doc.get('format')}/v{doc.get('version')}, "
        f"python {env.get('python', '?')}, "
        f"numpy {env.get('numpy', '?')})"
    ]
    for wname in sorted(doc.get("workloads", {})):
        lines.append("")
        lines.append(format_workload(wname, doc["workloads"][wname]))
    return "\n".join(lines)
