"""Append-only on-disk run ledger (``repro.obs.ledger``).

Spans describe one run; BENCH documents describe one bench invocation.
The ledger is the *longitudinal* layer: a small sqlite store (stdlib
:mod:`sqlite3`, no new dependencies) that every recording CLI command
(``run``, ``simulate``, ``tune``, ``bench``, ``verify``) appends one
row per workload to by default.  Each row carries:

- a **config fingerprint** — benchmark, backend, exchange mode, grid,
  IR/schedule fingerprints, the :func:`machine_spec_hash` of the
  (possibly perturbed) machine spec — the "what ran",
- an **environment fingerprint** — python/numpy/platform/git (from
  :func:`repro.obs.perf.runner.environment_fingerprint`) — the "where",
- **phase self-times** — deterministic modelled phases
  (``phases_sim``, from the simulators / bench documents) and host
  phases folded from the tracer/flight ring through the stable
  taxonomy of :mod:`repro.obs.perf.phases`,
- **metric points** — every gated bench metric as its full
  median/MAD/CI aggregate, so later comparisons stay CI-aware,
- an **outcome** (``ok`` / ``error`` / ``regression``) plus a
  ``verdict`` column that ``repro history``'s change-point detector
  annotates back in.

Storage location: ``$REPRO_LEDGER_DIR/ledger.db`` when set, else
``$XDG_STATE_HOME/repro/ledger.db``, else
``~/.local/state/repro/ledger.db``.  ``REPRO_LEDGER=0`` opts the CLI
hooks out entirely (nothing is opened or written).

The collector half (:func:`begin` / :func:`note` /
:func:`note_workload` / :func:`finish`) is how the CLI builds a record
incrementally while a command runs: commands contribute what they know
(fingerprints, metrics, modelled phases) and ``repro.cli.main``
finalises the record — folding the run's spans, stamping the outcome
— after the command returns.  Every ledger write emits a
``ledger.record`` event so event-log narrations show the run id.  All
collector failures are swallowed (one stderr warning): observability
must never break the run it observes.

``repro diff`` and ``repro history`` (see :mod:`repro.obs.diff`) are
the query surfaces over this store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "ENV_LEDGER",
    "ENV_LEDGER_DIR",
    "LEDGER_SCHEMA_VERSION",
    "LEDGED_COMMANDS",
    "RunRecord",
    "RunLedger",
    "enabled",
    "ledger_dir",
    "ledger_path",
    "open_ledger",
    "machine_spec_hash",
    "program_fingerprints",
    "metric_point",
    "fold_spans",
    "begin",
    "note",
    "note_workload",
    "finish",
    "discard",
    "pending",
]

#: opt-out switch: ``REPRO_LEDGER=0`` disables all CLI ledger writes
ENV_LEDGER = "REPRO_LEDGER"
#: directory override for the on-disk store
ENV_LEDGER_DIR = "REPRO_LEDGER_DIR"

LEDGER_SCHEMA_VERSION = 1
LEDGER_FILENAME = "ledger.db"

#: CLI commands that append a run record by default
LEDGED_COMMANDS = ("run", "simulate", "tune", "bench", "verify")

_OFF_VALUES = ("0", "off", "false", "no")


def enabled() -> bool:
    """Ledger recording on unless ``REPRO_LEDGER`` opts out."""
    return os.environ.get(ENV_LEDGER, "1").lower() not in _OFF_VALUES


def ledger_dir() -> str:
    """The directory holding the store (see module docstring)."""
    override = os.environ.get(ENV_LEDGER_DIR)
    if override:
        return override
    state_home = os.environ.get("XDG_STATE_HOME")
    if state_home:
        return os.path.join(state_home, "repro")
    return os.path.join(os.path.expanduser("~"), ".local", "state",
                        "repro")


def ledger_path(directory: Optional[str] = None) -> str:
    """Full path of the sqlite store."""
    return os.path.join(directory or ledger_dir(), LEDGER_FILENAME)


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------

def machine_spec_hash(spec: Any) -> str:
    """Short stable hash of a (possibly perturbed) machine spec."""
    payload = json.dumps(dataclasses.asdict(spec), sort_keys=True,
                         default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def program_fingerprints(program: Any) -> Dict[str, str]:
    """IR + schedule fingerprints of a stencil program (best-effort)."""
    out: Dict[str, str] = {}
    try:
        from ..backend.native import ir_fingerprint, schedule_fingerprint

        out["ir_fp"] = ir_fingerprint(program.ir)[:12]
        schedules = program.schedules()
        if schedules:
            out["schedule_fp"] = schedule_fingerprint(schedules)[:12]
    except Exception:  # noqa: BLE001 - fingerprints stay best-effort
        pass
    return out


def metric_point(value: float, unit: str = "", direction: str = "lower",
                 gate: bool = False) -> Dict[str, Any]:
    """One metric value in the bench runner's aggregate shape.

    A single observation gets a zero-width CI, so the diff layer can
    treat ledger points and bench aggregates identically (any
    >threshold shift on a gated point is outside its CI).
    """
    v = float(value)
    return {
        "n": 1,
        "median": v,
        "mad": 0.0,
        "mean": v,
        "min": v,
        "max": v,
        "ci95": [v, v],
        "unit": unit,
        "direction": direction,
        "gate": bool(gate),
    }


def fold_spans(spans: Iterable[Any]) -> Tuple[
        Dict[str, Dict[str, float]], Dict[str, float]]:
    """Fold spans into (host phase stats, per-span-name self-times).

    Phases use the stable taxonomy of :mod:`repro.obs.perf.phases`;
    the per-name self-time map (top 40 names by time) is what lets
    ``repro diff`` align two runs at span granularity, below phases.
    """
    from .perf.phases import attribute

    records = [s if isinstance(s, Mapping) else s.to_dict()
               for s in spans]
    attr = attribute(records)
    phases = {
        name: {"time_s": st.time_s, "count": float(st.count),
               "bytes": st.bytes}
        for name, st in attr.phases.items()
    }
    child: Dict[Any, float] = {}
    for s in records:
        pid = s.get("parent_id")
        if pid is not None:
            child[pid] = child.get(pid, 0.0) + s["duration_s"]
    names: Dict[str, float] = {}
    for s in records:
        self_s = max(0.0, s["duration_s"] - child.get(s["span_id"], 0.0))
        names[s["name"]] = names.get(s["name"], 0.0) + self_s
    top = dict(sorted(names.items(), key=lambda kv: -kv[1])[:40])
    return phases, top


# ---------------------------------------------------------------------------
# records and the store
# ---------------------------------------------------------------------------

@dataclass
class RunRecord:
    """One ledger row (pre-insert form)."""

    command: str
    workload: Optional[str] = None
    outcome: str = "ok"
    rc: int = 0
    verdict: Optional[str] = None
    config: Dict[str, Any] = field(default_factory=dict)
    environment: Dict[str, Any] = field(default_factory=dict)
    #: deterministic modelled phases (simulator / bench ``phases_sim``)
    phases_sim: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: host phases folded from the tracer (noisy, informational)
    phases_host: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per-span-name host self-times (top names)
    spans: Dict[str, float] = field(default_factory=dict)
    #: metric name -> aggregate dict (:func:`metric_point` shape)
    metrics: Dict[str, Any] = field(default_factory=dict)
    ts: float = 0.0


_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    ts REAL NOT NULL,
    schema_version INTEGER NOT NULL DEFAULT {LEDGER_SCHEMA_VERSION},
    command TEXT NOT NULL,
    workload TEXT,
    outcome TEXT NOT NULL,
    rc INTEGER NOT NULL,
    verdict TEXT,
    config TEXT NOT NULL,
    environment TEXT NOT NULL,
    phases TEXT NOT NULL,
    metrics TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_workload ON runs (workload, id);
"""


class RunLedger:
    """The sqlite-backed append-only run store.

    Append-only by construction: the only UPDATE the API can issue is
    :meth:`annotate`, which fills the ``verdict`` column of an existing
    row (the change-point detector writing its finding back).
    """

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- writing ---------------------------------------------------------
    def record(self, rec: RunRecord) -> int:
        """Append one run record; returns its ledger id."""
        phases = {
            "sim": rec.phases_sim,
            "host": rec.phases_host,
            "spans": rec.spans,
        }
        cur = self._conn.execute(
            "INSERT INTO runs (ts, schema_version, command, workload, "
            "outcome, rc, verdict, config, environment, phases, metrics)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                rec.ts or time.time(),
                LEDGER_SCHEMA_VERSION,
                rec.command,
                rec.workload,
                rec.outcome,
                int(rec.rc),
                rec.verdict,
                json.dumps(rec.config, sort_keys=True, default=str),
                json.dumps(rec.environment, sort_keys=True, default=str),
                json.dumps(phases, sort_keys=True, default=str),
                json.dumps(rec.metrics, sort_keys=True, default=str),
            ),
        )
        self._conn.commit()
        return int(cur.lastrowid)

    def annotate(self, run_id: int, verdict: str) -> bool:
        """Set (merge into) one row's verdict; True if the row exists."""
        row = self.get(run_id)
        if row is None:
            return False
        prior = row.get("verdict")
        if prior and verdict in prior.split("; "):
            return True
        merged = f"{prior}; {verdict}" if prior else verdict
        self._conn.execute(
            "UPDATE runs SET verdict = ? WHERE id = ?", (merged, run_id)
        )
        self._conn.commit()
        return True

    # -- reading ---------------------------------------------------------
    @staticmethod
    def _row_to_dict(row: Tuple) -> Dict[str, Any]:
        (rid, ts, schema_version, command, workload, outcome, rc,
         verdict, config, environment, phases, metrics) = row
        ph = json.loads(phases)
        return {
            "id": int(rid),
            "ts": float(ts),
            "schema_version": int(schema_version),
            "command": command,
            "workload": workload,
            "outcome": outcome,
            "rc": int(rc),
            "verdict": verdict,
            "config": json.loads(config),
            "environment": json.loads(environment),
            "phases_sim": ph.get("sim", {}),
            "phases_host": ph.get("host", {}),
            "spans": ph.get("spans", {}),
            "metrics": json.loads(metrics),
        }

    _COLS = ("id, ts, schema_version, command, workload, outcome, rc, "
             "verdict, config, environment, phases, metrics")

    def get(self, run_id: int) -> Optional[Dict[str, Any]]:
        """One row as a dict, or ``None``."""
        cur = self._conn.execute(
            f"SELECT {self._COLS} FROM runs WHERE id = ?", (int(run_id),)
        )
        row = cur.fetchone()
        return self._row_to_dict(row) if row else None

    def query(self, workload: Optional[str] = None,
              command: Optional[str] = None,
              limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Rows (ascending id), filtered by workload and/or command.

        ``limit`` keeps the *newest* N matching rows.
        """
        clauses, params = [], []
        if workload is not None:
            clauses.append("workload = ?")
            params.append(workload)
        if command is not None:
            clauses.append("command = ?")
            params.append(command)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = f"SELECT {self._COLS} FROM runs{where} ORDER BY id"
        rows = [self._row_to_dict(r)
                for r in self._conn.execute(sql, params)]
        if limit is not None and limit >= 0:
            rows = rows[-limit:]
        return rows

    def workloads(self) -> List[Tuple[str, int]]:
        """Distinct recorded workload names with their run counts."""
        cur = self._conn.execute(
            "SELECT workload, COUNT(*) FROM runs WHERE workload IS NOT "
            "NULL GROUP BY workload ORDER BY workload"
        )
        return [(w, int(n)) for w, n in cur.fetchall()]

    def __len__(self) -> int:
        cur = self._conn.execute("SELECT COUNT(*) FROM runs")
        return int(cur.fetchone()[0])

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_ledger(directory: Optional[str] = None) -> RunLedger:
    """Open (creating if needed) the store in ``directory``."""
    return RunLedger(ledger_path(directory))


# ---------------------------------------------------------------------------
# the CLI collector
# ---------------------------------------------------------------------------

@dataclass
class _Pending:
    command: str
    ts: float
    shared: RunRecord
    workloads: List[RunRecord] = field(default_factory=list)


_PENDING: Optional[_Pending] = None
_ENV_CACHE: Optional[Dict[str, Any]] = None


def _environment() -> Dict[str, Any]:
    """Per-process cached environment fingerprint (it cannot change)."""
    global _ENV_CACHE
    if _ENV_CACHE is None:
        from .perf.runner import environment_fingerprint

        _ENV_CACHE = environment_fingerprint()
    return _ENV_CACHE


def begin(command: str) -> None:
    """Start collecting one CLI invocation's run record."""
    global _PENDING
    _PENDING = _Pending(
        command=command,
        ts=time.time(),
        shared=RunRecord(command=command, ts=time.time()),
    )


def pending() -> Optional[RunRecord]:
    """The command-level record being collected, or ``None``."""
    return _PENDING.shared if _PENDING is not None else None


def discard() -> None:
    """Drop the pending record without writing."""
    global _PENDING
    _PENDING = None


def note(workload: Optional[str] = None,
         config: Optional[Mapping[str, Any]] = None,
         metrics: Optional[Mapping[str, Any]] = None,
         phases_sim: Optional[Mapping[str, Dict[str, float]]] = None,
         verdict: Optional[str] = None) -> None:
    """Merge details into the pending command-level record (no-op when
    nothing is being collected, so library callers can note freely)."""
    if _PENDING is None:
        return
    rec = _PENDING.shared
    if workload is not None:
        rec.workload = workload
    if config:
        rec.config.update(config)
    if metrics:
        rec.metrics.update(metrics)
    if phases_sim:
        rec.phases_sim.update(
            {k: dict(v) for k, v in phases_sim.items()}
        )
    if verdict is not None:
        rec.verdict = verdict


def note_workload(name: str,
                  config: Optional[Mapping[str, Any]] = None,
                  metrics: Optional[Mapping[str, Any]] = None,
                  phases_sim: Optional[Mapping[str, Any]] = None,
                  phases_host: Optional[Mapping[str, Any]] = None,
                  environment: Optional[Mapping[str, Any]] = None) -> None:
    """Add one per-workload record (``bench`` writes one row per
    workload so ``repro history <workload>`` has a natural key)."""
    if _PENDING is None:
        return
    _PENDING.workloads.append(RunRecord(
        command=_PENDING.command,
        workload=name,
        config=dict(config or {}),
        metrics=dict(metrics or {}),
        phases_sim={k: dict(v) for k, v in (phases_sim or {}).items()},
        phases_host={k: dict(v) for k, v in (phases_host or {}).items()},
        environment=dict(environment or {}),
        ts=_PENDING.ts,
    ))


def finish(rc: int, spans: Optional[Iterable[Any]] = None,
           directory: Optional[str] = None) -> List[int]:
    """Finalise and write the pending record(s); returns ledger ids.

    ``spans`` (tracer records or flight-ring snapshot) are folded into
    host phases/span self-times for command-level records.  Never
    raises: a broken store degrades to one stderr warning.
    """
    global _PENDING
    pend = _PENDING
    _PENDING = None
    if pend is None:
        return []
    try:
        shared = pend.shared
        outcome = "error" if rc else "ok"
        if shared.verdict and shared.verdict.startswith("regression"):
            outcome = "regression"
        phases_host: Dict[str, Dict[str, float]] = {}
        span_times: Dict[str, float] = {}
        if spans is not None:
            phases_host, span_times = fold_spans(spans)
        environment = _environment()

        records = pend.workloads or [shared]
        for rec in records:
            rec.rc = int(rc)
            rec.outcome = outcome
            rec.verdict = rec.verdict or shared.verdict
            if not rec.environment:
                rec.environment = environment
            if rec is shared or len(records) == 1:
                rec.phases_host = rec.phases_host or phases_host
                rec.spans = rec.spans or span_times
            rec.ts = rec.ts or pend.ts

        from .events import emit

        with open_ledger(directory) as ledger:
            ids = []
            for rec in records:
                rid = ledger.record(rec)
                ids.append(rid)
                emit("ledger.record", run_id=rid, command=rec.command,
                     workload=rec.workload, outcome=rec.outcome)
        return ids
    except Exception as exc:  # noqa: BLE001 - never break the run
        print(f"warning: run ledger write failed: {exc}",
              file=sys.stderr)
        return []
