"""``repro.obs`` — end-to-end tracing and metrics for the MSC pipeline.

The paper's evaluation (Figs. 7-14) is an exercise in knowing *where
time goes*: DMA vs. compute on the SW26010, pack/send/wait in the halo
exchange, trial-by-trial convergence of the annealing tuner.  This
package is the measurement substrate for those claims:

- :mod:`repro.obs.trace`   — hierarchical spans with attributes, plus
  the bounded :class:`~repro.obs.trace.FlightRecorder` ring,
- :mod:`repro.obs.metrics` — labeled counters/gauges/histograms,
- :mod:`repro.obs.export`  — JSON, Chrome ``trace_event`` and ASCII
  summary exporters,
- :mod:`repro.obs.openmetrics` — OpenMetrics text exposition + strict
  parser (the ``/metrics`` scrape payload),
- :mod:`repro.obs.events`  — structured JSONL event log
  (``--event-log`` / ``REPRO_EVENT_LOG``),
- :mod:`repro.obs.live`    — metrics time-series sampler + localhost
  scrape server (``--serve-metrics``),
- :mod:`repro.obs.monitor` — the ``repro monitor`` ASCII dashboard,
- :mod:`repro.obs.perf`    — the performance observatory: statistical
  bench runner, span-based phase attribution, roofline reports and
  the ``repro bench`` regression gate (import explicitly:
  ``from repro.obs import perf``),
- :mod:`repro.obs.ledger`  — the append-only sqlite *run ledger*
  every ``run``/``simulate``/``tune``/``bench``/``verify`` invocation
  records into by default (``REPRO_LEDGER=0`` opts out),
- :mod:`repro.obs.diff`    — ``repro diff`` (two-run comparison with
  waterfall regression attribution) and ``repro history``
  (longitudinal trends + change-point detection over the ledger).

Full recording is **off by default** and free when off: instrumentation
sites cost one flag check and record nothing until :func:`enable` is
called (the CLI's ``--trace`` flag, or :func:`capture` in tests).  The
*flight recorder* is the always-on middle ground: :func:`enable_flight`
keeps the last N completed spans in a fixed ring (drops accounted via
``obs.dropped_spans``) without ever growing memory, cheap enough for
long-lived service runs.

Instrumented subsystems (span name prefixes):

========== ==================================================
prefix      where
========== ==================================================
frontend    MSC source parsing (``frontend.parse``)
schedule    schedule lowering (``schedule.lower``)
analysis    static legality checks (``analysis.check``)
codegen     AOT C/Sunway/MPI generation (``codegen.*``)
machine     architectural simulators + DMA model (``machine.*``)
comm        halo exchange pack/send/wait/unpack/retry (``comm.*``)
runtime     distributed execution steps (``runtime.*``)
faults      injected message/rank faults (``faults.*`` counters)
autotune    sampling, annealing trials (``autotune.*``)
native      compiled-C backend build/exec + artifact cache
            (``native.*`` spans, ``native.cache.*`` counters)
cli         top-level command spans (``cli.*``)
========== ==================================================
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import (
    MetricsRegistry,
    counter,
    gauge,
    observe,
    registry,
)
from .trace import (
    FlightRecorder,
    Span,
    Tracer,
    attach_flow,
    disable_flight,
    enable_flight,
    flight,
    is_enabled,
    span,
    tracer,
)

__all__ = [
    "INSTRUMENTED_SUBSYSTEMS",
    "FlightRecorder",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "attach_flow",
    "capture",
    "counter",
    "disable",
    "disable_flight",
    "enable",
    "enable_flight",
    "flight",
    "gauge",
    "is_enabled",
    "observe",
    "rank_scope",
    "registry",
    "reset",
    "span",
    "tracer",
]

#: span-name prefixes emitted by the instrumented pipeline stages
INSTRUMENTED_SUBSYSTEMS = (
    "frontend", "schedule", "analysis", "codegen", "machine", "comm",
    "runtime", "autotune", "faults", "native", "cli",
)


def enable() -> None:
    """Turn on both the tracer and the metrics registry."""
    tracer().enable()
    registry().enable()


def disable() -> None:
    """Turn off both the tracer and the metrics registry."""
    tracer().disable()
    registry().disable()


def reset() -> None:
    """Drop all recorded spans and metrics (state stays on/off as-is)."""
    tracer().reset()
    registry().reset()


@contextmanager
def rank_scope(rank: int, **extra):
    """Tag every span and metric written on this thread with ``rank=``.

    Bound by ``run_ranks`` around each simulated MPI rank thread so
    distributed traces carry per-rank attribution end to end (see
    :mod:`repro.obs.distributed`).  Explicit ``rank=`` attrs/labels at
    an instrumentation site win over the scope's value.

    ``extra`` attrs (e.g. ``backend=``, ``exchange_mode=``) join the
    **span** scope only — metric series keep their exact historical
    label sets so ``counter_value(name, rank=r)`` lookups stay stable.
    """
    with tracer().scope(rank=rank, **extra), registry().scope(rank=rank):
        yield


@contextmanager
def capture():
    """Record everything inside the block::

        with obs.capture() as (tr, reg):
            prog.simulate("sunway")
        assert tr.records

    Resets, enables on entry; disables on exit (records are kept so the
    caller can export them).
    """
    reset()
    enable()
    try:
        yield tracer(), registry()
    finally:
        disable()
