"""MSC frontend: the embedded DSL, the benchmark suite, and the textual
MSC-language parser."""

from .dsl import (
    DefShapeMPI2D,
    DefShapeMPI3D,
    DefTensor1D,
    DefTensor2D,
    DefTensor2D_TimeWin,
    DefTensor3D,
    DefTensor3D_TimeWin,
    DefVar,
    Kernel,
    KernelHandle,
    Result,
    StencilProgram,
    indices,
)
from .lang import MSCSyntaxError, ParsedProgram, parse_program, tokenize
from .printer import render_expr, render_program
from .stencils import (
    ALL_BENCHMARKS,
    BENCHMARK_NAMES,
    BenchmarkDef,
    benchmark_by_name,
    box_kernel,
    build_benchmark,
    star_kernel,
)

__all__ = [
    "DefShapeMPI2D", "DefShapeMPI3D",
    "DefTensor1D", "DefTensor2D", "DefTensor2D_TimeWin",
    "DefTensor3D", "DefTensor3D_TimeWin", "DefVar",
    "Kernel", "KernelHandle", "Result", "StencilProgram", "indices",
    "MSCSyntaxError", "ParsedProgram", "parse_program", "tokenize",
    "render_expr", "render_program",
    "ALL_BENCHMARKS", "BENCHMARK_NAMES", "BenchmarkDef",
    "benchmark_by_name", "box_kernel", "build_benchmark", "star_kernel",
]
