"""Textual MSC language: lexer + parser for Listing-1-style programs.

The paper embeds MSC in C++; alongside the Python embedding
(:mod:`repro.frontend.dsl`) this module accepts the *textual* form so
stencil programs can live in ``.msc`` files::

    const N = 64;
    const halo_width = 1;
    const time_window_size = 3;
    DefVar(k, i32); DefVar(j, i32); DefVar(i, i32);
    DefTensor3D_TimeWin(B, time_window_size, halo_width, f64, N, N, N);
    Kernel S_3d7pt((k,j,i), 0.4*B[k,j,i] + 0.1*B[k,j,i-1]
                   + 0.1*B[k,j,i+1] + 0.1*B[k-1,j,i] + 0.1*B[k+1,j,i]
                   + 0.1*B[k,j-1,i] + 0.1*B[k,j+1,i]);
    S_3d7pt.tile(2, 8, 16, xo, xi, yo, yi, zo, zi);
    S_3d7pt.reorder(xo, yo, zo, xi, yi, zi);
    S_3d7pt.parallel(xo, 64);
    Stencil st((k,j,i), B[t] << 0.6*S_3d7pt[t-1] + 0.4*S_3d7pt[t-2]);
    DefShapeMPI3D(shape_mpi, 2, 2, 2);

:func:`parse_program` returns a :class:`ParsedProgram` whose
``program`` is a ready :class:`~repro.frontend.dsl.StencilProgram`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..ir.dtypes import dtype_from_name
from ..ir.expr import Expr, VarExpr, as_expr
from ..ir.kernel import KernelApply
from ..ir.tensor import SpNode
from .dsl import Kernel as make_kernel, KernelHandle, StencilProgram

__all__ = ["MSCSyntaxError", "Token", "tokenize", "ParsedProgram",
           "parse_program"]


class MSCSyntaxError(SyntaxError):
    """A lexing or parsing error in an MSC program."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # ident | number | string | op
    text: str
    line: int


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<string>"[^"\n]*")
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><<|[-+*/(),;.\[\]=<>])
  | (?P<ws>[ \t\r]+)
  | (?P<nl>\n)
  | (?P<bad>.)
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(source: str) -> List[Token]:
    """Lex an MSC program; comments and whitespace are dropped."""
    tokens: List[Token] = []
    line = 1
    for m in _TOKEN_RE.finditer(source):
        kind = m.lastgroup
        text = m.group()
        if kind == "nl":
            line += 1
            continue
        if kind in ("ws",):
            continue
        if kind == "comment":
            line += text.count("\n")
            continue
        if kind == "bad":
            raise MSCSyntaxError(f"unexpected character {text!r}", line)
        tokens.append(Token(kind, text, line))
    return tokens


@dataclass
class ParsedProgram:
    """Result of parsing one MSC source file.

    Single-``Stencil`` programs populate ``program``; programs with
    several ``Stencil`` declarations become a multi-stage
    :class:`~repro.ir.pipeline.StagePipeline` (declaration order =
    stage order) in ``pipeline`` instead.
    """

    program: Optional[StencilProgram]
    kernels: Dict[str, KernelHandle]
    tensors: Dict[str, SpNode]
    consts: Dict[str, float]
    mpi_grid: Optional[Tuple[int, ...]] = None
    stencil_name: str = "st"
    #: (mpi shape var, tensor, data source) from ``st.input(...)``
    input_spec: Optional[Tuple[str, str, str]] = None
    #: (t_begin, t_end) from ``st.run(...)``
    run_spec: Optional[Tuple[int, int]] = None
    #: output name from ``st.compile_to_source_code(...)``
    compile_spec: Optional[str] = None
    #: multi-stage pipeline for programs with several Stencils
    pipeline: Optional["StagePipeline"] = None

    @property
    def timesteps(self) -> Optional[int]:
        if self.run_spec is None:
            return None
        return self.run_spec[1] - self.run_spec[0] + 1


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.consts: Dict[str, Union[int, float]] = {}
        self.vars: Dict[str, VarExpr] = {}
        self.tensors: Dict[str, SpNode] = {}
        self.kernels: Dict[str, KernelHandle] = {}
        self.mpi_grid: Optional[Tuple[int, ...]] = None
        self.stencils: List[Tuple[str, SpNode, Expr]] = []
        self.stencil_name: Optional[str] = None
        self.input_spec: Optional[Tuple[Optional[str], str, str]] = None
        self.run_spec: Optional[Tuple[int, int]] = None
        self.compile_spec: Optional[str] = None

    # -- token helpers --------------------------------------------------------
    def _peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> Token:
        tok = self._peek()
        if tok is None:
            last = self.tokens[-1].line if self.tokens else 1
            raise MSCSyntaxError("unexpected end of program", last)
        self.pos += 1
        return tok

    def _expect(self, text: str) -> Token:
        tok = self._next()
        if tok.text != text:
            raise MSCSyntaxError(
                f"expected {text!r}, got {tok.text!r}", tok.line
            )
        return tok

    def _expect_ident(self) -> Token:
        tok = self._next()
        if tok.kind != "ident":
            raise MSCSyntaxError(
                f"expected identifier, got {tok.text!r}", tok.line
            )
        return tok

    def _accept(self, text: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.text == text:
            self.pos += 1
            return True
        return False

    # -- program structure --------------------------------------------------------
    def parse(self) -> None:
        while self._peek() is not None:
            self._statement()

    def _statement(self) -> None:
        tok = self._peek()
        assert tok is not None
        if tok.text == "const":
            self._const_decl()
        elif tok.text == "DefVar":
            self._defvar()
        elif tok.text.startswith("DefTensor"):
            self._deftensor(tok.text)
        elif tok.text.startswith("DefShapeMPI"):
            self._defshape(tok.text)
        elif tok.text == "Kernel":
            self._kernel_decl()
        elif tok.text == "Stencil":
            self._stencil_decl()
        elif tok.kind == "ident" and tok.text in self.kernels:
            self._schedule_call()
        elif tok.kind == "ident" and tok.text == self.stencil_name:
            self._driver_call()
        else:
            raise MSCSyntaxError(
                f"unexpected statement start {tok.text!r}", tok.line
            )

    def _const_decl(self) -> None:
        self._expect("const")
        name = self._expect_ident()
        self._expect("=")
        value = self._number_or_const()
        self._expect(";")
        self.consts[name.text] = value

    def _number_or_const(self) -> Union[int, float]:
        tok = self._next()
        if tok.kind == "number":
            return (
                float(tok.text)
                if any(c in tok.text for c in ".eE")
                else int(tok.text)
            )
        if tok.kind == "ident" and tok.text in self.consts:
            return self.consts[tok.text]
        raise MSCSyntaxError(
            f"expected number or known constant, got {tok.text!r}", tok.line
        )

    def _defvar(self) -> None:
        self._expect("DefVar")
        self._expect("(")
        name = self._expect_ident()
        self._expect(",")
        dt = self._expect_ident()
        dtype_from_name(dt.text)  # validate
        self._expect(")")
        self._expect(";")
        self.vars[name.text] = VarExpr(name.text, dt.text)

    def _deftensor(self, head: str) -> None:
        m = re.fullmatch(r"DefTensor([123])D(_TimeWin)?", head)
        if not m:
            tok = self._peek()
            raise MSCSyntaxError(
                f"unknown tensor declarator {head!r}",
                tok.line if tok else 1,
            )
        ndim = int(m.group(1))
        has_window = m.group(2) is not None
        self._next()  # consume declarator
        self._expect("(")
        name = self._expect_ident()
        self._expect(",")
        window = 2
        if has_window:
            window = int(self._number_or_const())
            self._expect(",")
        halo = int(self._number_or_const())
        self._expect(",")
        dt = self._expect_ident()
        dims = []
        for _ in range(ndim):
            self._expect(",")
            dims.append(int(self._number_or_const()))
        self._expect(")")
        self._expect(";")
        self.tensors[name.text] = SpNode(
            name.text, tuple(dims), dtype_from_name(dt.text),
            halo=(halo,) * ndim, time_window=window,
        )

    def _defshape(self, head: str) -> None:
        m = re.fullmatch(r"DefShapeMPI([123])D", head)
        if not m:
            tok = self._peek()
            raise MSCSyntaxError(
                f"unknown MPI shape declarator {head!r}",
                tok.line if tok else 1,
            )
        ndim = int(m.group(1))
        self._next()
        self._expect("(")
        self._expect_ident()  # the shape variable name
        dims = []
        for _ in range(ndim):
            self._expect(",")
            dims.append(int(self._number_or_const()))
        self._expect(")")
        self._accept(";")
        self.mpi_grid = tuple(dims)

    def _loop_var_list(self) -> Tuple[VarExpr, ...]:
        self._expect("(")
        out = []
        while True:
            v = self._expect_ident()
            if v.text not in self.vars:
                raise MSCSyntaxError(
                    f"undeclared loop variable {v.text!r}", v.line
                )
            out.append(self.vars[v.text])
            if not self._accept(","):
                break
        self._expect(")")
        return tuple(out)

    def _kernel_decl(self) -> None:
        self._expect("Kernel")
        name = self._expect_ident()
        self._expect("(")
        loop_vars = self._loop_var_list()
        self._expect(",")
        expr = self._expression()
        self._expect(")")
        self._expect(";")
        if name.text in self.kernels:
            raise MSCSyntaxError(
                f"kernel {name.text!r} redefined", name.line
            )
        self.kernels[name.text] = make_kernel(name.text, loop_vars, expr)

    def _stencil_decl(self) -> None:
        tok = self._expect("Stencil")
        name = self._expect_ident()
        self._expect("(")
        self._loop_var_list()
        self._expect(",")
        out = self._expect_ident()
        if out.text not in self.tensors:
            raise MSCSyntaxError(
                f"stencil output {out.text!r} is not a tensor", out.line
            )
        self._expect("[")
        tvar = self._expect_ident()
        if tvar.text != "t":
            raise MSCSyntaxError(
                f"stencil output must be indexed with t, got {tvar.text!r}",
                tvar.line,
            )
        self._expect("]")
        self._expect("<<")
        expr = self._expression()
        self._expect(")")
        self._expect(";")
        if any(n == name.text for n, _, _ in self.stencils):
            raise MSCSyntaxError(
                f"stencil {name.text!r} redefined", name.line
            )
        self.stencils.append((name.text, self.tensors[out.text], expr))
        if self.stencil_name is None:
            self.stencil_name = name.text

    def _schedule_call(self) -> None:
        kname = self._expect_ident()
        handle = self.kernels[kname.text]
        self._expect(".")
        meth = self._expect_ident()
        self._expect("(")
        args: List[Union[int, float, str]] = []
        if not self._accept(")"):
            while True:
                tok = self._next()
                if tok.kind == "number":
                    args.append(
                        float(tok.text)
                        if any(c in tok.text for c in ".eE")
                        else int(tok.text)
                    )
                elif tok.kind == "string":
                    args.append(tok.text.strip('"'))
                elif tok.kind == "ident":
                    if tok.text in self.consts:
                        args.append(self.consts[tok.text])
                    else:
                        args.append(tok.text)
                else:
                    raise MSCSyntaxError(
                        f"bad schedule argument {tok.text!r}", tok.line
                    )
                if not self._accept(","):
                    break
            self._expect(")")
        self._expect(";")
        method = getattr(handle, meth.text, None)
        if method is None or meth.text not in (
            "tile", "reorder", "parallel", "cache_read", "cache_write",
            "compute_at", "vectorize", "unroll",
        ):
            raise MSCSyntaxError(
                f"unknown scheduling primitive {meth.text!r}", meth.line
            )
        if meth.text == "cache_read":
            tensor_name = args[0]
            if tensor_name not in self.tensors:
                raise MSCSyntaxError(
                    f"cache_read of unknown tensor {tensor_name!r}",
                    meth.line,
                )
            args[0] = self.tensors[tensor_name]
        try:
            method(*args)
        except (ValueError, TypeError) as exc:
            raise MSCSyntaxError(str(exc), meth.line) from exc

    def _driver_call(self) -> None:
        """Listing 1 lines 14-16: st.input / st.run /
        st.compile_to_source_code."""
        self._expect_ident()  # the stencil variable
        self._expect(".")
        meth = self._expect_ident()
        self._expect("(")
        if meth.text == "input":
            shape = self._expect_ident()  # MPI shape variable (or none_)
            self._expect(",")
            tensor = self._expect_ident()
            if tensor.text not in self.tensors:
                raise MSCSyntaxError(
                    f"st.input names unknown tensor {tensor.text!r}",
                    tensor.line,
                )
            self._expect(",")
            data = self._next()
            if data.kind != "string":
                raise MSCSyntaxError(
                    "st.input data must be a string (a path or "
                    '"random")', data.line,
                )
            self.input_spec = (
                shape.text, tensor.text, data.text.strip('"')
            )
        elif meth.text == "run":
            begin = int(self._number_or_const())
            self._expect(",")
            end = int(self._number_or_const())
            if end < begin:
                raise MSCSyntaxError(
                    f"st.run({begin}, {end}): end before begin", meth.line
                )
            self.run_spec = (begin, end)
        elif meth.text == "compile_to_source_code":
            name = self._next()
            if name.kind != "string":
                raise MSCSyntaxError(
                    "compile_to_source_code takes a string name", name.line
                )
            self.compile_spec = name.text.strip('"')
        else:
            raise MSCSyntaxError(
                f"unknown stencil method {meth.text!r}", meth.line
            )
        self._expect(")")
        self._expect(";")

    # -- expressions ---------------------------------------------------------------
    def _expression(self) -> Expr:
        return self._additive()

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            if self._accept("+"):
                left = as_expr(left) + self._multiplicative()
            elif self._accept("-"):
                left = as_expr(left) - self._multiplicative()
            else:
                return as_expr(left)

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            if self._accept("*"):
                left = as_expr(left) * self._unary()
            elif self._accept("/"):
                left = as_expr(left) / self._unary()
            else:
                return as_expr(left)

    def _unary(self) -> Expr:
        if self._accept("-"):
            return -self._unary()
        if self._accept("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._next()
        if tok.text == "(":
            inner = self._expression()
            self._expect(")")
            return inner
        if tok.kind == "number":
            value = (
                float(tok.text)
                if any(c in tok.text for c in ".eE")
                else int(tok.text)
            )
            return as_expr(value)
        if tok.kind != "ident":
            raise MSCSyntaxError(
                f"unexpected token {tok.text!r} in expression", tok.line
            )
        name = tok.text
        if name in self.consts:
            return as_expr(self.consts[name])
        if name in self.tensors:
            return self._tensor_access(self.tensors[name], tok.line)
        if name in self.kernels:
            return self._kernel_apply(self.kernels[name], tok.line)
        if name in self.vars:
            return self.vars[name]
        raise MSCSyntaxError(f"undefined name {name!r}", tok.line)

    def _index(self) -> Expr:
        """One subscript: a loop variable with an optional ± constant."""
        tok = self._next()
        if tok.kind != "ident" or tok.text not in self.vars:
            raise MSCSyntaxError(
                f"subscripts must be loop variables, got {tok.text!r}",
                tok.line,
            )
        var = self.vars[tok.text]
        if self._accept("+"):
            off = int(self._number_or_const())
            return var + off
        if self._accept("-"):
            off = int(self._number_or_const())
            return var - off
        return var

    def _tensor_access(self, tensor: SpNode, line: int) -> Expr:
        self._expect("[")
        subs = [self._index()]
        while self._accept(","):
            subs.append(self._index())
        self._expect("]")
        if len(subs) != tensor.ndim:
            raise MSCSyntaxError(
                f"{tensor.name} is {tensor.ndim}-D but subscripted with "
                f"{len(subs)} indices",
                line,
            )
        return tensor[tuple(subs)]

    def _kernel_apply(self, handle: KernelHandle, line: int) -> KernelApply:
        self._expect("[")
        tv = self._expect_ident()
        if tv.text != "t":
            raise MSCSyntaxError(
                f"kernels are applied at time t-k, got {tv.text!r}", tv.line
            )
        self._expect("-")
        k = int(self._number_or_const())
        self._expect("]")
        return handle.at(-k)


def parse_program(source: str) -> ParsedProgram:
    """Parse MSC source text into a ready program or pipeline."""
    from ..obs import span

    with span("frontend.parse", chars=len(source)) as sp:
        parsed = _parse_program(source)
        sp.set(
            stencil=parsed.stencil_name,
            kernels=len(parsed.kernels),
            tensors=len(parsed.tensors),
            pipeline=parsed.pipeline is not None,
        )
    return parsed


def _parse_program(source: str) -> ParsedProgram:
    parser = _Parser(tokenize(source))
    parser.parse()
    if not parser.stencils:
        raise MSCSyntaxError("program has no Stencil declaration", 1)
    if len(parser.stencils) > 1:
        from ..ir.pipeline import StagePipeline
        from ..ir.stencil import Stencil as IRStencil

        stages = tuple(
            IRStencil(output, expr)
            for _, output, expr in parser.stencils
        )
        return ParsedProgram(
            program=None,
            kernels=dict(parser.kernels),
            tensors=dict(parser.tensors),
            consts=dict(parser.consts),
            mpi_grid=parser.mpi_grid,
            stencil_name=parser.stencil_name or "st",
            input_spec=parser.input_spec,
            run_spec=parser.run_spec,
            compile_spec=parser.compile_spec,
            pipeline=StagePipeline(stages),
        )
    name, output, expr = parser.stencils[0]
    program = StencilProgram(output, expr)
    program.attach(*parser.kernels.values())
    if parser.mpi_grid is not None:
        program.set_mpi_grid(parser.mpi_grid)
    if parser.input_spec is not None and parser.input_spec[2] == "random":
        program.input(None, parser.tensors[parser.input_spec[1]], "random")
    return ParsedProgram(
        program=program,
        kernels=dict(parser.kernels),
        tensors=dict(parser.tensors),
        consts=dict(parser.consts),
        mpi_grid=parser.mpi_grid,
        stencil_name=name,
        input_spec=parser.input_spec,
        run_spec=parser.run_spec,
        compile_spec=parser.compile_spec,
    )
