"""The benchmark stencil suite of Table 4, plus builder helpers.

Eight representative stencils spanning shapes (star/box), dimensions
(2D/3D) and orders, each with two time dependencies, exactly as the
paper evaluates::

    2d9pt_star  2d9pt_box  2d121pt_box  2d169pt_box
    3d7pt_star  3d13pt_star  3d25pt_star  3d31pt_star

Coefficient conventions (they determine the op counts reported next to
Table 4's): *star* stencils use the standard high-order finite-
difference form — one coefficient per (axis, distance) pair applied to
the symmetric neighbour sum; *box* stencils use one distinct
coefficient per point.  Coefficients are deterministic and normalised
so iteration is numerically stable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.dtypes import DType, f64
from ..ir.expr import Expr
from ..ir.tensor import SpNode
from .dsl import Kernel, KernelHandle, StencilProgram, indices

__all__ = [
    "BenchmarkDef",
    "star_kernel",
    "box_kernel",
    "build_benchmark",
    "benchmark_by_name",
    "ALL_BENCHMARKS",
    "BENCHMARK_NAMES",
]

_VAR_NAMES = {2: ("j", "i"), 3: ("k", "j", "i")}


def _coefficients(n: int) -> List[float]:
    """n deterministic coefficients with |sum| <= 1 (stable iteration)."""
    raw = [((7 * idx + 3) % 19 + 1) / 19.0 for idx in range(n)]
    total = sum(raw)
    return [r / (1.25 * total) for r in raw]


def star_kernel(name: str, tensor: SpNode, radius: int) -> KernelHandle:
    """Star stencil: centre plus ±1..±radius along each axis.

    One distinct coefficient per point (the convention that reproduces
    Table 4's op counts for the low-order rows; see EXPERIMENTS.md for
    the high-order deltas).
    """
    ndim = tensor.ndim
    loop_vars = indices(_VAR_NAMES[ndim])
    npoints = 1 + 2 * ndim * radius
    coef = _coefficients(npoints)
    expr: Expr = coef[0] * tensor[tuple(loop_vars)]
    ci = 1
    for axis in range(ndim):
        for dist in range(1, radius + 1):
            for sign in (+1, -1):
                subs = list(loop_vars)
                subs[axis] = loop_vars[axis] + sign * dist
                expr = expr + coef[ci] * tensor[tuple(subs)]
                ci += 1
    return Kernel(name, loop_vars, expr)


def box_kernel(name: str, tensor: SpNode, radius: int) -> KernelHandle:
    """Dense box: one distinct coefficient per point of the (2r+1)^d cube."""
    ndim = tensor.ndim
    loop_vars = indices(_VAR_NAMES[ndim])
    offsets = list(itertools.product(range(-radius, radius + 1), repeat=ndim))
    coef = _coefficients(len(offsets))
    expr: Optional[Expr] = None
    for c, off in zip(coef, offsets):
        subs = tuple(
            v + o if o else v for v, o in zip(loop_vars, off)
        )
        term = c * tensor[subs]
        expr = term if expr is None else expr + term
    return Kernel(name, loop_vars, expr)


@dataclass(frozen=True)
class BenchmarkDef:
    """One Table-4 benchmark: metadata plus paper-reported values."""

    name: str
    ndim: int
    shape: str  # "star" | "box"
    radius: int
    points: int
    paper_read_bytes: int
    paper_write_bytes: int
    paper_ops: int
    time_dependencies: int
    default_grid: Tuple[int, ...]

    def build(self, grid: Optional[Sequence[int]] = None,
              dtype: DType = f64,
              boundary: str = "zero") -> Tuple[StencilProgram, KernelHandle]:
        """Instantiate the benchmark as a ready StencilProgram.

        The default grid is the paper's (4096² / 256³); pass a smaller
        ``grid`` for functional runs.  The stencil combines the kernel
        at t-1 and t-2 (two time dependencies, as in Table 4).
        """
        shape = tuple(grid) if grid is not None else self.default_grid
        if len(shape) != self.ndim:
            raise ValueError(
                f"{self.name} is {self.ndim}-D; got grid {shape}"
            )
        for s in shape:
            if s < 2 * self.radius + 1:
                raise ValueError(
                    f"grid extent {s} too small for radius {self.radius}"
                )
        tensor = SpNode(
            "B", shape, dtype, halo=(self.radius,) * self.ndim,
            time_window=3,
        )
        builder = star_kernel if self.shape == "star" else box_kernel
        handle = builder(f"S_{self.name}", tensor, self.radius)
        t = StencilProgram.t
        prog = StencilProgram(
            tensor, 0.6 * handle[t - 1] + 0.4 * handle[t - 2],
            boundary=boundary,
        )
        return prog, handle


ALL_BENCHMARKS: Tuple[BenchmarkDef, ...] = (
    BenchmarkDef("2d9pt_star", 2, "star", 2, 9, 72, 8, 17, 2, (4096, 4096)),
    BenchmarkDef("2d9pt_box", 2, "box", 1, 9, 72, 8, 17, 2, (4096, 4096)),
    BenchmarkDef("2d121pt_box", 2, "box", 5, 121, 968, 8, 231, 2,
                 (4096, 4096)),
    BenchmarkDef("2d169pt_box", 2, "box", 6, 169, 1352, 8, 325, 2,
                 (4096, 4096)),
    BenchmarkDef("3d7pt_star", 3, "star", 1, 7, 56, 8, 13, 2,
                 (256, 256, 256)),
    BenchmarkDef("3d13pt_star", 3, "star", 2, 13, 104, 8, 17, 2,
                 (256, 256, 256)),
    BenchmarkDef("3d25pt_star", 3, "star", 4, 25, 200, 8, 41, 2,
                 (256, 256, 256)),
    BenchmarkDef("3d31pt_star", 3, "star", 5, 31, 248, 8, 50, 2,
                 (256, 256, 256)),
)

BENCHMARK_NAMES: Tuple[str, ...] = tuple(b.name for b in ALL_BENCHMARKS)

_BY_NAME: Dict[str, BenchmarkDef] = {b.name: b for b in ALL_BENCHMARKS}


def benchmark_by_name(name: str) -> BenchmarkDef:
    """Look up a Table-4 benchmark by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {list(BENCHMARK_NAMES)}"
        ) from None


def build_benchmark(name: str, grid: Optional[Sequence[int]] = None,
                    dtype: DType = f64,
                    boundary: str = "zero"):
    """Shortcut: ``build_benchmark("3d7pt_star", grid=(32,32,32))``."""
    return benchmark_by_name(name).build(grid, dtype, boundary)
