"""The MSC embedded DSL (Sec. 4.2, Listing 1).

The paper embeds MSC in C++; this reproduction embeds it in Python with
the same vocabulary::

    k, j, i = indices("k j i")
    B = DefTensor3D_TimeWin("B", time_window, halo_width, f64, 256, 256, 256)
    S = Kernel("S_3d7pt", (k, j, i),
               c0*B[k,j,i] + c1*B[k,j,i-1] + ... )
    S.tile(2, 8, 64, "xo", "xi", "yo", "yi", "zo", "zi")
    S.reorder("xo", "yo", "zo", "xi", "yi", "zi")
    S.cache_read(B, "buffer_read", "global")
    S.cache_write("buffer_write", "global")
    S.compute_at("buffer_read", "zo")
    S.compute_at("buffer_write", "zo")
    S.parallel("xo", 64)
    t = StencilProgram.t
    st = StencilProgram(B, S[t-1] + S[t-2])
    st.set_mpi_grid(DefShapeMPI3D(4, 4, 4))
    st.set_initial([plane0, plane1])
    result = st.run(timesteps=10)
    code = st.compile_to_source_code("3d7pt", target="sunway")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ir.dtypes import DType, i32
from ..ir.expr import Expr, VarExpr
from ..ir.kernel import Kernel as IRKernel, KernelApply
from ..ir.stencil import Stencil as IRStencil, TIME_VAR
from ..ir.tensor import SpNode
from ..ir.validate import validate_stencil
from ..schedule.schedule import Schedule

__all__ = [
    "DefVar",
    "indices",
    "DefTensor1D",
    "DefTensor2D",
    "DefTensor3D",
    "DefTensor2D_TimeWin",
    "DefTensor3D_TimeWin",
    "DefShapeMPI2D",
    "DefShapeMPI3D",
    "Kernel",
    "KernelHandle",
    "Result",
    "StencilProgram",
]


def DefVar(name: str, dtype: DType = i32) -> VarExpr:
    """Define a scalar variable (Listing 1 line 5)."""
    return VarExpr(name, dtype.name)


def indices(names: Union[str, Sequence[str]]) -> Tuple[VarExpr, ...]:
    """``indices("k j i")`` — define loop index variables."""
    if isinstance(names, str):
        names = names.replace(",", " ").split()
    return tuple(VarExpr(n) for n in names)


def _def_tensor(name: str, dtype: DType, shape: Tuple[int, ...],
                halo: int, time_window: int) -> SpNode:
    return SpNode(
        name, shape, dtype,
        halo=(halo,) * len(shape), time_window=time_window,
    )


def DefTensor1D(name: str, halo: int, dtype: DType, nx: int) -> SpNode:
    return _def_tensor(name, dtype, (nx,), halo, 2)


def DefTensor2D(name: str, halo: int, dtype: DType,
                ny: int, nx: int) -> SpNode:
    return _def_tensor(name, dtype, (ny, nx), halo, 2)


def DefTensor3D(name: str, halo: int, dtype: DType,
                nz: int, ny: int, nx: int) -> SpNode:
    return _def_tensor(name, dtype, (nz, ny, nx), halo, 2)


def DefTensor2D_TimeWin(name: str, time_window: int, halo: int,
                        dtype: DType, ny: int, nx: int) -> SpNode:
    """Listing 1 line 8 (2-D variant): tensor with halo + time window."""
    return _def_tensor(name, dtype, (ny, nx), halo, time_window)


def DefTensor3D_TimeWin(name: str, time_window: int, halo: int,
                        dtype: DType, nz: int, ny: int, nx: int) -> SpNode:
    """Listing 1 line 8: 3-D tensor with halo + time window."""
    return _def_tensor(name, dtype, (nz, ny, nx), halo, time_window)


def DefShapeMPI2D(py: int, px: int) -> Tuple[int, int]:
    """MPI process grid for 2-D domains (Listing 1 line 13)."""
    if py < 1 or px < 1:
        raise ValueError("MPI grid extents must be >= 1")
    return (py, px)


def DefShapeMPI3D(pz: int, py: int, px: int) -> Tuple[int, int, int]:
    """MPI process grid for 3-D domains (Listing 1 line 13)."""
    if pz < 1 or py < 1 or px < 1:
        raise ValueError("MPI grid extents must be >= 1")
    return (pz, py, px)


class KernelHandle:
    """A defined kernel plus its schedule.

    Scheduling primitives are methods on the handle, exactly as in
    Listing 2 (``S_3d7pt.tile(...)``); indexing with ``t - 1`` produces
    the :class:`KernelApply` used in stencil combinations.
    """

    #: registry letting StencilProgram recover the handle (and thus the
    #: schedule) for the IR kernels appearing in a stencil expression
    _registry: Dict[int, "KernelHandle"] = {}

    def __init__(self, kernel: IRKernel):
        self.kernel = kernel
        self.schedule = Schedule(kernel)
        KernelHandle._registry[id(kernel)] = self

    # -- scheduling primitives (delegate) ---------------------------------
    def tile(self, *args) -> "KernelHandle":
        self.schedule.tile(*args)
        return self

    def reorder(self, *axes: str) -> "KernelHandle":
        self.schedule.reorder(*axes)
        return self

    def parallel(self, axis: str, nthreads: int) -> "KernelHandle":
        self.schedule.parallel(axis, nthreads)
        return self

    def vectorize(self, axis: str) -> "KernelHandle":
        self.schedule.vectorize(axis)
        return self

    def unroll(self, axis: str, factor: int) -> "KernelHandle":
        self.schedule.unroll(axis, factor)
        return self

    def cache_read(self, tensor, buffer: str,
                   scope: str = "global") -> "KernelHandle":
        self.schedule.cache_read(tensor, buffer, scope)
        return self

    def cache_write(self, buffer: str,
                    scope: str = "global") -> "KernelHandle":
        self.schedule.cache_write(buffer, scope)
        return self

    def compute_at(self, buffer: str, axis: str) -> "KernelHandle":
        self.schedule.compute_at(buffer, axis)
        return self

    # -- time application ---------------------------------------------------
    def __getitem__(self, time_ref) -> KernelApply:
        return self.kernel[time_ref]

    def at(self, time_offset: int) -> KernelApply:
        return self.kernel.at(time_offset)

    # -- introspection -----------------------------------------------------
    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def npoints(self) -> int:
        return self.kernel.npoints

    @property
    def radius(self) -> Tuple[int, ...]:
        return self.kernel.radius

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelHandle({self.kernel!r})"


def Kernel(name: str, loop_vars: Sequence[VarExpr],
           expr: Expr) -> KernelHandle:
    """Define a stencil kernel (Listing 1 line 7)."""
    return KernelHandle(IRKernel(name, tuple(loop_vars), expr))


def Result(tensor: SpNode) -> SpNode:
    """Name the output grid (Listing 1 line 11).

    MSC's Result is a view of the output SpNode; the reproduction keeps
    it as the tensor itself.
    """
    return tensor


class StencilProgram:
    """A complete stencil computation: IR + schedules + execution config.

    This is the user-facing ``Stencil`` of Listing 1 — it owns the IR
    :class:`~repro.ir.stencil.Stencil`, the kernels' schedules, the
    input/initial data, the MPI grid for distributed runs, and drives
    execution, simulation and code generation.
    """

    #: the symbolic time variable (``Stencil::t`` in the paper)
    t = TIME_VAR

    def __init__(self, output: SpNode, expr: Expr,
                 boundary: str = "zero"):
        self.ir = IRStencil(output, expr)
        validate_stencil(self.ir)
        self.boundary = boundary
        self._handles: Dict[str, KernelHandle] = {}
        for kern in self.ir.kernels:
            handle = KernelHandle._registry.get(id(kern))
            if handle is not None:
                self._handles[kern.name] = handle
        self.mpi_grid: Optional[Tuple[int, ...]] = None
        self._initial: Optional[List[np.ndarray]] = None
        self._inputs: Dict[str, np.ndarray] = {}
        self._scalars: Dict[str, float] = {}

    # -- wiring -----------------------------------------------------------------
    def attach(self, *handles: KernelHandle) -> "StencilProgram":
        """Register kernel handles so their schedules are used."""
        for h in handles:
            if h.kernel.name not in {k.name for k in self.ir.kernels}:
                raise ValueError(
                    f"kernel {h.kernel.name!r} is not part of this stencil"
                )
            self._handles[h.kernel.name] = h
        return self

    def schedules(self) -> Dict[str, Schedule]:
        scheds = {n: h.schedule for n, h in self._handles.items()}
        for kern in self.ir.kernels:
            scheds.setdefault(kern.name, Schedule(kern))
        return scheds

    # -- static analysis ---------------------------------------------------------
    def check(self, machine=None):
        """Statically analyze the program's schedules.

        ``machine`` is a MachineSpec, a machine name (``sunway`` /
        ``matrix`` / ``cpu``), or None for the machine-independent
        checks only.  Returns a
        :class:`~repro.analysis.diagnostics.CheckReport`.
        """
        from ..analysis import check_program

        spec = self._machine_spec(machine)
        return check_program(
            self.ir, self.schedules(), machine=spec,
            mpi_grid=self.mpi_grid,
        )

    @staticmethod
    def _machine_spec(machine):
        if machine is None or not isinstance(machine, str):
            return machine
        from ..machine.spec import machine_by_name

        return machine_by_name(machine)

    def _gate(self, machine, where: str) -> None:
        """Pre-codegen/pre-run gate: log warnings, raise on errors."""
        from ..analysis import enforce

        enforce(self.check(machine), where=where)

    # -- configuration -----------------------------------------------------------
    def set_mpi_grid(self, shape: Sequence[int]) -> "StencilProgram":
        shape = tuple(int(s) for s in shape)
        if len(shape) != self.ir.ndim:
            raise ValueError(
                f"MPI grid is {len(shape)}-D for a {self.ir.ndim}-D stencil"
            )
        self.mpi_grid = shape
        return self

    def set_initial(self, planes: Sequence[np.ndarray]) -> "StencilProgram":
        """Provide the W-1 initial history planes (t = 0 .. W-2)."""
        self._initial = [np.asarray(p) for p in planes]
        return self

    def set_input(self, name: str, data: np.ndarray) -> "StencilProgram":
        """Provide data for an auxiliary (time-invariant) tensor."""
        self._inputs[name] = np.asarray(data)
        return self

    def set_scalar(self, name: str, value: float) -> "StencilProgram":
        """Bind a runtime scalar coefficient (a free DefVar symbol)."""
        self._scalars[name] = float(value)
        return self

    def input(self, mpi_shape: Optional[Sequence[int]],
              tensor: SpNode, data) -> "StencilProgram":
        """Paper-flavoured config (Listing 1 line 14): MPI shape + data.

        ``data`` may be an ndarray (used for every history plane), a
        list of planes, or the string ``"random"`` for seeded random
        initial conditions.
        """
        if mpi_shape is not None:
            self.set_mpi_grid(mpi_shape)
        need = self.ir.required_time_window - 1
        if isinstance(data, str):
            rng = np.random.default_rng(42)
            planes = [
                rng.random(tensor.shape).astype(tensor.dtype.np_dtype)
                for _ in range(need)
            ]
        elif isinstance(data, np.ndarray):
            planes = [data] * need
        else:
            planes = list(data)
        return self.set_initial(planes)

    # -- execution -----------------------------------------------------------
    def _require_initial(self) -> List[np.ndarray]:
        if self._initial is None:
            raise RuntimeError(
                "no initial data: call set_initial()/input() first"
            )
        return self._initial

    def run(self, timesteps: int, scheduled: bool = True,
            check: bool = True,
            backend: Optional[str] = None,
            exchange_mode: Optional[str] = None) -> np.ndarray:
        """Execute ``timesteps`` sweeps, returning the newest plane.

        With an MPI grid configured, runs distributed over the simulated
        MPI runtime (every rank in-process) and returns the gathered
        global result; otherwise runs single-node.  ``scheduled=False``
        forces the untiled serial reference.  ``check=False`` skips the
        static legality gate.

        ``backend`` selects the single-node execution engine: ``None``
        (the library default) keeps numpy, ``"native"`` compiles the
        generated C into a shared library and runs it in-process
        (raising :class:`~repro.backend.native.NativeUnavailable` /
        ``NativeBuildError`` when it cannot), ``"auto"`` tries native
        and transparently falls back to numpy, ``"numpy"`` is explicit.
        Distributed and unscheduled runs always use numpy.

        ``exchange_mode`` (``basic``/``diag``/``overlap``) selects the
        halo-exchange wire protocol of distributed runs; ignored for
        single-node execution.
        """
        init = self._require_initial()
        if self.mpi_grid is not None and int(np.prod(self.mpi_grid)) > 1:
            if check:
                self._gate(None, "run")
            from ..runtime.executor import distributed_run

            return distributed_run(
                self.ir, init, timesteps, self.mpi_grid,
                boundary=self.boundary, inputs=self._inputs or None,
                scalars=self._scalars or None,
                exchange_mode=exchange_mode,
            )
        from ..backend.numpy_backend import ScheduledExecutor, reference_run
        from ..obs import counter, span

        out_name = self.ir.output.name
        if not scheduled:
            with span("runtime.run", stencil=out_name,
                      timesteps=timesteps, backend="reference",
                      exchange_mode="none"):
                result = reference_run(
                    self.ir, init, timesteps, self.boundary,
                    inputs=self._inputs or None,
                    scalars=self._scalars or None,
                )
            counter("runtime.runs", backend="reference",
                    exchange_mode="none")
            return result
        if backend in ("native", "auto"):
            if check:
                self._gate("cpu", "run")
            from ..backend.native import (
                NativeBuildError,
                NativeExecutor,
                NativeUnavailable,
            )

            try:
                ex = NativeExecutor(
                    self.ir, self.schedules(), self.boundary,
                    inputs=self._inputs or None,
                    scalars=self._scalars or None,
                )
                with span("runtime.run", stencil=out_name,
                          timesteps=timesteps, backend="native",
                          exchange_mode="none"):
                    result = ex.run(init, timesteps)
                counter("runtime.runs", backend="native",
                        exchange_mode="none")
                return result
            except (NativeUnavailable, NativeBuildError):
                if backend == "native":
                    raise
                # auto: fall through to numpy
        elif backend not in (None, "numpy"):
            raise ValueError(
                f"unknown backend {backend!r}; choose "
                "auto/native/numpy"
            )
        ex = ScheduledExecutor(
            self.ir, self.schedules(), self.boundary,
            inputs=self._inputs or None,
            scalars=self._scalars or None,
        )
        with span("runtime.run", stencil=out_name,
                  timesteps=timesteps, backend="numpy",
                  exchange_mode="none"):
            result = ex.run(init, timesteps)
        counter("runtime.runs", backend="numpy", exchange_mode="none")
        return result

    # -- code generation ------------------------------------------------------
    #: machine whose constraints gate codegen, per backend target
    _TARGET_MACHINES = {"cpu": "cpu", "matrix": "matrix",
                        "sunway": "sunway", "mpi": None}

    def compile_to_source_code(self, name: str,
                               target: str = "cpu",
                               check: bool = True):
        """AOT-generate the C bundle + Makefile (Listing 1 line 16).

        ``check=False`` skips the static legality gate.
        """
        from ..backend.targets import generate

        if check:
            self._gate(self._TARGET_MACHINES.get(target),
                       f"compile[{target}]")
        return generate(
            self.ir, self.schedules(), name, target=target,
            boundary=self.boundary,
            use_mpi=self.mpi_grid is not None,
            mpi_grid=self.mpi_grid,
            scalars=self._scalars or None,
        )

    # -- simulation -----------------------------------------------------------
    def simulate(self, machine: str = "sunway", timesteps: int = 1,
                 check: bool = True):
        """Timing simulation on a named machine (sunway/matrix/cpu).

        ``check=False`` skips the static legality gate.
        """
        from ..machine import simulate_cpu, simulate_matrix, simulate_sunway
        from ..machine.spec import machine_by_name

        if check:
            self._gate(machine, f"simulate[{machine}]")
        scheds = self.schedules()
        sched = scheds[self.ir.kernels[0].name]
        if machine == "sunway":
            return simulate_sunway(self.ir, sched, timesteps)
        if machine == "matrix":
            return simulate_matrix(self.ir, sched, timesteps)
        if machine == "cpu":
            return simulate_cpu(self.ir, sched, timesteps)
        spec = machine_by_name(machine)
        if spec.cacheless:
            from ..machine import SunwaySimulator

            return SunwaySimulator(spec).run(self.ir, sched, timesteps)
        from ..machine import CacheMachineSimulator

        return CacheMachineSimulator(spec).run(self.ir, sched, timesteps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StencilProgram({self.ir!r}, mpi={self.mpi_grid})"
