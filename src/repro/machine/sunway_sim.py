"""Architectural simulator for one Sunway SW26010 core group.

Executes the *structure* of an MSC schedule against the CG's
constraints and produces a :class:`~repro.machine.report.TimingReport`:

1. lower the schedule, check legality (SPM capacity, DMA placement),
2. allocate the cache_read/cache_write buffers in a per-CPE
   :class:`~repro.machine.spm.SPMAllocator` (global scope: once),
3. distribute tiles round-robin over the 64 CPEs (Sec. 4.3 ``parallel``),
4. per tile: DMA-get one (tile + halo) block per time plane read,
   compute, DMA-put the tile,
5. the timestep's critical path is the most-loaded CPE.

The CPEs share the CG's DMA bandwidth, so each engine is provisioned
with ``mem_bw × stream_efficiency / active_cpes``.  Compute uses the
CPE's scalar-efficiency-derated peak; stencils are memory-bound on this
machine (Fig. 9a), so the DMA term dominates.
"""

from __future__ import annotations

import math

from ..ir.stencil import Stencil
from ..ir.analysis import stencil_flops_per_point
from ..obs import counter, gauge, observe, span
from ..schedule.legality import check_schedule
from ..schedule.schedule import Schedule
from .dma import DMAEngine, DMAStats
from .report import TimingReport
from .spec import SUNWAY_CG, MachineSpec
from .spm import SPMAllocator

__all__ = ["SunwaySimulator", "simulate_sunway"]


class SunwaySimulator:
    """Timing/resource simulator for one CG."""

    def __init__(self, machine: MachineSpec = SUNWAY_CG):
        if not machine.cacheless:
            raise ValueError(
                "SunwaySimulator models a cache-less SPM machine; got "
                f"{machine.name}"
            )
        self.machine = machine

    #: effective bandwidth of CPE register communication relative to the
    #: per-core DMA share (register comm moves rim data between
    #: neighbouring CPEs' scratchpads without touching main memory; cf.
    #: the on-chip halo exchange of the cited earthquake simulation)
    REGISTER_COMM_SPEEDUP = 8.0

    def run(self, stencil: Stencil, schedule: Schedule,
            timesteps: int = 1, on_chip_halo: bool = False) -> TimingReport:
        """Simulate ``timesteps`` sweeps of ``stencil`` under ``schedule``.

        With ``on_chip_halo=True``, the tile rim (the halo overlap
        between adjacent tiles) is served by CPE register communication
        instead of redundant DMA: main-memory reads shrink to the tile
        interior, and the rim moves at ``REGISTER_COMM_SPEEDUP`` × the
        DMA share.
        """
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        m = self.machine
        out = stencil.output
        with span("machine.sunway_sim", stencil=out.name,
                  machine=m.name, timesteps=timesteps):
            report = self._run(stencil, schedule, timesteps, on_chip_halo)
        return report

    def _run(self, stencil: Stencil, schedule: Schedule,
             timesteps: int, on_chip_halo: bool) -> TimingReport:
        m = self.machine
        out = stencil.output
        with span("machine.lower_schedule"):
            nest = schedule.lower(out.shape)
            check_schedule(schedule, nest, m)

        elem = out.dtype.nbytes
        precision = "fp32" if elem == 4 else "fp64"
        n_sweeps = len(stencil.applications)
        rad = stencil.radius
        tile_shape = nest.tile_shape()

        # --- SPM allocation (global scope: one allocation per CPE) ----------
        # Each application runs as its own sweep spawn, so the read
        # buffer stages one padded tile (per plane the kernel itself
        # reads — normally one).
        kernel_planes = len(
            {a.time_offset
             for app in stencil.applications
             for a in app.kernel.accesses}
        )
        with span("machine.spm_alloc"):
            spm = SPMAllocator(m.spm_bytes)
            bindings = schedule.cache_bindings()
            for b in bindings:
                if b.kind == "read":
                    n = 1
                    for s, r in zip(tile_shape, rad):
                        n *= s + 2 * r
                    spm.alloc(b.buffer, n * elem * kernel_planes)
                else:
                    n = 1
                    for s in tile_shape:
                        n *= s
                    spm.alloc(b.buffer, n * elem)
            spm_util = spm.utilisation

        # --- tile distribution over CPEs ------------------------------------
        ncpe = min(nest.nthreads, m.cores_per_node)
        ntiles = nest.ntiles
        tiles_worst_cpe = math.ceil(ntiles / ncpe)

        # --- per-tile-visit costs (one visit per tile per sweep) -------------
        bw_share = m.mem_bw_GBs * m.stream_efficiency / ncpe
        engine = DMAEngine(m.dma_startup_us, bw_share)
        tile_pts = 1
        padded_pts = 1
        for s, r in zip(tile_shape, rad):
            tile_pts *= s
            padded_pts *= s + 2 * r

        with span("machine.dma_model", on_chip_halo=on_chip_halo):
            dma_visit_s = 0.0
            if on_chip_halo:
                rim_bytes = (padded_pts - tile_pts) * elem
                for _ in range(kernel_planes):
                    dma_visit_s += engine.get(tile_pts * elem)
                # the rim arrives from neighbouring CPEs' SPM via register
                # communication — far faster than a memory round trip
                register_bw = engine.bw * self.REGISTER_COMM_SPEEDUP
                dma_visit_s += kernel_planes * rim_bytes / register_bw
            else:
                for _ in range(kernel_planes):
                    dma_visit_s += engine.get(padded_pts * elem)
            dma_visit_s += engine.put(tile_pts * elem)

        with span("machine.compute_model"):
            flops_pp = stencil_flops_per_point(stencil)
            # explicit vectorization lifts the inner loop off the scalar
            # pipeline (256-bit CPE vectors; imperfect due to shuffles)
            flop_eff = m.scalar_flop_efficiency
            if nest.vectorized_axis is not None:
                flop_eff = min(0.9, m.scalar_flop_efficiency * 2.4)
            cpe_gflops = (
                m.core_gflops() * flop_eff
                * (2.0 if precision == "fp32" else 1.0)
            )
            compute_visit_s = (
                tile_pts * flops_pp / n_sweeps / (cpe_gflops * 1e9)
            )

        memory_step = dma_visit_s * tiles_worst_cpe * n_sweeps
        compute_step = compute_visit_s * tiles_worst_cpe * n_sweeps
        # the MPE commits the accumulated result into the window plane
        commit_bytes = 3.0 * nest.npoints() * elem  # read acc+plane, write
        memory_step += commit_bytes / (m.mem_bw_GBs * m.stream_efficiency * 1e9)

        # aggregate DMA stats across CPEs for the whole run
        visits = ntiles * n_sweeps * timesteps
        per_run = DMAStats(
            n_gets=engine.stats.n_gets * visits,
            n_puts=engine.stats.n_puts * visits,
            bytes_get=engine.stats.bytes_get * visits,
            bytes_put=engine.stats.bytes_put * visits,
            time_s=memory_step * timesteps,
        )

        # data reuse: stencil reads per loaded element within one sweep
        reuse = (
            max(a.kernel.npoints for a in stencil.applications)
            * tile_pts / (padded_pts * kernel_planes)
        )

        counter("machine.dma.gets", per_run.n_gets, machine=m.name)
        counter("machine.dma.puts", per_run.n_puts, machine=m.name)
        counter("machine.dma.bytes_get", per_run.bytes_get, machine=m.name)
        counter("machine.dma.bytes_put", per_run.bytes_put, machine=m.name)
        gauge("machine.spm_utilisation", spm_util, machine=m.name)
        gauge("machine.dma.latency_per_visit_s", dma_visit_s,
              machine=m.name)
        observe("machine.step_s", memory_step + compute_step,
                machine=m.name)

        return TimingReport(
            machine=m.name,
            stencil=getattr(stencil.output, "name", "stencil"),
            precision=precision,
            timesteps=timesteps,
            compute_s=compute_step,
            memory_s=memory_step,
            flops_per_step=flops_pp * nest.npoints(),
            dma=per_run,
            details={
                "ntiles": float(ntiles),
                "tiles_per_cpe": float(tiles_worst_cpe),
                "spm_utilisation": spm_util,
                "reuse_factor": reuse,
                "active_cpes": float(ncpe),
            },
        )


def simulate_sunway(stencil: Stencil, schedule: Schedule,
                    timesteps: int = 1,
                    machine: MachineSpec = SUNWAY_CG) -> TimingReport:
    """Convenience wrapper: simulate on one Sunway CG."""
    return SunwaySimulator(machine).run(stencil, schedule, timesteps)
