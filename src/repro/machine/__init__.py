"""Machine models: specs, SPM/DMA/cache models, simulators, roofline.

These are the substitution substrate for the paper's hardware (Sunway
SW26010 core groups, Matrix MT2000+ supernodes, the local CPU server):
analytical architectural simulators that execute schedule *structure*
against real resource constraints (SPM capacity, DMA granularity, cache
working sets) and produce calibrated timings.
"""

from .spec import (
    MachineSpec,
    NetworkSpec,
    SUNWAY_CG,
    MATRIX_SN,
    MATRIX_CHIP,
    CPU_E5_2680V4,
    SUNWAY_NETWORK,
    TIANHE3_NETWORK,
    machine_by_name,
)
from .spm import SPMAllocator, SPMAllocationError, SPMBlock
from .dma import DMAEngine, DMAStats
from .cache import CacheModel, TrafficEstimate
from .report import TimingReport
from .roofline import Roofline, RooflinePoint
from .sunway_sim import SunwaySimulator, simulate_sunway
from .matrix_sim import CacheMachineSimulator, simulate_matrix, simulate_cpu
from .streaming import StreamingReport, simulate_streaming

__all__ = [
    "MachineSpec", "NetworkSpec",
    "SUNWAY_CG", "MATRIX_SN", "MATRIX_CHIP", "CPU_E5_2680V4",
    "SUNWAY_NETWORK", "TIANHE3_NETWORK", "machine_by_name",
    "SPMAllocator", "SPMAllocationError", "SPMBlock",
    "DMAEngine", "DMAStats",
    "CacheModel", "TrafficEstimate",
    "TimingReport",
    "Roofline", "RooflinePoint",
    "SunwaySimulator", "simulate_sunway",
    "CacheMachineSimulator", "simulate_matrix", "simulate_cpu",
    "StreamingReport", "simulate_streaming",
]
