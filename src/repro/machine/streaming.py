"""Streaming / pipelined execution model (Sec. 5.6).

"MSC should manage the large input data in a streaming and pipelined
manner so that it can overlap the data access and computation within
the limited local memory."  This module models exactly that on the
cache-less targets: tiles stream through the SPM with *double-buffered*
DMA, so the engine fetches tile ``n+1`` while the CPE computes tile
``n``:

    serial    : N · (t_dma + t_compute)
    pipelined : t_dma + N · max(t_dma, t_compute) + t_put

Double buffering doubles the SPM footprint, so deep pipelines force
smaller tiles — the capacity/overlap trade-off the ablation bench
sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ir.stencil import Stencil
from ..ir.analysis import stencil_flops_per_point
from ..schedule.schedule import Schedule
from .report import TimingReport
from .spec import MachineSpec, SUNWAY_CG
from .spm import SPMAllocator

__all__ = ["StreamingReport", "simulate_streaming"]


@dataclass(frozen=True)
class StreamingReport:
    """Comparison of serial vs pipelined tile streaming."""

    serial: TimingReport
    pipelined_step_s: float
    spm_bytes_single: int
    spm_bytes_double: int
    dma_bound: bool

    @property
    def overlap_speedup(self) -> float:
        """Serial step time / pipelined step time (>= 1)."""
        return self.serial.step_s / self.pipelined_step_s


def simulate_streaming(stencil: Stencil, schedule: Schedule,
                       machine: MachineSpec = SUNWAY_CG,
                       timesteps: int = 1) -> StreamingReport:
    """Model double-buffered tile streaming for a Sunway-style target.

    Raises :class:`~repro.machine.spm.SPMAllocationError` when the
    doubled buffers do not fit the scratchpad (the caller should shrink
    the tile, as the ablation bench demonstrates).
    """
    from .sunway_sim import SunwaySimulator

    serial = SunwaySimulator(machine).run(stencil, schedule, timesteps)
    out = stencil.output
    nest = schedule.lower(out.shape)

    elem = out.dtype.nbytes
    rad = stencil.radius
    tile_shape = nest.tile_shape()
    kernel_planes = len(
        {a.time_offset
         for app in stencil.applications
         for a in app.kernel.accesses}
    )
    tile_pts = 1
    padded_pts = 1
    for s, r in zip(tile_shape, rad):
        tile_pts *= s
        padded_pts *= s + 2 * r

    read_bytes = padded_pts * elem * kernel_planes
    write_bytes = tile_pts * elem
    single = read_bytes + write_bytes
    double = 2 * single
    # verify double-buffering actually fits the scratchpad
    spm = SPMAllocator(machine.spm_bytes)
    spm.alloc("ping_read", read_bytes)
    spm.alloc("ping_write", write_bytes)
    spm.alloc("pong_read", read_bytes)  # raises on overflow
    spm.alloc("pong_write", write_bytes)

    ncpe = min(nest.nthreads, machine.cores_per_node)
    bw_share = machine.mem_bw_GBs * machine.stream_efficiency * 1e9 / ncpe
    t_dma = (
        2 * machine.dma_startup_us * 1e-6
        + (read_bytes + write_bytes) / bw_share
    )
    n_sweeps = len(stencil.applications)
    flops_pp = stencil_flops_per_point(stencil)
    precision_scale = 2.0 if elem == 4 else 1.0
    cpe_flops = (
        machine.core_gflops() * machine.scalar_flop_efficiency
        * precision_scale * 1e9
    )
    t_compute = tile_pts * flops_pp / n_sweeps / cpe_flops

    visits = math.ceil(nest.ntiles / ncpe) * n_sweeps
    pipelined = t_dma + visits * max(t_dma, t_compute) + t_dma
    # MPE commit pass is unchanged
    commit = 3.0 * nest.npoints() * elem / (
        machine.mem_bw_GBs * machine.stream_efficiency * 1e9
    )
    pipelined += commit

    return StreamingReport(
        serial=serial,
        pipelined_step_s=pipelined,
        spm_bytes_single=single,
        spm_bytes_double=double,
        dma_bound=t_dma >= t_compute,
    )
