"""Architectural simulator for cache-coherent many-cores (Matrix, CPU).

Models a tiled OpenMP-style stencil sweep on a machine with hardware
caches: per-point main-memory traffic comes from the
:class:`~repro.machine.cache.CacheModel` (layer-condition style), the
memory term from the node's derated STREAM bandwidth shared by all
threads, and the compute term from the derated vector peak.  Used for
the Matrix MT2000+ supernode (Fig. 8, Fig. 9b) and for the local CPU
server in the DSL comparisons (Figs. 12-14).
"""

from __future__ import annotations

from typing import Optional

from ..ir.stencil import Stencil
from ..ir.analysis import stencil_flops_per_point
from ..obs import gauge, observe, span
from ..schedule.schedule import Schedule
from .cache import CacheModel
from .report import TimingReport
from .spec import MATRIX_SN, MachineSpec

__all__ = ["CacheMachineSimulator", "simulate_matrix", "simulate_cpu"]


class CacheMachineSimulator:
    """Timing simulator for a cache-coherent many-core node."""

    def __init__(self, machine: MachineSpec = MATRIX_SN,
                 vector_efficiency: float = 0.9):
        if machine.cacheless:
            raise ValueError(
                f"{machine.name} is cache-less; use SunwaySimulator"
            )
        self.machine = machine
        #: fraction of vector peak the generated inner loop reaches
        self.vector_efficiency = vector_efficiency

    def run(self, stencil: Stencil, schedule: Schedule,
            timesteps: int = 1) -> TimingReport:
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        m = self.machine
        out = stencil.output
        with span("machine.cache_sim", stencil=out.name,
                  machine=m.name, timesteps=timesteps):
            return self._run(stencil, schedule, timesteps)

    def _run(self, stencil: Stencil, schedule: Schedule,
             timesteps: int) -> TimingReport:
        m = self.machine
        out = stencil.output
        with span("machine.lower_schedule"):
            nest = schedule.lower(out.shape)

        elem = out.dtype.nbytes
        precision = "fp32" if elem == 4 else "fp64"
        planes_read = len(stencil.applications)
        rad = stencil.radius
        npoints = max(a.kernel.npoints for a in stencil.applications)
        tile_shape = nest.tile_shape()

        with span("machine.cache_model"):
            cache = CacheModel(m.cache_bytes)
            traffic = cache.estimate(
                tile_shape, rad, elem, npoints, planes_read
            )

        n = nest.npoints()
        nthreads = min(nest.nthreads, m.cores_per_node)
        bw = m.mem_bw_GBs * m.stream_efficiency * 1e9
        memory_step = n * traffic.total_per_point / bw

        flops_pp = stencil_flops_per_point(stencil)
        vec_eff = self.vector_efficiency
        if nest.vectorized_axis is not None:
            vec_eff = min(0.97, vec_eff * 1.05)
        peak = (
            nthreads * m.core_gflops() * vec_eff
            * (2.0 if precision == "fp32" else 1.0)
        ) * 1e9
        compute_step = n * flops_pp / peak

        # imperfect overlap: the hardware prefetcher hides most of the
        # memory time behind compute on these machines, so the step time
        # is the max plus a small serial fraction of the other term
        serial_fraction = 0.15
        if memory_step >= compute_step:
            mem_s = memory_step
            comp_s = compute_step * serial_fraction
        else:
            mem_s = memory_step * serial_fraction
            comp_s = compute_step

        gauge("machine.traffic_bytes_per_point", traffic.total_per_point,
              machine=m.name)
        observe("machine.step_s", mem_s + comp_s, machine=m.name)

        return TimingReport(
            machine=m.name,
            stencil=getattr(stencil.output, "name", "stencil"),
            precision=precision,
            timesteps=timesteps,
            compute_s=comp_s,
            memory_s=mem_s,
            flops_per_step=flops_pp * n,
            details={
                "traffic_bytes_per_point": traffic.total_per_point,
                "fits_in_cache": float(traffic.fits_in_cache),
                "nthreads": float(nthreads),
                "ntiles": float(nest.ntiles),
            },
        )


def simulate_matrix(stencil: Stencil, schedule: Schedule,
                    timesteps: int = 1,
                    machine: MachineSpec = MATRIX_SN) -> TimingReport:
    """Simulate on a Matrix MT2000+ supernode."""
    return CacheMachineSimulator(machine).run(stencil, schedule, timesteps)


def simulate_cpu(stencil: Stencil, schedule: Schedule,
                 timesteps: int = 1,
                 machine: Optional[MachineSpec] = None) -> TimingReport:
    """Simulate on the local CPU server (2 × E5-2680v4)."""
    from .spec import CPU_E5_2680V4

    return CacheMachineSimulator(machine or CPU_E5_2680V4).run(
        stencil, schedule, timesteps
    )
