"""Machine specifications for the paper's three platforms (Table 3).

All timing in this reproduction derives from these specs plus the
per-system *efficiency constants* documented below.  The hardware
numbers come from the paper (Sec. 2.2, Table 3) and the cited system
papers; the efficiency constants are the calibration knobs that make the
analytical simulators land in the paper's reported ranges — they are
deliberately few, named, and kept in this one module.

Platforms
---------
- **Sunway SW26010** (one core group / CG): 1 MPE + 64 CPEs at
  1.45 GHz, 8 DP flops/cycle/CPE (742 GFlops DP per CG — the chip's
  3.06 TFlops over 4 CGs), 64 KB SPM per CPE, *no data cache*, DMA
  access to main memory, ~34 GB/s memory bandwidth per CG.
- **Matrix MT2000+**: 128 cores at 2.0 GHz, 8 DP flops/cycle (2.048
  TFlops per chip); jobs are allocated one 32-core supernode (SN) at a
  time (Sec. 5.1), with a proportional share of the 8-channel DDR4-2400
  bandwidth.
- **Local CPU server**: 2 × Intel E5-2680v4 (2 × 14 cores, 2.4 GHz,
  AVX2 FMA: 16 DP flops/cycle), 4 DDR4-2400 channels per socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "MachineSpec",
    "NetworkSpec",
    "SUNWAY_CG",
    "MATRIX_SN",
    "MATRIX_CHIP",
    "CPU_E5_2680V4",
    "SUNWAY_NETWORK",
    "TIANHE3_NETWORK",
    "machine_by_name",
]


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect model for multi-node (MPI) execution.

    ``latency_us`` is the per-message startup; ``link_bw_GBs`` the
    point-to-point bandwidth seen by one process; ``bisection_GBs`` the
    aggregate capacity that congests when many processes communicate at
    once (the Fig. 10 2D-on-Tianhe-3 deviation); ``topology`` is
    descriptive.
    """

    name: str
    latency_us: float
    link_bw_GBs: float
    bisection_GBs: float
    topology: str = "fat-tree"
    #: empirical per-exchange synchronisation overhead of 2-D process
    #: grids, in µs per 32 processes.  The paper observes (Sec. 5.3)
    #: that 2-D strong scaling deviates on the prototype Tianhe-3 due
    #: to "network congestion" without a mechanistic model; we carry
    #: the observation as a measured platform constant (the prototype
    #: interconnect is known to degrade under the many concurrent
    #: wavefronts that 2-D process grids produce).
    sync_2d_us_per_32p: float = 0.0

    def ptp_time_s(self, nbytes: int) -> float:
        """Uncongested point-to-point message time (seconds)."""
        return self.latency_us * 1e-6 + nbytes / (self.link_bw_GBs * 1e9)


@dataclass(frozen=True)
class MachineSpec:
    """One node (or allocation unit) of a platform."""

    name: str
    cores_per_node: int
    freq_ghz: float
    flops_per_cycle: float  # DP flops per cycle per core
    mem_bw_GBs: float  # node (allocation-unit) memory bandwidth
    cacheless: bool = False
    spm_bytes: int = 0  # per-core scratchpad (cache-less targets)
    cache_bytes: int = 0  # per-core last-private-level cache
    dma_startup_us: float = 0.0  # DMA request startup latency
    programming_model: str = "openmp"
    network: Optional[NetworkSpec] = None

    # ---- calibration constants (documented per use) -------------------------
    #: fraction of peak memory bandwidth a well-tiled streaming stencil
    #: attains (STREAM-like efficiency)
    stream_efficiency: float = 0.85
    #: bandwidth efficiency of *discrete, uncoalesced* per-element global
    #: memory access (what the OpenACC baseline on Sunway does; Sec. 5.2.1
    #: attributes its 20-25x loss to missing SPM/DMA management)
    gld_efficiency: float = 0.040
    #: fraction of scalar peak reachable without the target's preferred
    #: vector/unrolling strategy
    scalar_flop_efficiency: float = 0.55

    @property
    def peak_gflops(self) -> float:
        """Double-precision peak for the allocation unit."""
        return self.cores_per_node * self.freq_ghz * self.flops_per_cycle

    def peak_gflops_for(self, precision: str) -> float:
        """Peak for a precision: fp32 doubles SIMD lanes."""
        if precision not in ("fp32", "fp64"):
            raise ValueError(f"unknown precision {precision!r}")
        return self.peak_gflops * (2.0 if precision == "fp32" else 1.0)

    @property
    def ridge_oi(self) -> float:
        """Roofline ridge point (flops/byte) at fp64."""
        return self.peak_gflops / self.mem_bw_GBs

    def core_gflops(self) -> float:
        return self.freq_ghz * self.flops_per_cycle


# -- Sunway TaihuLight: one SW26010 core group ---------------------------------
SUNWAY_CG = MachineSpec(
    name="SW26010-CG",
    cores_per_node=64,  # the 64 CPEs do the stencil work; MPE orchestrates
    freq_ghz=1.45,
    flops_per_cycle=8.0,  # 742 GFlops/CG; 4 CGs ≈ the chip's 3.06 TFlops
    mem_bw_GBs=34.0,  # measured DMA bandwidth per CG on TaihuLight
    cacheless=True,
    spm_bytes=64 * 1024,
    dma_startup_us=0.2,
    programming_model="athread",
    stream_efficiency=0.80,  # DMA reaches ~80% of the CG's 34 GB/s
    gld_efficiency=0.033,  # discrete gld/gst: a few % of DMA bandwidth
)

# -- Matrix MT2000+: one 32-core supernode (the allocation unit, Sec. 5.1) ----
MATRIX_SN = MachineSpec(
    name="MT2000+-SN",
    cores_per_node=32,
    freq_ghz=2.0,
    flops_per_cycle=8.0,  # 512 GFlops per SN
    mem_bw_GBs=19.2,  # measured per-SN share: one DDR4-2400 channel
    cacheless=False,
    cache_bytes=512 * 1024,
    programming_model="openmp",
    stream_efficiency=0.78,
)

# -- Matrix MT2000+: the full 128-core chip (for roofline context) -----------
MATRIX_CHIP = MachineSpec(
    name="MT2000+",
    cores_per_node=128,
    freq_ghz=2.0,
    flops_per_cycle=8.0,  # 2.048 TFlops
    mem_bw_GBs=153.6,  # 8 × DDR4-2400
    cacheless=False,
    cache_bytes=512 * 1024,
    programming_model="openmp",
    stream_efficiency=0.78,
)

# -- Local CPU server: 2 × E5-2680v4 ------------------------------------------
CPU_E5_2680V4 = MachineSpec(
    name="E5-2680v4x2",
    cores_per_node=28,
    freq_ghz=2.4,
    flops_per_cycle=16.0,  # AVX2 + FMA
    mem_bw_GBs=153.6,  # 2 sockets × 4 × DDR4-2400
    cacheless=False,
    cache_bytes=2560 * 1024,  # 35 MB LLC / 14 cores
    programming_model="openmp",
    stream_efficiency=0.70,
)

# -- Interconnects -------------------------------------------------------------
#: TaihuLight's custom network: high bisection, and the paper observes
#: near-ideal strong scaling up to 1024 CGs for both 2D and 3D.
SUNWAY_NETWORK = NetworkSpec(
    name="taihulight",
    latency_us=1.0,
    link_bw_GBs=2.0,
    bisection_GBs=900.0,
    topology="fat-tree",
    sync_2d_us_per_32p=20.0,
)

#: The prototype Tianhe-3 interconnect: the paper attributes the 2D
#: strong-scaling deviation to network congestion; the large
#: ``sync_2d_us_per_32p`` carries that measured behaviour (see the
#: NetworkSpec field docs).
TIANHE3_NETWORK = NetworkSpec(
    name="tianhe3-proto",
    latency_us=1.6,
    link_bw_GBs=12.0,
    bisection_GBs=1500.0,
    topology="fat-tree",
    sync_2d_us_per_32p=900.0,
)

_MACHINES = {
    m.name: m for m in (SUNWAY_CG, MATRIX_SN, MATRIX_CHIP, CPU_E5_2680V4)
}
_ALIASES = {
    "sunway": SUNWAY_CG,
    "matrix": MATRIX_SN,
    "cpu": CPU_E5_2680V4,
}


def machine_by_name(name: str) -> MachineSpec:
    """Look a machine up by exact name or alias (sunway/matrix/cpu)."""
    if name in _ALIASES:
        return _ALIASES[name]
    try:
        return _MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; known: "
            f"{sorted(_MACHINES) + sorted(_ALIASES)}"
        ) from None
