"""Roofline model (Fig. 9).

``attainable(oi) = min(peak, bandwidth × oi)`` — the classic roofline.
The module classifies each benchmark as memory- or compute-bound
relative to a machine's ridge point and produces the (x, y) series the
Fig. 9 bench prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .spec import MachineSpec

__all__ = ["RooflinePoint", "Roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """One benchmark placed on the roofline."""

    name: str
    operational_intensity: float
    attainable_gflops: float
    achieved_gflops: float
    bound: str  # "memory" | "compute"

    @property
    def utilization(self) -> float:
        """Achieved fraction of the attainable ceiling (0..1)."""
        if self.attainable_gflops <= 0:
            return 0.0
        return self.achieved_gflops / self.attainable_gflops

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "operational_intensity": self.operational_intensity,
            "attainable_gflops": self.attainable_gflops,
            "achieved_gflops": self.achieved_gflops,
            "utilization": self.utilization,
            "bound": self.bound,
        }


class Roofline:
    """Roofline for one machine at one precision."""

    def __init__(self, machine: MachineSpec, precision: str = "fp64"):
        self.machine = machine
        self.precision = precision
        self.peak = machine.peak_gflops_for(precision)
        self.bw = machine.mem_bw_GBs

    @property
    def ridge_oi(self) -> float:
        """Operational intensity where the two roofs meet."""
        return self.peak / self.bw

    def attainable(self, oi: float) -> float:
        """GFlops ceiling at operational intensity ``oi``."""
        if oi < 0:
            raise ValueError(f"operational intensity must be >= 0, got {oi}")
        return min(self.peak, self.bw * oi)

    def bound(self, oi: float) -> str:
        return "memory" if oi < self.ridge_oi else "compute"

    def place(self, name: str, oi: float,
              achieved_gflops: float) -> RooflinePoint:
        """Place one measured benchmark on the roofline."""
        ceiling = self.attainable(oi)
        if achieved_gflops > ceiling * 1.0001:
            raise ValueError(
                f"{name}: achieved {achieved_gflops:.1f} GFlops exceeds the "
                f"roofline ceiling {ceiling:.1f} at OI {oi:.3f} — the "
                "performance model is inconsistent"
            )
        return RooflinePoint(name, oi, ceiling, achieved_gflops, self.bound(oi))

    def roof_series(self, oi_values: Sequence[float]) -> List[Tuple[float, float]]:
        """(oi, attainable) samples for plotting the roof line."""
        return [(oi, self.attainable(oi)) for oi in oi_values]
