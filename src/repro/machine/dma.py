"""DMA engine model for cache-less many-core targets.

Sunway CPEs reach main memory through DMA for contiguous blocks
(Sec. 2.2).  The model charges each transfer a fixed startup plus a
bandwidth term; the bandwidth is the core's *share* of the CG's memory
bandwidth when all cores stream simultaneously.  It also keeps traffic
statistics the simulator reports (transfers, bytes, reuse factors).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DMAEngine", "DMAStats"]


@dataclass
class DMAStats:
    """Accumulated DMA activity for one simulated execution."""

    n_gets: int = 0
    n_puts: int = 0
    bytes_get: int = 0
    bytes_put: int = 0
    time_s: float = 0.0

    @property
    def n_transfers(self) -> int:
        return self.n_gets + self.n_puts

    @property
    def total_bytes(self) -> int:
        return self.bytes_get + self.bytes_put

    def merge(self, other: "DMAStats") -> "DMAStats":
        return DMAStats(
            self.n_gets + other.n_gets,
            self.n_puts + other.n_puts,
            self.bytes_get + other.bytes_get,
            self.bytes_put + other.bytes_put,
            max(self.time_s, other.time_s),  # engines run in parallel
        )


class DMAEngine:
    """Per-core DMA engine with a shared-bandwidth cost model.

    Parameters
    ----------
    startup_us:
        Fixed cost per DMA request (descriptor setup + round trip).
    share_bw_GBs:
        Sustainable bandwidth for *this core* when all peers stream —
        i.e. node streaming bandwidth / active cores.
    min_efficient_bytes:
        Transfers below this size waste the request (the paper's
        coalesced-DMA motivation); they are charged as if this size.
    """

    def __init__(self, startup_us: float, share_bw_GBs: float,
                 min_efficient_bytes: int = 256):
        if share_bw_GBs <= 0:
            raise ValueError("DMA bandwidth share must be positive")
        self.startup_s = startup_us * 1e-6
        self.bw = share_bw_GBs * 1e9
        self.min_bytes = min_efficient_bytes
        self.stats = DMAStats()

    def _transfer_time(self, nbytes: int) -> float:
        charged = max(nbytes, self.min_bytes)
        return self.startup_s + charged / self.bw

    def get(self, nbytes: int) -> float:
        """Main memory → SPM; returns elapsed seconds."""
        if nbytes <= 0:
            raise ValueError(f"DMA get of {nbytes} bytes")
        t = self._transfer_time(nbytes)
        self.stats.n_gets += 1
        self.stats.bytes_get += nbytes
        self.stats.time_s += t
        return t

    def put(self, nbytes: int) -> float:
        """SPM → main memory; returns elapsed seconds."""
        if nbytes <= 0:
            raise ValueError(f"DMA put of {nbytes} bytes")
        t = self._transfer_time(nbytes)
        self.stats.n_puts += 1
        self.stats.bytes_put += nbytes
        self.stats.time_s += t
        return t
