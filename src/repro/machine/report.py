"""Timing report produced by the machine simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .dma import DMAStats

__all__ = ["TimingReport"]


@dataclass
class TimingReport:
    """Result of simulating one stencil execution on one machine.

    Times are per *timestep* unless stated otherwise; ``total_s`` covers
    the whole run (``timesteps`` sweeps).
    """

    machine: str
    stencil: str
    precision: str
    timesteps: int
    compute_s: float  # per-timestep arithmetic time (critical path)
    memory_s: float  # per-timestep memory/DMA time (critical path)
    overhead_s: float = 0.0  # per-run fixed overhead (launch, JIT, ...)
    flops_per_step: float = 0.0
    dma: Optional[DMAStats] = None
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def step_s(self) -> float:
        """Per-timestep wall time: memory and compute do not overlap."""
        return self.compute_s + self.memory_s

    @property
    def total_s(self) -> float:
        return self.step_s * self.timesteps + self.overhead_s

    @property
    def gflops(self) -> float:
        """Achieved arithmetic rate over the whole run.

        An *empty* run (zero flops or zero timesteps) did no arithmetic
        and rates at 0.0; a run that claims work but took no time is a
        malformed report and raises :class:`ValueError`.
        """
        total_flops = self.flops_per_step * self.timesteps
        if self.total_s <= 0:
            if total_flops == 0:
                return 0.0
            raise ValueError(
                f"malformed report for {self.stencil!r} on "
                f"{self.machine!r}: {total_flops:g} flops recorded but "
                "zero elapsed time"
            )
        return total_flops / self.total_s / 1e9

    def speedup_over(self, baseline: "TimingReport") -> float:
        """Baseline time / this time (>1 means we are faster).

        A zero-time baseline did no (modelled) work; comparing against
        it is meaningless, so it raises rather than returning inf.
        """
        if baseline.total_s <= 0:
            raise ValueError(
                f"baseline report for {baseline.stencil!r} on "
                f"{baseline.machine!r} has zero elapsed time — nothing "
                "to speed up over"
            )
        return baseline.total_s / self.total_s

    # -- phase attribution -----------------------------------------------
    def phases(self) -> Dict[str, float]:
        """Whole-run modelled time per perf-observatory phase.

        Maps onto the stable taxonomy of :mod:`repro.obs.perf.phases`:
        ``compute`` is the arithmetic critical path, ``spm-dma`` the
        memory/DMA critical path (DMA on cache-less machines, cache
        traffic otherwise), ``other`` the fixed per-run overhead.

        A zero-work report (no modelled time at all) attributes to no
        phase: the empty dict lets callers print "nothing to show"
        instead of a table of zeros.
        """
        if self.total_s == 0:
            return {}
        return {
            "compute": self.compute_s * self.timesteps,
            "spm-dma": self.memory_s * self.timesteps,
            "other": self.overhead_s,
        }

    # -- (de)serialisation -----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, including the derived phase attribution."""
        return {
            "machine": self.machine,
            "stencil": self.stencil,
            "precision": self.precision,
            "timesteps": self.timesteps,
            "compute_s": self.compute_s,
            "memory_s": self.memory_s,
            "overhead_s": self.overhead_s,
            "flops_per_step": self.flops_per_step,
            "dma": None if self.dma is None else {
                "n_gets": self.dma.n_gets,
                "n_puts": self.dma.n_puts,
                "bytes_get": self.dma.bytes_get,
                "bytes_put": self.dma.bytes_put,
                "time_s": self.dma.time_s,
            },
            "details": dict(self.details),
            "phases": self.phases(),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TimingReport":
        """Inverse of :meth:`to_dict` (``phases`` is derived, not read)."""
        dma = doc.get("dma")
        return cls(
            machine=doc["machine"],
            stencil=doc["stencil"],
            precision=doc["precision"],
            timesteps=doc["timesteps"],
            compute_s=doc["compute_s"],
            memory_s=doc["memory_s"],
            overhead_s=doc.get("overhead_s", 0.0),
            flops_per_step=doc.get("flops_per_step", 0.0),
            dma=None if dma is None else DMAStats(
                n_gets=dma["n_gets"],
                n_puts=dma["n_puts"],
                bytes_get=dma["bytes_get"],
                bytes_put=dma["bytes_put"],
                time_s=dma["time_s"],
            ),
            details=dict(doc.get("details", {})),
        )
