"""Timing report produced by the machine simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .dma import DMAStats

__all__ = ["TimingReport"]


@dataclass
class TimingReport:
    """Result of simulating one stencil execution on one machine.

    Times are per *timestep* unless stated otherwise; ``total_s`` covers
    the whole run (``timesteps`` sweeps).
    """

    machine: str
    stencil: str
    precision: str
    timesteps: int
    compute_s: float  # per-timestep arithmetic time (critical path)
    memory_s: float  # per-timestep memory/DMA time (critical path)
    overhead_s: float = 0.0  # per-run fixed overhead (launch, JIT, ...)
    flops_per_step: float = 0.0
    dma: Optional[DMAStats] = None
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def step_s(self) -> float:
        """Per-timestep wall time: memory and compute do not overlap."""
        return self.compute_s + self.memory_s

    @property
    def total_s(self) -> float:
        return self.step_s * self.timesteps + self.overhead_s

    @property
    def gflops(self) -> float:
        """Achieved arithmetic rate over the whole run.

        An *empty* run (zero flops or zero timesteps) did no arithmetic
        and rates at 0.0; a run that claims work but took no time is a
        malformed report and raises :class:`ValueError`.
        """
        total_flops = self.flops_per_step * self.timesteps
        if self.total_s <= 0:
            if total_flops == 0:
                return 0.0
            raise ValueError(
                f"malformed report for {self.stencil!r} on "
                f"{self.machine!r}: {total_flops:g} flops recorded but "
                "zero elapsed time"
            )
        return total_flops / self.total_s / 1e9

    def speedup_over(self, baseline: "TimingReport") -> float:
        """Baseline time / this time (>1 means we are faster)."""
        return baseline.total_s / self.total_s
