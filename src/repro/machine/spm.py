"""Scratchpad-memory (SPM) allocator for cache-less cores.

Each Sunway CPE owns 64 KB of software-managed SPM.  The generated code
allocates read/write buffers there ("global" scope: once, outside all
loops — Listing 2); this allocator models that allocation discipline,
enforces the capacity limit, and reports utilisation (the paper quotes
78% SPM utilisation for 3d13pt_star, Sec. 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["SPMAllocationError", "SPMAllocator", "SPMBlock"]


class SPMAllocationError(MemoryError):
    """Requested SPM exceeds the scratchpad capacity."""


@dataclass(frozen=True)
class SPMBlock:
    """One live allocation in the scratchpad."""

    name: str
    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class SPMAllocator:
    """Bump allocator with named blocks over a fixed-size scratchpad.

    Alignment is rounded up to ``align`` bytes (DMA on Sunway requires
    aligned targets).  ``free`` releases a named block; freeing the most
    recent block reclaims its space immediately, earlier frees leave a
    hole that ``reset`` clears (matching the "global scope, allocate
    once" usage pattern of the generated code).
    """

    def __init__(self, capacity: int, align: int = 32):
        if capacity <= 0:
            raise ValueError("SPM capacity must be positive")
        if align <= 0 or (align & (align - 1)):
            raise ValueError("alignment must be a positive power of two")
        self.capacity = int(capacity)
        self.align = align
        self._blocks: Dict[str, SPMBlock] = {}
        self._top = 0
        self.peak = 0

    def _round(self, n: int) -> int:
        return (n + self.align - 1) & ~(self.align - 1)

    def alloc(self, name: str, nbytes: int) -> SPMBlock:
        """Allocate a named block; raises :class:`SPMAllocationError`."""
        if name in self._blocks:
            raise ValueError(f"SPM block {name!r} already allocated")
        if nbytes <= 0:
            raise ValueError(f"block size must be positive, got {nbytes}")
        size = self._round(nbytes)
        if self._top + size > self.capacity:
            raise SPMAllocationError(
                f"SPM overflow allocating {name!r}: need {size} B at offset "
                f"{self._top}, capacity {self.capacity} B "
                f"(live: {sorted(self._blocks)})"
            )
        block = SPMBlock(name, self._top, size)
        self._blocks[name] = block
        self._top += size
        self.peak = max(self.peak, self._top)
        return block

    def free(self, name: str) -> None:
        try:
            block = self._blocks.pop(name)
        except KeyError:
            raise KeyError(f"no live SPM block named {name!r}") from None
        if block.end == self._top:
            # reclaim trailing space, coalescing any holes left by
            # earlier frees: the bump pointer drops to the highest
            # still-live block end
            self._top = max(
                (b.end for b in self._blocks.values()), default=0
            )

    def reset(self) -> None:
        """Free everything (a new kernel launch)."""
        self._blocks.clear()
        self._top = 0

    # -- introspection ---------------------------------------------------------
    @property
    def used(self) -> int:
        return sum(b.nbytes for b in self._blocks.values())

    @property
    def utilisation(self) -> float:
        """Fraction of the scratchpad currently allocated (0..1)."""
        return self.used / self.capacity

    @property
    def peak_utilisation(self) -> float:
        return self.peak / self.capacity

    def blocks(self) -> List[SPMBlock]:
        return sorted(self._blocks.values(), key=lambda b: b.offset)

    def __contains__(self, name: str) -> bool:
        return name in self._blocks
