"""Cache traffic model for cache-coherent targets (Matrix, CPU).

For a tiled stencil sweep the main-memory traffic per output point
depends on whether the tile working set fits in cache:

- **fits**: each input element is fetched roughly once per tile it
  appears in — 1 compulsory load plus the halo overlap between adjacent
  tiles (the redundant reload fraction grows as tiles shrink);
- **does not fit**: interior reuse is lost too and each of the
  stencil's ``npoints`` reads hits memory with cache-line granularity
  softening (unit-stride neighbours share lines).

This is the standard "layer condition"-style model used in stencil
performance engineering; it only needs the tile shape, stencil radius
and cache capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["CacheModel", "TrafficEstimate"]


@dataclass(frozen=True)
class TrafficEstimate:
    """Estimated main-memory traffic for one stencil sweep."""

    read_bytes_per_point: float
    write_bytes_per_point: float
    fits_in_cache: bool

    @property
    def total_per_point(self) -> float:
        return self.read_bytes_per_point + self.write_bytes_per_point


class CacheModel:
    """Working-set based stencil traffic estimator."""

    def __init__(self, cache_bytes: int, line_bytes: int = 64):
        if cache_bytes <= 0:
            raise ValueError("cache size must be positive")
        self.cache_bytes = cache_bytes
        self.line_bytes = line_bytes

    def working_set_bytes(self, tile_shape: Sequence[int],
                          radius: Sequence[int], elem: int,
                          planes: int = 1) -> int:
        """Bytes the tile (plus halo) occupies, for ``planes`` time planes."""
        n = 1
        for s, r in zip(tile_shape, radius):
            n *= s + 2 * r
        return n * elem * planes + n * elem  # inputs + output tile

    def halo_overhead(self, tile_shape: Sequence[int],
                      radius: Sequence[int]) -> float:
        """Redundant-load factor from tile-boundary overlap (>= 1)."""
        padded = 1
        interior = 1
        for s, r in zip(tile_shape, radius):
            padded *= s + 2 * r
            interior *= s
        return padded / interior

    def estimate(self, tile_shape: Sequence[int], radius: Sequence[int],
                 elem: int, npoints: int, planes: int = 1) -> TrafficEstimate:
        """Traffic per output point for one sweep.

        ``npoints`` is the stencil's point count, ``planes`` the number
        of time planes read (multiple time dependencies read several
        history planes).
        """
        ws = self.working_set_bytes(tile_shape, radius, elem, planes)
        fits = ws <= self.cache_bytes
        if fits:
            read = elem * planes * self.halo_overhead(tile_shape, radius)
        else:
            # Reuse lost between rows: each distinct non-unit-stride
            # "ray" of the stencil becomes its own memory stream (the
            # unit-stride neighbours still share cache lines within
            # their row, costing one element per output point).
            unit_stride_pts = 2 * radius[-1] + 1
            rows = max(1, npoints - unit_stride_pts + 1)
            read = float(elem * planes * rows)
        # write-allocate: the output line is read then written
        write = 2.0 * elem
        return TrafficEstimate(read, write, fits)
