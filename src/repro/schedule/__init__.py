"""Scheduling layer: optimization primitives and their lowering.

Implements the paper's Sec. 4.3 primitives — ``tile``, ``reorder``,
``parallel``, ``cache_read``, ``cache_write``, ``compute_at`` — plus the
sliding time window, and machine-constraint legality checking.
"""

from .primitives import (
    CacheReadPrim,
    CacheWritePrim,
    ComputeAtPrim,
    ParallelPrim,
    ReorderPrim,
    TilePrim,
    BUFFER_SCOPES,
)
from .schedule import CacheBinding, Schedule, ScheduleError
from .loopnest import LoopNest, Tile
from .timewindow import (
    SlidingTimeWindow,
    full_history_bytes,
    window_memory_bytes,
)
from .legality import LegalityError, check_schedule, spm_tile_bytes
from .temporal import TemporalTilePlan, plan_temporal_tiles

__all__ = [
    "TilePrim", "ReorderPrim", "ParallelPrim", "CacheReadPrim",
    "CacheWritePrim", "ComputeAtPrim", "BUFFER_SCOPES",
    "Schedule", "ScheduleError", "CacheBinding",
    "LoopNest", "Tile",
    "SlidingTimeWindow", "window_memory_bytes", "full_history_bytes",
    "LegalityError", "check_schedule", "spm_tile_bytes",
    "TemporalTilePlan", "plan_temporal_tiles",
]
