"""Scheduling primitive records (Sec. 4.3, Table 2 'Primitive' row).

Each primitive invocation on a kernel's schedule is recorded as one of
the dataclasses below; :class:`~repro.schedule.schedule.Schedule`
accumulates them and lowers the result to a
:class:`~repro.schedule.loopnest.LoopNest` plus cache/DMA bindings.

Primitives:

- ``tile(factor, ax_outer, ax_inner)`` — loop fission of one axis,
- ``reorder(ax, ...)`` — permute the nest for locality,
- ``parallel(ax, n_threads)`` — map an axis across cores,
- ``cache_read(tensor, buffer, scope)`` — bind an input to an SPM
  read buffer,
- ``cache_write(buffer, scope)`` — bind the output to an SPM write
  buffer,
- ``compute_at(buffer, axis)`` — place the DMA transfer of a buffer at
  a loop level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "TilePrim",
    "ReorderPrim",
    "ParallelPrim",
    "CacheReadPrim",
    "CacheWritePrim",
    "ComputeAtPrim",
    "BUFFER_SCOPES",
]

#: Valid buffer scopes.  ``"global"`` allocates the SPM buffer outside
#: all loops (one malloc for the whole kernel, as in Listing 2);
#: ``"local"`` re-allocates per tile.
BUFFER_SCOPES = ("global", "local")


@dataclass(frozen=True)
class TilePrim:
    """Split axis ``var`` into ``outer``/``inner`` with inner extent ``factor``."""

    var: str
    factor: int
    outer: str
    inner: str

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError(
                f"tile factor for {self.var!r} must be >= 1, got {self.factor}"
            )
        if self.outer == self.inner:
            raise ValueError("outer and inner axis names must differ")


@dataclass(frozen=True)
class ReorderPrim:
    """Reorder the nest to the given axis names, outermost first."""

    order: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.order)) != len(self.order):
            raise ValueError(f"duplicate axes in reorder: {self.order}")


@dataclass(frozen=True)
class ParallelPrim:
    """Distribute axis ``axis`` over ``nthreads`` cores (round-robin)."""

    axis: str
    nthreads: int

    def __post_init__(self) -> None:
        if self.nthreads < 1:
            raise ValueError(f"nthreads must be >= 1, got {self.nthreads}")


@dataclass(frozen=True)
class CacheReadPrim:
    """Bind input ``tensor`` to SPM read buffer ``buffer``."""

    tensor: str
    buffer: str
    scope: str = "global"

    def __post_init__(self) -> None:
        if self.scope not in BUFFER_SCOPES:
            raise ValueError(
                f"invalid buffer scope {self.scope!r}; choose from "
                f"{BUFFER_SCOPES}"
            )


@dataclass(frozen=True)
class CacheWritePrim:
    """Bind the kernel output to SPM write buffer ``buffer``."""

    buffer: str
    scope: str = "global"

    def __post_init__(self) -> None:
        if self.scope not in BUFFER_SCOPES:
            raise ValueError(
                f"invalid buffer scope {self.scope!r}; choose from "
                f"{BUFFER_SCOPES}"
            )


@dataclass(frozen=True)
class ComputeAtPrim:
    """Issue the DMA for ``buffer`` at the head/tail of loop ``axis``."""

    buffer: str
    axis: str


@dataclass(frozen=True)
class VectorizePrim:
    """Map axis ``axis`` onto the SIMD lanes (innermost loops only).

    The paper's background (Sec. 1) notes vectorization "leverages the
    loop unrolling and data layout transformation to utilize better the
    SIMD units"; MSC lowers this to the target's SIMD idiom
    (``#pragma omp simd`` in the generated C).
    """

    axis: str


@dataclass(frozen=True)
class UnrollPrim:
    """Unroll loop ``axis`` by ``factor`` (emitted as an unroll pragma)."""

    axis: str
    factor: int

    def __post_init__(self) -> None:
        if self.factor < 2:
            raise ValueError(
                f"unroll factor must be >= 2, got {self.factor}"
            )
