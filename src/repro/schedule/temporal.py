"""Overlapped temporal tiling (Sec. 2.1's "overlapped tilling").

The paper's background surveys temporal tiling schemes that trade
redundant computation for fewer synchronisations: a tile extended by
``T·r`` ghost cells per side can advance ``T`` timesteps locally before
touching its neighbours again, because incorrect values entering from
the extension's rim travel at most ``r`` cells per step — after ``T``
steps the garbage front has just reached the tile boundary and the tile
interior is exact.

This module plans such tiles (extension widths, validity shrink per
step, redundancy accounting); the executor lives in
:mod:`repro.backend.temporal_exec`.  The plan doubles as the analytical
model for the temporal-tiling ablation bench: at what halo-exchange
cost does trading redundant flops for communication rounds pay off?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..ir.stencil import Stencil

__all__ = ["TemporalTilePlan", "plan_temporal_tiles"]


@dataclass(frozen=True)
class TemporalTilePlan:
    """Tiling of one domain for ``time_block`` locally-advanced steps."""

    domain: Tuple[int, ...]
    tile: Tuple[int, ...]
    radius: Tuple[int, ...]
    time_block: int

    def __post_init__(self) -> None:
        if self.time_block < 1:
            raise ValueError("time_block must be >= 1")
        if len(self.tile) != len(self.domain):
            raise ValueError("tile rank mismatch")
        for t, d in zip(self.tile, self.domain):
            if not 1 <= t <= d:
                raise ValueError(
                    f"tile extent {t} invalid for domain extent {d}"
                )

    @property
    def extension(self) -> Tuple[int, ...]:
        """Ghost width per side: ``time_block × radius``."""
        return tuple(self.time_block * r for r in self.radius)

    @property
    def gathered_shape(self) -> Tuple[int, ...]:
        """Per-tile working extent, extension included (interior tiles)."""
        return tuple(
            t + 2 * e for t, e in zip(self.tile, self.extension)
        )

    def valid_margin_after(self, steps: int) -> Tuple[int, ...]:
        """Ghost cells still *correct* after ``steps`` local steps."""
        if not 0 <= steps <= self.time_block:
            raise ValueError(
                f"steps must be in [0, {self.time_block}], got {steps}"
            )
        return tuple(
            e - steps * r for e, r in zip(self.extension, self.radius)
        )

    # -- cost accounting ---------------------------------------------------------
    @property
    def tiles_per_dim(self) -> Tuple[int, ...]:
        return tuple(-(-d // t) for d, t in zip(self.domain, self.tile))

    @property
    def ntiles(self) -> int:
        n = 1
        for c in self.tiles_per_dim:
            n *= c
        return n

    @property
    def useful_points(self) -> int:
        n = 1
        for d in self.domain:
            n *= d
        return n * self.time_block

    @property
    def computed_points(self) -> int:
        """Points computed including the redundant trapezoid rim.

        Per local step ``s`` (1-based) a tile computes its gathered
        extent shrunk by ``s·r`` per side (only still-valid cells need
        computing); summed over the block and over tiles.
        """
        total = 0
        for s in range(1, self.time_block + 1):
            per_tile = 1
            for t, e, r in zip(self.tile, self.extension, self.radius):
                per_tile *= t + 2 * (e - s * r)
            total += per_tile * self.ntiles
        return total

    @property
    def redundancy(self) -> float:
        """computed / useful — the overlapped-tiling overhead (>= 1)."""
        return self.computed_points / self.useful_points

    def exchanges_saved(self) -> int:
        """Halo-exchange rounds avoided per block versus step-by-step."""
        return self.time_block - 1


def plan_temporal_tiles(stencil: Stencil, tile: Sequence[int],
                        time_block: int) -> TemporalTilePlan:
    """Build a plan for ``stencil`` over its output domain."""
    plan = TemporalTilePlan(
        domain=stencil.output.shape,
        tile=tuple(int(t) for t in tile),
        radius=stencil.radius,
        time_block=int(time_block),
    )
    # a kernel application must never read beyond the gathered region
    for t, e in zip(plan.tile, plan.extension):
        if e > 0 and t + 2 * e > 4 * max(plan.domain):
            raise ValueError(
                "time_block too deep for this tile: gathered region "
                f"({plan.gathered_shape}) is degenerate"
            )
    return plan
