"""Sliding time window (Sec. 4.3, Fig. 5).

A stencil that reads ``t-1`` and ``t-2`` needs three live planes: the
two history planes and the one being produced.  Instead of keeping every
timestep's output (memory grows linearly with T, Fig. 5(b)), the window
keeps ``W = deepest-dependency + 1`` planes and recycles the oldest
(Fig. 5(c)).

:class:`SlidingTimeWindow` owns the actual numpy storage used by the
executable backend: a ``(W, *padded_shape)`` array whose planes are
addressed modulo W.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..ir.tensor import SpNode

__all__ = ["SlidingTimeWindow", "window_memory_bytes", "full_history_bytes"]


class SlidingTimeWindow:
    """Rotating storage for the last W timesteps of an SpNode.

    Planes include the halo region.  ``plane(t)`` returns the padded
    plane holding timestep ``t``; ``valid(t)`` returns the halo-free
    interior view of the same plane (a view, not a copy).
    """

    def __init__(self, tensor: SpNode, window: Optional[int] = None):
        self.tensor = tensor
        self.window = int(window) if window is not None else tensor.time_window
        if self.window < 2:
            raise ValueError("time window must hold at least 2 planes")
        if self.window > tensor.time_window:
            raise ValueError(
                f"requested window {self.window} exceeds the tensor's "
                f"declared time_window {tensor.time_window}"
            )
        self._data = np.zeros(
            (self.window, *tensor.padded_shape), dtype=tensor.dtype.np_dtype
        )
        #: timestep currently held by each slot; -1 = uninitialised
        self._held: list = [-(10 ** 9)] * self.window
        self.newest: int = -1

    # -- plane addressing --------------------------------------------------------
    def _slot(self, t: int) -> int:
        return t % self.window

    def plane(self, t: int) -> np.ndarray:
        """Padded plane for timestep ``t`` (halo included)."""
        slot = self._slot(t)
        if self._held[slot] != t:
            raise KeyError(
                f"timestep {t} is no longer in the window (slot holds "
                f"{self._held[slot]}); deepest live step is "
                f"{self.newest - self.window + 1}"
            )
        return self._data[slot]

    def valid(self, t: int) -> np.ndarray:
        """Halo-free interior view of timestep ``t``."""
        return self.interior_view(self.plane(t))

    def interior_view(self, padded: np.ndarray) -> np.ndarray:
        sl = tuple(
            slice(h, h + s)
            for h, s in zip(self.tensor.halo, self.tensor.shape)
        )
        return padded[sl]

    def live_steps(self) -> Tuple[int, ...]:
        return tuple(sorted(t for t in self._held if t >= self.newest - self.window + 1 and t >= 0))

    # -- writing -------------------------------------------------------------------
    def seed(self, t: int, valid_data: np.ndarray) -> None:
        """Install initial-condition data for timestep ``t`` (interior only).

        Halo cells are zero until a halo exchange or boundary fill runs.
        """
        if valid_data.shape != self.tensor.shape:
            raise ValueError(
                f"seed data shape {valid_data.shape} != domain shape "
                f"{self.tensor.shape}"
            )
        slot = self._slot(t)
        self._data[slot].fill(0)
        self.interior_view(self._data[slot])[...] = valid_data
        self._held[slot] = t
        self.newest = max(self.newest, t)

    def advance(self, t: int) -> np.ndarray:
        """Claim the slot for timestep ``t`` and return its padded plane.

        The oldest plane is recycled in place — this is the Fig. 5(c)
        rotation.  ``t`` must be exactly ``newest + 1``.
        """
        if self.newest >= 0 and t != self.newest + 1:
            raise ValueError(
                f"time window advances one step at a time (newest="
                f"{self.newest}, requested {t})"
            )
        slot = self._slot(t)
        self._held[slot] = t
        self.newest = t
        return self._data[slot]

    # -- memory accounting (Fig. 5) -------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._data.nbytes


def window_memory_bytes(tensor: SpNode, window: Optional[int] = None) -> int:
    """Bytes held with the sliding window (constant in T, Fig. 5(c))."""
    w = window if window is not None else tensor.time_window
    n = 1
    for s in tensor.padded_shape:
        n *= s
    return n * tensor.dtype.nbytes * w


def full_history_bytes(tensor: SpNode, timesteps: int) -> int:
    """Bytes held if every timestep were kept (grows with T, Fig. 5(b))."""
    n = 1
    for s in tensor.padded_shape:
        n *= s
    return n * tensor.dtype.nbytes * int(timesteps)
